// Dispatch-path overhead: keys/s of the distributed tier (Coordinator
// + WorkerDaemon over TCP loopback) against the in-process JobManager
// worker pool, at 1/2/4 workers sweeping the same keyspace. The
// distributed rows pay for JSON framing, one lease round-trip per
// interval, heartbeats and found-report acks; the `vs_local` column is
// that protocol tax, which lease sizing (CoordinatorConfig::max_lease,
// WorkerConfig::lease_target_s) exists to amortize. A ratio near 1.0
// at realistic lease sizes is the result the paper's cluster model
// assumes when it treats dispatch cost as negligible against compute
// (Section III).
//
// The `dist_lossy` rows re-run the distributed sweep with the workers'
// transport wrapped in the seeded FaultInjectingTransport dropping
// --fault-plan of all frames in each direction, at deliberately fine
// lease granularity so the protocol actually has traffic to lose. The
// extra tax there is what the self-healing machinery (recv timeouts,
// capped backoff reconnects, lease expiry re-dispatch) costs under a
// persistently lossy network, not just a clean one.
//
// Options:
//   --len L         key length (single-length lower space, 26^L)  [5]
//   --runs R        sweeps per configuration, best taken           [3]
//   --fault-plan P  frame-loss probability of the lossy rows;
//                   0 skips them                                   [0.01]
//   --fault-seed N  seed of the loss schedule                      [2014]
//   --json          print the versioned recording on stdout
//   --out FILE      write the recording to FILE

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_record.h"
#include "dist/coordinator.h"
#include "dist/fault_transport.h"
#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "hash/md5.h"
#include "keyspace/space.h"
#include "obs/metrics.h"
#include "service/job_manager.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks;

/// A target no lower-case key can hash to, so every sweep covers the
/// whole space — both paths do identical work.
service::JobSpec unfindable_job(const std::string& name, unsigned len) {
  service::JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest("0000").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = len;
  spec.request.max_length = len;
  return spec;
}

double local_sweep_s(unsigned len, std::size_t workers) {
  service::JobServiceConfig cfg;
  cfg.workers = workers;
  service::JobManager manager(cfg);
  Stopwatch timer;
  const auto id = manager.submit(unfindable_job("local", len));
  manager.wait(id);
  return timer.seconds();
}

/// `fault_loss` > 0 wraps the workers' side of the transport in the
/// seeded fault injector dropping that fraction of frames in each
/// direction, and tightens the recovery knobs (short leases, finer
/// lease clamp, 1 s recv timeout, fast capped backoff) so the run
/// measures the healing machinery instead of 10-second defaults.
/// When `delta` is non-null it receives the registry change of this
/// sweep alone (everything runs in-process against the one global
/// registry, so only before/after diffs are attributable to a run):
/// the worker rtt/lease histograms and reconnect/expiry counters that
/// decompose the dist tax.
double dist_sweep_s(unsigned len, std::size_t workers, double fault_loss,
                    std::uint64_t fault_seed,
                    obs::RegistrySnapshot* delta = nullptr) {
  const obs::RegistrySnapshot before = obs::Registry::global().snapshot();
  service::JobServiceConfig cfg;
  cfg.local_scan = false;
  service::JobManager manager(cfg);

  dist::TcpTransport transport;
  dist::CoordinatorConfig ccfg;
  std::unique_ptr<dist::FaultInjectingTransport> faulty;
  if (fault_loss > 0) {
    dist::FaultPlan plan;
    plan.send.drop = fault_loss;
    plan.recv.drop = fault_loss;
    faulty = std::make_unique<dist::FaultInjectingTransport>(transport, plan,
                                                             fault_seed);
    ccfg.lease_s = 1.5;
    ccfg.heartbeat_s = 0.25;
    ccfg.reap_interval_s = 0.1;
    ccfg.max_lease = u128(1) << 18;  // enough round-trips to lose some
  }
  dist::Coordinator coordinator(manager, transport, ccfg);
  coordinator.start("127.0.0.1:0");
  dist::Transport& worker_side =
      faulty ? static_cast<dist::Transport&>(*faulty) : transport;

  std::vector<std::unique_ptr<dist::WorkerDaemon>> daemons;
  std::vector<std::thread> threads;
  Stopwatch timer;
  const auto id = manager.submit(unfindable_job("dist", len));
  for (std::size_t i = 0; i < workers; ++i) {
    dist::WorkerConfig wcfg;
    // Built by append: gcc 12's -Wrestrict misfires on
    // operator+(const char*, string&&) under -O2.
    wcfg.name = "w";
    wcfg.name += std::to_string(i);
    wcfg.threads = 1;
    if (fault_loss > 0) {
      wcfg.recv_timeout_s = 1.0;
      wcfg.reconnect_attempts = 100;
      wcfg.reconnect_backoff_s = 0.05;
      wcfg.reconnect_backoff_max_s = 0.5;
      wcfg.backoff_seed = fault_seed + i + 1;
    }
    daemons.push_back(
        std::make_unique<dist::WorkerDaemon>(worker_side, wcfg));
    threads.emplace_back(
        [&, i] { daemons[i]->run(coordinator.address()); });
  }
  manager.wait(id);
  const double elapsed = timer.seconds();
  for (auto& d : daemons) d->stop();
  for (auto& t : threads) t.join();
  coordinator.stop();
  if (faulty) {
    const dist::FaultStats fs = faulty->stats();
    std::fprintf(stderr,
                 "    [fault seed=%llu] dropped=%llu of %llu frames\n",
                 static_cast<unsigned long long>(faulty->seed()),
                 static_cast<unsigned long long>(fs.dropped),
                 static_cast<unsigned long long>(fs.sent + fs.received +
                                                 fs.dropped));
  }
  if (delta != nullptr) {
    *delta = obs::diff(obs::Registry::global().snapshot(), before);
  }
  return elapsed;
}

struct Row {
  std::string mode;
  std::size_t workers;
  double sweep_s;
  double keys_per_s;
  double vs_local;    // dist elapsed / local elapsed at the same width
  double fault_loss;  // injected frame-loss probability (0 = clean)
  // Protocol decomposition of the dist tax, from the registry diff of
  // this configuration's runs (merged): per-message round-trip and
  // per-lease wall percentiles, plus the healing events under loss.
  // All zero on local rows (no protocol there to time).
  double rtt_p50_s = 0;
  double rtt_p99_s = 0;
  double lease_p50_s = 0;
  double lease_p99_s = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t lease_expiries = 0;
};

/// Folds one dist run's registry delta into the row under construction:
/// histograms merge (quantiles then read the union of all runs),
/// counters add.
void fold_delta(Row& row, const obs::RegistrySnapshot& delta,
                obs::HistogramSnapshot& rtt, obs::HistogramSnapshot& lease) {
  if (const obs::HistogramSnapshot* h =
          delta.histogram("gks_worker_rtt_seconds")) {
    rtt.merge(*h);
  }
  if (const obs::HistogramSnapshot* h =
          delta.histogram("gks_worker_lease_seconds")) {
    lease.merge(*h);
  }
  row.reconnects += delta.counter_or("gks_worker_reconnects_total");
  row.lease_expiries += delta.counter_or("gks_lease_expired_total");
}

void finish_row(Row& row, const obs::HistogramSnapshot& rtt,
                const obs::HistogramSnapshot& lease) {
  if (rtt.count() > 0) {
    row.rtt_p50_s = rtt.quantile(0.50);
    row.rtt_p99_s = rtt.quantile(0.99);
  }
  if (lease.count() > 0) {
    row.lease_p50_s = lease.quantile(0.50);
    row.lease_p99_s = lease.quantile(0.99);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  unsigned len = 5;
  int runs = 3;
  double fault_loss = 0.01;
  std::uint64_t fault_seed = 2014;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(argv[i], "--len") == 0) {
      len = static_cast<unsigned>(std::stoul(value()));
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::stoi(value());
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      fault_loss = std::stod(value());
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      fault_seed = std::stoull(value());
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const double space =
      keyspace::space_size(keyspace::Charset::lower().size(), len, len)
          .to_double();
  std::vector<Row> rows;
  for (const std::size_t workers : {std::size_t(1), std::size_t(2),
                                    std::size_t(4)}) {
    double local = 0, dist = 0, lossy = 0;
    Row dist_row{"dist", workers, 0, 0, 0, 0};
    Row lossy_row{"dist_lossy", workers, 0, 0, 0, fault_loss};
    obs::HistogramSnapshot dist_rtt, dist_lease, lossy_rtt, lossy_lease;
    for (int run = 0; run < runs; ++run) {
      const double l = local_sweep_s(len, workers);
      obs::RegistrySnapshot delta;
      const double d = dist_sweep_s(len, workers, 0, 0, &delta);
      fold_delta(dist_row, delta, dist_rtt, dist_lease);
      if (run == 0 || l < local) local = l;
      if (run == 0 || d < dist) dist = d;
      if (fault_loss > 0) {
        const double f = dist_sweep_s(len, workers, fault_loss,
                                      fault_seed + run, &delta);
        fold_delta(lossy_row, delta, lossy_rtt, lossy_lease);
        if (run == 0 || f < lossy) lossy = f;
      }
    }
    rows.push_back({"local", workers, local, space / local, 1.0, 0});
    dist_row.sweep_s = dist;
    dist_row.keys_per_s = space / dist;
    dist_row.vs_local = dist / local;
    finish_row(dist_row, dist_rtt, dist_lease);
    rows.push_back(dist_row);
    std::fprintf(stderr,
                 "  %zu workers: local %.3f s, dist %.3f s (%.2fx, "
                 "rtt p50 %.0f us p99 %.0f us)\n",
                 workers, local, dist, dist / local,
                 dist_row.rtt_p50_s * 1e6, dist_row.rtt_p99_s * 1e6);
    if (fault_loss > 0) {
      lossy_row.sweep_s = lossy;
      lossy_row.keys_per_s = space / lossy;
      lossy_row.vs_local = lossy / local;
      finish_row(lossy_row, lossy_rtt, lossy_lease);
      rows.push_back(lossy_row);
      std::fprintf(stderr,
                   "  %zu workers: dist_lossy %.3f s (%.2fx, rtt p99 "
                   "%.0f us, %llu reconnects, %llu expiries)\n",
                   workers, lossy, lossy / local, lossy_row.rtt_p99_s * 1e6,
                   static_cast<unsigned long long>(lossy_row.reconnects),
                   static_cast<unsigned long long>(lossy_row.lease_expiries));
    }
  }

  TablePrinter table;
  table.header({"mode", "workers", "loss", "sweep (s)", "MKey/s",
                "vs local", "rtt p50", "rtt p99"});
  for (const auto& r : rows) {
    table.row({r.mode, std::to_string(r.workers),
               TablePrinter::num(r.fault_loss, 2),
               TablePrinter::num(r.sweep_s, 3),
               TablePrinter::num(r.keys_per_s / 1e6, 1),
               TablePrinter::num(r.vs_local, 2) + "x",
               r.rtt_p50_s > 0
                   ? TablePrinter::num(r.rtt_p50_s * 1e6, 0) + "us"
                   : "-",
               r.rtt_p99_s > 0
                   ? TablePrinter::num(r.rtt_p99_s * 1e6, 0) + "us"
                   : "-"});
  }
  std::printf("== Dispatch-path overhead (MD5, 26^%u = %.3g keys, "
              "best of %d) ==\n\n%s\n",
              len, space, runs, table.str().c_str());
  std::printf(
      "`local` scans inside the JobManager worker pool; `dist` drives\n"
      "the identical keyspace through gks-coordd-style leases over TCP\n"
      "loopback (JSON protocol, heartbeats, per-interval round-trips).\n"
      "The gap is the dispatch tax the lease-sizing knobs amortize.\n"
      "`dist_lossy` repeats the distributed sweep with a seeded fault\n"
      "injector dropping frames in both directions at finer lease\n"
      "granularity: its extra tax is the cost of recv timeouts, capped\n"
      "backoff reconnects and lease-expiry re-dispatch under loss.\n");

  if (json || !out_path.empty()) {
    bench::Recording rec("dispatch");
    for (const auto& r : rows) {
      rec.begin_entry()
          .key("mode").value(r.mode)
          .key("workers").value(static_cast<std::uint64_t>(r.workers))
          .key("space").value(space)
          .key("sweep_s").value(r.sweep_s)
          .key("keys_per_s").value(r.keys_per_s)
          .key("vs_local").value(r.vs_local)
          .key("fault_loss").value(r.fault_loss)
          .key("rtt_p50_s").value(r.rtt_p50_s)
          .key("rtt_p99_s").value(r.rtt_p99_s)
          .key("lease_p50_s").value(r.lease_p50_s)
          .key("lease_p99_s").value(r.lease_p99_s)
          .key("reconnects").value(r.reconnects)
          .key("lease_expiries").value(r.lease_expiries);
      rec.end_entry();
    }
    if (json) std::printf("%s", rec.render().c_str());
    if (!out_path.empty()) rec.write(out_path);
  }
  return 0;
}
