// Dispatch-path overhead: keys/s of the distributed tier (Coordinator
// + WorkerDaemon over TCP loopback) against the in-process JobManager
// worker pool, at 1/2/4 workers sweeping the same keyspace. The
// distributed rows pay for JSON framing, one lease round-trip per
// interval, heartbeats and found-report acks; the `vs_local` column is
// that protocol tax, which lease sizing (CoordinatorConfig::max_lease,
// WorkerConfig::lease_target_s) exists to amortize. A ratio near 1.0
// at realistic lease sizes is the result the paper's cluster model
// assumes when it treats dispatch cost as negligible against compute
// (Section III).
//
// Options:
//   --len L     key length (single-length lower space, 26^L)  [5]
//   --runs R    sweeps per configuration, best taken           [3]
//   --json      print the versioned recording on stdout
//   --out FILE  write the recording to FILE

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_record.h"
#include "dist/coordinator.h"
#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "hash/md5.h"
#include "keyspace/space.h"
#include "service/job_manager.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks;

/// A target no lower-case key can hash to, so every sweep covers the
/// whole space — both paths do identical work.
service::JobSpec unfindable_job(const std::string& name, unsigned len) {
  service::JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest("0000").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = len;
  spec.request.max_length = len;
  return spec;
}

double local_sweep_s(unsigned len, std::size_t workers) {
  service::JobServiceConfig cfg;
  cfg.workers = workers;
  service::JobManager manager(cfg);
  Stopwatch timer;
  const auto id = manager.submit(unfindable_job("local", len));
  manager.wait(id);
  return timer.seconds();
}

double dist_sweep_s(unsigned len, std::size_t workers) {
  service::JobServiceConfig cfg;
  cfg.local_scan = false;
  service::JobManager manager(cfg);

  dist::TcpTransport transport;
  dist::Coordinator coordinator(manager, transport, {});
  coordinator.start("127.0.0.1:0");

  std::vector<std::unique_ptr<dist::WorkerDaemon>> daemons;
  std::vector<std::thread> threads;
  Stopwatch timer;
  const auto id = manager.submit(unfindable_job("dist", len));
  for (std::size_t i = 0; i < workers; ++i) {
    dist::WorkerConfig wcfg;
    // Built by append: gcc 12's -Wrestrict misfires on
    // operator+(const char*, string&&) under -O2.
    wcfg.name = "w";
    wcfg.name += std::to_string(i);
    wcfg.threads = 1;
    daemons.push_back(std::make_unique<dist::WorkerDaemon>(transport, wcfg));
    threads.emplace_back(
        [&, i] { daemons[i]->run(coordinator.address()); });
  }
  manager.wait(id);
  const double elapsed = timer.seconds();
  for (auto& d : daemons) d->stop();
  for (auto& t : threads) t.join();
  coordinator.stop();
  return elapsed;
}

struct Row {
  std::string mode;
  std::size_t workers;
  double sweep_s;
  double keys_per_s;
  double vs_local;  // dist elapsed / local elapsed at the same width
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  unsigned len = 5;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(argv[i], "--len") == 0) {
      len = static_cast<unsigned>(std::stoul(value()));
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::stoi(value());
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const double space =
      keyspace::space_size(keyspace::Charset::lower().size(), len, len)
          .to_double();
  std::vector<Row> rows;
  for (const std::size_t workers : {std::size_t(1), std::size_t(2),
                                    std::size_t(4)}) {
    double local = 0, dist = 0;
    for (int run = 0; run < runs; ++run) {
      const double l = local_sweep_s(len, workers);
      const double d = dist_sweep_s(len, workers);
      if (run == 0 || l < local) local = l;
      if (run == 0 || d < dist) dist = d;
    }
    rows.push_back({"local", workers, local, space / local, 1.0});
    rows.push_back({"dist", workers, dist, space / dist, dist / local});
    std::fprintf(stderr,
                 "  %zu workers: local %.3f s, dist %.3f s (%.2fx)\n",
                 workers, local, dist, dist / local);
  }

  TablePrinter table;
  table.header({"mode", "workers", "sweep (s)", "MKey/s", "vs local"});
  for (const auto& r : rows) {
    table.row({r.mode, std::to_string(r.workers),
               TablePrinter::num(r.sweep_s, 3),
               TablePrinter::num(r.keys_per_s / 1e6, 1),
               TablePrinter::num(r.vs_local, 2) + "x"});
  }
  std::printf("== Dispatch-path overhead (MD5, 26^%u = %.3g keys, "
              "best of %d) ==\n\n%s\n",
              len, space, runs, table.str().c_str());
  std::printf(
      "`local` scans inside the JobManager worker pool; `dist` drives\n"
      "the identical keyspace through gks-coordd-style leases over TCP\n"
      "loopback (JSON protocol, heartbeats, per-interval round-trips).\n"
      "The gap is the dispatch tax the lease-sizing knobs amortize.\n");

  if (json || !out_path.empty()) {
    bench::Recording rec("dispatch");
    for (const auto& r : rows) {
      rec.begin_entry()
          .key("mode").value(r.mode)
          .key("workers").value(static_cast<std::uint64_t>(r.workers))
          .key("space").value(space)
          .key("sweep_s").value(r.sweep_s)
          .key("keys_per_s").value(r.keys_per_s)
          .key("vs_local").value(r.vs_local);
      rec.end_entry();
    }
    if (json) std::printf("%s", rec.render().c_str());
    if (!out_path.empty()) rec.write(out_path);
  }
  return 0;
}
