// Ablation: dispatch efficiency versus work-interval depth — the
// Section III cost model in action. Small rounds leave the cluster
// waiting on scatter/gather and per-round fixed costs; the paper's
// remedy is that "N_node could be arbitrarily increased to minimize
// the overhead caused by the dispatch and merge steps".

#include <cstdio>

#include "core/cluster.h"
#include "hash/md5.h"
#include "support/table.h"

int main() {
  using namespace gks;

  const std::string planted = "Mq3kQ9ad";
  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = keyspace::Charset::alphanumeric();
  request.min_length = 1;
  request.max_length = 8;
  request.target_hex = hash::Md5::digest(planted).to_hex();

  gks::TablePrinter table;
  table.header({"round depth (virtual s)", "rounds", "throughput (MKey/s)",
                "dispatch efficiency"});

  for (const double depth : {0.5, 2.0, 8.0, 30.0}) {
    core::ClusterOptions options;
    options.time_scale = 1e-3;
    options.gpu_mode = core::SimGpuMode::kModel;
    options.planted_key = planted;
    options.agent.round_virtual_target_s = depth;

    core::ClusterCracker cluster(core::ClusterCracker::paper_topology(),
                                 options);
    const auto report = cluster.crack(request);
    double device_sum = 0;
    for (const auto& m : report.members) device_sum += m.throughput;

    table.row({gks::TablePrinter::num(depth),
               std::to_string(report.rounds),
               gks::TablePrinter::num(report.throughput / 1e6),
               gks::TablePrinter::num(report.throughput / device_sum, 3)});
  }

  std::printf("== Dispatch granularity sweep (paper network, MD5) ==\n\n%s\n",
              table.str().c_str());
  std::printf(
      "Efficiency climbs toward 1.0 as rounds deepen: per-round costs\n"
      "(K_scatter + K_gather + synchronization on the slowest member)\n"
      "amortize over more K_search work, exactly as the Section III\n"
      "bound K_D >= max_j(K_scatter + K_search + K_gather) predicts.\n");
  return 0;
}
