// Host-CPU microbenchmarks of the hash kernels (google-benchmark):
// streaming reference implementations, the single-block crack kernels
// with and without the Section V-B optimizations, and the multi-lane
// (ILP) instantiation. These are the real-machine counterparts of the
// simulated GPU numbers.
//
// A custom main wraps the console reporter in a capturing one, so
// --json prints the versioned recording (see bench_record.h) after the
// normal output and --out FILE writes it to FILE. All other flags pass
// through to google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_record.h"
#include "hash/lane.h"
#include "hash/lane_scan.h"
#include "hash/simd/dispatch.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "hash/sha256.h"

namespace {

using namespace gks::hash;

void BM_Md5Reference(benchmark::State& state) {
  const std::string key = "p4ssw0rd";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::digest(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Md5Reference);

void BM_Sha1Reference(benchmark::State& state) {
  const std::string key = "p4ssw0rd";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::digest(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1Reference);

void BM_Sha256Reference(benchmark::State& state) {
  const std::string key = "p4ssw0rd";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha256Reference);

void BM_Md5CrackPlain(benchmark::State& state) {
  const Md5CrackContext ctx(Md5::digest("p4ssw0rd"), "w0rd", 8);
  std::uint32_t m0 = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.test_plain(m0++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Md5CrackPlain);

void BM_Md5CrackReversedEarlyExit(benchmark::State& state) {
  const Md5CrackContext ctx(Md5::digest("p4ssw0rd"), "w0rd", 8);
  std::uint32_t m0 = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.test(m0++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Md5CrackReversedEarlyExit);

void BM_Sha1CrackOptimized(benchmark::State& state) {
  const Sha1CrackContext ctx(Sha1::digest("p4ssw0rd"), "w0rd", 8);
  std::uint32_t w0 = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.test(w0++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1CrackOptimized);

void BM_Md5ScanPrefixes(benchmark::State& state) {
  const Md5CrackContext ctx(Md5::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, false);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(md5_scan_prefixes(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Md5ScanPrefixes);

void BM_Md5ScanPrefixesLanes(benchmark::State& state) {
  // The runtime-dispatched SIMD scanner at the widest width the host
  // can execute — what the CPU backend runs by default.
  const Md5CrackContext ctx(Md5::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, false);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(md5_scan_prefixes_lanes(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Md5ScanPrefixesLanes);

void BM_Sha1ScanPrefixes(benchmark::State& state) {
  const Sha1CrackContext ctx(Sha1::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, true);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha1_scan_prefixes(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Sha1ScanPrefixes);

void BM_Sha1ScanPrefixesLanes(benchmark::State& state) {
  const Sha1CrackContext ctx(Sha1::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, true);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha1_scan_prefixes_lanes(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Sha1ScanPrefixesLanes);

void BM_Md5ScanWidth(benchmark::State& state) {
  // One specific vector width (Arg), skipped when the host cannot
  // execute it — isolates the per-width codegen from the dispatcher.
  const auto* k =
      simd::kernels_for_width(static_cast<unsigned>(state.range(0)));
  if (k == nullptr) {
    state.SkipWithError("width not executable on this host");
    return;
  }
  const Md5CrackContext ctx(Md5::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, false);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->md5_scan(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(k->isa);
}
BENCHMARK(BM_Md5ScanWidth)->Arg(4)->Arg(8)->Arg(16);

void BM_Sha1ScanWidth(benchmark::State& state) {
  const auto* k =
      simd::kernels_for_width(static_cast<unsigned>(state.range(0)));
  if (k == nullptr) {
    state.SkipWithError("width not executable on this host");
    return;
  }
  const Sha1CrackContext ctx(Sha1::digest("zzzzzzzz"), "zzzz", 8);
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, true);
  const std::uint64_t batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->sha1_scan(ctx, it, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(k->isa);
}
BENCHMARK(BM_Sha1ScanWidth)->Arg(4)->Arg(8)->Arg(16);

template <std::size_t N>
void BM_Md5Laned(benchmark::State& state) {
  // N interleaved single-block hashes from one instruction stream.
  std::array<Lane<std::uint32_t, N>, 16> m{};
  for (std::size_t w = 0; w < 16; ++w) {
    for (std::size_t l = 0; l < N; ++l) {
      m[w][l] = static_cast<std::uint32_t>(w * 131 + l * 17);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(md5_single_block(m));
    m[0][0] += 1;  // vary the input
  }
  state.SetItemsProcessed(state.iterations() * N);
}
BENCHMARK(BM_Md5Laned<1>);
BENCHMARK(BM_Md5Laned<2>);
BENCHMARK(BM_Md5Laned<4>);
BENCHMARK(BM_Md5Laned<8>);

/// Console reporter that additionally captures every per-iteration run
/// (skipping aggregates and errored runs) for the JSON recording.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_time_ns;
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      const auto it = r.counters.find("items_per_second");
      captured.push_back(
          {r.benchmark_name(), r.GetAdjustedRealTime(),
           it == r.counters.end() ? 0.0 : static_cast<double>(it->second)});
    }
  }

  std::vector<Captured> captured;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json || !out_path.empty()) {
    gks::bench::Recording rec("hash_cpu");
    for (const auto& c : reporter.captured) {
      rec.begin_entry()
          .key("name").value(c.name)
          .key("real_time_ns").value(c.real_time_ns)
          .key("items_per_second").value(c.items_per_second);
      rec.end_entry();
    }
    if (json) std::printf("%s", rec.render().c_str());
    if (!out_path.empty()) rec.write(out_path);
  }
  return 0;
}
