// Ablation: instruction-level parallelism (interleaving N candidate
// hashes per thread) per architecture. Section V-B: a better ILP
// factor is "a good choice on Fermi" and "pointless on cc 3.0".

#include <cstdio>

#include "core/gpu_backend.h"
#include "simgpu/model.h"
#include "simgpu/simt.h"
#include "support/table.h"

int main() {
  using namespace gks;

  gks::TablePrinter table;
  table.header({"device", "ILP=1", "ILP=2", "ILP=4", "theoretical",
                "ILP2/ILP1"});
  for (const auto& dev : simgpu::paper_devices()) {
    auto profile =
        core::our_kernel_profile(hash::Algorithm::kMd5, dev.cc);
    std::vector<double> rates;
    for (const unsigned ilp : {1u, 2u, 4u}) {
      profile.ilp = ilp;
      rates.push_back(
          simgpu::SimtSimulator::device_throughput(dev, profile) / 1e6);
    }
    const double theory = simgpu::ThroughputModel::theoretical_mkeys(
        dev, profile.per_candidate);
    table.row({dev.name, gks::TablePrinter::num(rates[0]),
               gks::TablePrinter::num(rates[1]),
               gks::TablePrinter::num(rates[2]),
               gks::TablePrinter::num(theory),
               gks::TablePrinter::num(rates[1] / rates[0], 2) + "x"});
  }
  std::printf("== ILP interleaving ablation (MD5, MKey/s) ==\n\n%s\n",
              table.str().c_str());
  std::printf(
      "Expected shape (Section V-B): Fermi (540M/550Ti) gains ~1.5x from\n"
      "ILP=2 — without it only 2 of 3 core groups start per slot; Kepler\n"
      "(660) and cc 1.x barely move. ILP=4 adds nothing over ILP=2: the\n"
      "schedulers can already start every group.\n");
  return 0;
}
