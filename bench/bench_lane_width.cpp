// Lane-width sweep for the runtime-dispatched SIMD scanners: times the
// scalar engine and every vector width the host can execute (4/8/16)
// over the same word-0 keyspace slice, for MD5 and SHA1. Prints a
// human-readable table and emits a JSON document on stdout so the
// results can be diffed across hosts and compiler flags.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "hash/simd/dispatch.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks::hash;

constexpr std::uint64_t kWarmup = 1u << 14;
constexpr std::uint64_t kBatch = 1u << 21;
const std::string kCharset =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

PrefixWord0Iterator fresh_iterator(bool big_endian) {
  return PrefixWord0Iterator({kCharset.data(), kCharset.size()}, 4, 8,
                             big_endian);
}

// Built without operator+(const char*, string&&): GCC 12 trips a
// -Wrestrict false positive on that form at -O2 (PR 105651).
std::string width_name(unsigned width) {
  std::string out = "w";
  out += std::to_string(width);
  return out;
}

/// Keys/s of one scan engine over kBatch candidates. The target is
/// outside the slice, so the early exit never fires and every
/// candidate pays the full kernel cost.
template <class Ctx, class ScanFn>
double measure(const Ctx& ctx, bool big_endian, const ScanFn& scan) {
  auto it = fresh_iterator(big_endian);
  scan(ctx, it, kWarmup);
  gks::Stopwatch timer;
  scan(ctx, it, kBatch);
  return static_cast<double>(kBatch) / timer.seconds();
}

struct Row {
  std::string algorithm;
  std::string engine;
  unsigned width;  // 1 == scalar
  std::string isa;
  double keys_per_s;
};

void emit(const std::vector<Row>& rows) {
  gks::TablePrinter table;
  table.header({"algorithm", "engine", "isa", "MKey/s", "vs scalar"});
  double scalar_md5 = 0, scalar_sha1 = 0;
  for (const auto& r : rows) {
    if (r.width == 1) (r.algorithm == "md5" ? scalar_md5 : scalar_sha1) =
        r.keys_per_s;
  }
  for (const auto& r : rows) {
    const double base = r.algorithm == "md5" ? scalar_md5 : scalar_sha1;
    table.row({r.algorithm, r.engine, r.isa,
               gks::TablePrinter::num(r.keys_per_s / 1e6, 2),
               gks::TablePrinter::num(r.keys_per_s / base, 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("{\n  \"bench\": \"lane_width\",\n  \"batch\": %llu,\n"
              "  \"results\": [\n",
              static_cast<unsigned long long>(kBatch));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("    {\"algorithm\": \"%s\", \"engine\": \"%s\", "
                "\"width\": %u, \"isa\": \"%s\", \"keys_per_s\": %.0f}%s\n",
                r.algorithm.c_str(), r.engine.c_str(), r.width,
                r.isa.c_str(), r.keys_per_s, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main() {
  const Md5CrackContext md5_ctx(Md5::digest("\x01off-space"), "zzzz", 8);
  const Sha1CrackContext sha1_ctx(Sha1::digest("\x01off-space"), "zzzz", 8);

  std::vector<Row> rows;
  rows.push_back({"md5", "scalar", 1, "scalar",
                  measure(md5_ctx, false,
                          [](const Md5CrackContext& c, PrefixWord0Iterator& it,
                             std::uint64_t n) {
                            return md5_scan_prefixes(c, it, n);
                          })});
  for (const auto& k : simd::available_kernels()) {
    rows.push_back({"md5", width_name(k.width), k.width, k.isa,
                    measure(md5_ctx, false,
                            [&](const Md5CrackContext& c,
                                PrefixWord0Iterator& it, std::uint64_t n) {
                              return k.md5_scan(c, it, n);
                            })});
  }
  rows.push_back({"sha1", "scalar", 1, "scalar",
                  measure(sha1_ctx, true,
                          [](const Sha1CrackContext& c,
                             PrefixWord0Iterator& it, std::uint64_t n) {
                            return sha1_scan_prefixes(c, it, n);
                          })});
  for (const auto& k : simd::available_kernels()) {
    rows.push_back({"sha1", width_name(k.width), k.width, k.isa,
                    measure(sha1_ctx, true,
                            [&](const Sha1CrackContext& c,
                                PrefixWord0Iterator& it, std::uint64_t n) {
                              return k.sha1_scan(c, it, n);
                            })});
  }
  emit(rows);

  for (const auto& k : simd::compiled_kernels()) {
    bool runnable = false;
    for (const auto& a : simd::available_kernels()) {
      if (a.width == k.width) runnable = true;
    }
    if (!runnable) {
      std::printf("note: w%u (%s) compiled but not executable on this "
                  "host — skipped\n",
                  k.width, k.isa);
    }
  }
  return 0;
}
