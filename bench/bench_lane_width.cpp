// Lane-width sweep for the runtime-dispatched SIMD scanners: times the
// scalar engine and every vector width the host can execute (4/8/16)
// over the same word-0 keyspace slice, for MD5 and SHA1. Prints a
// human-readable table; --json emits the versioned recording on
// stdout and --out FILE writes it to FILE (see bench_record.h) so the
// results can be diffed across hosts and compiler flags.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_record.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "hash/simd/dispatch.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks::hash;

constexpr std::uint64_t kWarmup = 1u << 14;
constexpr std::uint64_t kBatch = 1u << 21;
const std::string kCharset =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

PrefixWord0Iterator fresh_iterator(bool big_endian) {
  return PrefixWord0Iterator({kCharset.data(), kCharset.size()}, 4, 8,
                             big_endian);
}

// Built without operator+(const char*, string&&): GCC 12 trips a
// -Wrestrict false positive on that form at -O2 (PR 105651).
std::string width_name(unsigned width) {
  std::string out = "w";
  out += std::to_string(width);
  return out;
}

/// Keys/s of one scan engine over kBatch candidates. The target is
/// outside the slice, so the early exit never fires and every
/// candidate pays the full kernel cost.
template <class Ctx, class ScanFn>
double measure(const Ctx& ctx, bool big_endian, const ScanFn& scan) {
  auto it = fresh_iterator(big_endian);
  scan(ctx, it, kWarmup);
  gks::Stopwatch timer;
  scan(ctx, it, kBatch);
  return static_cast<double>(kBatch) / timer.seconds();
}

struct Row {
  std::string algorithm;
  std::string engine;
  unsigned width;  // 1 == scalar
  std::string isa;
  double keys_per_s;
};

void emit(const std::vector<Row>& rows) {
  gks::TablePrinter table;
  table.header({"algorithm", "engine", "isa", "MKey/s", "vs scalar"});
  double scalar_md5 = 0, scalar_sha1 = 0;
  for (const auto& r : rows) {
    if (r.width == 1) (r.algorithm == "md5" ? scalar_md5 : scalar_sha1) =
        r.keys_per_s;
  }
  for (const auto& r : rows) {
    const double base = r.algorithm == "md5" ? scalar_md5 : scalar_sha1;
    table.row({r.algorithm, r.engine, r.isa,
               gks::TablePrinter::num(r.keys_per_s / 1e6, 2),
               gks::TablePrinter::num(r.keys_per_s / base, 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
}

void emit_recording(const std::vector<Row>& rows, bool json,
                    const std::string& out_path) {
  gks::bench::Recording rec("lane_width");
  for (const auto& r : rows) {
    rec.begin_entry()
        .key("algorithm").value(r.algorithm)
        .key("engine").value(r.engine)
        .key("width").value(static_cast<std::uint64_t>(r.width))
        .key("isa").value(r.isa)
        .key("batch").value(static_cast<std::uint64_t>(kBatch))
        .key("keys_per_s").value(r.keys_per_s);
    rec.end_entry();
  }
  if (json) std::printf("%s", rec.render().c_str());
  if (!out_path.empty()) rec.write(out_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  const Md5CrackContext md5_ctx(Md5::digest("\x01off-space"), "zzzz", 8);
  const Sha1CrackContext sha1_ctx(Sha1::digest("\x01off-space"), "zzzz", 8);

  std::vector<Row> rows;
  rows.push_back({"md5", "scalar", 1, "scalar",
                  measure(md5_ctx, false,
                          [](const Md5CrackContext& c, PrefixWord0Iterator& it,
                             std::uint64_t n) {
                            return md5_scan_prefixes(c, it, n);
                          })});
  for (const auto& k : simd::available_kernels()) {
    rows.push_back({"md5", width_name(k.width), k.width, k.isa,
                    measure(md5_ctx, false,
                            [&](const Md5CrackContext& c,
                                PrefixWord0Iterator& it, std::uint64_t n) {
                              return k.md5_scan(c, it, n);
                            })});
  }
  rows.push_back({"sha1", "scalar", 1, "scalar",
                  measure(sha1_ctx, true,
                          [](const Sha1CrackContext& c,
                             PrefixWord0Iterator& it, std::uint64_t n) {
                            return sha1_scan_prefixes(c, it, n);
                          })});
  for (const auto& k : simd::available_kernels()) {
    rows.push_back({"sha1", width_name(k.width), k.width, k.isa,
                    measure(sha1_ctx, true,
                            [&](const Sha1CrackContext& c,
                                PrefixWord0Iterator& it, std::uint64_t n) {
                              return k.sha1_scan(c, it, n);
                            })});
  }
  emit(rows);
  if (json || !out_path.empty()) emit_recording(rows, json, out_path);

  for (const auto& k : simd::compiled_kernels()) {
    bool runnable = false;
    for (const auto& a : simd::available_kernels()) {
      if (a.width == k.width) runnable = true;
    }
    if (!runnable) {
      std::printf("note: w%u (%s) compiled but not executable on this "
                  "host — skipped\n",
                  k.width, k.isa);
    }
  }
  return 0;
}
