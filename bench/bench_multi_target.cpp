// Ablation: multi-target sweep cost versus target count. The batch
// engine probes a shared TargetIndex — a bit filter over each
// candidate's 32-bit early-exit word backing a sorted slot array — so
// the per-candidate cost is one hash computation plus one O(1) filter
// probe regardless of how many digests are outstanding. Sweeping 65536
// targets should cost barely more than sweeping one, while 65536
// separate cracks would cost 65536 full sweeps. This is what makes
// auditing sessions (Section I) tractable.
//
// Run with --json to append a machine-readable document (same style as
// bench_lane_width) for diffing across hosts and compiler flags.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/multi_crack.h"
#include "hash/md5.h"
#include "keyspace/space.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

struct Row {
  std::size_t targets;
  double seconds;
  double keys_per_s;
  double vs_one;
};

void emit_json(const std::vector<Row>& rows, double space) {
  std::printf("{\n  \"bench\": \"multi_target\",\n  \"algorithm\": \"md5\",\n"
              "  \"space\": %.0f,\n  \"results\": [\n",
              space);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("    {\"targets\": %zu, \"seconds\": %.4f, "
                "\"keys_per_s\": %.0f, \"vs_one\": %.4f}%s\n",
                r.targets, r.seconds, r.keys_per_s, r.vs_one,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gks;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const keyspace::Charset charset = keyspace::Charset::lower();
  const unsigned min_len = 5, max_len = 5;
  const double space = keyspace::space_size(charset.size(), min_len, max_len)
                           .to_double();

  const std::vector<std::size_t> counts = {1, 16, 256, 4096, 65536};
  std::vector<core::MultiCrackRequest> requests;
  for (const std::size_t n_targets : counts) {
    core::MultiCrackRequest request;
    request.algorithm = hash::Algorithm::kMd5;
    request.charset = charset;
    request.min_length = min_len;
    request.max_length = max_len;
    // Plant nothing findable: force a full sweep so times compare.
    request.target_hexes.reserve(n_targets);
    for (std::size_t i = 0; i < n_targets; ++i) {
      request.target_hexes.push_back(
          hash::Md5::digest("OUTSIDE_" + std::to_string(i)).to_hex());
    }
    requests.push_back(std::move(request));
  }

  // Best of five sweeps, interleaved round-robin: one full sweep is
  // short enough that scheduler noise dominates a single sample, and
  // interleaving keeps slow thermal/clock drift from biasing whichever
  // target count happens to run last. The minimum converges on the
  // quiet-machine time for every config, so the vs-1 ratios compare
  // like against like.
  std::vector<double> elapsed(counts.size(), 0);
  std::vector<double> tested(counts.size(), 0);
  for (int run = 0; run < 5; ++run) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      Stopwatch timer;
      const auto result = core::multi_crack(requests[i], 0);
      const double t = timer.seconds();
      if (run == 0 || t < elapsed[i]) elapsed[i] = t;
      tested[i] = result.tested.to_double();
    }
  }

  std::vector<Row> rows;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    rows.push_back({counts[i], elapsed[i], tested[i] / elapsed[i],
                    elapsed[i] / elapsed[0]});
  }

  gks::TablePrinter table;
  table.header({"targets", "sweep time (s)", "MKey/s", "vs 1 target"});
  for (const auto& r : rows) {
    table.row({std::to_string(r.targets),
               gks::TablePrinter::num(r.seconds, 2),
               gks::TablePrinter::num(r.keys_per_s / 1e6, 1),
               gks::TablePrinter::num(r.vs_one, 2) + "x"});
  }
  std::printf("== Multi-target sweep scaling (MD5, 26^5 = 11.9M keys, "
              "full sweep) ==\n\n%s\n",
              table.str().c_str());
  std::printf(
      "The TargetIndex keeps the per-candidate cost flat: one filter\n"
      "probe per candidate whatever the batch size, so even 65536\n"
      "digests sweep in a small multiple of one digest's time — while\n"
      "separate cracks would cost 65536.00x. This is the batch engine\n"
      "auditing sessions use.\n");

  if (json) emit_json(rows, space);
  return 0;
}
