// Ablation: multi-target sweep cost versus target count, up to the
// millions. The batch engine probes a shared TargetIndex — a Bloom- or
// bit-filter front gate over each candidate's 32-bit early-exit word
// backing a sorted slot array — so the per-candidate cost is one hash
// computation plus one O(1) gate probe regardless of how many digests
// are outstanding. Sweeping a million targets should cost a small
// multiple of sweeping one, while a million separate cracks would cost
// a million full sweeps. This is what makes auditing sessions
// (Section I) tractable at credential-dump scale.
//
// The steady-state cost is measured directly on core::MultiSweeper:
// the one-time build (digest parse + dedup + sort) is timed separately
// from the sweep, and the sweep is best-of-R full-space scans so the
// vs-1-target ratios compare quiet-machine times. Gate traffic (hits
// and confirmed false positives) is reported per count, bounding the
// Bloom FP overhead empirically.
//
// Options:
//   --max-targets N   largest target count swept    [1048576]
//   --len L           key length (single-length space, 26^L) [5]
//   --runs R          sweeps per count, best taken  [3]
//   --json            print the versioned recording on stdout
//   --out FILE        write the recording to FILE
//                     (see bench_record.h for the envelope)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_record.h"
#include "core/multi_sweep.h"
#include "hash/md5.h"
#include "keyspace/space.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks;

struct Row {
  std::size_t targets;
  double build_s;        // digest parse + dedup + index build
  double sweep_s;        // best-of-R full-space scan
  double keys_per_s;
  double vs_one;         // sweep_s relative to the 1-target sweep
  double gate_per_mkey;  // index gate hits per million candidates
  double fp_per_mkey;    // ...of which confirmed false positives
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::size_t max_targets = 1u << 20;
  unsigned len = 5;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(argv[i], "--max-targets") == 0) {
      max_targets = std::stoul(value());
    } else if (std::strcmp(argv[i], "--len") == 0) {
      len = static_cast<unsigned>(std::stoul(value()));
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::stoi(value());
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const keyspace::Charset charset = keyspace::Charset::lower();
  const u128 space = keyspace::space_size(charset.size(), len, len);
  const double space_d = space.to_double();

  std::vector<std::size_t> counts;
  for (const std::size_t n : {std::size_t(1), std::size_t(16),
                              std::size_t(256), std::size_t(4096),
                              std::size_t(65536), std::size_t(1) << 20,
                              std::size_t(1) << 22, std::size_t(10485760)}) {
    if (n <= max_targets) counts.push_back(n);
  }

  std::vector<Row> rows;
  for (const std::size_t n_targets : counts) {
    core::MultiCrackRequest request;
    request.algorithm = hash::Algorithm::kMd5;
    request.charset = charset;
    request.min_length = len;
    request.max_length = len;
    // Plant nothing findable (the keys are outside the charset), so
    // every sweep covers the full space and times compare like for
    // like — and every gate hit is by construction a false positive.
    request.target_hexes.reserve(n_targets);
    for (std::size_t i = 0; i < n_targets; ++i) {
      request.target_hexes.push_back(
          hash::Md5::digest("OUTSIDE_" + std::to_string(i)).to_hex());
    }

    Stopwatch build_timer;
    const core::MultiSweeper sweeper(std::move(request));
    sweeper.calibrate();
    const double build_s = build_timer.seconds();

    const core::SweepFilterStats before = sweeper.filter_stats();
    std::vector<core::SweepHit> hits;
    double best = 0;
    for (int run = 0; run < runs; ++run) {
      hits.clear();
      Stopwatch timer;
      sweeper.scan(sweeper.space_interval(), hits);
      const double t = timer.seconds();
      if (run == 0 || t < best) best = t;
    }
    const core::SweepFilterStats after = sweeper.filter_stats();
    const double scanned = space_d * runs;

    rows.push_back(
        {n_targets, build_s, best, space_d / best,
         rows.empty() ? 1.0 : best / rows.front().sweep_s,
         1e6 * static_cast<double>(after.gate_hits - before.gate_hits) /
             scanned,
         1e6 *
             static_cast<double>(after.false_positives -
                                 before.false_positives) /
             scanned});
    std::fprintf(stderr, "  swept %zu targets: %.3f s (build %.3f s)\n",
                 n_targets, best, build_s);
  }

  TablePrinter table;
  table.header({"targets", "build (s)", "sweep (s)", "MKey/s", "vs 1",
                "gate/Mkey", "fp/Mkey"});
  for (const auto& r : rows) {
    table.row({std::to_string(r.targets), TablePrinter::num(r.build_s, 3),
               TablePrinter::num(r.sweep_s, 3),
               TablePrinter::num(r.keys_per_s / 1e6, 1),
               TablePrinter::num(r.vs_one, 2) + "x",
               TablePrinter::num(r.gate_per_mkey, 1),
               TablePrinter::num(r.fp_per_mkey, 1)});
  }
  std::printf("== Multi-target sweep scaling (MD5, 26^%u = %.3g keys, "
              "full sweep, best of %d) ==\n\n%s\n",
              len, space_d, runs, table.str().c_str());
  std::printf(
      "The Bloom-gated TargetIndex keeps the per-candidate cost flat:\n"
      "one gate probe per candidate whatever the batch size, so even a\n"
      "million digests sweep in a small multiple of one digest's time —\n"
      "while separate cracks would scale linearly in the target count.\n"
      "The fp/Mkey column is the measured gate overhead: candidates\n"
      "that passed the filter but failed the sorted-slot confirm.\n");

  if (json || !out_path.empty()) {
    bench::Recording rec("multi_target");
    for (const auto& r : rows) {
      rec.begin_entry()
          .key("targets").value(static_cast<std::uint64_t>(r.targets))
          .key("space").value(space_d)
          .key("build_s").value(r.build_s)
          .key("sweep_s").value(r.sweep_s)
          .key("keys_per_s").value(r.keys_per_s)
          .key("vs_one").value(r.vs_one)
          .key("gate_per_mkey").value(r.gate_per_mkey)
          .key("fp_per_mkey").value(r.fp_per_mkey);
      rec.end_entry();
    }
    if (json) std::printf("%s", rec.render().c_str());
    if (!out_path.empty()) rec.write(out_path);
  }
  return 0;
}
