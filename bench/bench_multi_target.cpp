// Ablation: multi-target sweep cost versus target count. The
// per-candidate cost of the batch engine is one hash computation plus
// one 32-bit compare per outstanding digest, so sweeping N targets
// should cost barely more than sweeping one — while N separate cracks
// cost N full sweeps. This is what makes auditing sessions (Section I)
// tractable.

#include <cstdio>
#include <string>
#include <vector>

#include "core/multi_crack.h"
#include "hash/md5.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace gks;

  const keyspace::Charset charset = keyspace::Charset::lower();
  const unsigned min_len = 5, max_len = 5;

  gks::TablePrinter table;
  table.header({"targets", "sweep time (s)", "MKey/s", "vs 1 target"});

  double base_time = 0;
  for (const std::size_t n_targets : {1u, 4u, 16u, 64u}) {
    core::MultiCrackRequest request;
    request.algorithm = hash::Algorithm::kMd5;
    request.charset = charset;
    request.min_length = min_len;
    request.max_length = max_len;
    // Plant nothing findable: force a full sweep so times compare.
    for (std::size_t i = 0; i < n_targets; ++i) {
      request.target_hexes.push_back(
          hash::Md5::digest("OUTSIDE_" + std::to_string(i)).to_hex());
    }

    Stopwatch timer;
    const auto result = core::multi_crack(request, 0);
    const double elapsed = timer.seconds();
    if (n_targets == 1) base_time = elapsed;

    table.row({std::to_string(n_targets),
               gks::TablePrinter::num(elapsed, 2),
               gks::TablePrinter::num(
                   result.tested.to_double() / elapsed / 1e6, 1),
               gks::TablePrinter::num(elapsed / base_time, 2) + "x"});
  }

  std::printf("== Multi-target sweep scaling (MD5, 26^5 = 11.9M keys, "
              "full sweep) ==\n\n%s\n",
              table.str().c_str());
  std::printf(
      "One sweep against 64 digests costs a small multiple of one digest\n"
      "(the extra work is one compare per candidate per outstanding\n"
      "target), while 64 separate cracks would cost 64.00x. This is the\n"
      "batch engine auditing sessions use.\n");
  return 0;
}
