// Microbenchmark of the K_next << K_f claim (Sections III-A and IV):
// the incremental `next` operator of Figure 2 versus a full f(i)
// decode per candidate, across key lengths.

#include <benchmark/benchmark.h>

#include "hash/md5_crack.h"
#include "keyspace/codec.h"
#include "keyspace/space.h"

namespace {

using namespace gks::keyspace;

void BM_FullDecode(benchmark::State& state) {
  const KeyCodec codec(Charset::alphanumeric(), DigitOrder::kPrefixFastest);
  const unsigned length = static_cast<unsigned>(state.range(0));
  const gks::u128 base = first_id_of_length(62, length);
  gks::u128 id = base;
  std::string key;
  for (auto _ : state) {
    codec.decode_into(id, key);
    benchmark::DoNotOptimize(key.data());
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("f(i) per candidate, length " + std::to_string(length));
}
BENCHMARK(BM_FullDecode)->Arg(4)->Arg(8)->Arg(16);

void BM_NextOperator(benchmark::State& state) {
  const KeyCodec codec(Charset::alphanumeric(), DigitOrder::kPrefixFastest);
  const unsigned length = static_cast<unsigned>(state.range(0));
  std::string key = codec.decode(first_id_of_length(62, length));
  for (auto _ : state) {
    codec.next_inplace(key);
    benchmark::DoNotOptimize(key.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("next operator, length " + std::to_string(length));
}
BENCHMARK(BM_NextOperator)->Arg(4)->Arg(8)->Arg(16);

void BM_EncodeInverse(benchmark::State& state) {
  const KeyCodec codec(Charset::alphanumeric(), DigitOrder::kPrefixFastest);
  const std::string key(static_cast<std::size_t>(state.range(0)), 'Q');
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeInverse)->Arg(4)->Arg(8)->Arg(16);

void BM_Word0IteratorAdvance(benchmark::State& state) {
  // The word-level next operator the crack kernels actually run.
  const std::string cs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  gks::hash::PrefixWord0Iterator it({cs.data(), cs.size()}, 4, 8, false);
  for (auto _ : state) {
    it.advance();
    benchmark::DoNotOptimize(it.word0());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Word0IteratorAdvance);

}  // namespace
