// Observability overhead guard: the same single-target sweep timed
// with the telemetry registry enabled and disabled. Sweep counters are
// batched per scan() call (one Stopwatch, a handful of relaxed atomic
// adds) and gate counters piggyback on the existing stats path, so the
// two runs should be indistinguishable; this bench is the proof, and
// --check turns it into a regression gate.
//
// Options:
//   --len L      key length (single-length lower space, 26^L)   [5]
//   --runs R     scans per mode, best taken                      [5]
//   --check PCT  exit 1 when enabled is more than PCT percent
//                slower than disabled (0 disables the gate)      [0]
//   --json       print the versioned recording on stdout
//   --out FILE   write the recording to FILE

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_record.h"
#include "core/multi_sweep.h"
#include "hash/md5.h"
#include "keyspace/space.h"
#include "obs/metrics.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

using namespace gks;

/// Best-of-runs wall seconds for one full-space scan under the current
/// obs::enabled() setting. The sweeper is rebuilt per run so context
/// caches never carry between modes.
double sweep_s(unsigned len, int runs) {
  core::MultiCrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  // A digest no lower-case key hashes to: the scan always covers the
  // full space, so both modes do identical work.
  req.target_hexes = {hash::Md5::digest("0000").to_hex()};
  req.charset = keyspace::Charset::lower();
  req.min_length = len;
  req.max_length = len;

  double best = 0;
  for (int run = 0; run < runs; ++run) {
    core::MultiSweeper sweeper(req);
    sweeper.calibrate();  // outside the timed region, like the service
    const keyspace::Interval all(
        u128(0),
        keyspace::space_size(req.charset.size(), len, len));
    std::vector<core::SweepHit> hits;
    Stopwatch timer;
    sweeper.scan(all, hits, nullptr);
    const double s = timer.seconds();
    if (run == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  unsigned len = 5;
  int runs = 5;
  double check_pct = 0;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(argv[i], "--len") == 0) {
      len = static_cast<unsigned>(std::stoul(value()));
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::stoi(value());
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_pct = std::stod(value());
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const double space =
      keyspace::space_size(keyspace::Charset::lower().size(), len, len)
          .to_double();

  // Warm up once (kernel calibration, page faults) before either
  // timed mode, then interleave-independent best-of runs per mode.
  obs::set_enabled(false);
  sweep_s(len, 1);
  const double off = sweep_s(len, runs);
  obs::set_enabled(true);
  const double on = sweep_s(len, runs);

  const double overhead_pct = off > 0 ? (on - off) / off * 100.0 : 0;

  TablePrinter table;
  table.header({"telemetry", "sweep (s)", "MKey/s", "overhead"});
  table.row({"disabled", TablePrinter::num(off, 3),
             TablePrinter::num(space / off / 1e6, 1), "-"});
  table.row({"enabled", TablePrinter::num(on, 3),
             TablePrinter::num(space / on / 1e6, 1),
             TablePrinter::num(overhead_pct, 2) + "%"});
  std::printf("== Telemetry overhead (MD5, 26^%u = %.3g keys, best of "
              "%d) ==\n\n%s\n",
              len, space, runs, table.str().c_str());

  if (json || !out_path.empty()) {
    bench::Recording rec("obs");
    rec.begin_entry()
        .key("mode").value("disabled")
        .key("sweep_s").value(off)
        .key("keys_per_s").value(space / off)
        .key("overhead_pct").value(0.0);
    rec.end_entry();
    rec.begin_entry()
        .key("mode").value("enabled")
        .key("sweep_s").value(on)
        .key("keys_per_s").value(space / on)
        .key("overhead_pct").value(overhead_pct);
    rec.end_entry();
    if (json) std::printf("%s", rec.render().c_str());
    if (!out_path.empty()) rec.write(out_path);
  }

  if (check_pct > 0 && overhead_pct > check_pct) {
    std::fprintf(stderr,
                 "bench_obs: FAIL — telemetry overhead %.2f%% exceeds "
                 "%.2f%% budget\n",
                 overhead_pct, check_pct);
    return 1;
  }
  return 0;
}
