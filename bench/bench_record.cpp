#include "bench_record.h"

#include <stdio.h>

#include <ctime>
#include <fstream>

#include "support/error.h"

namespace gks::bench {

Recording::Recording(std::string bench_name) : name_(std::move(bench_name)) {}

json::Writer& Recording::begin_entry() {
  GKS_REQUIRE(!open_, "previous recording entry was not closed");
  entry_ = json::Writer();
  entry_.begin_object();
  open_ = true;
  return entry_;
}

void Recording::end_entry() {
  GKS_REQUIRE(open_, "no recording entry is open");
  entry_.end_object();
  entries_.push_back(entry_.str());
  open_ = false;
}

std::string Recording::render() const {
  GKS_REQUIRE(!open_, "cannot render with an entry still open");
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";
  out += "  \"bench\": \"" + json::escape(name_) + "\",\n";
  out += "  \"git_rev\": \"" + json::escape(git_rev()) + "\",\n";
  out += "  \"date\": \"" + json::escape(utc_now()) + "\",\n";
  out += "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "    " + entries_[i];
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void Recording::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  GKS_REQUIRE(out.is_open(), "cannot open recording for write: " + path);
  out << render();
  out.flush();
  GKS_REQUIRE(static_cast<bool>(out), "failed writing recording: " + path);
}

std::string Recording::git_rev() {
  FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string rev;
  if (fgets(buf, sizeof buf, pipe) != nullptr) rev = buf;
  const int status = pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return status == 0 && !rev.empty() ? rev : "unknown";
}

std::string Recording::utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm = {};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace gks::bench
