#pragma once

#include <string>
#include <vector>

#include "support/json.h"

namespace gks::bench {

/// Versioned machine-readable benchmark recording. Every JSON-emitting
/// bench writes the same envelope so CI can diff a fresh run's key
/// shape against a recording committed at the repo root:
///
///   {
///     "schema_version": 1,
///     "bench": "<name>",
///     "git_rev": "<short rev, or "unknown" outside a work tree>",
///     "date": "<UTC, YYYY-MM-DDTHH:MM:SSZ>",
///     "entries": [ {...}, {...} ]
///   }
///
/// Entries are bench-specific flat objects rendered one per line, so
/// committed recordings diff cleanly run to run.
class Recording {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit Recording(std::string bench_name);

  /// Opens the next entry object; fill it with key()/value() calls on
  /// the returned writer, then close it with end_entry().
  json::Writer& begin_entry();
  void end_entry();

  /// The full document, trailing newline included.
  std::string render() const;

  /// Renders to `path`, truncating any previous recording. Throws on
  /// I/O failure.
  void write(const std::string& path) const;

  /// `git rev-parse --short HEAD`, or "unknown" when git or the work
  /// tree is unavailable.
  static std::string git_rev();
  /// The current UTC time, ISO-8601 with a Z suffix.
  static std::string utc_now();

 private:
  std::string name_;
  std::vector<std::string> entries_;  ///< pre-rendered entry objects
  json::Writer entry_;
  bool open_ = false;
};

}  // namespace gks::bench
