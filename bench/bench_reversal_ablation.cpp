// Ablation: what each MD5 kernel optimization of Section V-B buys.
// Measured twice — in the SIMT simulator on every architecture, and
// for real on the host CPU (naive f(i)+full hash vs next+full hash vs
// the optimized reversal+early-exit engine). The paper quotes ~1.25x
// for the reversal trick "in almost all architectures".

#include <cstdio>

#include "baselines/naive.h"
#include "core/scan_engine.h"
#include "hash/md5.h"
#include "simgpu/kernel_profile.h"
#include "simgpu/lowering.h"
#include "simgpu/simt.h"
#include "support/table.h"

namespace {

using namespace gks;

double simulated_mkeys(const simgpu::DeviceSpec& dev,
                       simgpu::Md5KernelVariant variant, bool byte_perm) {
  simgpu::LoweringOptions opt{dev.cc};
  opt.use_byte_perm = byte_perm && dev.cc != simgpu::ComputeCapability::kCc1x;
  simgpu::KernelProfile profile;
  profile.per_candidate = lower(trace_md5(variant), opt);
  return simgpu::SimtSimulator::device_throughput(dev, profile) / 1e6;
}

}  // namespace

int main() {
  using simgpu::Md5KernelVariant;

  std::printf("== Simulated per-device speedups of the kernel "
              "optimizations (MD5) ==\n\n");
  gks::TablePrinter sim_table;
  sim_table.header({"device", "plain", "+reversal", "+early exit",
                    "+byte_perm", "total speedup"});
  for (const auto& dev : simgpu::paper_devices()) {
    const double plain =
        simulated_mkeys(dev, Md5KernelVariant::kPlainCompiled, false);
    const double reversed =
        simulated_mkeys(dev, Md5KernelVariant::kReversedNoEarlyExit, false);
    const double early =
        simulated_mkeys(dev, Md5KernelVariant::kReversed, false);
    const double prmt = simulated_mkeys(dev, Md5KernelVariant::kReversed,
                                        /*byte_perm=*/true);
    sim_table.row({dev.name, gks::TablePrinter::num(plain),
                   gks::TablePrinter::num(reversed),
                   gks::TablePrinter::num(early),
                   gks::TablePrinter::num(prmt),
                   gks::TablePrinter::num(prmt / plain, 2) + "x"});
  }
  std::printf("%s\n", sim_table.str().c_str());
  std::printf("Paper: the reversal alone is ~1.25x on almost all "
              "architectures; byte_perm only helps where shifts bind "
              "(Kepler).\n\n");

  // Real CPU measurement on a small space (6-char lower-case slice).
  std::printf("== Real host-CPU ablation (single thread) ==\n\n");
  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = keyspace::Charset::lower();
  request.min_length = 6;
  request.max_length = 6;
  request.target_hex = hash::Md5::digest("zzzzzz").to_hex();
  const keyspace::Interval slice(u128(0), u128(1u << 21));

  const auto naive = baselines::naive_scan(request, slice);
  const auto next_full = baselines::next_full_hash_scan(request, slice);
  const core::ScanPlan plan(request);
  const auto optimized = plan.scan(slice);

  const double naive_rate = slice.size().to_double() / naive.busy_virtual_s;
  const double next_rate =
      slice.size().to_double() / next_full.busy_virtual_s;
  const double opt_rate =
      slice.size().to_double() / optimized.busy_virtual_s;

  gks::TablePrinter cpu_table;
  cpu_table.header({"engine", "MKey/s", "speedup vs naive"});
  cpu_table.row({"naive: f(i) decode + full hash",
                 gks::TablePrinter::num(naive_rate / 1e6, 2), "1.00x"});
  cpu_table.row({"next operator + full hash",
                 gks::TablePrinter::num(next_rate / 1e6, 2),
                 gks::TablePrinter::num(next_rate / naive_rate, 2) + "x"});
  cpu_table.row({"reversal + early exit (ours)",
                 gks::TablePrinter::num(opt_rate / 1e6, 2),
                 gks::TablePrinter::num(opt_rate / naive_rate, 2) + "x"});
  std::printf("%s\n", cpu_table.str().c_str());
  return 0;
}
