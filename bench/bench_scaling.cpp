// Ablation: cluster scaling — efficiency as homogeneous nodes are
// added flat vs arranged in a deep chain, and the cost of a mid-search
// node failure. Exercises the pattern properties Section III claims
// (linear scaling; hierarchy aggregates like a single fat node) and
// the failure model of Section VII.

#include <cstdio>

#include "core/cluster.h"
#include "hash/md5.h"
#include "support/table.h"

namespace {

using namespace gks;

core::CrackRequest request_with(const std::string& planted) {
  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = keyspace::Charset::alphanumeric();
  request.min_length = 1;
  request.max_length = 8;
  request.target_hex = hash::Md5::digest(planted).to_hex();
  return request;
}

core::ClusterOptions options_with(const std::string& planted) {
  core::ClusterOptions options;
  options.time_scale = 5e-4;
  options.gpu_mode = core::SimGpuMode::kModel;
  options.planted_key = planted;
  options.agent.round_virtual_target_s = 25.0;
  return options;
}

core::ClusterNode flat_cluster(unsigned leaves) {
  core::ClusterNode root{"root", {core::ClusterDevice::gpu("660")}, {}, {}};
  for (unsigned i = 0; i < leaves; ++i) {
    root.children.push_back(core::ClusterNode{
        "leaf-" + std::to_string(i), {core::ClusterDevice::gpu("660")},
        {},
        {}});
  }
  return root;
}

core::ClusterNode chain_cluster(unsigned depth) {
  core::ClusterNode node{"chain-" + std::to_string(depth),
                         {core::ClusterDevice::gpu("660")},
                         {},
                         {}};
  for (unsigned i = depth; i > 0; --i) {
    core::ClusterNode parent{"chain-" + std::to_string(i - 1),
                             {core::ClusterDevice::gpu("660")},
                             {node},
                             {}};
    node = parent;
  }
  return node;
}

}  // namespace

int main() {
  // ~5% deep in the 62^8 space: long enough for steady state,
  // short enough that the whole sweep stays a few seconds per run.
  const std::string planted = "Mq3kQ9ad";

  std::printf("== Flat fan-out scaling (identical GTX 660 nodes) ==\n\n");
  gks::TablePrinter flat;
  flat.header({"nodes", "throughput (MKey/s)", "per-node (MKey/s)",
               "scaling efficiency"});
  double per_node_base = 0;
  for (const unsigned leaves : {0u, 1u, 3u, 7u}) {
    core::ClusterCracker cluster(flat_cluster(leaves),
                                 options_with(planted));
    const auto report = cluster.crack(request_with(planted));
    const unsigned nodes = leaves + 1;
    const double per_node = report.throughput / 1e6 / nodes;
    if (nodes == 1) per_node_base = per_node;
    flat.row({std::to_string(nodes),
              gks::TablePrinter::num(report.throughput / 1e6),
              gks::TablePrinter::num(per_node),
              gks::TablePrinter::num(per_node / per_node_base, 3)});
  }
  std::printf("%s\n", flat.str().c_str());

  std::printf("== Chain topology (each node dispatches to one child) ==\n\n");
  gks::TablePrinter chain;
  chain.header({"chain depth", "nodes", "throughput (MKey/s)",
                "scaling efficiency"});
  for (const unsigned depth : {0u, 1u, 3u}) {
    core::ClusterCracker cluster(chain_cluster(depth),
                                 options_with(planted));
    const auto report = cluster.crack(request_with(planted));
    const unsigned nodes = depth + 1;
    chain.row({std::to_string(depth), std::to_string(nodes),
               gks::TablePrinter::num(report.throughput / 1e6),
               gks::TablePrinter::num(
                   report.throughput / 1e6 / (per_node_base * nodes), 3)});
  }
  std::printf("%s\n", chain.str().c_str());

  std::printf("== Failure recovery cost (3 nodes, one dies mid-search) ==\n\n");
  auto failure_options = options_with(planted);
  failure_options.failures = {{"leaf-1", 40.0}};
  core::ClusterCracker cluster(flat_cluster(2), failure_options);
  const auto report = cluster.crack(request_with(planted));
  std::printf("failures detected : %u\n", report.failures_detected);
  std::printf("key recovered     : %s\n",
              report.found.empty() ? "NO" : report.found[0].value.c_str());
  std::printf("throughput        : %.1f MKey/s (3-node healthy reference "
              "above)\n",
              report.throughput / 1e6);
  std::printf("\nThe dead node's interval is requeued onto survivors and "
              "quotas are\nrecomputed (Section III dynamic "
              "reconfiguration); the search completes\nat roughly the "
              "2-node rate after the failure point.\n");
  return 0;
}
