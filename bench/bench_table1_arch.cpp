// Reproduces Table I — "Multiprocessor architecture": the compute
// capability database the simulator is built on.

#include <cstdio>

#include "simgpu/arch.h"
#include "support/table.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  // The paper's Table I covers 1.*, 2.0, 2.1 and 3.0; 3.5 is our
  // modeled extension (the paper could not obtain such a device).
  TablePrinter table;
  std::vector<std::string> header = {"Compute capability"};
  std::vector<std::string> cores = {"Cores per MP"};
  std::vector<std::string> groups = {"Groups of cores per MP"};
  std::vector<std::string> group_size = {"Group size"};
  std::vector<std::string> issue = {"Issue time (clock cycles)"};
  std::vector<std::string> schedulers = {"Warp schedulers"};
  std::vector<std::string> issue_mode = {"Issue mode"};

  for (const auto cc : all_capabilities()) {
    const MultiprocessorArch& a = arch_for(cc);
    header.push_back(cc_name(cc));
    cores.push_back(std::to_string(a.cores_per_mp));
    groups.push_back(std::to_string(a.core_groups));
    group_size.push_back(std::to_string(a.group_size));
    issue.push_back(std::to_string(a.issue_cycles));
    schedulers.push_back(std::to_string(a.warp_schedulers));
    issue_mode.push_back(a.dual_issue ? "dual-issue" : "single-issue");
  }

  table.header(header);
  table.row(cores);
  table.row(groups);
  table.row(group_size);
  table.row(issue);
  table.row(schedulers);
  table.row(issue_mode);

  std::printf("TABLE I. MULTIPROCESSOR ARCHITECTURE "
              "(paper columns 1.* / 2.0 / 2.1 / 3.0; 3.5 is our extension)\n\n%s\n",
              table.str().c_str());
  std::printf("Paper values: cores 8/32/48/192, groups 1/2/3/6, "
              "group size 8/16/16/32,\nissue time 4/2/2/1, schedulers "
              "1/2/2/4, single/single/dual/dual — matched exactly.\n");
  return 0;
}
