// Reproduces Table II — "Instruction throughput" (32-bit integer ops
// per clock per multiprocessor, per compute capability).

#include <cstdio>

#include "simgpu/arch.h"
#include "support/table.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  TablePrinter table;
  std::vector<std::string> header = {"Compute capability"};
  std::vector<std::string> add = {"32-bit integer ADD"};
  std::vector<std::string> lop = {"32-bit bitwise AND/OR/XOR"};
  std::vector<std::string> shift = {"32-bit integer shift"};
  std::vector<std::string> mad = {"32-bit integer MAD"};

  for (const auto cc : all_capabilities()) {
    const MultiprocessorArch& a = arch_for(cc);
    header.push_back(cc_name(cc));
    add.push_back(TablePrinter::num(a.peak_throughput(MachineOp::kIAdd)));
    lop.push_back(TablePrinter::num(a.peak_throughput(MachineOp::kLop)));
    shift.push_back(TablePrinter::num(a.peak_throughput(MachineOp::kShift)));
    mad.push_back(
        TablePrinter::num(a.peak_throughput(MachineOp::kMadShift)));
  }

  table.header(header);
  table.row(add);
  table.row(lop);
  table.row(shift);
  table.row(mad);

  std::printf("TABLE II. INSTRUCTION THROUGHPUT (ops/clock per MP)\n\n%s\n",
              table.str().c_str());
  std::printf("Paper values (1.*/2.0/2.1/3.0): ADD 10/32/48/160, "
              "AND-OR-XOR 8/32/48/160,\nshift 8/16/16/32, MAD 8/16/16/32 "
              "— matched exactly. ADD on cc 1.* includes the\n+2/clock "
              "SFU bonus that requires ILP (Section VI-B).\n");
  return 0;
}
