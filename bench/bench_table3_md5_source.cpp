// Reproduces Table III — "Instructions count (MD5)": the operations of
// one MD5 hash at the source level, counted by running the production
// kernel template over the tracing word type with folding disabled.

#include <cstdio>

#include "simgpu/kernel_profile.h"
#include "support/table.h"
#include "table_common.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;
  using benchcommon::count_src;

  const auto src = trace_md5(Md5KernelVariant::kSource, 4);

  // The paper's source counts treat the rotation as its CUDA source
  // expansion (x << n) + (x >> (32-n)): 2 shifts and 1 addition each.
  const std::size_t rotations =
      count_src(src, {SrcOp::kRotl, SrcOp::kRotr});
  const std::size_t adds = count_src(src, {SrcOp::kAdd}) + rotations;
  const std::size_t lops =
      count_src(src, {SrcOp::kAnd, SrcOp::kOr, SrcOp::kXor});
  const std::size_t nots = count_src(src, {SrcOp::kNot});
  const std::size_t shifts =
      count_src(src, {SrcOp::kShl, SrcOp::kShr}) + 2 * rotations;

  TablePrinter table;
  table.header({"", "ours (traced)", "paper"});
  table.row({"32-bit integer ADD", std::to_string(adds), "320"});
  table.row({"32-bit bitwise AND/OR/XOR", std::to_string(lops), "160"});
  table.row({"32-bit NOT", std::to_string(nots), "160"});
  table.row({"32-bit integer shift", std::to_string(shifts), "128"});

  std::printf("TABLE III. INSTRUCTIONS COUNT (MD5, source level)\n\n%s\n",
              table.str().c_str());
  std::printf(
      "ADD, AND/OR/XOR and shift match the paper exactly. Our direct count\n"
      "of RFC 1321 NOTs is 48 (16 each from rounds F, G and I); the paper\n"
      "prints 160 — see DESIGN.md deviations (NOTs are merged away during\n"
      "compilation either way, so nothing downstream depends on this row).\n");
  return 0;
}
