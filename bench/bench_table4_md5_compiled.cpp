// Reproduces Table IV — "Actual instruction count (MD5)": the plain
// 64-step length-4 kernel after constant folding and per-architecture
// rotation lowering (our stand-in for nvcc + cuobjdump -sass).

#include "simgpu/kernel_profile.h"
#include "table_common.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  const auto plain = trace_md5(Md5KernelVariant::kPlainCompiled, 4);
  const MachineMix cc1 = lower(plain, {ComputeCapability::kCc1x});
  const MachineMix cc2 = lower(plain, {ComputeCapability::kCc30});
  const MachineMix cc35 = lower(plain, {ComputeCapability::kCc35});

  benchcommon::print_machine_table(
      "TABLE IV. ACTUAL INSTRUCTION COUNT (MD5, plain compiled kernel)",
      {"1.*", "2.* and 3.0", "3.5 (extension)"}, {cc1, cc2, cc35},
      {"Paper (1.* | 2.*/3.0): IADD 284 | 220, AND/OR/XOR 156 | 155,",
       "SHR/SHL 128 | 64, IMAD/ISCADD 0 | 64.",
       "The shift/MAD columns and the 64-IADD delta between columns",
       "(the rotate adds absorbed by IMAD) reproduce exactly; IADD/LOP",
       "absolute values differ slightly because our constant folder is",
       "not nvcc's (see EXPERIMENTS.md)."});
  return 0;
}
