// Reproduces Table V — "Real instructions count (MD5)": the kernel
// after the 15-step reversal and the anticipated (early-exit) checks;
// the per-candidate common path is 46 steps.

#include "simgpu/kernel_profile.h"
#include "table_common.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  const MachineMix cc1 = lower(rev, {ComputeCapability::kCc1x});
  const MachineMix cc2 = lower(rev, {ComputeCapability::kCc30});

  benchcommon::print_machine_table(
      "TABLE V. REAL INSTRUCTIONS COUNT (MD5, reversal + early exit)",
      {"1.*", "2.* and 3.0"}, {cc1, cc2},
      {"Paper (1.* | 2.*/3.0): IADD 197 | 150, AND/OR/XOR 118 | 120,",
       "SHR/SHL 90 | 46, IMAD/ISCADD 0 | 46.",
       "Shift/MAD reproduce within one rotation (92 vs 90 on 1.*; 46/46",
       "exactly on 2.*); IADD/LOP track the paper through the same",
       "proportional reduction the reversal buys (~0.72x of Table IV)."});
  return 0;
}
