// Reproduces Table VI — "Real instructions count for the optimized
// kernel (MD5)": Table V plus __byte_perm (PRMT) for the byte-aligned
// rotations of MD5's third round, the final Kepler optimization.

#include "simgpu/kernel_profile.h"
#include "table_common.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  const MachineMix cc1 = lower(rev, {ComputeCapability::kCc1x});
  LoweringOptions prmt{ComputeCapability::kCc30};
  prmt.use_byte_perm = true;
  const MachineMix cc2 = lower(rev, prmt);
  LoweringOptions funnel{ComputeCapability::kCc35};
  funnel.use_byte_perm = true;
  const MachineMix cc35 = lower(rev, funnel);

  benchcommon::print_machine_table(
      "TABLE VI. REAL INSTRUCTIONS COUNT FOR THE OPTIMIZED KERNEL (MD5)",
      {"1.*", "2.* and 3.0", "3.5 (extension)"}, {cc1, cc2, cc35},
      {"Paper (1.* | 2.*/3.0): IADD 197 | 150, AND/OR/XOR 118 | 120,",
       "SHR/SHL 90 | 43, IMAD/ISCADD 0 | 43, PRMT 0 | 3.",
       "The PRMT count (3) and the 43/43 shift/MAD columns reproduce",
       "exactly. On 3.5 the funnel shift collapses every remaining",
       "rotation to one instruction — the paper's anticipated 4x",
       "rotation throughput."});
  return 0;
}
