// Reproduces Table VII — "GPU specifications table": the five
// evaluation devices.

#include <cstdio>

#include "simgpu/arch.h"
#include "support/table.h"

int main() {
  using namespace gks;
  using namespace gks::simgpu;

  TablePrinter table;
  std::vector<std::string> header = {""};
  std::vector<std::string> mps = {"Multiprocessors"};
  std::vector<std::string> cores = {"Cores"};
  std::vector<std::string> clock = {"Clock (MHz)"};
  std::vector<std::string> cc = {"Compute capability"};

  for (const auto& d : paper_devices()) {
    header.push_back(d.name);
    mps.push_back(std::to_string(d.mp_count));
    cores.push_back(std::to_string(d.cores));
    clock.push_back(TablePrinter::num(d.clock_mhz));
    cc.push_back(cc_name(d.cc));
  }
  table.header(header);
  table.row(mps);
  table.row(cores);
  table.row(clock);
  table.row(cc);

  std::printf("TABLE VII. GPU SPECIFICATIONS TABLE\n\n%s\n",
              table.str().c_str());
  std::printf("Paper values (8600M/8800/540M/550Ti/660): MPs 4/16/2/4/5,\n"
              "cores 32/128/96/192/960, clock 950/1625/1344/1800/1033,\n"
              "cc 1.1/1.1/2.1/2.1/3.0 — matched exactly (cc 1.1 modeled\n"
              "as the 1.* family).\n");
  return 0;
}
