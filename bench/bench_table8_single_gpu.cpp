// Reproduces Table VIII — "Throughput on single GPU": theoretical
// (analytic model), our approach (cycle-level SIMT simulation of the
// optimized kernel), and the BarsWF / Cryptohaze baseline models, for
// MD5 and SHA1 on all five Table VII devices.

#include <cstdio>

#include "baselines/profiles.h"
#include "core/gpu_backend.h"
#include "simgpu/model.h"
#include "simgpu/simt.h"
#include "support/table.h"

namespace {

using namespace gks;
using baselines::Tool;

double simulate(Tool tool, hash::Algorithm alg,
                const simgpu::DeviceSpec& dev) {
  return simgpu::SimtSimulator::device_throughput(
             dev, baselines::tool_profile(tool, alg, dev.cc)) /
         1e6;
}

double theoretical(hash::Algorithm alg, const simgpu::DeviceSpec& dev) {
  const auto profile = core::our_kernel_profile(alg, dev.cc);
  return simgpu::ThroughputModel::theoretical_mkeys(dev,
                                                    profile.per_candidate);
}

void row(TablePrinter& table, const std::string& label,
         const std::vector<double>& values) {
  std::vector<std::string> cells = {label};
  for (double v : values) cells.push_back(TablePrinter::num(v));
  table.row(cells);
}

}  // namespace

int main() {
  const auto& devices = simgpu::paper_devices();

  TablePrinter table;
  table.header({"", "8600M", "8800", "540M", "550ti", "660"});

  std::vector<double> md5_theory, md5_ours, md5_barswf, md5_crypto;
  std::vector<double> sha1_theory, sha1_ours, sha1_crypto;
  for (const auto& dev : devices) {
    md5_theory.push_back(theoretical(hash::Algorithm::kMd5, dev));
    md5_ours.push_back(simulate(Tool::kOurs, hash::Algorithm::kMd5, dev));
    md5_barswf.push_back(
        simulate(Tool::kBarsWf, hash::Algorithm::kMd5, dev));
    md5_crypto.push_back(
        simulate(Tool::kCryptohaze, hash::Algorithm::kMd5, dev));
    sha1_theory.push_back(theoretical(hash::Algorithm::kSha1, dev));
    sha1_ours.push_back(simulate(Tool::kOurs, hash::Algorithm::kSha1, dev));
    sha1_crypto.push_back(
        simulate(Tool::kCryptohaze, hash::Algorithm::kSha1, dev));
  }

  row(table, "MD5 (theoretical, MKey/s)", md5_theory);
  row(table, "MD5 (our approach, MKey/s)", md5_ours);
  row(table, "MD5 (BarsWF model, MKey/s)", md5_barswf);
  row(table, "MD5 (Cryptohaze model, MKey/s)", md5_crypto);
  row(table, "SHA1 (theoretical, MKey/s)", sha1_theory);
  row(table, "SHA1 (our approach, MKey/s)", sha1_ours);
  row(table, "SHA1 (Cryptohaze model, MKey/s)", sha1_crypto);

  std::printf("TABLE VIII. THROUGHPUT ON SINGLE GPU (simulated; search "
              "space: <= 8 alphanumeric chars)\n\n%s\n",
              table.str().c_str());
  std::printf(
      "Paper values for comparison:\n"
      "  MD5  theoretical 83 / 568 / 359.4 / 962.7 / 1851\n"
      "  MD5  ours        71 / 480 / 214   / 654   / 1841\n"
      "  MD5  BarsWF      71 / 490 / 205   / 560   / 1340\n"
      "  MD5  Cryptohaze  49.4 / 316 / 146 / 410   / 1280\n"
      "  SHA1 theoretical 25 / 170 / 128   / 345   / 390\n"
      "  SHA1 ours        22 / 137 / 92    / 310   / 390\n"
      "  SHA1 Cryptohaze  20.8 / 132 / 68  / 185   / 377\n"
      "Shape checks: device ranking, ours >= baselines, Fermi ~2/3 of\n"
      "theoretical without ILP, Kepler ~99%% — all reproduced; absolute\n"
      "values are our simulator's (EXPERIMENTS.md).\n"
      "Note: our Fermi kernels interleave two candidates (ILP=2), so the\n"
      "540M/550Ti 'ours' rows sit above the paper's ILP=1 measurements.\n");
  return 0;
}
