// Reproduces Table IX — "Throughput on whole network": the full
// Section VI-A cluster (A -> {B, C}, C -> D) cracking MD5 and SHA1
// with tuning, throughput-proportional balancing and hierarchical
// dispatch over simulated links.

#include <cstdio>

#include "core/cluster.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "support/table.h"

namespace {

using namespace gks;

struct NetworkRun {
  double theoretical_mkeys;
  double achieved_mkeys;
  double efficiency;
  double device_sum_mkeys;
};

NetworkRun run(hash::Algorithm algorithm) {
  // Plant a key deep in the space so the network reaches steady state.
  const std::string planted = "Mq3kQ9ad";

  core::CrackRequest request;
  request.algorithm = algorithm;
  request.charset = keyspace::Charset::alphanumeric();
  request.min_length = 1;
  request.max_length = 8;
  request.target_hex = algorithm == hash::Algorithm::kMd5
                           ? hash::Md5::digest(planted).to_hex()
                           : hash::Sha1::digest(planted).to_hex();

  core::ClusterOptions options;
  options.time_scale = 1e-3;
  options.gpu_mode = core::SimGpuMode::kModel;
  options.planted_key = planted;
  options.agent.round_virtual_target_s = 30.0;

  core::ClusterCracker cluster(core::ClusterCracker::paper_topology(),
                               options);
  const dispatch::SearchReport report = cluster.crack(request);

  NetworkRun out;
  out.theoretical_mkeys = report.theoretical_sum / 1e6;
  out.achieved_mkeys = report.throughput / 1e6;
  out.efficiency = report.efficiency;
  out.device_sum_mkeys = 0;
  for (const auto& m : report.members) {
    out.device_sum_mkeys += m.throughput / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  const NetworkRun md5 = run(hash::Algorithm::kMd5);
  const NetworkRun sha1 = run(hash::Algorithm::kSha1);

  gks::TablePrinter table;
  table.header({"", "theoretical (MKey/s)", "our approach (MKey/s)",
                "efficiency"});
  table.row({"MD5", gks::TablePrinter::num(md5.theoretical_mkeys),
             gks::TablePrinter::num(md5.achieved_mkeys),
             gks::TablePrinter::num(md5.efficiency, 3)});
  table.row({"SHA1", gks::TablePrinter::num(sha1.theoretical_mkeys),
             gks::TablePrinter::num(sha1.achieved_mkeys),
             gks::TablePrinter::num(sha1.efficiency, 3)});

  std::printf("TABLE IX. THROUGHPUT ON WHOLE NETWORK (simulated cluster: "
              "A[540M] -> B[660+550Ti], C[8600M] -> D[8800])\n\n%s\n",
              table.str().c_str());
  std::printf(
      "Paper values: MD5 3824.1 / 3258.4 / 0.852; SHA1 1058 / 950.1 / 0.898.\n"
      "Dispatch efficiency (achieved / sum of tuned device throughputs):\n"
      "  MD5  %.3f   SHA1 %.3f\n"
      "The paper's headline — network throughput ~= the sum of the single\n"
      "devices (near-perfect coarse-grain parallelism) — reproduces. Our\n"
      "absolute efficiency vs theoretical lands higher than 0.852/0.898\n"
      "because the simulated devices sit closer to their own analytic\n"
      "bound than the real GPUs did (EXPERIMENTS.md).\n",
      md5.achieved_mkeys / md5.device_sum_mkeys,
      sha1.achieved_mkeys / sha1.device_sum_mkeys);
  return 0;
}
