#pragma once

// Shared helpers for the instruction-count table benches (III..VI).

#include <cstdio>
#include <string>
#include <vector>

#include "simgpu/isa.h"
#include "simgpu/lowering.h"
#include "support/table.h"

namespace gks::benchcommon {

inline std::size_t count_src(const std::vector<simgpu::SrcInstr>& stream,
                             std::initializer_list<simgpu::SrcOp> ops) {
  std::size_t n = 0;
  for (const auto& i : stream) {
    for (const auto op : ops) {
      if (i.op == op) ++n;
    }
  }
  return n;
}

/// Prints a Table IV/V/VI-shaped comparison: one column per lowering,
/// one row per machine class, with the paper's numbers alongside.
inline void print_machine_table(
    const char* title, const std::vector<std::string>& column_names,
    const std::vector<simgpu::MachineMix>& columns,
    const std::vector<std::string>& paper_note) {
  TablePrinter table;
  std::vector<std::string> header = {""};
  for (const auto& c : column_names) header.push_back(c);
  table.header(header);

  using simgpu::MachineOp;
  for (const auto op :
       {MachineOp::kIAdd, MachineOp::kLop, MachineOp::kShift,
        MachineOp::kMadShift, MachineOp::kPrmt, MachineOp::kFunnel}) {
    bool any = false;
    for (const auto& mix : columns) {
      if (mix[op] != 0) any = true;
    }
    if (!any) continue;
    std::vector<std::string> row = {simgpu::machine_op_name(op)};
    for (const auto& mix : columns) row.push_back(std::to_string(mix[op]));
    table.row(row);
  }
  std::vector<std::string> totals = {"total"};
  for (const auto& mix : columns) totals.push_back(std::to_string(mix.total()));
  table.row(totals);

  std::printf("%s\n\n%s\n", title, table.str().c_str());
  for (const auto& line : paper_note) std::printf("%s\n", line.c_str());
  std::printf("\n");
}

}  // namespace gks::benchcommon
