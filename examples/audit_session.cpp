// Password auditing session (paper Section I: "it is a standard
// procedure to make periodic cracking tests, called auditing sessions,
// to assess the reliability of the employees' passwords").
//
// Builds a small credential store — salted and unsalted MD5/SHA1 —
// then runs the brute-force audit policy against it and prints who
// would survive.

#include <cstdio>
#include <vector>

#include "core/audit.h"
#include "support/table.h"

int main() {
  using namespace gks;
  using core::AuditEntry;
  using core::make_entry;

  // What the IT department's database holds. Salts are per-user and
  // stored next to the hash, as usual.
  const std::vector<AuditEntry> store = {
      make_entry("alice", hash::Algorithm::kMd5, "abc", {}),
      make_entry("bob", hash::Algorithm::kSha1, "dog", {}),
      make_entry("carol", hash::Algorithm::kMd5, "zzzz",
                 {hash::SaltPosition::kSuffix, "c4r0l-salt"}),
      make_entry("dave", hash::Algorithm::kSha1, "ba",
                 {hash::SaltPosition::kPrefix, "dv#"}),
      // Outside the audit policy's reach (upper case + symbol):
      make_entry("erin", hash::Algorithm::kMd5, "Tr0ub4dor&3", {}),
  };

  core::AuditPolicy policy;
  policy.charset = keyspace::Charset::lower();
  policy.min_length = 1;
  policy.max_length = 4;

  std::printf("auditing %zu credentials against lengths %u..%u over %zu "
              "characters...\n\n",
              store.size(), policy.min_length, policy.max_length,
              policy.charset.size());

  const auto verdicts = core::run_audit(store, policy);

  TablePrinter table;
  table.header({"user", "verdict", "recovered", "keys tested", "seconds"});
  int cracked = 0;
  for (const auto& v : verdicts) {
    if (v.cracked) ++cracked;
    table.row({v.user, v.cracked ? "CRACKED" : "resistant",
               v.cracked ? v.recovered_key : "-", v.tested.to_string(),
               TablePrinter::num(v.elapsed_s, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("%d of %zu credentials cracked — schedule password resets.\n",
              cracked, verdicts.size());
  return 0;
}
