// Bitcoin-style nonce search (paper Section I): find a 32-bit nonce
// such that SHA256d(block header) has a given number of leading zero
// bits. Demonstrates the same exhaustive-search pattern on a different
// f/C pair, with the midstate optimization ("the intermediate result
// of the hashing algorithm may be saved and reused").
//
//   ./bitcoin_nonce [target-zero-bits] [header-seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/nonce_search.h"
#include "support/hex.h"

int main(int argc, char** argv) {
  using namespace gks;

  const unsigned target_bits =
      argc >= 2 ? static_cast<unsigned>(std::atoi(argv[1])) : 20;
  const std::uint64_t seed =
      argc >= 3 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2014;

  const core::BlockHeader header = core::BlockHeader::sample(seed);
  std::printf("block header (seed %llu), difficulty: %u leading zero bits\n",
              static_cast<unsigned long long>(seed), target_bits);
  std::printf("expected work: ~%.0f double-SHA256 evaluations\n",
              std::pow(2.0, target_bits));

  const core::MiningResult result =
      core::mine_nonce(header, target_bits, 0, 1ull << 32);

  if (!result.nonce.has_value()) {
    std::printf("no nonce in the 32-bit range satisfies the target "
                "(the network would bump extraNonce and retry)\n");
    return 1;
  }

  core::BlockHeader solved = header;
  solved.set_nonce(*result.nonce);
  const auto pow = core::block_pow_hash(solved);
  std::printf("nonce      : %u\n", *result.nonce);
  std::printf("pow hash   : %s\n", pow.to_hex().c_str());
  std::printf("zero bits  : %u\n", core::leading_zero_bits(pow));
  std::printf("tested     : %llu nonces in %.2f s (%.2f MHash/s)\n",
              static_cast<unsigned long long>(result.tested),
              result.elapsed_s,
              result.tested / result.elapsed_s / 1e6);
  return 0;
}
