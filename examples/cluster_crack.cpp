// Distributed crack on the paper's GPU network (Section VI-A): node A
// (GT 540M) dispatches to node B (GTX 660 + GTX 550 Ti) and node C
// (8600M GT), which dispatches to node D (8800 GTS 512). The GPUs are
// simulated (DESIGN.md §1); the dispatch pattern, tuning, balancing
// and message passing are real.
//
//   ./cluster_crack [password-to-plant]

#include <cstdio>
#include <string>

#include "core/cluster.h"
#include "hash/md5.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace gks;

  const std::string planted = argc >= 2 ? argv[1] : "s3crXy9";
  const keyspace::Charset charset = keyspace::Charset::alphanumeric();
  if (!charset.contains_all(planted) || planted.size() > 8 ||
      planted.empty()) {
    std::printf("password must be 1..8 alphanumeric characters\n");
    return 1;
  }

  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest(planted).to_hex();
  request.charset = charset;
  request.min_length = 1;
  request.max_length = 8;

  std::printf("target MD5: %s\n", request.target_hex.c_str());
  std::printf("key space : %s candidates\n",
              request.space_size().to_string().c_str());

  core::ClusterOptions options;
  options.time_scale = 2e-3;  // 1 virtual second = 2 ms wall time
  options.gpu_mode = core::SimGpuMode::kModel;
  options.planted_key = planted;

  core::ClusterCracker cluster(core::ClusterCracker::paper_topology(),
                               options);
  const dispatch::SearchReport report = cluster.crack(request);

  if (!report.found.empty()) {
    std::printf("\nFOUND: \"%s\" (id %s)\n", report.found[0].value.c_str(),
                report.found[0].id.to_string().c_str());
  } else {
    std::printf("\nnot found\n");
  }

  TablePrinter table;
  table.header({"member", "tuned X_j (MKey/s)", "tested", "busy (s)"});
  for (const auto& m : report.members) {
    table.row({m.name, TablePrinter::num(m.throughput / 1e6),
               m.tested.to_string(), TablePrinter::num(m.busy_virtual_s)});
  }
  std::printf("\n%s\n", table.str().c_str());

  std::printf("tested      : %s keys in %.1f virtual s\n",
              report.tested.to_string().c_str(), report.elapsed_virtual_s);
  std::printf("throughput  : %.1f MKey/s (theoretical sum %.1f MKey/s)\n",
              report.throughput / 1e6, report.theoretical_sum / 1e6);
  std::printf("efficiency  : %.3f over %lu dispatch rounds\n",
              report.efficiency, static_cast<unsigned long>(report.rounds));
  return report.found.empty() ? 1 : 0;
}
