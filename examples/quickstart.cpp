// Quickstart: crack an MD5 password hash on the local CPU.
//
//   ./quickstart [md5-hex] [charset] [max-length]
//
// Without arguments it hashes a demo password first, then recovers it —
// the round trip a downstream user tries first.

#include <cstdio>
#include <string>

#include "core/cracker.h"
#include "hash/md5.h"
#include "keyspace/charset.h"

int main(int argc, char** argv) {
  using namespace gks;

  std::string target_hex;
  std::string charset_chars = "abcdefghijklmnopqrstuvwxyz";
  unsigned max_length = 5;

  if (argc >= 2) {
    target_hex = argv[1];
    if (argc >= 3) charset_chars = argv[2];
    if (argc >= 4) max_length = static_cast<unsigned>(std::stoul(argv[3]));
  } else {
    const std::string demo = "crack";
    target_hex = hash::Md5::digest(demo).to_hex();
    std::printf("No hash given; demo password \"%s\" -> %s\n", demo.c_str(),
                target_hex.c_str());
  }

  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = target_hex;
  request.charset = keyspace::Charset(charset_chars);
  request.min_length = 1;
  request.max_length = max_length;

  std::printf("Searching %s candidates (charset %zu, lengths 1..%u)...\n",
              request.space_size().to_string().c_str(),
              request.charset.size(), max_length);

  const core::LocalCracker cracker;  // all hardware threads
  const core::CrackResult result = cracker.crack(request);

  if (result.found) {
    std::printf("FOUND: \"%s\"\n", result.key.c_str());
  } else {
    std::printf("not found in this key space\n");
  }
  std::printf("tested %s keys in %.2f s (%.1f Mkeys/s)\n",
              result.tested.to_string().c_str(), result.elapsed_s,
              result.throughput / 1e6);
  return result.found ? 0 : 1;
}
