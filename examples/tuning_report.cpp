// Shows the Section III machinery by itself: tune every simulated GPU
// of Table VII for MD5 and SHA1 cracking, then print the balanced
// work quotas N_j a dispatcher owning all five devices would assign.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/gpu_backend.h"
#include "dispatch/balancer.h"
#include "dispatch/perf_model.h"
#include "dispatch/tuner.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "support/table.h"

int main() {
  using namespace gks;

  for (const auto algorithm :
       {hash::Algorithm::kMd5, hash::Algorithm::kSha1}) {
    core::CrackRequest request;
    request.algorithm = algorithm;
    request.target_hex =
        algorithm == hash::Algorithm::kMd5
            ? hash::Md5::digest("unusedXX").to_hex()
            : hash::Sha1::digest("unusedXX").to_hex();
    request.charset = keyspace::Charset::alphanumeric();
    request.min_length = 1;
    request.max_length = 8;

    std::vector<std::unique_ptr<core::SimGpuSearcher>> devices;
    std::vector<dispatch::Capability> capabilities;
    const keyspace::Interval scratch(u128(0), u128(1u << 26));
    for (const auto& spec : simgpu::paper_devices()) {
      devices.push_back(std::make_unique<core::SimGpuSearcher>(
          request, simgpu::SimulatedGpu(spec),
          core::our_kernel_profile(algorithm, spec.cc),
          core::SimGpuMode::kModel));
      capabilities.push_back(dispatch::tune_searcher(*devices.back(),
                                                     scratch));
    }

    const auto quotas = dispatch::balance_quotas(capabilities);
    const auto subtree = dispatch::aggregate_capability(capabilities);

    TablePrinter table;
    table.header({"device", "X_j (MKey/s)", "n_j (min batch)",
                  "N_j (balanced quota)", "N_j / X_j (s)"});
    for (std::size_t j = 0; j < devices.size(); ++j) {
      table.row({devices[j]->gpu().spec().name,
                 TablePrinter::num(capabilities[j].throughput / 1e6),
                 capabilities[j].min_batch.to_string(),
                 quotas[j].to_string(),
                 TablePrinter::num(quotas[j].to_double() /
                                       capabilities[j].throughput,
                                   3)});
    }
    std::printf("== %s tuning over the Table VII devices ==\n%s",
                hash::algorithm_name(algorithm), table.str().c_str());
    std::printf("subtree capability: X = %.1f MKey/s, N_node = %s\n\n",
                subtree.throughput / 1e6, subtree.min_batch.to_string().c_str());
  }
  std::printf("Every member's N_j/X_j column is (near) equal: balanced "
              "members exhaust their quotas simultaneously (Section III).\n\n");

  // The paper's alternative to live tuning: an offline performance
  // model. Calibrate one for the fastest device and show the
  // closed-form minimum batch for several efficiency targets.
  core::CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest("unusedXX").to_hex();
  request.charset = keyspace::Charset::alphanumeric();
  request.min_length = 1;
  request.max_length = 8;
  const auto& spec = simgpu::device_by_name("660");
  core::SimGpuSearcher device(request, simgpu::SimulatedGpu(spec),
                              core::our_kernel_profile(
                                  hash::Algorithm::kMd5, spec.cc),
                              core::SimGpuMode::kModel);
  const auto model = dispatch::PerfModel::calibrate(
      device, keyspace::Interval(u128(0), u128(1u << 30)));
  std::printf("== Offline performance model (GTX 660, MD5) ==\n");
  std::printf("calibrated: %s  (serialize/parse round-trips for offline "
              "storage)\n",
              model.serialize().c_str());
  TablePrinter eff;
  eff.header({"target efficiency", "n_min (closed form)",
              "predicted eff at n_min"});
  for (const double target : {0.5, 0.9, 0.99}) {
    const u128 n = model.min_batch_for(target);
    eff.row({TablePrinter::num(target, 2), n.to_string(),
             TablePrinter::num(model.predicted_efficiency(n), 4)});
  }
  std::printf("%s", eff.str().c_str());
  std::printf("With the model stored offline, the dispatcher can skip the "
              "live tuning pass entirely (Section III).\n");
  return 0;
}
