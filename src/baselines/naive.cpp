#include "baselines/naive.h"

#include <algorithm>

#include "keyspace/space.h"
#include "support/stopwatch.h"

namespace gks::baselines {
namespace {

dispatch::ScanOutcome scan_with(const core::CrackRequest& request,
                                const keyspace::Interval& interval,
                                bool incremental_next) {
  request.validate();
  Stopwatch timer;
  dispatch::ScanOutcome out;

  const keyspace::KeyCodec codec(request.charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const u128 offset = keyspace::first_id_of_length(request.charset.size(),
                                                   request.min_length);

  std::string key;
  if (incremental_next && interval.begin < interval.end) {
    codec.decode_into(interval.begin + offset, key);
  }
  for (u128 id = interval.begin; id < interval.end; ++id) {
    if (!incremental_next) {
      codec.decode_into(id + offset, key);  // full f(i) per candidate
    }
    if (request.matches(key)) {
      out.found.push_back({id, key});
    }
    if (incremental_next) codec.next_inplace(key);
  }
  out.tested = interval.size();
  out.busy_virtual_s = std::max(timer.seconds(), 1e-9);
  return out;
}

}  // namespace

dispatch::ScanOutcome naive_scan(const core::CrackRequest& request,
                                 const keyspace::Interval& interval) {
  return scan_with(request, interval, /*incremental_next=*/false);
}

dispatch::ScanOutcome next_full_hash_scan(const core::CrackRequest& request,
                                          const keyspace::Interval& interval) {
  return scan_with(request, interval, /*incremental_next=*/true);
}

}  // namespace gks::baselines
