#pragma once

#include "core/crack_request.h"
#include "dispatch/search.h"
#include "keyspace/interval.h"

namespace gks::baselines {

/// Textbook CPU brute force, for the reversal/next-operator ablations:
/// every candidate is materialized with a full f(i) decode (no `next`
/// operator) and hashed with the full 64/80-step reference function
/// (no reversal, no early exit). Same results as the optimized engine,
/// strictly more work per candidate.
dispatch::ScanOutcome naive_scan(const core::CrackRequest& request,
                                 const keyspace::Interval& interval);

/// Middle ablation: incremental `next` candidate generation (Figure 2)
/// but still the full reference hash per candidate. Isolates the
/// reversal+early-exit gain from the generation gain.
dispatch::ScanOutcome next_full_hash_scan(const core::CrackRequest& request,
                                          const keyspace::Interval& interval);

}  // namespace gks::baselines
