#include "baselines/profiles.h"

#include "core/gpu_backend.h"
#include "simgpu/lowering.h"
#include "support/error.h"

namespace gks::baselines {

const char* tool_name(Tool tool) {
  switch (tool) {
    case Tool::kOurs: return "our approach";
    case Tool::kBarsWf: return "BarsWF";
    case Tool::kCryptohaze: return "Cryptohaze";
    case Tool::kNaive: return "naive";
  }
  return "?";
}

simgpu::KernelProfile tool_profile(Tool tool, hash::Algorithm algorithm,
                                   simgpu::ComputeCapability cc) {
  using simgpu::ComputeCapability;
  using simgpu::LoweringOptions;

  if (tool == Tool::kOurs) {
    return core::our_kernel_profile(algorithm, cc);
  }

  LoweringOptions opt;
  opt.cc = cc;
  simgpu::KernelProfile profile;

  switch (tool) {
    case Tool::kBarsWf: {
      GKS_REQUIRE(algorithm == hash::Algorithm::kMd5,
                  "BarsWF is an MD5-only cracker");
      // Reversal yes, early exit no, byte_perm no; its pre-Kepler code
      // generation expands rotations the cc 1.x way when run on 3.0.
      opt.legacy_rotate = cc == ComputeCapability::kCc30 ||
                          cc == ComputeCapability::kCc35;
      profile.per_candidate = lower(
          trace_md5(simgpu::Md5KernelVariant::kReversedNoEarlyExit), opt);
      // Hand-written SASS on the 1.x devices it was built for; on newer
      // families its candidate generation and lookup bookkeeping cost
      // noticeably more per key.
      profile.overhead_fraction =
          cc == ComputeCapability::kCc1x ? 0.0 : 0.10;
      profile.ilp = cc == ComputeCapability::kCc1x ? 2 : 1;
      break;
    }
    case Tool::kCryptohaze: {
      // Generic multi-hash framework: full kernel per candidate plus
      // framework overhead (charset tables in memory, per-candidate
      // index arithmetic).
      if (algorithm == hash::Algorithm::kMd5) {
        profile.per_candidate =
            lower(trace_md5(simgpu::Md5KernelVariant::kPlainCompiled), opt);
      } else {
        profile.per_candidate = lower(
            trace_sha1(simgpu::Sha1KernelVariant::kPlainCompiled), opt);
      }
      profile.overhead_fraction = 0.12;
      profile.ilp = 1;
      break;
    }
    case Tool::kNaive: {
      // Full hash plus an f(i) conversion whose cost we charge as
      // overhead proportional to the hash itself (≈ 30% for short
      // keys; Section IV notes f(i) "can become dominant" for longer
      // ones).
      if (algorithm == hash::Algorithm::kMd5) {
        profile.per_candidate =
            lower(trace_md5(simgpu::Md5KernelVariant::kPlainCompiled), opt);
      } else {
        profile.per_candidate = lower(
            trace_sha1(simgpu::Sha1KernelVariant::kPlainCompiled), opt);
      }
      profile.overhead_fraction = 0.30;
      profile.ilp = 1;
      break;
    }
    case Tool::kOurs:
      break;  // handled above
  }
  return profile;
}

}  // namespace gks::baselines
