#pragma once

#include "hash/digest.h"
#include "simgpu/arch.h"
#include "simgpu/kernel_profile.h"

namespace gks::baselines {

/// The brute-force tools Table VIII compares against. The closed
/// binaries are modeled by what is known about their kernels (DESIGN.md
/// §1): each model is our traced kernel with that tool's documented
/// algorithmic deltas applied, run through the same SIMT simulator.
enum class Tool {
  /// This library's optimized kernel (reversal + early exit +
  /// byte_perm + Fermi interleaving) — the "our approach" row.
  kOurs,
  /// BarsWF: originated the 15-step reversal but has no early-exit
  /// anticipated checks; hand-tuned for cc 1.x devices, while its
  /// pre-Kepler code generation rotates via SHL+SHR+ADD on cc 3.0 and
  /// never uses __byte_perm.
  kBarsWf,
  /// Cryptohaze Multiforcer: a generic multi-algorithm framework — no
  /// reversal (all 64/80 steps plus feed-forward per candidate) and
  /// per-candidate generation/bookkeeping overhead.
  kCryptohaze,
  /// Textbook brute force: full hash plus the f(i) conversion for
  /// every candidate (no `next` operator). The ablation floor.
  kNaive,
};

const char* tool_name(Tool tool);

/// Kernel profile of `tool` cracking `algorithm` on a device of the
/// given compute capability.
simgpu::KernelProfile tool_profile(Tool tool, hash::Algorithm algorithm,
                                   simgpu::ComputeCapability cc);

}  // namespace gks::baselines
