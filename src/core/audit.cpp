#include "core/audit.h"

#include "hash/md5.h"
#include "hash/sha1.h"
#include "support/error.h"

namespace gks::core {

std::vector<AuditVerdict> run_audit(const std::vector<AuditEntry>& entries,
                                    const AuditPolicy& policy) {
  std::vector<AuditVerdict> verdicts;
  verdicts.reserve(entries.size());
  const LocalCracker cracker(policy.threads);

  for (const AuditEntry& entry : entries) {
    CrackRequest request;
    request.algorithm = entry.algorithm;
    request.target_hex = entry.digest_hex;
    request.charset = policy.charset;
    request.min_length = policy.min_length;
    request.max_length = policy.max_length;
    request.salt = entry.salt;

    const CrackResult result = cracker.crack(request);

    AuditVerdict verdict;
    verdict.user = entry.user;
    verdict.cracked = result.found;
    verdict.recovered_key = result.key;
    verdict.tested = result.tested;
    verdict.elapsed_s = result.elapsed_s;
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

AuditEntry make_entry(std::string user, hash::Algorithm algorithm,
                      const std::string& plaintext, hash::SaltSpec salt) {
  AuditEntry entry;
  entry.user = std::move(user);
  entry.algorithm = algorithm;
  entry.salt = std::move(salt);
  const std::string message = entry.salt.apply(plaintext);
  switch (algorithm) {
    case hash::Algorithm::kMd5:
      entry.digest_hex = hash::Md5::digest(message).to_hex();
      break;
    case hash::Algorithm::kSha1:
      entry.digest_hex = hash::Sha1::digest(message).to_hex();
      break;
    default:
      throw InvalidArgument("audits support MD5 and SHA1 credentials");
  }
  return entry;
}

}  // namespace gks::core
