#pragma once

#include <string>
#include <vector>

#include "core/cracker.h"
#include "hash/digest.h"
#include "hash/salted.h"
#include "keyspace/charset.h"

namespace gks::core {

/// One stored credential of an auditing session (Section I: "periodic
/// cracking tests, called auditing sessions, to assess the reliability
/// of the employees' passwords").
struct AuditEntry {
  std::string user;
  hash::Algorithm algorithm = hash::Algorithm::kMd5;
  std::string digest_hex;
  hash::SaltSpec salt;  ///< per-user salt, stored beside the hash
};

/// Per-credential audit verdict.
struct AuditVerdict {
  std::string user;
  bool cracked = false;
  std::string recovered_key;
  u128 tested{0};
  double elapsed_s = 0;
};

/// Policy of the audit: what key shapes are tried before a password
/// is declared resistant.
struct AuditPolicy {
  keyspace::Charset charset = keyspace::Charset::lower();
  unsigned min_length = 1;
  unsigned max_length = 5;
  std::size_t threads = 0;
};

/// Runs the brute-force audit over all entries; salted hashes cost no
/// more than unsalted ones since the salt is known (Section I).
std::vector<AuditVerdict> run_audit(const std::vector<AuditEntry>& entries,
                                    const AuditPolicy& policy);

/// Helper for tests and examples: builds the stored entry for a known
/// plaintext (what the IT department's password database would hold).
AuditEntry make_entry(std::string user, hash::Algorithm algorithm,
                      const std::string& plaintext, hash::SaltSpec salt);

}  // namespace gks::core
