#include "core/cluster.h"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>

#include "core/cpu_backend.h"
#include "core/scan_engine.h"
#include "simgpu/arch.h"
#include "support/error.h"

namespace gks::core {
namespace {

struct BuiltNode {
  simnet::NodeId id;
  std::unique_ptr<dispatch::NodeAgent> agent;
};

/// Recursively adds the topology to the network and instantiates each
/// node's agent with its device searchers.
simnet::NodeId build_tree(simnet::Network& net, const ClusterNode& spec,
                          const CrackRequest& request,
                          const ClusterOptions& options,
                          const std::vector<u128>& planted,
                          std::vector<BuiltNode>& out) {
  const simnet::NodeId id = net.add_node(spec.name);

  std::vector<std::unique_ptr<dispatch::IntervalSearcher>> devices;
  for (const ClusterDevice& dev : spec.devices) {
    if (dev.kind == ClusterDevice::Kind::kCpu) {
      devices.push_back(
          std::make_unique<CpuSearcher>(request, dev.cpu_threads));
    } else {
      const simgpu::DeviceSpec& gpu_spec =
          simgpu::device_by_name(dev.gpu_short_name);
      devices.push_back(std::make_unique<SimGpuSearcher>(
          request, simgpu::SimulatedGpu(gpu_spec),
          our_kernel_profile(request.algorithm, gpu_spec.cc),
          options.gpu_mode, planted));
    }
  }

  out.push_back(
      {id, std::make_unique<dispatch::NodeAgent>(net, id, std::move(devices),
                                                 options.agent)});

  for (const ClusterNode& child : spec.children) {
    const simnet::NodeId child_id =
        build_tree(net, child, request, options, planted, out);
    net.connect(id, child_id, child.uplink);
  }
  return id;
}

}  // namespace

ClusterCracker::ClusterCracker(ClusterNode topology, ClusterOptions options)
    : topology_(std::move(topology)), options_(std::move(options)) {}

dispatch::SearchReport ClusterCracker::crack(const CrackRequest& request) {
  request.validate();

  std::vector<u128> planted;
  if (options_.planted_key) {
    ScanPlan plan(request);
    GKS_REQUIRE(request.matches(*options_.planted_key),
                "planted key does not hash to the target");
    planted.push_back(plan.id_of(*options_.planted_key));
  } else {
    GKS_REQUIRE(options_.gpu_mode != SimGpuMode::kModel,
                "model-mode simulated GPUs need a planted key to find");
  }

  simnet::Network net(options_.time_scale);
  std::vector<BuiltNode> nodes;
  const simnet::NodeId root =
      build_tree(net, topology_, request, options_, planted, nodes);
  GKS_ENSURE(root == 0, "root must be the first node");

  // Non-root agents serve on their node threads.
  dispatch::NodeAgent* root_agent = nullptr;
  for (BuiltNode& built : nodes) {
    if (built.id == root) {
      root_agent = built.agent.get();
      continue;
    }
    dispatch::NodeAgent* agent = built.agent.get();
    net.start(built.id, [agent] { agent->serve(); });
  }

  // Failure injection runs on its own thread against virtual time.
  std::thread failure_thread;
  if (!options_.failures.empty()) {
    std::map<std::string, simnet::NodeId> by_name;
    for (const BuiltNode& built : nodes) {
      by_name[net.name_of(built.id)] = built.id;
    }
    auto events = options_.failures;
    std::sort(events.begin(), events.end(),
              [](const FailureEvent& a, const FailureEvent& b) {
                return a.at_virtual_s < b.at_virtual_s;
              });
    failure_thread = std::thread([&net, by_name, events] {
      double elapsed = 0;
      for (const FailureEvent& ev : events) {
        net.clock().sleep_virtual(ev.at_virtual_s - elapsed);
        elapsed = ev.at_virtual_s;
        const auto it = by_name.find(ev.node_name);
        if (it != by_name.end()) net.set_node_down(it->second, true);
      }
    });
  }

  const keyspace::Interval space = request.space_interval();
  const keyspace::Interval scratch(
      u128(0), std::min(space.end, options_.tune_scratch));
  dispatch::SearchReport report = root_agent->run_root(space, scratch);

  net.join_all();
  if (failure_thread.joinable()) failure_thread.join();
  return report;
}

ClusterNode ClusterCracker::paper_topology() {
  // Section VI-A: "Node A dispatches part of the work to nodes B and
  // C; node C dispatches part of the work to node D."
  ClusterNode d{"node-D", {ClusterDevice::gpu("8800")}, {}, {}};
  ClusterNode c{"node-C", {ClusterDevice::gpu("8600M")}, {d}, {}};
  ClusterNode b{
      "node-B", {ClusterDevice::gpu("660"), ClusterDevice::gpu("550Ti")},
      {},
      {}};
  ClusterNode a{"node-A", {ClusterDevice::gpu("540M")}, {b, c}, {}};
  return a;
}

}  // namespace gks::core
