#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/crack_request.h"
#include "core/gpu_backend.h"
#include "dispatch/agent.h"
#include "dispatch/report.h"
#include "simnet/network.h"

namespace gks::core {

/// One device attached to a cluster node.
struct ClusterDevice {
  enum class Kind { kCpu, kSimGpu };
  Kind kind = Kind::kSimGpu;

  /// kCpu: worker threads (0 = hardware concurrency).
  std::size_t cpu_threads = 0;
  /// kSimGpu: Table VII short name ("8600M", "8800", "540M", "550Ti",
  /// "660").
  std::string gpu_short_name;

  static ClusterDevice cpu(std::size_t threads = 0) {
    ClusterDevice d;
    d.kind = Kind::kCpu;
    d.cpu_threads = threads;
    return d;
  }
  static ClusterDevice gpu(std::string short_name) {
    ClusterDevice d;
    d.kind = Kind::kSimGpu;
    d.gpu_short_name = std::move(short_name);
    return d;
  }
};

/// A node of the cluster tree: a PC with some devices, dispatching to
/// child PCs (Section VI-A's heterogeneous, deliberately unbalanced
/// network).
struct ClusterNode {
  std::string name;
  std::vector<ClusterDevice> devices;
  std::vector<ClusterNode> children;
  simnet::LinkSpec uplink;  ///< link from this node's parent
};

/// A scheduled failure: node `name` crashes `at_virtual_s` seconds
/// after the search starts (fault-tolerance experiments).
struct FailureEvent {
  std::string node_name;
  double at_virtual_s = 0;
};

/// Options of a cluster run.
struct ClusterOptions {
  /// Real seconds per virtual second (see simnet::VirtualClock). Use
  /// 1.0 when nodes do real CPU work.
  double time_scale = 1e-3;

  /// How simulated GPUs resolve matches (kModel needs a planted key).
  SimGpuMode gpu_mode = SimGpuMode::kModel;

  /// The key the workload generator hashed to produce the target; in
  /// kModel mode its identifier is what the simulated devices "find".
  std::optional<std::string> planted_key;

  dispatch::AgentConfig agent;

  /// Candidates used by the tuning pass.
  u128 tune_scratch{1u << 22};

  std::vector<FailureEvent> failures;
};

/// Assembles the simulated network, runs the distributed crack, and
/// reports the Table IX metrics.
class ClusterCracker {
 public:
  ClusterCracker(ClusterNode topology, ClusterOptions options);

  /// Runs one distributed search. Builds a fresh network per call.
  dispatch::SearchReport crack(const CrackRequest& request);

  /// The paper's evaluation network (Section VI-A): node A (GT 540M)
  /// dispatches to B (GTX 660 + GTX 550 Ti) and C (8600M GT); C
  /// dispatches to D (8800 GTS 512).
  static ClusterNode paper_topology();

 private:
  ClusterNode topology_;
  ClusterOptions options_;
};

}  // namespace gks::core
