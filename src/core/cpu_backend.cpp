#include "core/cpu_backend.h"

#include <algorithm>
#include <atomic>

#include "support/stopwatch.h"

namespace gks::core {
namespace {

/// Claim granularity for the self-scheduled scan: aim for ~64 claims
/// per worker so stragglers rebalance, but keep chunks large enough
/// (4096 candidates) that the atomic cursor and per-chunk setup stay
/// negligible, and bounded so no single claim monopolizes a worker.
std::uint64_t chunk_size(std::uint64_t batch, std::size_t workers) {
  const std::uint64_t target = batch / (workers * 64u) + 1;
  return std::clamp<std::uint64_t>(target, 4096, std::uint64_t{1} << 22);
}

}  // namespace

CpuSearcher::CpuSearcher(CrackRequest request, std::size_t threads)
    : plan_(std::move(request)), pool_(threads) {}

dispatch::ScanOutcome CpuSearcher::scan(const keyspace::Interval& interval) {
  Stopwatch timer;
  dispatch::ScanOutcome total;
  if (interval.empty()) return total;

  // Pin the scalar-vs-lane choice once, before the fan-out, so workers
  // never race the calibration probe.
  plan_.calibrate_lane_choice();

  // Workers claim chunks off an atomic cursor instead of receiving a
  // static even split: early hash exits and heterogeneous cores make
  // chunk costs uneven, and self-scheduling keeps every worker busy
  // until the interval drains. Intervals beyond 2^62 are walked in
  // sequential super-batches so the cursor arithmetic stays in 64 bits.
  const u128 size = interval.size();
  std::vector<dispatch::ScanOutcome> partial(pool_.size());
  u128 done{0};
  while (done < size) {
    const u128 batch128 = std::min(size - done, u128(std::uint64_t{1} << 62));
    const std::uint64_t batch = batch128.low64();
    const u128 base = interval.begin + done;
    pool_.parallel_chunks(
        batch, chunk_size(batch, pool_.size()),
        [this, &partial, base](std::size_t worker, std::uint64_t begin,
                               std::uint64_t end) {
          const auto out = plan_.scan(
              keyspace::Interval(base + u128(begin), base + u128(end)));
          auto& mine = partial[worker];
          mine.tested += out.tested;
          for (const auto& f : out.found) mine.found.push_back(f);
        });
    done += batch128;
  }

  for (auto& o : partial) {
    total.tested += o.tested;
    for (auto& f : o.found) total.found.push_back(std::move(f));
  }
  // Claim order is nondeterministic; keep the outcome deterministic.
  std::sort(total.found.begin(), total.found.end(),
            [](const dispatch::Found& a, const dispatch::Found& b) {
              return a.id < b.id;
            });
  // Wall time, not summed thread time: the device was busy this long.
  total.busy_virtual_s = std::max(timer.seconds(), 1e-9);
  return total;
}

double CpuSearcher::theoretical_throughput() const {
  if (calibrated_peak_ > 0) return calibrated_peak_;
  plan_.calibrate_lane_choice();
  // Calibrate with the whole pool running, not one thread multiplied by
  // size(): SMT siblings and shared caches make N threads slower than
  // N× one thread, and the efficiency denominator should reflect the
  // peak the device can actually sustain.
  const u128 space = plan_.request().space_size();
  const u128 probe128 =
      std::min(space, u128(std::uint64_t{200000} * pool_.size()));
  const std::uint64_t probe = probe128.low64();
  std::atomic<std::uint64_t> tested{0};
  Stopwatch timer;
  pool_.parallel_chunks(
      probe, chunk_size(probe, pool_.size()),
      [this, &tested](std::size_t, std::uint64_t begin, std::uint64_t end) {
        const auto out =
            plan_.scan(keyspace::Interval(u128(begin), u128(end)));
        tested.fetch_add(out.tested.low64(), std::memory_order_relaxed);
      });
  calibrated_peak_ = static_cast<double>(tested.load()) /
                     std::max(timer.seconds(), 1e-9);
  return calibrated_peak_;
}

std::string CpuSearcher::description() const {
  return "CPU x" + std::to_string(pool_.size()) + " (" +
         hash::algorithm_name(plan_.request().algorithm) + ")";
}

}  // namespace gks::core
