#include "core/cpu_backend.h"

#include <algorithm>

#include "support/stopwatch.h"

namespace gks::core {

CpuSearcher::CpuSearcher(CrackRequest request, std::size_t threads)
    : plan_(std::move(request)), pool_(threads) {}

dispatch::ScanOutcome CpuSearcher::scan(const keyspace::Interval& interval) {
  Stopwatch timer;
  dispatch::ScanOutcome total;
  if (interval.empty()) return total;

  // Tiny intervals are not worth fanning out.
  const auto ideal = static_cast<std::uint64_t>(
      interval.size().to_double() / 1024.0) + 1;
  const auto parts = static_cast<std::size_t>(
      std::min<std::uint64_t>(ideal, pool_.size()));
  const auto slices = keyspace::split_even(interval, parts);

  std::vector<dispatch::ScanOutcome> outcomes(slices.size());
  pool_.parallel_for(slices.size(), [this, &slices, &outcomes](std::size_t i) {
    outcomes[i] = plan_.scan(slices[i]);
  });

  for (auto& o : outcomes) {
    total.tested += o.tested;
    for (auto& f : o.found) total.found.push_back(std::move(f));
  }
  // Wall time, not summed thread time: the device was busy this long.
  total.busy_virtual_s = std::max(timer.seconds(), 1e-9);
  return total;
}

double CpuSearcher::theoretical_throughput() const {
  if (calibrated_peak_ > 0) return calibrated_peak_;
  // One warm calibration scan over a slice of the space.
  const u128 space = plan_.request().space_size();
  const u128 probe = std::min(space, u128(400000));
  Stopwatch timer;
  const auto out = plan_.scan(keyspace::Interval(u128(0), probe));
  calibrated_peak_ =
      out.tested.to_double() / std::max(timer.seconds(), 1e-9) *
      static_cast<double>(pool_.size());
  return calibrated_peak_;
}

std::string CpuSearcher::description() const {
  return "CPU x" + std::to_string(pool_.size()) + " (" +
         hash::algorithm_name(plan_.request().algorithm) + ")";
}

}  // namespace gks::core
