#pragma once

#include <memory>

#include "core/scan_engine.h"
#include "dispatch/search.h"
#include "support/thread_pool.h"

namespace gks::core {

/// Real multithreaded cracking on the host CPU — the fine-grain
/// parallelization of the pattern applied to a multicore instead of a
/// CUDA grid (the paper's future-work target, Section VII). Each scan
/// is drained by self-scheduled chunk claiming (an atomic cursor over
/// the interval), every worker running the same word-0 kernel loop a
/// GPU thread would — by default through the runtime-dispatched SIMD
/// lane engine, with the scalar-vs-lane choice pinned once by a
/// measured calibration probe (ScanPlan::calibrate_lane_choice).
class CpuSearcher final : public dispatch::IntervalSearcher {
 public:
  /// `threads` = 0 uses the hardware concurrency.
  explicit CpuSearcher(CrackRequest request, std::size_t threads = 0);

  dispatch::ScanOutcome scan(const keyspace::Interval& interval) override;

  bool is_simulated() const override { return false; }

  /// CPUs have no published instruction-throughput bound, so the
  /// "theoretical" reference is the measured peak of a short
  /// whole-pool calibration scan (cached after the first call) —
  /// pool-parallel so SMT and shared-cache contention are priced in.
  double theoretical_throughput() const override;

  std::string description() const override;

  const ScanPlan& plan() const { return plan_; }
  std::size_t threads() const { return pool_.size(); }

 private:
  ScanPlan plan_;
  /// mutable: theoretical_throughput() is a const measurement that
  /// runs probe work on the pool.
  mutable ThreadPool pool_;
  mutable double calibrated_peak_ = 0;
};

}  // namespace gks::core
