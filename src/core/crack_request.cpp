#include "core/crack_request.h"

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "support/error.h"
#include "support/hex.h"

namespace gks::core {

bool CrackRequest::matches(const std::string& key) const {
  const std::string message = salt.apply(key);
  switch (algorithm) {
    case hash::Algorithm::kMd5:
      return hash::Md5::digest(message).to_hex() == target_hex;
    case hash::Algorithm::kSha1:
      return hash::Sha1::digest(message).to_hex() == target_hex;
    case hash::Algorithm::kSha256:
      return hash::Sha256::digest(message).to_hex() == target_hex;
  }
  return false;
}

void CrackRequest::validate() const {
  GKS_REQUIRE(min_length >= 1, "minimum key length must be at least 1");
  GKS_REQUIRE(min_length <= max_length, "invalid key length range");
  GKS_REQUIRE(max_length <= hash::kMaxKernelKeyLength,
              "maximum key length above the kernel limit (20)");
  GKS_REQUIRE(max_length + salt.extra_length() <= 55,
              "key plus salt must fit a single hash block");
  const auto digest_bytes = from_hex(target_hex);
  GKS_REQUIRE(digest_bytes.size() == hash::digest_size(algorithm),
              "target digest length does not match the algorithm");
}

}  // namespace gks::core
