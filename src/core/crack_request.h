#pragma once

#include <string>

#include "hash/digest.h"
#include "hash/salted.h"
#include "keyspace/charset.h"
#include "keyspace/codec.h"
#include "keyspace/interval.h"
#include "keyspace/keyspace_generator.h"
#include "keyspace/space.h"

namespace gks::core {

/// A hash-reversal job: find the key whose (salted) digest equals the
/// target, searching all strings over `charset` with length in
/// [min_length, max_length] — the problem of Section IV.
struct CrackRequest {
  hash::Algorithm algorithm = hash::Algorithm::kMd5;
  std::string target_hex;  ///< digest to reverse, hex encoded
  keyspace::Charset charset = keyspace::Charset::alphanumeric();
  unsigned min_length = 1;
  unsigned max_length = 8;
  hash::SaltSpec salt;

  /// The enumeration every backend uses: prefix-fastest digit order
  /// (paper mapping (4)) so the optimized kernels can iterate by
  /// rewriting message word 0 only.
  keyspace::KeyspaceGenerator make_generator() const {
    return keyspace::KeyspaceGenerator(
        keyspace::KeyCodec(charset, keyspace::DigitOrder::kPrefixFastest),
        min_length, max_length);
  }

  /// Total number of candidates, S_{K0}^{K} of Equation (2).
  u128 space_size() const {
    return keyspace::space_size(charset.size(), min_length, max_length);
  }

  /// The dense identifier interval of the whole search space
  /// (generator-relative: 0 is the first string of min_length).
  keyspace::Interval space_interval() const {
    return keyspace::Interval(u128(0), space_size());
  }

  /// Hashes a candidate key under this request's salt scheme and
  /// compares to the target — the reference condition C(f(i)), used
  /// by the generic backends and to verify results.
  bool matches(const std::string& key) const;

  /// Validates internal consistency (digest length vs algorithm,
  /// length range, kernel limits); throws InvalidArgument otherwise.
  void validate() const;
};

/// A confirmed crack: the identifier, the key, and the elapsed cost.
struct CrackResult {
  bool found = false;
  std::string key;
  u128 tested{0};
  double elapsed_s = 0;
  double throughput = 0;  ///< keys per second over the whole run
};

}  // namespace gks::core
