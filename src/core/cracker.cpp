#include "core/cracker.h"

#include <algorithm>

#include "support/stopwatch.h"

namespace gks::core {

CrackResult LocalCracker::crack(const CrackRequest& request,
                                const ProgressCallback& progress) const {
  request.validate();
  CpuSearcher searcher(request, threads_);

  CrackResult result;
  Stopwatch timer;
  keyspace::IntervalCursor cursor(request.space_interval());

  // Slice size balances early-exit latency against per-slice overhead;
  // a few million keys is well under a second on any host.
  const u128 slice(4u << 20);
  while (!cursor.exhausted()) {
    const keyspace::Interval chunk = cursor.take(slice);
    const dispatch::ScanOutcome out = searcher.scan(chunk);
    result.tested += out.tested;
    if (!out.found.empty()) {
      result.found = true;
      result.key = out.found.front().value;
      break;
    }
    if (progress && !progress(result.tested, request.space_size())) {
      break;  // caller cancelled
    }
  }
  result.elapsed_s = timer.seconds();
  result.throughput =
      result.elapsed_s > 0 ? result.tested.to_double() / result.elapsed_s : 0;
  return result;
}

CrackResult LocalCracker::crack_md5(const std::string& target_hex,
                                    const keyspace::Charset& charset,
                                    unsigned min_len,
                                    unsigned max_len) const {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = target_hex;
  request.charset = charset;
  request.min_length = min_len;
  request.max_length = max_len;
  return crack(request);
}

}  // namespace gks::core
