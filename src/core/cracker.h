#pragma once

#include <functional>

#include "core/cpu_backend.h"
#include "core/crack_request.h"

namespace gks::core {

/// Invoked between work slices of a long search with the candidates
/// tested so far and the total space size; return false to cancel the
/// search (the result then reports what was covered).
using ProgressCallback =
    std::function<bool(const u128& tested, const u128& total)>;

/// Single-machine cracking front end: the quickstart API. Runs the
/// optimized kernels on host threads; for clusters of (simulated)
/// GPUs see ClusterCracker.
class LocalCracker {
 public:
  /// `threads` = 0 uses the hardware concurrency.
  explicit LocalCracker(std::size_t threads = 0) : threads_(threads) {}

  /// Exhaustively searches the request's key space; returns on the
  /// first match (or after exhausting the space). The search proceeds
  /// in bounded slices so a hit terminates promptly, mirroring the
  /// per-grid batching of Section IV-A. The optional progress callback
  /// fires between slices and can cancel the search.
  CrackResult crack(const CrackRequest& request,
                    const ProgressCallback& progress = {}) const;

  /// Convenience: crack the MD5 of an unsalted key.
  CrackResult crack_md5(const std::string& target_hex,
                        const keyspace::Charset& charset, unsigned min_len,
                        unsigned max_len) const;

 private:
  std::size_t threads_;
};

}  // namespace gks::core
