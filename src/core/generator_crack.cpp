#include "core/generator_crack.h"

#include <algorithm>

#include "hash/md5.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "keyspace/interval.h"
#include "support/error.h"
#include "support/hex.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace gks::core {
namespace {

std::string digest_of(hash::Algorithm algorithm, const std::string& message) {
  switch (algorithm) {
    case hash::Algorithm::kMd5: return hash::Md5::digest(message).to_hex();
    case hash::Algorithm::kSha1: return hash::Sha1::digest(message).to_hex();
    case hash::Algorithm::kSha256:
      return hash::Sha256::digest(message).to_hex();
  }
  return {};
}

}  // namespace

MultiCrackResult crack_generator(const keyspace::Generator& generator,
                                 hash::Algorithm algorithm,
                                 const std::vector<std::string>& target_hexes,
                                 const hash::SaltSpec& salt,
                                 std::size_t threads) {
  GKS_REQUIRE(!target_hexes.empty(), "need at least one target digest");
  for (const std::string& hex : target_hexes) {
    GKS_REQUIRE(from_hex(hex).size() == hash::digest_size(algorithm),
                "digest length does not match the algorithm");
  }

  Stopwatch timer;
  MultiCrackResult result;
  result.targets.resize(target_hexes.size());
  for (std::size_t i = 0; i < target_hexes.size(); ++i) {
    result.targets[i].digest_hex = target_hexes[i];
  }

  ThreadPool pool(threads);
  keyspace::IntervalCursor cursor(
      keyspace::Interval(u128(0), generator.size()));
  const u128 slice(1u << 16);

  while (!cursor.exhausted() && result.cracked < result.targets.size()) {
    // Outstanding digests for this slice (lower-cased canonical hex).
    std::vector<std::pair<std::string, std::size_t>> outstanding;
    for (std::size_t i = 0; i < result.targets.size(); ++i) {
      if (!result.targets[i].found) {
        outstanding.emplace_back(result.targets[i].digest_hex, i);
      }
    }

    const keyspace::Interval round = cursor.take(slice);
    const auto parts = static_cast<std::size_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(round.size().to_double() / 512) + 1,
        pool.size()));
    const auto sub = keyspace::split_even(round, parts);

    struct Hit {
      std::size_t target_index;
      std::string key;
    };
    std::vector<std::vector<Hit>> hits(sub.size());
    pool.parallel_for(sub.size(), [&](std::size_t p) {
      std::string candidate;
      for (u128 id = sub[p].begin; id < sub[p].end; ++id) {
        generator.generate(id, candidate);
        const std::string digest =
            digest_of(algorithm, salt.apply(candidate));
        for (const auto& [hex, index] : outstanding) {
          if (digest == hex) hits[p].push_back({index, candidate});
        }
      }
    });

    result.tested += round.size();
    result.intervals += sub.size();
    for (const auto& part : hits) {
      for (const Hit& hit : part) {
        MultiTargetVerdict& verdict = result.targets[hit.target_index];
        if (!verdict.found) {
          verdict.found = true;
          verdict.key = hit.key;
          ++result.cracked;
        }
      }
    }
  }

  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace gks::core
