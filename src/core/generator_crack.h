#pragma once

#include <string>
#include <vector>

#include "core/multi_crack.h"
#include "hash/digest.h"
#include "hash/salted.h"
#include "keyspace/generator.h"

namespace gks::core {

/// Exhaustively tests an arbitrary candidate enumeration — mask,
/// dictionary, hybrid, anything implementing keyspace::Generator —
/// against a set of digests. This is the generic C(f(i)) loop of the
/// Section III-A problem definition with no kernel specialization:
/// slower per candidate than the word-0 engines, but it accepts any
/// f(i), which is the pattern's whole point.
///
/// Stops early once every digest is recovered. `threads` = 0 uses the
/// hardware concurrency.
MultiCrackResult crack_generator(const keyspace::Generator& generator,
                                 hash::Algorithm algorithm,
                                 const std::vector<std::string>& target_hexes,
                                 const hash::SaltSpec& salt = {},
                                 std::size_t threads = 0);

}  // namespace gks::core
