#include "core/gpu_backend.h"

#include <algorithm>

#include "simgpu/kernel_profile.h"
#include "simgpu/lowering.h"
#include "support/error.h"

namespace gks::core {

SimGpuSearcher::SimGpuSearcher(CrackRequest request, simgpu::SimulatedGpu gpu,
                               simgpu::KernelProfile profile, SimGpuMode mode,
                               std::vector<u128> planted_ids)
    : plan_(std::move(request)),
      gpu_(std::move(gpu)),
      profile_(profile),
      mode_(mode),
      planted_ids_(std::move(planted_ids)) {}

dispatch::ScanOutcome SimGpuSearcher::scan(
    const keyspace::Interval& interval) {
  dispatch::ScanOutcome out;
  if (interval.empty()) return out;

  if (mode_ == SimGpuMode::kExecute) {
    out = plan_.scan(interval);  // real candidate testing
  } else {
    out.tested = interval.size();
    for (const u128& id : planted_ids_) {
      if (interval.contains(id)) {
        // The exhaustive scan would reach the planted identifier and
        // the kernel's early-exit comparison would fire.
        dispatch::Found f;
        f.id = id;
        f.value = plan_.request().make_generator().at(id);
        out.found.push_back(std::move(f));
      }
    }
  }
  // Timing always from the device model, never from host wall time.
  out.busy_virtual_s = gpu_.scan_seconds(profile_, interval.size());
  return out;
}

double SimGpuSearcher::theoretical_throughput() const {
  return gpu_.theoretical_throughput(profile_.per_candidate);
}

std::string SimGpuSearcher::description() const {
  return gpu_.spec().name + " (" +
         hash::algorithm_name(plan_.request().algorithm) + ")";
}

simgpu::KernelProfile our_kernel_profile(hash::Algorithm algorithm,
                                         simgpu::ComputeCapability cc) {
  simgpu::LoweringOptions opt;
  opt.cc = cc;
  // __byte_perm pays only where PRMT exists and shifts are the
  // bottleneck (Kepler); the paper enables it for the final kernel.
  opt.use_byte_perm = cc == simgpu::ComputeCapability::kCc30 ||
                      cc == simgpu::ComputeCapability::kCc35;

  simgpu::KernelProfile profile;
  switch (algorithm) {
    case hash::Algorithm::kMd5:
      profile.per_candidate =
          lower(trace_md5(simgpu::Md5KernelVariant::kReversed), opt);
      break;
    case hash::Algorithm::kSha1:
      profile.per_candidate =
          lower(trace_sha1(simgpu::Sha1KernelVariant::kOptimized), opt);
      break;
    case hash::Algorithm::kSha256:
      profile.per_candidate = lower(simgpu::trace_sha256_nonce(), opt);
      break;
  }
  // Interleave two candidates per thread on Fermi, where the lack of
  // ILP otherwise leaves a group of cores unused; single-stream
  // elsewhere ("a better ILP factor ... is nevertheless a good choice
  // on Fermi", Section V-B).
  profile.ilp = (cc == simgpu::ComputeCapability::kCc20 ||
                 cc == simgpu::ComputeCapability::kCc21)
                    ? 2
                    : 1;
  profile.overhead_fraction = 0.01;  // the next-operator cost, < 1%
  return profile;
}

}  // namespace gks::core
