#pragma once

#include <memory>
#include <vector>

#include "core/scan_engine.h"
#include "dispatch/search.h"
#include "simgpu/device.h"

namespace gks::core {

/// How a simulated GPU resolves which candidates in an interval match
/// (DESIGN.md §1, "model vs execute duality").
enum class SimGpuMode {
  /// Really scan the interval with the CPU engine (correct finds),
  /// while *timing* comes from the SIMT model. Used by tests and small
  /// searches; too slow for paper-scale spaces.
  kExecute,
  /// Decide matches analytically from the planted solution ids the
  /// workload generator provides; timing from the SIMT model. This is
  /// how paper-scale experiments run: the simulation predicts when the
  /// scan would reach the planted key.
  kModel,
};

/// A simulated CUDA device cracking one request — what a worker node's
/// GPU does in Section IV. Timing always comes from the cycle-level
/// SIMT simulator plus the kernel-launch batching model.
class SimGpuSearcher final : public dispatch::IntervalSearcher {
 public:
  /// `planted_ids` (generator-relative) are required in kModel mode;
  /// in kExecute mode they are ignored.
  SimGpuSearcher(CrackRequest request, simgpu::SimulatedGpu gpu,
                 simgpu::KernelProfile profile, SimGpuMode mode,
                 std::vector<u128> planted_ids = {});

  dispatch::ScanOutcome scan(const keyspace::Interval& interval) override;

  bool is_simulated() const override { return true; }

  double peak_throughput_hint() const override {
    return gpu_.sustained_throughput(profile_);
  }

  double theoretical_throughput() const override;

  std::string description() const override;

  const simgpu::SimulatedGpu& gpu() const { return gpu_; }
  const simgpu::KernelProfile& profile() const { return profile_; }

 private:
  ScanPlan plan_;
  simgpu::SimulatedGpu gpu_;
  simgpu::KernelProfile profile_;
  SimGpuMode mode_;
  std::vector<u128> planted_ids_;
};

/// The kernel profile our optimized cracker runs on a device of the
/// given compute capability (traced from the production kernels; ILP=2
/// interleaving on Fermi where it pays, ILP=1 elsewhere — Section V-B).
simgpu::KernelProfile our_kernel_profile(hash::Algorithm algorithm,
                                         simgpu::ComputeCapability cc);

}  // namespace gks::core
