#include "core/multi_crack.h"

#include <algorithm>
#include <vector>

#include "core/multi_sweep.h"
#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "keyspace/interval.h"
#include "support/error.h"
#include "support/hex.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace gks::core {

void MultiCrackRequest::validate() const {
  GKS_REQUIRE(!target_hexes.empty(), "batch must contain at least one digest");
  GKS_REQUIRE(algorithm == hash::Algorithm::kMd5 ||
                  algorithm == hash::Algorithm::kSha1,
              "batch sweeps support MD5 and SHA1");
  GKS_REQUIRE(min_length >= 1 && min_length <= max_length,
              "invalid key length range");
  GKS_REQUIRE(max_length <= hash::kMaxKernelKeyLength,
              "maximum key length above the kernel limit");
  GKS_REQUIRE(max_length + salt.extra_length() <= 55,
              "key plus salt must fit a single hash block");
  GKS_REQUIRE(filter_fpr > 0 && filter_fpr <= 0.5,
              "filter false-positive rate must be in (0, 0.5]");
  for (const std::string& hex : target_hexes) {
    GKS_REQUIRE(from_hex(hex).size() == hash::digest_size(algorithm),
                "digest length does not match the algorithm");
  }
}

MultiCrackResult multi_crack(const MultiCrackRequest& request,
                             std::size_t threads) {
  Stopwatch timer;

  // The sweep engine owns target parsing/dedup, the calibrated
  // scalar-vs-lane choice, and the per-(length, tail) context caches;
  // this function is just the whole-space dispatch loop over it (the
  // job service drives the same engine one scheduler quantum at a
  // time — see src/service/).
  MultiSweeper sweeper(request);
  sweeper.calibrate();

  ThreadPool pool(threads);
  keyspace::IntervalCursor cursor(sweeper.space_interval());
  const u128 slice(static_cast<std::uint64_t>(4) << 20);

  MultiCrackResult result;
  while (!cursor.exhausted() && !sweeper.all_found()) {
    const keyspace::Interval round = cursor.take(slice);
    sweeper.prepare(round, pool);
    const auto parts = static_cast<std::size_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(round.size().to_double() / 4096) + 1,
        pool.size()));
    const auto sub = keyspace::split_even(round, parts);

    std::vector<std::vector<SweepHit>> hits(sub.size());
    pool.parallel_for(sub.size(), [&sweeper, &sub, &hits](std::size_t i) {
      sweeper.scan(sub[i], hits[i]);
    });

    result.tested += round.size();
    result.intervals += sub.size();
    for (const auto& part : hits) {
      for (const SweepHit& hit : part) {
        sweeper.mark_found(hit.unique_index, hit.key);
      }
    }
  }

  sweeper.fill_results(result);
  const SweepFilterStats fstats = sweeper.filter_stats();
  result.filter_gate_hits = fstats.gate_hits;
  result.filter_false_positives = fstats.false_positives;
  result.elapsed_s = timer.seconds();
  return result;
}

std::string salted_digest_hex(hash::Algorithm algorithm,
                              const hash::SaltSpec& salt,
                              const std::string& key) {
  const std::string message = salt.apply(key);
  switch (algorithm) {
    case hash::Algorithm::kMd5:
      return hash::Md5::digest(message).to_hex();
    case hash::Algorithm::kSha1:
      return hash::Sha1::digest(message).to_hex();
    case hash::Algorithm::kSha256:
      return hash::Sha256::digest(message).to_hex();
  }
  return {};
}

}  // namespace gks::core
