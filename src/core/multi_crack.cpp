#include "core/multi_crack.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/multi_crack.h"
#include "hash/sha1.h"
#include "hash/simd/dispatch.h"
#include "keyspace/codec.h"
#include "keyspace/interval.h"
#include "keyspace/space.h"
#include "support/error.h"
#include "support/hex.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace gks::core {
namespace {

/// The request's digests parsed once, deduplicated by digest bytes.
/// Everything downstream works on unique digests; the request slots
/// sharing a digest (users sharing a password — common in real audits)
/// are resolved through `request_slots` when the key is recovered.
struct ParsedTargets {
  std::vector<hash::Md5Digest> md5;    ///< unique digests (MD5 runs)
  std::vector<hash::Sha1Digest> sha1;  ///< unique digests (SHA1 runs)
  /// request_slots[u] = indices into request.target_hexes with digest u.
  std::vector<std::vector<std::size_t>> request_slots;

  std::size_t unique_count() const { return request_slots.size(); }
};

/// Parses one algorithm's digests and groups duplicate digests by
/// sorting — no per-entry node allocations, which matters at audit
/// batch sizes (10^5 digests). Unique indices come out in digest order.
template <class DigestT>
void dedup_targets(const std::vector<std::string>& hexes,
                   std::vector<DigestT>& unique,
                   std::vector<std::vector<std::size_t>>& request_slots) {
  std::vector<std::pair<DigestT, std::size_t>> entries;
  entries.reserve(hexes.size());
  for (std::size_t i = 0; i < hexes.size(); ++i) {
    entries.emplace_back(DigestT::from_hex(hexes[i]), i);
  }
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].first != entries[i - 1].first) {
      unique.push_back(entries[i].first);
      request_slots.emplace_back();
    }
    request_slots.back().push_back(entries[i].second);
  }
}

ParsedTargets parse_targets(const MultiCrackRequest& request) {
  ParsedTargets parsed;
  // Deduplicated on the digest bytes — hex spelling (case) never splits
  // a digest into two targets.
  if (request.algorithm == hash::Algorithm::kMd5) {
    dedup_targets(request.target_hexes, parsed.md5, parsed.request_slots);
  } else {
    dedup_targets(request.target_hexes, parsed.sha1, parsed.request_slots);
  }
  return parsed;
}

/// A hit found by one slice worker: which unique digest, and the
/// recovered key.
struct Hit {
  std::size_t unique_index;
  std::string key;
};

/// Shared, immutable-per-slice state for the sweep workers. The codec
/// and parsed targets are built once per request; only the outstanding
/// view is rebuilt, and only after a recovery shrank it.
struct SweepContext {
  const MultiCrackRequest& request;
  const ParsedTargets& parsed;
  const keyspace::KeyCodec& codec;
  u128 offset;  ///< global codec id of generator-relative id 0
  /// Calibrated lane engine for the fast path (nullptr = scalar).
  const hash::simd::ScanKernels* kernels = nullptr;
  /// Outstanding unique digests: indices into `parsed` and their
  /// parsed digests (exactly one of md5/sha1 populated).
  std::vector<std::size_t> outstanding;
  std::vector<hash::Md5Digest> md5_targets;
  std::vector<hash::Sha1Digest> sha1_targets;
  /// Per-slice fast-path contexts keyed by (key length, fixed tail),
  /// prebuilt before the parallel scan: every interval worker shares
  /// one sorted TargetIndex per tail instead of re-sorting the target
  /// words for each chunk it touches. Read-only during the scan.
  std::map<std::pair<std::size_t, std::string>,
           std::unique_ptr<hash::Md5MultiContext>>
      md5_contexts;
  std::map<std::pair<std::size_t, std::string>,
           std::unique_ptr<hash::Sha1MultiContext>>
      sha1_contexts;
};

bool fast_path_applicable(const MultiCrackRequest& request,
                          std::size_t key_len);

/// The fixed message bytes after the candidate's first word: key tail
/// plus any suffix salt.
std::string chunk_tail(const MultiCrackRequest& request,
                       const std::string& first_key) {
  std::string tail;
  if (first_key.size() > 4) tail = first_key.substr(4);
  if (request.salt.position == hash::SaltPosition::kSuffix) {
    tail += request.salt.salt;
  }
  return tail;
}

/// Walks `interval` in the same tail-block chunks the scan uses,
/// invoking fn(begin_id, count, first_key) for each. All candidates of
/// one chunk share their length and tail.
template <class Fn>
void for_each_chunk(const SweepContext& ctx,
                    const keyspace::Interval& interval, Fn&& fn) {
  const std::size_t n = ctx.request.charset.size();
  u128 id = interval.begin;
  std::string key;
  while (id < interval.end) {
    ctx.codec.decode_into(id + ctx.offset, key);
    const std::size_t key_len = key.size();
    const auto prefix_chars =
        static_cast<unsigned>(std::min<std::size_t>(4, key_len));
    const u128 block = keyspace::keys_of_length(n, prefix_chars);
    const u128 first_of_len =
        keyspace::first_id_of_length(n, static_cast<unsigned>(key_len)) -
        ctx.offset;
    const u128 within = (id - first_of_len) % block;
    const u128 chunk = std::min(interval.end - id, block - within);
    fn(id, chunk, key);
    id += chunk;
  }
}

/// Builds the fast-path contexts for every distinct (length, tail) the
/// round touches, in parallel — the sort behind each TargetIndex is the
/// expensive part of a context, and scan workers must not repeat it per
/// chunk. The cache persists across rounds: a fixed-length sweep cycles
/// through the same tails every round (prefix digits are fastest), so
/// later rounds find every context already built. Entries for tails the
/// round does not touch are evicted first, keeping memory bounded by
/// one round's tail count when the tail space is genuinely large. The
/// main loop clears the cache outright after a recovery — the cached
/// slot numbering is stale once the outstanding target set shrinks.
void prebuild_fast_contexts(SweepContext& ctx,
                            const keyspace::Interval& round,
                            ThreadPool& pool) {
  std::set<std::pair<std::size_t, std::string>> needed;
  for_each_chunk(ctx, round,
                 [&](u128 /*id*/, u128 /*count*/, const std::string& key) {
                   if (!fast_path_applicable(ctx.request, key.size())) return;
                   needed.emplace(key.size(), chunk_tail(ctx.request, key));
                 });

  const auto sync = [&](auto& cache, const auto& targets) {
    std::erase_if(cache,
                  [&](const auto& e) { return needed.count(e.first) == 0; });
    std::vector<typename std::decay_t<decltype(cache)>::iterator> fresh;
    for (const auto& k : needed) {
      const auto [it, inserted] = cache.emplace(k, nullptr);
      if (inserted) fresh.push_back(it);
    }
    pool.parallel_for(fresh.size(), [&](std::size_t i) {
      const auto& [key_len, tail] = fresh[i]->first;
      using Ctx =
          typename std::decay_t<decltype(cache)>::mapped_type::element_type;
      fresh[i]->second = std::make_unique<Ctx>(
          targets, tail, key_len + ctx.request.salt.extra_length());
    });
  };
  if (ctx.request.algorithm == hash::Algorithm::kMd5) {
    sync(ctx.md5_contexts, ctx.md5_targets);
  } else {
    sync(ctx.sha1_contexts, ctx.sha1_targets);
  }
}

bool fast_path_applicable(const MultiCrackRequest& request,
                          std::size_t key_len) {
  if (request.algorithm == hash::Algorithm::kSha256) return false;
  switch (request.salt.position) {
    case hash::SaltPosition::kNone: return true;
    case hash::SaltPosition::kPrefix: return false;
    case hash::SaltPosition::kSuffix: return key_len >= 4;
  }
  return false;
}

/// Picks the fast-path engine for this request — scalar multi scan or
/// one of the lane widths — by timing each over a short probe of the
/// request's own keyspace, mirroring ScanPlan::calibrate_lane_choice.
/// Runs once per multi_crack call, before the sweep fans out. Returns
/// nullptr for the scalar engine (also when lane scanning is disabled
/// or the fast path never applies).
const hash::simd::ScanKernels* calibrate_multi_kernels(
    const MultiCrackRequest& request, const ParsedTargets& parsed) {
  if (!request.lane_scanning) return nullptr;

  std::size_t key_len = 0;
  for (std::size_t len = request.min_length; len <= request.max_length;
       ++len) {
    if (fast_path_applicable(request, len)) {
      key_len = len;
      break;
    }
  }
  if (key_len == 0) return nullptr;

  const auto prefix_chars =
      static_cast<unsigned>(std::min<std::size_t>(4, key_len));
  const std::string probe_key(key_len, request.charset.chars()[0]);
  std::string tail = key_len > 4 ? probe_key.substr(4) : std::string();
  if (request.salt.position == hash::SaltPosition::kSuffix) {
    tail += request.salt.salt;
  }
  const std::size_t total_len = key_len + request.salt.extra_length();
  const bool big_endian = request.algorithm == hash::Algorithm::kSha1;
  const hash::PrefixWord0Iterator start(request.charset.chars(), prefix_chars,
                                        key_len, big_endian);

  constexpr std::uint64_t kWarmup = 1024;
  constexpr std::uint64_t kProbe = 8192;
  std::vector<hash::MultiHit> scratch;
  // Times one engine: a short warmup pass, then the measured pass.
  const auto measure = [&](const auto& scan) {
    auto it = start;
    scratch.clear();
    scan(it, kWarmup);
    Stopwatch timer;
    scan(it, kProbe);
    return timer.seconds();
  };

  const hash::simd::ScanKernels* winner = nullptr;
  double best = 0;
  if (request.algorithm == hash::Algorithm::kMd5) {
    const hash::Md5MultiContext ctx(parsed.md5, tail, total_len);
    best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
      hash::md5_multi_scan_prefixes(ctx, it, n, scratch);
    });
    for (const auto& k : hash::simd::available_kernels()) {
      const double t =
          measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
            k.md5_multi_scan(ctx, it, n, scratch);
          });
      if (t < best) {
        best = t;
        winner = &k;
      }
    }
  } else {
    const hash::Sha1MultiContext ctx(parsed.sha1, tail, total_len);
    best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
      hash::sha1_multi_scan_prefixes(ctx, it, n, scratch);
    });
    for (const auto& k : hash::simd::available_kernels()) {
      const double t =
          measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
            k.sha1_multi_scan(ctx, it, n, scratch);
          });
      if (t < best) {
        best = t;
        winner = &k;
      }
    }
  }
  return winner;
}

/// Scans one tail-block chunk (all candidates share tail characters)
/// against every outstanding unique digest through the calibrated
/// engine — lane kernels when they won the probe, scalar otherwise.
/// The chunk's context comes from the prebuilt per-slice cache.
void scan_fast_chunk(const SweepContext& ctx, u128 begin_id, u128 count,
                     const std::string& first_key, std::vector<Hit>& hits) {
  const std::size_t key_len = first_key.size();
  const auto prefix_chars =
      static_cast<unsigned>(std::min<std::size_t>(4, key_len));
  const auto cache_key =
      std::make_pair(key_len, chunk_tail(ctx.request, first_key));

  const bool big_endian = ctx.request.algorithm == hash::Algorithm::kSha1;
  hash::PrefixWord0Iterator it(ctx.request.charset.chars(), prefix_chars,
                               key_len, big_endian);
  std::vector<std::uint32_t> digits(prefix_chars);
  for (unsigned i = 0; i < prefix_chars; ++i) {
    digits[i] = static_cast<std::uint32_t>(
        ctx.request.charset.index_of(first_key[i]));
  }
  it.seek(digits);

  const std::uint64_t n = count.to_u64();
  std::vector<hash::MultiHit> found;
  if (ctx.request.algorithm == hash::Algorithm::kMd5) {
    const hash::Md5MultiContext& multi = *ctx.md5_contexts.at(cache_key);
    if (ctx.kernels) {
      ctx.kernels->md5_multi_scan(multi, it, n, found);
    } else {
      hash::md5_multi_scan_prefixes(multi, it, n, found);
    }
  } else {
    const hash::Sha1MultiContext& multi = *ctx.sha1_contexts.at(cache_key);
    if (ctx.kernels) {
      ctx.kernels->sha1_multi_scan(multi, it, n, found);
    } else {
      hash::sha1_multi_scan_prefixes(multi, it, n, found);
    }
  }
  for (const hash::MultiHit& h : found) {
    hits.push_back({ctx.outstanding[h.slot],
                    ctx.codec.decode(begin_id + u128(h.offset) + ctx.offset)});
  }
}

/// Scans a generator-relative interval on the calling thread.
void scan_interval(const SweepContext& ctx,
                   const keyspace::Interval& interval,
                   std::vector<Hit>& hits) {
  for_each_chunk(ctx, interval, [&](u128 id, u128 chunk, std::string& key) {
    if (fast_path_applicable(ctx.request, key.size())) {
      scan_fast_chunk(ctx, id, chunk, key, hits);
      return;
    }
    // Generic path: full digest per candidate, compared to every
    // outstanding unique digest.
    u128 togo = chunk;
    while (togo > u128(0)) {
      const std::string message = ctx.request.salt.apply(key);
      if (ctx.request.algorithm == hash::Algorithm::kMd5) {
        const auto digest = hash::Md5::digest(message);
        for (std::size_t t = 0; t < ctx.md5_targets.size(); ++t) {
          if (digest == ctx.md5_targets[t]) {
            hits.push_back({ctx.outstanding[t], key});
          }
        }
      } else {
        const auto digest = hash::Sha1::digest(message);
        for (std::size_t t = 0; t < ctx.sha1_targets.size(); ++t) {
          if (digest == ctx.sha1_targets[t]) {
            hits.push_back({ctx.outstanding[t], key});
          }
        }
      }
      ctx.codec.next_inplace(key);
      --togo;
    }
  });
}

}  // namespace

void MultiCrackRequest::validate() const {
  GKS_REQUIRE(!target_hexes.empty(), "batch must contain at least one digest");
  GKS_REQUIRE(algorithm == hash::Algorithm::kMd5 ||
                  algorithm == hash::Algorithm::kSha1,
              "batch sweeps support MD5 and SHA1");
  GKS_REQUIRE(min_length >= 1 && min_length <= max_length,
              "invalid key length range");
  GKS_REQUIRE(max_length <= hash::kMaxKernelKeyLength,
              "maximum key length above the kernel limit");
  GKS_REQUIRE(max_length + salt.extra_length() <= 55,
              "key plus salt must fit a single hash block");
  for (const std::string& hex : target_hexes) {
    GKS_REQUIRE(from_hex(hex).size() == hash::digest_size(algorithm),
                "digest length does not match the algorithm");
  }
}

MultiCrackResult multi_crack(const MultiCrackRequest& request,
                             std::size_t threads) {
  request.validate();
  Stopwatch timer;

  MultiCrackResult result;
  result.targets.resize(request.target_hexes.size());
  for (std::size_t i = 0; i < request.target_hexes.size(); ++i) {
    result.targets[i].digest_hex = request.target_hexes[i];
  }

  // Parse and deduplicate once per request — not per 4 Mi-key slice.
  const ParsedTargets parsed = parse_targets(request);
  std::vector<bool> unique_found(parsed.unique_count(), false);
  const keyspace::KeyCodec codec(request.charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const hash::simd::ScanKernels* kernels =
      calibrate_multi_kernels(request, parsed);

  const u128 space =
      keyspace::space_size(request.charset.size(), request.min_length,
                           request.max_length);
  keyspace::IntervalCursor cursor(keyspace::Interval(u128(0), space));

  ThreadPool pool(threads);
  const u128 slice(static_cast<std::uint64_t>(4) << 20);

  SweepContext ctx{request,
                   parsed,
                   codec,
                   keyspace::first_id_of_length(request.charset.size(),
                                                request.min_length),
                   kernels,
                   {},
                   {},
                   {},
                   {},
                   {}};
  bool outstanding_stale = true;

  while (!cursor.exhausted() &&
         result.cracked < result.targets.size()) {
    // Refresh the outstanding-target view only after a recovery —
    // recovered digests drop out, shrinking the per-chunk contexts.
    if (outstanding_stale) {
      ctx.outstanding.clear();
      ctx.md5_targets.clear();
      ctx.sha1_targets.clear();
      for (std::size_t u = 0; u < parsed.unique_count(); ++u) {
        if (unique_found[u]) continue;
        ctx.outstanding.push_back(u);
        if (request.algorithm == hash::Algorithm::kMd5) {
          ctx.md5_targets.push_back(parsed.md5[u]);
        } else {
          ctx.sha1_targets.push_back(parsed.sha1[u]);
        }
      }
      // The cached contexts index into the target vectors just
      // rebuilt — their slot numbering is stale.
      ctx.md5_contexts.clear();
      ctx.sha1_contexts.clear();
      outstanding_stale = false;
    }

    const keyspace::Interval round = cursor.take(slice);
    prebuild_fast_contexts(ctx, round, pool);
    const auto parts = static_cast<std::size_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(round.size().to_double() / 4096) + 1,
        pool.size()));
    const auto sub = keyspace::split_even(round, parts);

    std::vector<std::vector<Hit>> hits(sub.size());
    pool.parallel_for(sub.size(), [&ctx, &sub, &hits](std::size_t i) {
      scan_interval(ctx, sub[i], hits[i]);
    });

    result.tested += round.size();
    for (const auto& part : hits) {
      for (const Hit& hit : part) {
        // One recovered unique digest resolves every request slot
        // sharing it, through the map built at parse time.
        if (unique_found[hit.unique_index]) continue;
        unique_found[hit.unique_index] = true;
        outstanding_stale = true;
        for (const std::size_t slot : parsed.request_slots[hit.unique_index]) {
          result.targets[slot].found = true;
          result.targets[slot].key = hit.key;
          ++result.cracked;
        }
      }
    }
  }

  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace gks::core
