#include "core/multi_crack.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/multi_crack.h"
#include "hash/sha1.h"
#include "keyspace/codec.h"
#include "keyspace/interval.h"
#include "keyspace/space.h"
#include "support/error.h"
#include "support/hex.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace gks::core {
namespace {

/// A hit found by one slice worker: which outstanding target, by
/// request index, and the recovered key.
struct Hit {
  std::size_t target_index;
  std::string key;
};

/// Shared, immutable-per-slice state for the sweep workers.
struct SweepContext {
  const MultiCrackRequest& request;
  const keyspace::KeyCodec codec;
  u128 offset;  ///< global codec id of generator-relative id 0
  /// Outstanding targets: request indices and their parsed digests.
  std::vector<std::size_t> indices;
  std::vector<hash::Md5Digest> md5_targets;
  std::vector<hash::Sha1Digest> sha1_targets;
};

bool fast_path_applicable(const MultiCrackRequest& request,
                          std::size_t key_len) {
  if (request.algorithm == hash::Algorithm::kSha256) return false;
  switch (request.salt.position) {
    case hash::SaltPosition::kNone: return true;
    case hash::SaltPosition::kPrefix: return false;
    case hash::SaltPosition::kSuffix: return key_len >= 4;
  }
  return false;
}

/// Scans one tail-block chunk (all candidates share tail characters)
/// against every outstanding target.
void scan_fast_chunk(const SweepContext& ctx, u128 begin_id, u128 count,
                     const std::string& first_key, std::vector<Hit>& hits) {
  const std::size_t key_len = first_key.size();
  const auto prefix_chars =
      static_cast<unsigned>(std::min<std::size_t>(4, key_len));

  std::string tail;
  if (key_len > 4) tail = first_key.substr(4);
  if (ctx.request.salt.position == hash::SaltPosition::kSuffix) {
    tail += ctx.request.salt.salt;
  }
  const std::size_t total_len =
      key_len + ctx.request.salt.extra_length();

  const bool big_endian = ctx.request.algorithm == hash::Algorithm::kSha1;
  hash::PrefixWord0Iterator it(ctx.request.charset.chars(), prefix_chars,
                               key_len, big_endian);
  std::vector<std::uint32_t> digits(prefix_chars);
  for (unsigned i = 0; i < prefix_chars; ++i) {
    digits[i] = static_cast<std::uint32_t>(
        ctx.request.charset.index_of(first_key[i]));
  }
  it.seek(digits);

  const auto record = [&](std::uint64_t at, std::size_t local_target) {
    hits.push_back({ctx.indices[local_target],
                    ctx.codec.decode(begin_id + u128(at) + ctx.offset)});
  };

  const std::uint64_t n = count.to_u64();
  if (ctx.request.algorithm == hash::Algorithm::kMd5) {
    const hash::Md5MultiContext multi(ctx.md5_targets, tail, total_len);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::size_t t = multi.test(it.word0());
      if (t != hash::Md5MultiContext::npos) record(i, t);
      it.advance();
    }
  } else {
    const hash::Sha1MultiContext multi(ctx.sha1_targets, tail, total_len);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::size_t t = multi.test(it.word0());
      if (t != hash::Sha1MultiContext::npos) record(i, t);
      it.advance();
    }
  }
}

/// Scans a generator-relative interval on the calling thread.
void scan_interval(const SweepContext& ctx,
                   const keyspace::Interval& interval,
                   std::vector<Hit>& hits) {
  const std::size_t n = ctx.request.charset.size();
  u128 id = interval.begin;
  std::string key;
  if (id < interval.end) ctx.codec.decode_into(id + ctx.offset, key);

  while (id < interval.end) {
    const std::size_t key_len = key.size();
    const auto prefix_chars =
        static_cast<unsigned>(std::min<std::size_t>(4, key_len));
    const u128 block = keyspace::keys_of_length(n, prefix_chars);
    const u128 first_of_len =
        keyspace::first_id_of_length(n, static_cast<unsigned>(key_len)) -
        ctx.offset;
    const u128 within = (id - first_of_len) % block;
    const u128 chunk = std::min(interval.end - id, block - within);

    if (fast_path_applicable(ctx.request, key_len)) {
      scan_fast_chunk(ctx, id, chunk, key, hits);
      id += chunk;
      if (id < interval.end) ctx.codec.decode_into(id + ctx.offset, key);
    } else {
      // Generic path: full digest per candidate, compared to every
      // outstanding target.
      u128 togo = chunk;
      while (togo > u128(0)) {
        const std::string message = ctx.request.salt.apply(key);
        if (ctx.request.algorithm == hash::Algorithm::kMd5) {
          const auto digest = hash::Md5::digest(message);
          for (std::size_t t = 0; t < ctx.md5_targets.size(); ++t) {
            if (digest == ctx.md5_targets[t]) {
              hits.push_back({ctx.indices[t], key});
            }
          }
        } else {
          const auto digest = hash::Sha1::digest(message);
          for (std::size_t t = 0; t < ctx.sha1_targets.size(); ++t) {
            if (digest == ctx.sha1_targets[t]) {
              hits.push_back({ctx.indices[t], key});
            }
          }
        }
        ctx.codec.next_inplace(key);
        --togo;
      }
      id += chunk;
    }
  }
}

}  // namespace

void MultiCrackRequest::validate() const {
  GKS_REQUIRE(!target_hexes.empty(), "batch must contain at least one digest");
  GKS_REQUIRE(algorithm == hash::Algorithm::kMd5 ||
                  algorithm == hash::Algorithm::kSha1,
              "batch sweeps support MD5 and SHA1");
  GKS_REQUIRE(min_length >= 1 && min_length <= max_length,
              "invalid key length range");
  GKS_REQUIRE(max_length <= hash::kMaxKernelKeyLength,
              "maximum key length above the kernel limit");
  GKS_REQUIRE(max_length + salt.extra_length() <= 55,
              "key plus salt must fit a single hash block");
  for (const std::string& hex : target_hexes) {
    GKS_REQUIRE(from_hex(hex).size() == hash::digest_size(algorithm),
                "digest length does not match the algorithm");
  }
}

MultiCrackResult multi_crack(const MultiCrackRequest& request,
                             std::size_t threads) {
  request.validate();
  Stopwatch timer;

  MultiCrackResult result;
  result.targets.resize(request.target_hexes.size());
  for (std::size_t i = 0; i < request.target_hexes.size(); ++i) {
    result.targets[i].digest_hex = request.target_hexes[i];
  }

  const u128 space =
      keyspace::space_size(request.charset.size(), request.min_length,
                           request.max_length);
  keyspace::IntervalCursor cursor(keyspace::Interval(u128(0), space));

  ThreadPool pool(threads);
  const u128 slice(static_cast<std::uint64_t>(4) << 20);

  while (!cursor.exhausted() &&
         result.cracked < result.targets.size()) {
    // Rebuild the outstanding-target view for this slice; recovered
    // digests drop out, shrinking the per-candidate compare loop.
    SweepContext ctx{
        request,
        keyspace::KeyCodec(request.charset,
                           keyspace::DigitOrder::kPrefixFastest),
        keyspace::first_id_of_length(request.charset.size(),
                                     request.min_length),
        {},
        {},
        {}};
    for (std::size_t i = 0; i < result.targets.size(); ++i) {
      if (result.targets[i].found) continue;
      ctx.indices.push_back(i);
      if (request.algorithm == hash::Algorithm::kMd5) {
        ctx.md5_targets.push_back(
            hash::Md5Digest::from_hex(request.target_hexes[i]));
      } else {
        ctx.sha1_targets.push_back(
            hash::Sha1Digest::from_hex(request.target_hexes[i]));
      }
    }

    const keyspace::Interval round = cursor.take(slice);
    const auto parts = static_cast<std::size_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(round.size().to_double() / 4096) + 1,
        pool.size()));
    const auto sub = keyspace::split_even(round, parts);

    std::vector<std::vector<Hit>> hits(sub.size());
    pool.parallel_for(sub.size(), [&ctx, &sub, &hits](std::size_t i) {
      scan_interval(ctx, sub[i], hits[i]);
    });

    result.tested += round.size();
    for (const auto& part : hits) {
      for (const Hit& hit : part) {
        // A hit resolves every outstanding target with this digest —
        // duplicate credentials (users sharing a password) are common
        // in real audits and must all be reported.
        const std::string& digest =
            result.targets[hit.target_index].digest_hex;
        for (MultiTargetVerdict& verdict : result.targets) {
          if (!verdict.found && verdict.digest_hex == digest) {
            verdict.found = true;
            verdict.key = hit.key;
            ++result.cracked;
          }
        }
      }
    }
  }

  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace gks::core
