#pragma once

#include <string>
#include <vector>

#include "hash/digest.h"
#include "hash/salted.h"
#include "keyspace/charset.h"
#include "support/uint128.h"

namespace gks::core {

/// A batch hash-reversal job: many digests, one key space, one sweep.
/// This is the efficient form of the auditing session (Section I) —
/// with the multi-target contexts' shared TargetIndex the per-candidate
/// cost is one hash computation plus one O(1) filter probe regardless
/// of target count, so auditing a whole credential store sweeps at
/// essentially the single-target rate (see docs/multi_target.md).
///
/// All targets must share the algorithm, charset, length range and
/// salt scheme; differently-salted credentials need separate sweeps
/// (their message tails differ — that is exactly how salting defeats
/// batch attacks on mismatched salts).
struct MultiCrackRequest {
  hash::Algorithm algorithm = hash::Algorithm::kMd5;
  std::vector<std::string> target_hexes;
  keyspace::Charset charset = keyspace::Charset::alphanumeric();
  unsigned min_length = 1;
  unsigned max_length = 8;
  hash::SaltSpec salt;

  /// Toggles the lane-vectorized multi-target scanners. On by default:
  /// the sweep probes the scalar engine against every lane width the
  /// host supports (the same calibration the single-target ScanPlan
  /// runs) and uses the winner. Off forces the scalar engine —
  /// ablation benches and scalar-vs-lane differential tests.
  bool lane_scanning = true;

  /// Toggles the TargetIndex front gate (direct bit array below the
  /// cache-residency cap, blocked Bloom filter above it). Off makes
  /// every candidate fall through to the exact slot lookup — ablation
  /// benches and gate-on/off differential tests.
  bool filter_gate = true;
  /// Designed false-positive rate of the gate; governs the Bloom
  /// sizing at million-target batches (see docs/multi_target.md).
  double filter_fpr = 1.0 / 64;

  void validate() const;
};

/// Per-target verdict of a batch sweep.
struct MultiTargetVerdict {
  std::string digest_hex;
  bool found = false;
  std::string key;
};

/// Outcome of the sweep.
struct MultiCrackResult {
  std::vector<MultiTargetVerdict> targets;  ///< in request order
  std::size_t cracked = 0;
  u128 tested{0};
  /// Identifier intervals dispatched to workers over the sweep — the
  /// dispatch-granularity observable tools report in --json mode.
  std::uint64_t intervals = 0;
  double elapsed_s = 0;
  /// TargetIndex gate traffic over the sweep: candidates that passed
  /// the front gate, and the subset that survived the 32-bit word
  /// match or slot search yet failed full-digest confirmation. The
  /// ratio against `tested` is the measured gate false-positive rate.
  std::uint64_t filter_gate_hits = 0;
  std::uint64_t filter_false_positives = 0;
};

/// Sweeps the key space once, testing every candidate against all
/// still-outstanding targets; stops early once every digest is
/// recovered. `threads` = 0 uses the hardware concurrency.
MultiCrackResult multi_crack(const MultiCrackRequest& request,
                             std::size_t threads = 0);

/// The digest of `key` under the request's salt scheme, canonical
/// lower-case hex — what a claimed preimage must hash to. This is the
/// verification primitive for untrusted `found` reports: a coordinator
/// recomputes the digest before believing a remote worker
/// (docs/distributed.md, "Failure model").
std::string salted_digest_hex(hash::Algorithm algorithm,
                              const hash::SaltSpec& salt,
                              const std::string& key);

}  // namespace gks::core
