#include "core/multi_sweep.h"

#include <algorithm>
#include <set>
#include <type_traits>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "obs/metrics.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "keyspace/space.h"
#include "support/error.h"
#include "support/hex.h"
#include "support/stopwatch.h"

namespace gks::core {

/// The request's digests parsed once, deduplicated by digest bytes.
/// Request slots sharing a digest (users sharing a password — common
/// in real audits) are resolved through `request_slots` on recovery.
/// add_targets() extends every vector append-only, so unique indices
/// never shift.
struct MultiSweeper::Parsed {
  std::vector<hash::Md5Digest> md5;    ///< unique digests (MD5 runs)
  std::vector<hash::Sha1Digest> sha1;  ///< unique digests (SHA1 runs)
  /// request_slots[u] = indices into request.target_hexes with digest u.
  std::vector<std::vector<std::size_t>> request_slots;
  /// (digest, unique index), sorted by digest — O(log n) lookup for
  /// journal replay and add/remove dedup at million-target batches.
  std::vector<std::pair<hash::Md5Digest, std::size_t>> md5_by_digest;
  std::vector<std::pair<hash::Sha1Digest, std::size_t>> sha1_by_digest;

  std::size_t unique_count() const { return request_slots.size(); }
};

/// An immutable view of the target set plus the fast-path contexts
/// built for it. Scans pin one snapshot for their whole interval.
/// Context slot numbers equal unique-digest indices: the digest
/// vectors keep holes for dead targets, and `retired` lists the slots
/// already detached from the contexts' TargetIndexes. Recoveries and
/// removals never touch a published snapshot — they flip sweeper-side
/// flags — so snapshots stay truly immutable and mark_found is O(1).
struct MultiSweeper::Snapshot {
  std::uint64_t generation = 0;
  std::vector<hash::Md5Digest> md5;
  std::vector<hash::Sha1Digest> sha1;
  /// live[u] == 0 skips u on the generic (non-fast-path) scan; the
  /// fast path relies on `retired` instead.
  std::vector<std::uint8_t> live;
  /// Unique indices retired from the context indexes, ascending.
  std::vector<std::uint32_t> retired;

  /// Fast-path contexts keyed by (key length, fixed tail), built on
  /// demand under the lock — one sorted TargetIndex per tail, shared
  /// by every worker that scans chunks with that tail.
  mutable std::shared_mutex mu;
  mutable std::map<std::pair<std::size_t, std::string>,
                   std::unique_ptr<hash::Md5MultiContext>>
      md5_ctx;
  mutable std::map<std::pair<std::size_t, std::string>,
                   std::unique_ptr<hash::Sha1MultiContext>>
      sha1_ctx;
};

namespace {

/// How many dead slots must pile up since the last published snapshot
/// before compaction clones the contexts without them. Keeps the
/// amortized mark_found cost flat while bounding the dead weight
/// scanned to at most half a context.
constexpr std::size_t kCompactMin = 256;

/// Parses one algorithm's digests and groups duplicates by sorting —
/// no per-entry node allocations, which matters at audit batch sizes.
template <class DigestT>
void dedup_targets(const std::vector<std::string>& hexes,
                   std::vector<DigestT>& unique,
                   std::vector<std::pair<DigestT, std::size_t>>& by_digest,
                   std::vector<std::vector<std::size_t>>& request_slots) {
  std::vector<std::pair<DigestT, std::size_t>> entries;
  entries.reserve(hexes.size());
  for (std::size_t i = 0; i < hexes.size(); ++i) {
    entries.emplace_back(DigestT::from_hex(hexes[i]), i);
  }
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].first != entries[i - 1].first) {
      unique.push_back(entries[i].first);
      by_digest.emplace_back(entries[i].first, unique.size() - 1);
      request_slots.emplace_back();
    }
    request_slots.back().push_back(entries[i].second);
  }
}

/// Unique index of `digest` in the sorted (digest, index) lookup, or
/// npos.
template <class DigestT>
std::size_t find_unique(
    const std::vector<std::pair<DigestT, std::size_t>>& by_digest,
    const DigestT& digest) {
  const auto it = std::lower_bound(
      by_digest.begin(), by_digest.end(), digest,
      [](const auto& entry, const DigestT& d) { return entry.first < d; });
  if (it == by_digest.end() || it->first != digest) {
    return static_cast<std::size_t>(-1);
  }
  return it->second;
}

template <class DigestT>
void insert_by_digest(
    std::vector<std::pair<DigestT, std::size_t>>& by_digest,
    const DigestT& digest, std::size_t unique_index) {
  const auto it = std::lower_bound(
      by_digest.begin(), by_digest.end(), digest,
      [](const auto& entry, const DigestT& d) { return entry.first < d; });
  by_digest.insert(it, {digest, unique_index});
}

bool fast_path_applicable(const MultiCrackRequest& request,
                          std::size_t key_len) {
  if (request.algorithm == hash::Algorithm::kSha256) return false;
  switch (request.salt.position) {
    case hash::SaltPosition::kNone: return true;
    case hash::SaltPosition::kPrefix: return false;
    case hash::SaltPosition::kSuffix: return key_len >= 4;
  }
  return false;
}

/// The fixed message bytes after the candidate's first word: key tail
/// plus any suffix salt.
std::string chunk_tail(const MultiCrackRequest& request,
                       const std::string& first_key) {
  std::string tail;
  if (first_key.size() > 4) tail = first_key.substr(4);
  if (request.salt.position == hash::SaltPosition::kSuffix) {
    tail += request.salt.salt;
  }
  return tail;
}

/// Walks `interval` in the tail-block chunks the scan uses, invoking
/// fn(begin_id, count, first_key). All candidates of one chunk share
/// their length and tail characters (prefix-fastest mapping).
template <class Fn>
void for_each_chunk(const MultiCrackRequest& request,
                    const keyspace::KeyCodec& codec, const u128& offset,
                    const keyspace::Interval& interval, Fn&& fn) {
  const std::size_t n = request.charset.size();
  u128 id = interval.begin;
  std::string key;
  while (id < interval.end) {
    codec.decode_into(id + offset, key);
    const std::size_t key_len = key.size();
    const auto prefix_chars =
        static_cast<unsigned>(std::min<std::size_t>(4, key_len));
    const u128 block = keyspace::keys_of_length(n, prefix_chars);
    const u128 first_of_len =
        keyspace::first_id_of_length(n, static_cast<unsigned>(key_len)) -
        offset;
    const u128 within = (id - first_of_len) % block;
    const u128 chunk = std::min(interval.end - id, block - within);
    if (!fn(id, chunk, key)) return;
    id += chunk;
  }
}

/// Builds one fast-path context: full unique-digest vector (slot ==
/// unique index), then detaches the retired slots from its index.
template <class Ctx, class Targets>
std::unique_ptr<Ctx> make_context(const Targets& targets,
                                  const std::vector<std::uint32_t>& retired,
                                  const std::string& tail,
                                  std::size_t total_len,
                                  const hash::TargetIndex::Config& cfg) {
  auto ctx = std::make_unique<Ctx>(targets, tail, total_len, cfg);
  if (!retired.empty()) ctx->retire_slots(retired);
  return ctx;
}

/// Picks the fast-path engine — scalar multi scan or one of the lane
/// widths — by timing each over a short probe of the request's own
/// keyspace. Returns nullptr for the scalar engine (also when lane
/// scanning is disabled or the fast path never applies).
const hash::simd::ScanKernels* calibrate_multi_kernels(
    const MultiCrackRequest& request,
    const std::vector<hash::Md5Digest>& md5,
    const std::vector<hash::Sha1Digest>& sha1,
    const hash::TargetIndex::Config& index_cfg) {
  if (!request.lane_scanning) return nullptr;

  std::size_t key_len = 0;
  for (std::size_t len = request.min_length; len <= request.max_length;
       ++len) {
    if (fast_path_applicable(request, len)) {
      key_len = len;
      break;
    }
  }
  if (key_len == 0) return nullptr;

  const auto prefix_chars =
      static_cast<unsigned>(std::min<std::size_t>(4, key_len));
  const std::string probe_key(key_len, request.charset.chars()[0]);
  std::string tail = key_len > 4 ? probe_key.substr(4) : std::string();
  if (request.salt.position == hash::SaltPosition::kSuffix) {
    tail += request.salt.salt;
  }
  const std::size_t total_len = key_len + request.salt.extra_length();
  const bool big_endian = request.algorithm == hash::Algorithm::kSha1;
  const hash::PrefixWord0Iterator start(request.charset.chars(), prefix_chars,
                                        key_len, big_endian);

  constexpr std::uint64_t kWarmup = 1024;
  constexpr std::uint64_t kProbe = 8192;
  std::vector<hash::MultiHit> scratch;
  const auto measure = [&](const auto& scan) {
    auto it = start;
    scratch.clear();
    scan(it, kWarmup);
    Stopwatch timer;
    scan(it, kProbe);
    return timer.seconds();
  };

  const hash::simd::ScanKernels* winner = nullptr;
  double best = 0;
  if (request.algorithm == hash::Algorithm::kMd5) {
    const hash::Md5MultiContext ctx(md5, tail, total_len, index_cfg);
    best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
      hash::md5_multi_scan_prefixes(ctx, it, n, scratch);
    });
    for (const auto& k : hash::simd::available_kernels()) {
      const double t =
          measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
            k.md5_multi_scan(ctx, it, n, scratch);
          });
      if (t < best) {
        best = t;
        winner = &k;
      }
    }
  } else {
    const hash::Sha1MultiContext ctx(sha1, tail, total_len, index_cfg);
    best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
      hash::sha1_multi_scan_prefixes(ctx, it, n, scratch);
    });
    for (const auto& k : hash::simd::available_kernels()) {
      const double t =
          measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
            k.sha1_multi_scan(ctx, it, n, scratch);
          });
      if (t < best) {
        best = t;
        winner = &k;
      }
    }
  }
  return winner;
}

/// Looks up (or builds) the fast-path context for one (length, tail)
/// in a snapshot's cache. Builds happen outside the exclusive lock;
/// when two workers race on the same tail, the loser's build is
/// discarded — rare (once per tail per snapshot) and cheaper than
/// serializing every build behind the lock.
template <class CtxMap, class Builder>
const typename CtxMap::mapped_type::element_type& snapshot_context(
    std::shared_mutex& mu, CtxMap& cache,
    const std::pair<std::size_t, std::string>& key, const Builder& build) {
  {
    std::shared_lock lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end() && it->second != nullptr) return *it->second;
  }
  auto fresh = build();
  std::unique_lock lock(mu);
  auto& slot = cache[key];
  if (slot == nullptr) slot = std::move(fresh);
  return *slot;
}

}  // namespace

MultiSweeper::MultiSweeper(MultiCrackRequest request)
    : request_(std::move(request)),
      parsed_(std::make_unique<Parsed>()),
      codec_((request_.validate(), request_.charset),
             keyspace::DigitOrder::kPrefixFastest),
      offset_(keyspace::first_id_of_length(request_.charset.size(),
                                           request_.min_length)),
      space_(keyspace::space_size(request_.charset.size(),
                                  request_.min_length, request_.max_length)) {
  if (request_.algorithm == hash::Algorithm::kMd5) {
    dedup_targets(request_.target_hexes, parsed_->md5, parsed_->md5_by_digest,
                  parsed_->request_slots);
  } else {
    dedup_targets(request_.target_hexes, parsed_->sha1,
                  parsed_->sha1_by_digest, parsed_->request_slots);
  }
  unique_found_.assign(parsed_->unique_count(), false);
  unique_removed_.assign(parsed_->unique_count(), false);
  unique_keys_.assign(parsed_->unique_count(), std::string());
  snap_ = build_snapshot_locked();
  outstanding_count_.store(parsed_->unique_count(),
                           std::memory_order_release);
}

MultiSweeper::~MultiSweeper() = default;

std::size_t MultiSweeper::unique_count() const {
  std::lock_guard lock(state_mu_);
  return parsed_->unique_count();
}

std::size_t MultiSweeper::slot_count() const {
  std::lock_guard lock(state_mu_);
  return request_.target_hexes.size();
}

std::string MultiSweeper::slot_hex(std::size_t slot) const {
  std::lock_guard lock(state_mu_);
  GKS_REQUIRE(slot < request_.target_hexes.size(),
              "request slot out of range");
  return request_.target_hexes[slot];
}

hash::TargetIndex::Config MultiSweeper::index_config() const {
  hash::TargetIndex::Config cfg;
  cfg.fpr = request_.filter_fpr;
  cfg.gate = request_.filter_gate;
  cfg.stats = &index_stats_;
  return cfg;
}

std::shared_ptr<const MultiSweeper::Snapshot>
MultiSweeper::build_snapshot_locked() const {
  auto snap = std::make_shared<Snapshot>();
  snap->generation = generation_.load(std::memory_order_relaxed);
  snap->md5 = parsed_->md5;
  snap->sha1 = parsed_->sha1;
  snap->live.assign(parsed_->unique_count(), 1);
  for (std::size_t u = 0; u < parsed_->unique_count(); ++u) {
    if (unique_found_[u] || unique_removed_[u]) {
      snap->live[u] = 0;
      snap->retired.push_back(static_cast<std::uint32_t>(u));
    }
  }
  return snap;
}

std::shared_ptr<const MultiSweeper::Snapshot> MultiSweeper::snapshot() const {
  std::lock_guard lock(state_mu_);
  return snap_;
}

void MultiSweeper::calibrate() const {
  std::call_once(calibrate_once_, [this] {
    // Calibration probes the snapshot's digest vectors (immutable) so
    // a concurrent add_targets cannot reallocate under it; the gate
    // config matches production, minus the stats sink, so the probe
    // does not pollute the measured traffic.
    const std::shared_ptr<const Snapshot> snap = snapshot();
    auto cfg = index_config();
    cfg.stats = nullptr;
    kernels_ = calibrate_multi_kernels(request_, snap->md5, snap->sha1, cfg);
    if (obs::enabled()) {
      obs::Registry::global().counter("gks_kernel_calibrations_total")
          .add(1);
      obs::Registry::global().gauge("gks_kernel_lane_width")
          .set(kernels_ != nullptr ? kernels_->width : 1);
    }
  });
}

u128 MultiSweeper::scan(const keyspace::Interval& interval,
                        std::vector<SweepHit>& hits,
                        const std::atomic<bool>* interrupt) const {
  if (interval.empty()) return u128(0);
  calibrate();
  const std::shared_ptr<const Snapshot> snap = snapshot();
  // With nothing outstanding every candidate trivially fails the
  // condition; report the interval as fully tested so completion
  // accounting (and journaled coverage) stays exact.
  if (all_found()) return interval.size();

  // Telemetry is batched per scan() call: one clock read and four
  // relaxed atomic adds per multi-chunk scan, never per candidate or
  // per chunk — the ≤1% hot-path budget bench_obs enforces.
  const bool observed = obs::enabled();
  Stopwatch scan_timer;

  u128 tested(0);
  for_each_chunk(
      request_, codec_, offset_, interval,
      [&](u128 id, u128 count, const std::string& first_key) {
        if (interrupt != nullptr &&
            interrupt->load(std::memory_order_acquire)) {
          return false;  // cooperative yield: remainder stays untested
        }
        if (generation_.load(std::memory_order_acquire) !=
            snap->generation) {
          // The target set moved on (add_targets or compaction):
          // yield so the caller re-dispatches the remainder against
          // the current generation. This is the handoff that makes a
          // target added before its covering interval is scanned
          // impossible to miss.
          return false;
        }
        const std::size_t key_len = first_key.size();
        if (fast_path_applicable(request_, key_len)) {
          const auto prefix_chars =
              static_cast<unsigned>(std::min<std::size_t>(4, key_len));
          const auto cache_key =
              std::make_pair(key_len, chunk_tail(request_, first_key));
          const std::size_t total_len =
              key_len + request_.salt.extra_length();

          const bool big_endian =
              request_.algorithm == hash::Algorithm::kSha1;
          hash::PrefixWord0Iterator it(request_.charset.chars(), prefix_chars,
                                       key_len, big_endian);
          std::vector<std::uint32_t> digits(prefix_chars);
          for (unsigned i = 0; i < prefix_chars; ++i) {
            digits[i] = static_cast<std::uint32_t>(
                request_.charset.index_of(first_key[i]));
          }
          it.seek(digits);

          const std::uint64_t n = count.to_u64();
          std::vector<hash::MultiHit> found;
          if (request_.algorithm == hash::Algorithm::kMd5) {
            const auto& multi = snapshot_context(
                snap->mu, snap->md5_ctx, cache_key, [&] {
                  return make_context<hash::Md5MultiContext>(
                      snap->md5, snap->retired, cache_key.second, total_len,
                      index_config());
                });
            if (kernels_ != nullptr) {
              kernels_->md5_multi_scan(multi, it, n, found);
            } else {
              hash::md5_multi_scan_prefixes(multi, it, n, found);
            }
          } else {
            const auto& multi = snapshot_context(
                snap->mu, snap->sha1_ctx, cache_key, [&] {
                  return make_context<hash::Sha1MultiContext>(
                      snap->sha1, snap->retired, cache_key.second, total_len,
                      index_config());
                });
            if (kernels_ != nullptr) {
              kernels_->sha1_multi_scan(multi, it, n, found);
            } else {
              hash::sha1_multi_scan_prefixes(multi, it, n, found);
            }
          }
          // Context slots ARE unique indices; targets found or removed
          // after this snapshot was published may still surface here
          // and are filtered by mark_found.
          for (const hash::MultiHit& h : found) {
            hits.push_back(
                {h.slot, codec_.decode(id + u128(h.offset) + offset_)});
          }
        } else {
          // Generic path: full digest per candidate, compared to every
          // live unique digest.
          std::string key = first_key;
          u128 togo = count;
          while (togo > u128(0)) {
            const std::string message = request_.salt.apply(key);
            if (request_.algorithm == hash::Algorithm::kMd5) {
              const auto digest = hash::Md5::digest(message);
              for (std::size_t t = 0; t < snap->md5.size(); ++t) {
                if (snap->live[t] != 0 && digest == snap->md5[t]) {
                  hits.push_back({t, key});
                }
              }
            } else {
              const auto digest = hash::Sha1::digest(message);
              for (std::size_t t = 0; t < snap->sha1.size(); ++t) {
                if (snap->live[t] != 0 && digest == snap->sha1[t]) {
                  hits.push_back({t, key});
                }
              }
            }
            codec_.next_inplace(key);
            --togo;
          }
        }
        tested += count;
        return true;
      });
  if (observed) {
    static obs::Counter& keys =
        obs::Registry::global().counter("gks_sweep_keys_total");
    static obs::Counter& scans =
        obs::Registry::global().counter("gks_sweep_scans_total");
    static obs::Counter& yields =
        obs::Registry::global().counter("gks_sweep_yields_total");
    static obs::Histogram& scan_s =
        obs::Registry::global().histogram("gks_sweep_scan_seconds");
    keys.add(tested.to_u64());
    scans.add(1);
    if (tested < interval.size()) yields.add(1);
    scan_s.observe(scan_timer.seconds());
  }
  return tested;
}

void MultiSweeper::prepare(const keyspace::Interval& round,
                           ThreadPool& pool) {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  if (all_found()) return;

  std::set<std::pair<std::size_t, std::string>> needed;
  for_each_chunk(request_, codec_, offset_, round,
                 [&](u128 /*id*/, u128 /*count*/, const std::string& key) {
                   if (fast_path_applicable(request_, key.size())) {
                     needed.emplace(key.size(),
                                    chunk_tail(request_, key));
                   }
                   return true;
                 });

  const auto sync = [&](auto& cache, const auto& targets) {
    std::unique_lock lock(snap->mu);
    // Entries the round does not touch are evicted first, keeping
    // memory bounded by one round's tail count when the tail space is
    // genuinely large; a fixed-length sweep cycles through the same
    // tails every round and finds everything already built.
    std::erase_if(cache,
                  [&](const auto& e) { return needed.count(e.first) == 0; });
    std::vector<typename std::decay_t<decltype(cache)>::iterator> fresh;
    for (const auto& k : needed) {
      const auto [it, inserted] = cache.emplace(k, nullptr);
      if (inserted) fresh.push_back(it);
    }
    lock.unlock();
    // Distinct map elements are written concurrently — safe, and the
    // sort behind each TargetIndex is exactly the work worth fanning
    // out at audit-scale target counts.
    pool.parallel_for(fresh.size(), [&](std::size_t i) {
      const auto& [key_len, tail] = fresh[i]->first;
      using Ctx =
          typename std::decay_t<decltype(cache)>::mapped_type::element_type;
      fresh[i]->second = make_context<Ctx>(
          targets, snap->retired, tail,
          key_len + request_.salt.extra_length(), index_config());
    });
  };
  if (request_.algorithm == hash::Algorithm::kMd5) {
    sync(snap->md5_ctx, snap->md5);
  } else {
    sync(snap->sha1_ctx, snap->sha1);
  }
}

void MultiSweeper::maybe_compact_locked() {
  const std::size_t already_retired = snap_->retired.size();
  const std::size_t newly_dead = dead_count_ - already_retired;
  const std::size_t in_index = parsed_->unique_count() - already_retired;
  if (newly_dead < kCompactMin || newly_dead * 2 < in_index) return;

  const auto gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto next = std::make_shared<Snapshot>();
  next->generation = gen;
  next->md5 = parsed_->md5;
  next->sha1 = parsed_->sha1;
  next->live.assign(parsed_->unique_count(), 1);
  std::vector<std::uint32_t> newly_retired;
  for (std::size_t u = 0; u < parsed_->unique_count(); ++u) {
    if (unique_found_[u] || unique_removed_[u]) {
      next->live[u] = 0;
      next->retired.push_back(static_cast<std::uint32_t>(u));
    }
  }
  std::set_difference(next->retired.begin(), next->retired.end(),
                      snap_->retired.begin(), snap_->retired.end(),
                      std::back_inserter(newly_retired));

  // Carry the built contexts over, minus the newly dead slots — an
  // O(live) clone instead of the full revert+sort rebuild.
  {
    std::shared_lock lock(snap_->mu);
    for (const auto& [key, ctx] : snap_->md5_ctx) {
      if (ctx == nullptr) continue;
      auto clone = std::make_unique<hash::Md5MultiContext>(*ctx);
      clone->retire_slots(newly_retired);
      next->md5_ctx.emplace(key, std::move(clone));
    }
    for (const auto& [key, ctx] : snap_->sha1_ctx) {
      if (ctx == nullptr) continue;
      auto clone = std::make_unique<hash::Sha1MultiContext>(*ctx);
      clone->retire_slots(newly_retired);
      next->sha1_ctx.emplace(key, std::move(clone));
    }
  }
  snap_ = std::move(next);
}

std::vector<std::size_t> MultiSweeper::mark_found(std::size_t unique_index,
                                                  const std::string& key) {
  std::lock_guard lock(state_mu_);
  GKS_REQUIRE(unique_index < parsed_->unique_count(),
              "unique digest index out of range");
  // Exactly-once across mutations: duplicates from stale snapshots and
  // hits on targets removed mid-flight both resolve to "not ours".
  if (unique_found_[unique_index] || unique_removed_[unique_index]) {
    return {};
  }
  unique_found_[unique_index] = true;
  unique_keys_[unique_index] = key;
  found_log_.emplace_back(
      request_.target_hexes[parsed_->request_slots[unique_index].front()],
      key);
  ++dead_count_;
  outstanding_count_.fetch_sub(1, std::memory_order_acq_rel);
  maybe_compact_locked();
  return parsed_->request_slots[unique_index];
}

std::vector<std::size_t> MultiSweeper::mark_found_hex(
    const std::string& digest_hex, const std::string& key) {
  std::size_t u = static_cast<std::size_t>(-1);
  {
    std::lock_guard lock(state_mu_);
    if (request_.algorithm == hash::Algorithm::kMd5) {
      u = find_unique(parsed_->md5_by_digest,
                      hash::Md5Digest::from_hex(digest_hex));
    } else {
      u = find_unique(parsed_->sha1_by_digest,
                      hash::Sha1Digest::from_hex(digest_hex));
    }
  }
  if (u == static_cast<std::size_t>(-1)) return {};
  return mark_found(u, key);
}

void MultiSweeper::validate_target_hexes(
    const std::vector<std::string>& hexes) const {
  for (const std::string& hex : hexes) {
    if (request_.algorithm == hash::Algorithm::kMd5) {
      (void)hash::Md5Digest::from_hex(hex);
    } else {
      (void)hash::Sha1Digest::from_hex(hex);
    }
  }
}

TargetAddOutcome MultiSweeper::add_targets(
    const std::vector<std::string>& hexes) {
  TargetAddOutcome out;
  if (hexes.empty()) return out;
  validate_target_hexes(hexes);  // throws before any state changes

  std::lock_guard lock(state_mu_);
  const std::size_t first_new_unique = parsed_->unique_count();
  bool need_full_rebuild = false;
  bool reattached = false;
  for (const std::string& hex : hexes) {
    const std::size_t slot = request_.target_hexes.size();
    std::size_t u;
    if (request_.algorithm == hash::Algorithm::kMd5) {
      const auto digest = hash::Md5Digest::from_hex(hex);
      u = find_unique(parsed_->md5_by_digest, digest);
      if (u == static_cast<std::size_t>(-1)) {
        u = parsed_->unique_count();
        parsed_->md5.push_back(digest);
        insert_by_digest(parsed_->md5_by_digest, digest, u);
        parsed_->request_slots.emplace_back();
      }
    } else {
      const auto digest = hash::Sha1Digest::from_hex(hex);
      u = find_unique(parsed_->sha1_by_digest, digest);
      if (u == static_cast<std::size_t>(-1)) {
        u = parsed_->unique_count();
        parsed_->sha1.push_back(digest);
        insert_by_digest(parsed_->sha1_by_digest, digest, u);
        parsed_->request_slots.emplace_back();
      }
    }
    request_.target_hexes.push_back(hex);
    parsed_->request_slots[u].push_back(slot);
    out.slots.push_back(slot);

    if (u >= first_new_unique) {
      // Genuinely new digest (first occurrence in this batch).
      if (u >= unique_found_.size()) {
        unique_found_.push_back(false);
        unique_removed_.push_back(false);
        unique_keys_.emplace_back();
        outstanding_count_.fetch_add(1, std::memory_order_acq_rel);
        ++out.attached;
      }
    } else if (unique_found_[u]) {
      ++out.already_found;
    } else if (unique_removed_[u]) {
      unique_removed_[u] = false;
      --dead_count_;
      outstanding_count_.fetch_add(1, std::memory_order_acq_rel);
      ++out.attached;
      reattached = true;
      // A re-attached digest that the current snapshot's contexts
      // already retired needs a from-scratch index.
      if (std::binary_search(snap_->retired.begin(), snap_->retired.end(),
                             static_cast<std::uint32_t>(u))) {
        need_full_rebuild = true;
      }
    }
    // else: still outstanding — the new slot shares its fate.
  }

  const std::size_t new_uniques = parsed_->unique_count() - first_new_unique;
  if (new_uniques == 0 && !need_full_rebuild) {
    // Dup-of-outstanding or reattach-before-retirement: every published
    // context still indexes the digest, so the current generation keeps
    // scanning correctly. Found/removed flags already updated.
    (void)reattached;
    return out;
  }

  const auto gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (need_full_rebuild) {
    // build_snapshot_locked reads generation_ — already bumped.
    snap_ = build_snapshot_locked();
    return out;
  }

  // Incremental publish: clone the cached contexts and extend them
  // with the new digests — the appended slots continue the unique
  // numbering, so no context rebuild and no renumbering.
  auto next = std::make_shared<Snapshot>();
  next->generation = gen;
  next->md5 = parsed_->md5;
  next->sha1 = parsed_->sha1;
  next->live.assign(parsed_->unique_count(), 1);
  for (std::size_t u = 0; u < parsed_->unique_count(); ++u) {
    if (unique_found_[u] || unique_removed_[u]) next->live[u] = 0;
  }
  next->retired = snap_->retired;
  {
    std::shared_lock lock(snap_->mu);
    if (request_.algorithm == hash::Algorithm::kMd5) {
      const std::span<const hash::Md5Digest> fresh(
          parsed_->md5.data() + first_new_unique, new_uniques);
      for (const auto& [key, ctx] : snap_->md5_ctx) {
        if (ctx == nullptr) continue;
        auto clone = std::make_unique<hash::Md5MultiContext>(*ctx);
        clone->add_targets(fresh);
        next->md5_ctx.emplace(key, std::move(clone));
      }
    } else {
      const std::span<const hash::Sha1Digest> fresh(
          parsed_->sha1.data() + first_new_unique, new_uniques);
      for (const auto& [key, ctx] : snap_->sha1_ctx) {
        if (ctx == nullptr) continue;
        auto clone = std::make_unique<hash::Sha1MultiContext>(*ctx);
        clone->add_targets(fresh);
        next->sha1_ctx.emplace(key, std::move(clone));
      }
    }
  }
  snap_ = std::move(next);
  return out;
}

std::size_t MultiSweeper::remove_targets(
    const std::vector<std::string>& hexes) {
  if (hexes.empty()) return 0;
  validate_target_hexes(hexes);

  std::lock_guard lock(state_mu_);
  std::size_t detached = 0;
  for (const std::string& hex : hexes) {
    std::size_t u;
    if (request_.algorithm == hash::Algorithm::kMd5) {
      u = find_unique(parsed_->md5_by_digest,
                      hash::Md5Digest::from_hex(hex));
    } else {
      u = find_unique(parsed_->sha1_by_digest,
                      hash::Sha1Digest::from_hex(hex));
    }
    if (u == static_cast<std::size_t>(-1)) continue;
    if (unique_found_[u] || unique_removed_[u]) continue;
    unique_removed_[u] = true;
    ++dead_count_;
    outstanding_count_.fetch_sub(1, std::memory_order_acq_rel);
    ++detached;
  }
  // Removal needs no generation bump for correctness — mark_found
  // filters hits on removed digests — but dead weight is compacted
  // away once it piles up.
  if (detached > 0) maybe_compact_locked();
  return detached;
}

SweepFilterStats MultiSweeper::filter_stats() const {
  SweepFilterStats s;
  s.gate_hits = index_stats_.gate_hits.load(std::memory_order_relaxed);
  s.false_positives =
      index_stats_.false_positives.load(std::memory_order_relaxed);
  return s;
}

void MultiSweeper::fill_results(MultiCrackResult& out) const {
  std::lock_guard lock(state_mu_);
  out.targets.resize(request_.target_hexes.size());
  out.cracked = 0;
  for (std::size_t i = 0; i < request_.target_hexes.size(); ++i) {
    out.targets[i].digest_hex = request_.target_hexes[i];
  }
  for (std::size_t u = 0; u < parsed_->unique_count(); ++u) {
    if (!unique_found_[u]) continue;
    for (const std::size_t slot : parsed_->request_slots[u]) {
      out.targets[slot].found = true;
      out.targets[slot].key = unique_keys_[u];
      ++out.cracked;
    }
  }
}

std::vector<std::pair<std::string, std::string>> MultiSweeper::found_so_far()
    const {
  std::lock_guard lock(state_mu_);
  return found_log_;
}

}  // namespace gks::core
