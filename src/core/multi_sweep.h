#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/multi_crack.h"
#include "hash/multi_crack.h"
#include "hash/simd/dispatch.h"
#include "keyspace/codec.h"
#include "keyspace/interval.h"
#include "support/thread_pool.h"
#include "support/uint128.h"

namespace gks::core {

/// One hit from a sweep scan: which unique digest matched and the
/// recovered key. `unique_index` is stable for the sweeper's lifetime
/// (indices into the deduplicated digest set), so hits from stale
/// snapshots remain meaningful after other targets were recovered.
struct SweepHit {
  std::size_t unique_index;
  std::string key;
};

/// The multi-target sweep engine behind multi_crack(), factored out so
/// long-lived callers — the job service above all — can drive it one
/// bounded interval at a time instead of one synchronous whole-space
/// call. Responsibilities:
///
///  - parse + deduplicate the request's digests once (users sharing a
///    password share a unique digest; see docs/multi_target.md);
///  - scan arbitrary generator-relative intervals against the
///    *outstanding* targets through the calibrated scalar-or-lane
///    kernels, with a cooperative interrupt check between tail-block
///    chunks (the preemption hook the fair-share scheduler relies on);
///  - account recoveries (mark_found) and expose per-slot results.
///
/// Thread model: scan() is const and safe to call concurrently from
/// many workers — each call pins an immutable snapshot of the
/// outstanding-target set (per-snapshot fast-path context caches are
/// built on demand under a shared_mutex). mark_found() may run
/// concurrently with scans; it atomically publishes a shrunk snapshot,
/// and scans still on the old snapshot at worst re-report an
/// already-found digest, which mark_found deduplicates. prepare() is
/// the one exception: it prunes cache entries, so it must not overlap
/// scan() calls (multi_crack alternates prepare/scan phases; the job
/// service never calls it).
class MultiSweeper {
 public:
  /// Validates the request and parses the targets. Does not calibrate:
  /// the first scan (or an explicit calibrate()) does, once.
  explicit MultiSweeper(MultiCrackRequest request);
  ~MultiSweeper();

  MultiSweeper(const MultiSweeper&) = delete;
  MultiSweeper& operator=(const MultiSweeper&) = delete;

  const MultiCrackRequest& request() const { return request_; }

  /// Total candidates, and the dense identifier interval [0, size).
  u128 space_size() const { return space_; }
  keyspace::Interval space_interval() const {
    return keyspace::Interval(u128(0), space_);
  }

  /// Deduplicated digest count / digests not yet recovered.
  std::size_t unique_count() const;
  std::size_t outstanding_count() const {
    return outstanding_count_.load(std::memory_order_acquire);
  }
  bool all_found() const { return outstanding_count() == 0; }

  /// Pins the scalar-vs-lane engine choice with a short measured probe
  /// (idempotent, thread-safe; scan() triggers it lazily otherwise).
  void calibrate() const;

  /// Scans [interval.begin, interval.end) of generator-relative ids on
  /// the calling thread, appending hits. Returns the number of
  /// candidates actually tested: equal to interval.size() on a full
  /// scan, smaller when `interrupt` became true between chunks — the
  /// untested remainder is [begin + returned, end), which the caller
  /// re-dispatches later. A null interrupt never yields.
  u128 scan(const keyspace::Interval& interval, std::vector<SweepHit>& hits,
            const std::atomic<bool>* interrupt = nullptr) const;

  /// Prebuilds the fast-path contexts `round` touches, in parallel on
  /// the pool, and evicts entries the round no longer needs. Purely a
  /// throughput optimization for phase-structured callers; must not
  /// run concurrently with scan().
  void prepare(const keyspace::Interval& round, ThreadPool& pool);

  /// Marks a unique digest recovered and publishes the shrunk
  /// outstanding snapshot. Returns the request-slot indices this
  /// recovery resolves — empty if it was already recorded (duplicate
  /// hit from a stale snapshot). Thread-safe.
  std::vector<std::size_t> mark_found(std::size_t unique_index,
                                      const std::string& key);

  /// mark_found by digest hex instead of unique index — journal replay
  /// on resume, where only the recorded (digest, key) pair is known.
  /// Returns the resolved request slots; empty when the hex matches no
  /// target or the digest was already recovered. Thread-safe.
  std::vector<std::size_t> mark_found_hex(const std::string& digest_hex,
                                          const std::string& key);

  /// Digest hex (as given in the request) and recovery state per
  /// request slot; used to fill results incrementally.
  std::size_t slot_count() const { return request_.target_hexes.size(); }

  /// Writes per-slot verdicts + cracked count into `out.targets` /
  /// `out.cracked` (other fields untouched). Thread-safe.
  void fill_results(MultiCrackResult& out) const;

  /// The recovered (digest_hex, key) pairs so far, in recovery order.
  /// Thread-safe; returns a copy.
  std::vector<std::pair<std::string, std::string>> found_so_far() const;

 private:
  struct Snapshot;
  struct Parsed;

  std::shared_ptr<const Snapshot> snapshot() const;
  std::shared_ptr<const Snapshot> build_snapshot() const;

  MultiCrackRequest request_;
  std::unique_ptr<Parsed> parsed_;
  keyspace::KeyCodec codec_;
  u128 offset_;  ///< global codec id of generator-relative id 0
  u128 space_;

  mutable std::once_flag calibrate_once_;
  mutable const hash::simd::ScanKernels* kernels_ = nullptr;

  mutable std::mutex state_mu_;  ///< guards found state + snapshot swap
  std::vector<bool> unique_found_;
  std::vector<std::string> unique_keys_;
  std::vector<std::pair<std::string, std::string>> found_log_;
  std::shared_ptr<const Snapshot> snap_;
  std::atomic<std::size_t> outstanding_count_{0};
};

}  // namespace gks::core
