#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/multi_crack.h"
#include "hash/multi_crack.h"
#include "hash/simd/dispatch.h"
#include "keyspace/codec.h"
#include "keyspace/interval.h"
#include "support/thread_pool.h"
#include "support/uint128.h"

namespace gks::core {

/// One hit from a sweep scan: which unique digest matched and the
/// recovered key. `unique_index` is stable for the sweeper's lifetime
/// (indices into the deduplicated digest set, extended append-only by
/// add_targets), so hits from stale snapshots remain meaningful after
/// other targets were recovered or the set was mutated.
struct SweepHit {
  std::size_t unique_index;
  std::string key;
};

/// Aggregate TargetIndex gate traffic across every context the sweeper
/// built (see hash::TargetIndexStats for the two counters' meaning).
struct SweepFilterStats {
  std::uint64_t gate_hits = 0;
  std::uint64_t false_positives = 0;
};

/// What one add_targets() call did.
struct TargetAddOutcome {
  /// Request-slot indices assigned to the added hexes, in call order.
  std::vector<std::size_t> slots;
  /// Unique digests that became outstanding (new, or re-attached after
  /// an earlier remove_targets).
  std::size_t attached = 0;
  /// Added slots whose digest was already recovered — they resolve
  /// immediately and never hit the scan path.
  std::size_t already_found = 0;
};

/// The multi-target sweep engine behind multi_crack(), factored out so
/// long-lived callers — the job service above all — can drive it one
/// bounded interval at a time instead of one synchronous whole-space
/// call. Responsibilities:
///
///  - parse + deduplicate the request's digests once (users sharing a
///    password share a unique digest; see docs/multi_target.md);
///  - scan arbitrary generator-relative intervals against the
///    *outstanding* targets through the calibrated scalar-or-lane
///    kernels, with a cooperative interrupt check between tail-block
///    chunks (the preemption hook the fair-share scheduler relies on);
///  - account recoveries (mark_found) and expose per-slot results;
///  - mutate the target set while sweeps run (add_targets /
///    remove_targets) with generation handoff: mutations publish a new
///    snapshot generation, and in-flight scans yield at their next
///    chunk boundary so the caller re-dispatches the remainder against
///    the current target set. A target added before its covering
///    interval is scanned is therefore never missed.
///
/// Thread model: scan() is const and safe to call concurrently from
/// many workers — each call pins an immutable snapshot of the target
/// set (per-snapshot fast-path context caches are built on demand
/// under a shared_mutex). Context slot numbers ARE unique-digest
/// indices: recoveries and removals only flip flags and never renumber
/// or rebuild contexts, so mark_found costs O(1) even at millions of
/// targets. Once enough targets are dead the sweeper compacts — it
/// clones the cached contexts minus the dead slots and publishes them
/// as a new generation. Scans still on an old snapshot at worst
/// re-report an already-found (or removed) digest, which mark_found
/// filters. prepare() is the one exception: it prunes cache entries,
/// so it must not overlap scan() calls (multi_crack alternates
/// prepare/scan phases; the job service never calls it).
class MultiSweeper {
 public:
  /// Validates the request and parses the targets. Does not calibrate:
  /// the first scan (or an explicit calibrate()) does, once.
  explicit MultiSweeper(MultiCrackRequest request);
  ~MultiSweeper();

  MultiSweeper(const MultiSweeper&) = delete;
  MultiSweeper& operator=(const MultiSweeper&) = delete;

  /// The request as submitted plus any hexes appended by add_targets.
  /// Not safe to read concurrently with add_targets — prefer
  /// slot_hex() / slot_count() from other threads.
  const MultiCrackRequest& request() const { return request_; }

  /// Total candidates, and the dense identifier interval [0, size).
  u128 space_size() const { return space_; }
  keyspace::Interval space_interval() const {
    return keyspace::Interval(u128(0), space_);
  }

  /// Deduplicated digest count / digests not yet recovered or removed.
  std::size_t unique_count() const;
  std::size_t outstanding_count() const {
    return outstanding_count_.load(std::memory_order_acquire);
  }
  bool all_found() const { return outstanding_count() == 0; }

  /// Pins the scalar-vs-lane engine choice with a short measured probe
  /// (idempotent, thread-safe; scan() triggers it lazily otherwise).
  void calibrate() const;

  /// Scans [interval.begin, interval.end) of generator-relative ids on
  /// the calling thread, appending hits. Returns the number of
  /// candidates actually tested: equal to interval.size() on a full
  /// scan, smaller when `interrupt` became true between chunks OR the
  /// target set was mutated to a new generation mid-scan — either way
  /// the untested remainder is [begin + returned, end), which the
  /// caller re-dispatches later (against the new target set, closing
  /// the added-target window). A null interrupt never yields on
  /// interruption, but generation handoff still applies.
  u128 scan(const keyspace::Interval& interval, std::vector<SweepHit>& hits,
            const std::atomic<bool>* interrupt = nullptr) const;

  /// Prebuilds the fast-path contexts `round` touches, in parallel on
  /// the pool, and evicts entries the round no longer needs. Purely a
  /// throughput optimization for phase-structured callers; must not
  /// run concurrently with scan().
  void prepare(const keyspace::Interval& round, ThreadPool& pool);

  /// Marks a unique digest recovered. Returns the request-slot indices
  /// this recovery resolves — empty if it was already recorded
  /// (duplicate hit from a stale snapshot) or the digest was removed,
  /// which is what keeps found accounting exactly-once across
  /// mutations. Thread-safe, O(1) amortized (flag flip; occasional
  /// compaction).
  std::vector<std::size_t> mark_found(std::size_t unique_index,
                                      const std::string& key);

  /// mark_found by digest hex instead of unique index — journal replay
  /// on resume, where only the recorded (digest, key) pair is known.
  /// Returns the resolved request slots; empty when the hex matches no
  /// target or the digest was already recovered. Thread-safe.
  std::vector<std::size_t> mark_found_hex(const std::string& digest_hex,
                                          const std::string& key);

  /// Attaches more target hashes to the live sweep. Duplicates of
  /// existing targets share their unique digest (and resolve instantly
  /// when it was already recovered); digests removed earlier are
  /// re-attached; genuinely new digests extend the unique set and the
  /// published contexts. Throws InvalidArgument on malformed hexes
  /// before any state changes. Thread-safe.
  TargetAddOutcome add_targets(const std::vector<std::string>& hexes);

  /// Detaches target hashes: their digests stop being reported and no
  /// longer count as outstanding (unknown or already-resolved hexes
  /// are ignored). Returns the number of unique digests detached.
  /// Thread-safe.
  std::size_t remove_targets(const std::vector<std::string>& hexes);

  /// Validation of add/remove input without side effects — callers
  /// that journal the mutation first use this to avoid journaling a
  /// doomed record. Throws InvalidArgument on malformed hexes.
  void validate_target_hexes(const std::vector<std::string>& hexes) const;

  /// Monotone epoch of the published target-set snapshot; bumped by
  /// add_targets (always) and by compaction. scan() yields when the
  /// generation moves past the snapshot it pinned.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Aggregate gate traffic so far (all contexts, all generations).
  SweepFilterStats filter_stats() const;

  /// Digest hex and recovery state per request slot; used to fill
  /// results incrementally.
  std::size_t slot_count() const;
  /// The digest hex occupying one request slot. Thread-safe (unlike
  /// request()).
  std::string slot_hex(std::size_t slot) const;

  /// Writes per-slot verdicts + cracked count into `out.targets` /
  /// `out.cracked` (other fields untouched). Thread-safe.
  void fill_results(MultiCrackResult& out) const;

  /// The recovered (digest_hex, key) pairs so far, in recovery order.
  /// Thread-safe; returns a copy.
  std::vector<std::pair<std::string, std::string>> found_so_far() const;

 private:
  struct Snapshot;
  struct Parsed;

  hash::TargetIndex::Config index_config() const;
  std::shared_ptr<const Snapshot> snapshot() const;
  /// Full snapshot rebuild (state_mu_ held): every dead unique is
  /// retired from the context indexes, caches start empty.
  std::shared_ptr<const Snapshot> build_snapshot_locked() const;
  /// Publishes a compacted clone of the current snapshot when enough
  /// dead slots accumulated since the last one (state_mu_ held).
  void maybe_compact_locked();

  MultiCrackRequest request_;
  std::unique_ptr<Parsed> parsed_;
  keyspace::KeyCodec codec_;
  u128 offset_;  ///< global codec id of generator-relative id 0
  u128 space_;

  mutable std::once_flag calibrate_once_;
  mutable const hash::simd::ScanKernels* kernels_ = nullptr;
  mutable hash::TargetIndexStats index_stats_;

  mutable std::mutex state_mu_;  ///< guards found/removed state + snapshot
  std::vector<bool> unique_found_;
  std::vector<bool> unique_removed_;
  std::vector<std::string> unique_keys_;
  std::vector<std::pair<std::string, std::string>> found_log_;
  std::size_t dead_count_ = 0;  ///< found + removed uniques
  std::shared_ptr<const Snapshot> snap_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> outstanding_count_{0};
};

}  // namespace gks::core
