#include "core/nonce_search.h"

#include <atomic>
#include <algorithm>

#include "support/error.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace gks::core {

BlockHeader BlockHeader::sample(std::uint64_t seed) {
  BlockHeader h;
  SplitMix64 rng(seed);
  for (auto& b : h.bytes) b = static_cast<std::uint8_t>(rng());
  h.set_nonce(0);
  return h;
}

hash::Sha256Digest block_pow_hash(const BlockHeader& header) {
  const auto inner = hash::Sha256::digest(
      std::span<const std::uint8_t>(header.bytes.data(), header.bytes.size()));
  return hash::Sha256::digest(std::span<const std::uint8_t>(inner.bytes));
}

unsigned leading_zero_bits(const hash::Sha256Digest& digest) {
  unsigned zeros = 0;
  for (std::uint8_t byte : digest.bytes) {
    if (byte == 0) {
      zeros += 8;
      continue;
    }
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) return zeros;
      ++zeros;
    }
  }
  return zeros;
}

MiningResult mine_nonce(const BlockHeader& header, unsigned target_zero_bits,
                        std::uint64_t begin, std::uint64_t end,
                        std::size_t threads) {
  GKS_REQUIRE(begin <= end, "invalid nonce range");
  GKS_REQUIRE(end <= (1ull << 32), "nonces are 32-bit values");
  GKS_REQUIRE(target_zero_bits <= 256, "target exceeds digest size");

  MiningResult result;
  Stopwatch timer;
  if (begin == end) return result;

  // Midstate of the first 64 header bytes — shared by every nonce.
  hash::Sha256 prefix;
  prefix.update(
      std::span<const std::uint8_t>(header.bytes.data(), 64));
  const auto midstate = prefix.midstate();

  ThreadPool pool(threads);
  const std::size_t workers = pool.size();
  std::atomic<std::uint64_t> best_nonce{~0ull};
  std::atomic<std::uint64_t> tested{0};

  pool.parallel_for(workers, [&](std::size_t w) {
    // Strided partition keeps all threads near the range start, so
    // the first satisfying nonce is found quickly in expectation.
    std::array<std::uint8_t, 16> tail;
    std::copy(header.bytes.begin() + 64, header.bytes.end(), tail.begin());
    std::uint64_t local_tested = 0;
    for (std::uint64_t nonce = begin + w; nonce < end; nonce += workers) {
      if (best_nonce.load(std::memory_order_relaxed) < nonce) break;
      tail[12] = static_cast<std::uint8_t>(nonce);
      tail[13] = static_cast<std::uint8_t>(nonce >> 8);
      tail[14] = static_cast<std::uint8_t>(nonce >> 16);
      tail[15] = static_cast<std::uint8_t>(nonce >> 24);

      hash::Sha256 h;
      h.restore(midstate, 64);
      h.update(std::span<const std::uint8_t>(tail));
      const auto inner = h.finalize();
      const auto outer =
          hash::Sha256::digest(std::span<const std::uint8_t>(inner.bytes));
      ++local_tested;
      if (leading_zero_bits(outer) >= target_zero_bits) {
        // Keep the smallest satisfying nonce for determinism.
        std::uint64_t expected = best_nonce.load();
        while (nonce < expected &&
               !best_nonce.compare_exchange_weak(expected, nonce)) {
        }
        break;
      }
    }
    tested.fetch_add(local_tested);
  });

  result.tested = tested.load();
  result.elapsed_s = timer.seconds();
  if (best_nonce.load() != ~0ull) {
    result.nonce = static_cast<std::uint32_t>(best_nonce.load());
  }
  return result;
}

}  // namespace gks::core
