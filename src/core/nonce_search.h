#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "hash/sha256.h"
#include "support/thread_pool.h"

namespace gks::core {

/// An 80-byte block header in the Bitcoin wire layout: the nonce field
/// occupies bytes 76..79. Only the pieces the search needs are modeled
/// (version/prev-hash/merkle-root/time/bits are opaque bytes here).
struct BlockHeader {
  std::array<std::uint8_t, 80> bytes{};

  void set_nonce(std::uint32_t nonce) {
    bytes[76] = static_cast<std::uint8_t>(nonce);
    bytes[77] = static_cast<std::uint8_t>(nonce >> 8);
    bytes[78] = static_cast<std::uint8_t>(nonce >> 16);
    bytes[79] = static_cast<std::uint8_t>(nonce >> 24);
  }

  /// Deterministic pseudo-header for examples/tests.
  static BlockHeader sample(std::uint64_t seed);
};

/// Double SHA256 of the header — the Bitcoin proof-of-work function.
hash::Sha256Digest block_pow_hash(const BlockHeader& header);

/// Counts leading zero bits of a digest (big-endian bit order).
unsigned leading_zero_bits(const hash::Sha256Digest& digest);

/// Result of a nonce search.
struct MiningResult {
  std::optional<std::uint32_t> nonce;  ///< first satisfying nonce
  std::uint64_t tested = 0;
  double elapsed_s = 0;
};

/// Exhaustive nonce search (the Section I motivation): find a nonce in
/// [begin, end) such that SHA256d(header) has at least
/// `target_zero_bits` leading zeros. Caches the midstate of the first
/// 64-byte block — the paper's "save the intermediate result, process
/// only the last block" optimization — and fans out across `threads`.
MiningResult mine_nonce(const BlockHeader& header, unsigned target_zero_bits,
                        std::uint64_t begin, std::uint64_t end,
                        std::size_t threads = 0);

}  // namespace gks::core
