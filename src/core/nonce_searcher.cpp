#include "core/nonce_searcher.h"

#include <algorithm>

#include "support/error.h"
#include "support/stopwatch.h"

namespace gks::core {

NonceSearcher::NonceSearcher(BlockHeader header, unsigned target_zero_bits,
                             std::size_t threads)
    : header_(header), target_zero_bits_(target_zero_bits),
      threads_(threads) {
  GKS_REQUIRE(target_zero_bits <= 256, "target exceeds digest size");
}

dispatch::ScanOutcome NonceSearcher::scan(
    const keyspace::Interval& interval) {
  GKS_REQUIRE(interval.end <= u128(1ull << 32),
              "nonce identifiers are 32-bit values");
  Stopwatch timer;
  dispatch::ScanOutcome out;
  if (interval.empty()) return out;

  // Collect every satisfying nonce in the interval, not just the
  // first: the dispatcher decides whether one suffices.
  std::uint64_t begin = interval.begin.to_u64();
  const std::uint64_t end = interval.end.to_u64();
  while (begin < end) {
    const MiningResult r =
        mine_nonce(header_, target_zero_bits_, begin, end, threads_);
    if (!r.nonce.has_value()) break;
    dispatch::Found f;
    f.id = u128(*r.nonce);
    f.value = std::to_string(*r.nonce);
    out.found.push_back(std::move(f));
    begin = *r.nonce + 1;
  }
  out.tested = interval.size();
  out.busy_virtual_s = std::max(timer.seconds(), 1e-9);
  return out;
}

double NonceSearcher::theoretical_throughput() const {
  if (calibrated_peak_ > 0) return calibrated_peak_;
  Stopwatch timer;
  // Impossible target: pure scan speed over a small range.
  const std::uint64_t probe = 1u << 15;
  (void)mine_nonce(header_, 256, 0, probe, threads_);
  calibrated_peak_ = probe / std::max(timer.seconds(), 1e-9);
  return calibrated_peak_;
}

std::string NonceSearcher::description() const {
  return "SHA256d nonce search (>= " + std::to_string(target_zero_bits_) +
         " zero bits)";
}

}  // namespace gks::core
