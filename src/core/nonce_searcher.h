#pragma once

#include "core/nonce_search.h"
#include "dispatch/search.h"
#include "keyspace/interval.h"

namespace gks::core {

/// Adapts the SHA256d nonce search to the dispatcher's
/// IntervalSearcher interface, demonstrating the Section III claim
/// that the pattern "can be applied to other exhaustive search
/// strategies" beyond password cracking: identifiers are nonces, the
/// condition is the leading-zero-bits test, and the same tuning /
/// balancing / hierarchical dispatch machinery applies unchanged.
///
/// Unlike password cracking, the test function here returns 1 for
/// *any* satisfying nonce (there can be many), so the dispatcher's
/// merge step — collect all finds, keep searching or stop on first —
/// is exercised with a non-unique solution set.
class NonceSearcher final : public dispatch::IntervalSearcher {
 public:
  /// `threads` bounds the host threads used per scan (0 = hardware).
  NonceSearcher(BlockHeader header, unsigned target_zero_bits,
                std::size_t threads = 0);

  /// Interval identifiers are nonce values; both ends must fit 32 bits.
  dispatch::ScanOutcome scan(const keyspace::Interval& interval) override;

  bool is_simulated() const override { return false; }
  double theoretical_throughput() const override;
  std::string description() const override;

 private:
  BlockHeader header_;
  unsigned target_zero_bits_;
  std::size_t threads_;
  mutable double calibrated_peak_ = 0;
};

}  // namespace gks::core
