#include "core/scan_engine.h"

#include <algorithm>
#include <string>

#include "hash/lane_scan.h"
#include "keyspace/space.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace gks::core {
namespace {

/// Drives one scan engine over `count` candidates, consuming hits so an
/// early return cannot shorten the measured work, and returns the
/// elapsed seconds. `scan` is any callable with md5_scan_prefixes
/// semantics bound to a context.
template <class ScanFn>
double time_probe(hash::PrefixWord0Iterator it, std::uint64_t count,
                  const ScanFn& scan) {
  Stopwatch timer;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const auto hit = scan(it, remaining);
    if (!hit) break;
    remaining -= *hit + 1;
  }
  return timer.seconds();
}

}  // namespace

ScanPlan::ScanPlan(CrackRequest request)
    : request_(std::move(request)),
      codec_(request_.charset, keyspace::DigitOrder::kPrefixFastest),
      offset_(keyspace::first_id_of_length(request_.charset.size(),
                                           request_.min_length)),
      space_size_(request_.space_size()) {
  request_.validate();
  if (request_.algorithm == hash::Algorithm::kMd5) {
    md5_target_ = hash::Md5Digest::from_hex(request_.target_hex);
  } else if (request_.algorithm == hash::Algorithm::kSha1) {
    sha1_target_ = hash::Sha1Digest::from_hex(request_.target_hex);
  }
}

u128 ScanPlan::id_of(const std::string& key) const {
  GKS_REQUIRE(key.size() >= request_.min_length &&
                  key.size() <= request_.max_length,
              "key length outside the requested range");
  const u128 global = codec_.encode(key);
  return global - offset_;
}

const hash::simd::ScanKernels* ScanPlan::lane_kernels() const {
  if (!lanes_enabled_) return nullptr;
  if (lane_calibrated_.load(std::memory_order_acquire)) {
    return lane_choice_.load(std::memory_order_relaxed);
  }
  return &hash::simd::best_kernels();
}

const hash::simd::ScanKernels* ScanPlan::calibrate_lane_choice() const {
  if (!lane_calibrated_.load(std::memory_order_acquire)) {
    // Representative fast-path key length (the probe is moot when the
    // fast path never applies — the generic path hashes full keys).
    std::size_t key_len = 0;
    for (std::size_t len = request_.min_length; len <= request_.max_length;
         ++len) {
      if (fast_path_applicable(len)) {
        key_len = len;
        break;
      }
    }

    const hash::simd::ScanKernels* winner = nullptr;
    if (key_len > 0) {
      const unsigned prefix_chars =
          static_cast<unsigned>(std::min<std::size_t>(4, key_len));
      const std::string probe_key(key_len, request_.charset.chars()[0]);
      std::string tail = key_len > 4 ? probe_key.substr(4) : std::string();
      if (request_.salt.position == hash::SaltPosition::kSuffix) {
        tail += request_.salt.salt;
      }
      const std::size_t total_len = key_len + request_.salt.extra_length();
      const bool big_endian = request_.algorithm == hash::Algorithm::kSha1;
      const hash::PrefixWord0Iterator start(request_.charset.chars(),
                                            prefix_chars, key_len, big_endian);

      constexpr std::uint64_t kWarmup = 1024;
      constexpr std::uint64_t kProbe = 8192;
      // Times one engine: a short warmup pass, then the measured pass.
      const auto measure = [&](const auto& scan) {
        time_probe(start, kWarmup, scan);
        return time_probe(start, kProbe, scan);
      };

      double best = 0;
      if (request_.algorithm == hash::Algorithm::kMd5) {
        const hash::Md5CrackContext ctx(*md5_target_, tail, total_len);
        best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
          return hash::md5_scan_prefixes(ctx, it, n);
        });
        for (const auto& k : hash::simd::available_kernels()) {
          const double t =
              measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
                return k.md5_scan(ctx, it, n);
              });
          if (t < best) {
            best = t;
            winner = &k;
          }
        }
      } else if (request_.algorithm == hash::Algorithm::kSha1) {
        const hash::Sha1CrackContext ctx(*sha1_target_, tail, total_len);
        best = measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
          return hash::sha1_scan_prefixes(ctx, it, n);
        });
        for (const auto& k : hash::simd::available_kernels()) {
          const double t =
              measure([&](hash::PrefixWord0Iterator& it, std::uint64_t n) {
                return k.sha1_scan(ctx, it, n);
              });
          if (t < best) {
            best = t;
            winner = &k;
          }
        }
      }
    }
    // Concurrent calibrations race benignly: both measure, last store
    // wins, the flag is released after the choice is visible.
    lane_choice_.store(winner, std::memory_order_relaxed);
    lane_calibrated_.store(true, std::memory_order_release);
  }
  return lanes_enabled_ ? lane_choice_.load(std::memory_order_relaxed)
                        : nullptr;
}

bool ScanPlan::fast_path_applicable(std::size_t key_len) const {
  if (request_.algorithm == hash::Algorithm::kSha256) return false;
  switch (request_.salt.position) {
    case hash::SaltPosition::kNone:
      return true;
    case hash::SaltPosition::kPrefix:
      // The salt displaces the varying characters out of word 0.
      return false;
    case hash::SaltPosition::kSuffix:
      // With a short key the salt bytes spill into word 0, which the
      // prefix iterator does not model.
      return key_len >= 4;
  }
  return false;
}

dispatch::ScanOutcome ScanPlan::scan_fast_chunk(
    u128 begin_id, u128 count, const std::string& first_key) const {
  dispatch::ScanOutcome out;
  const std::size_t key_len = first_key.size();
  const unsigned prefix_chars =
      static_cast<unsigned>(std::min<std::size_t>(4, key_len));

  // Fixed message bytes after word 0: key characters 4.., then any
  // suffix salt.
  std::string tail;
  if (key_len > 4) tail = first_key.substr(4);
  if (request_.salt.position == hash::SaltPosition::kSuffix) {
    tail += request_.salt.salt;
  }
  const std::size_t total_len = key_len + request_.salt.extra_length();

  const bool big_endian = request_.algorithm == hash::Algorithm::kSha1;
  hash::PrefixWord0Iterator it(request_.charset.chars(), prefix_chars,
                               key_len, big_endian);
  std::vector<std::uint32_t> digits(prefix_chars);
  for (unsigned i = 0; i < prefix_chars; ++i) {
    digits[i] =
        static_cast<std::uint32_t>(request_.charset.index_of(first_key[i]));
  }
  it.seek(digits);

  std::uint64_t remaining = count.to_u64();
  std::uint64_t scanned = 0;
  const auto record_hit = [&](std::uint64_t hit_offset) {
    const u128 id = begin_id + u128(scanned + hit_offset);
    out.found.push_back({id, codec_.decode(id + offset_)});
  };

  // Lane engine chosen per chunk: the calibrated (or widest supported)
  // LaneVec scanner, or nullptr for the scalar early-exit loop.
  const hash::simd::ScanKernels* lanes = lane_kernels();
  if (request_.algorithm == hash::Algorithm::kMd5) {
    const hash::Md5CrackContext ctx(*md5_target_, tail, total_len);
    while (remaining > 0) {
      const auto hit = lanes ? lanes->md5_scan(ctx, it, remaining)
                             : hash::md5_scan_prefixes(ctx, it, remaining);
      if (!hit) break;
      record_hit(*hit);
      scanned += *hit + 1;
      remaining -= *hit + 1;
    }
  } else {
    const hash::Sha1CrackContext ctx(*sha1_target_, tail, total_len);
    while (remaining > 0) {
      const auto hit = lanes ? lanes->sha1_scan(ctx, it, remaining)
                             : hash::sha1_scan_prefixes(ctx, it, remaining);
      if (!hit) break;
      record_hit(*hit);
      scanned += *hit + 1;
      remaining -= *hit + 1;
    }
  }
  out.tested = count;
  return out;
}

dispatch::ScanOutcome ScanPlan::scan(
    const keyspace::Interval& interval) const {
  GKS_REQUIRE(interval.end <= space_size_,
              "interval outside the request's key space");
  Stopwatch timer;
  dispatch::ScanOutcome out;

  const std::size_t n = request_.charset.size();
  u128 id = interval.begin;
  std::string key;
  if (id < interval.end) codec_.decode_into(id + offset_, key);

  while (id < interval.end) {
    const std::size_t key_len = key.size();
    const unsigned prefix_chars =
        static_cast<unsigned>(std::min<std::size_t>(4, key_len));
    const u128 block = keyspace::keys_of_length(n, prefix_chars);
    const u128 first_of_len =
        keyspace::first_id_of_length(n, static_cast<unsigned>(key_len)) -
        offset_;
    const u128 within = (id - first_of_len) % block;
    const u128 chunk = std::min(interval.end - id, block - within);

    if (fast_path_applicable(key_len)) {
      dispatch::ScanOutcome part = scan_fast_chunk(id, chunk, key);
      out.tested += part.tested;
      for (auto& f : part.found) out.found.push_back(std::move(f));
    } else {
      // Generic path: hash every materialized candidate. Uses the
      // incremental next operator (Figure 2) instead of re-decoding.
      u128 togo = chunk;
      while (togo > u128(0)) {
        if (request_.matches(key)) {
          out.found.push_back({id + (chunk - togo), key});
        }
        codec_.next_inplace(key);
        --togo;
      }
      out.tested += chunk;
      id += chunk;
      if (id < interval.end) continue;  // key already advanced by next
      break;
    }

    id += chunk;
    if (id < interval.end) codec_.decode_into(id + offset_, key);
  }

  out.busy_virtual_s = std::max(timer.seconds(), 1e-9);
  return out;
}

}  // namespace gks::core
