#pragma once

#include <atomic>
#include <optional>

#include "core/crack_request.h"
#include "dispatch/search.h"
#include "hash/md5_crack.h"
#include "hash/sha1_crack.h"
#include "hash/simd/dispatch.h"
#include "keyspace/interval.h"

namespace gks::core {

/// Single-threaded scanning engine for a crack request: the host-side
/// equivalent of the GPU kernel's thread loop. Precomputes the codec
/// and the parsed target; scan() walks a generator-relative identifier
/// interval.
///
/// Fast path (MD5/SHA1, no prefix salt, key length >= 4 or unsalted):
/// per block of N^min(4,L) consecutive identifiers — which share their
/// tail characters under the prefix-fastest mapping (4) — one crack
/// context is built and candidates are tested by rewriting message
/// word 0 only, exactly like a kernel thread applying the `next`
/// operator (Section IV-A). Everything else falls back to the generic
/// path: materialize each candidate and hash it fully.
class ScanPlan {
 public:
  explicit ScanPlan(CrackRequest request);

  const CrackRequest& request() const { return request_; }

  /// Scans [interval.begin, interval.end) of generator-relative ids on
  /// the calling thread. busy_virtual_s is the measured wall time.
  dispatch::ScanOutcome scan(const keyspace::Interval& interval) const;

  /// Identifier of a known plaintext (generator-relative); used by
  /// benches to plant solutions. Throws if outside the key space.
  u128 id_of(const std::string& key) const;

  /// Toggles the lane-vectorized MD5/SHA1 scanners. On by default:
  /// the explicit LaneVec engine (hash/simd/) beats the scalar
  /// early-exit loop on any host with real vector units. Disabling
  /// forces the scalar engine (ablation benches, differential tests).
  /// Not thread-safe against a concurrent scan().
  void set_lane_scanning(bool enabled) { lanes_enabled_ = enabled; }

  /// Pins the scalar-vs-lane choice with a short measured probe: times
  /// the scalar engine against every lane width the host supports over
  /// this request's own keyspace and caches the winner, which scan()
  /// then uses for every chunk. Thread-safe and idempotent (the probe
  /// runs once); returns the cached choice (nullptr = scalar engine).
  /// CpuSearcher calls this once before fanning out; without it scan()
  /// defaults to the widest supported width.
  const hash::simd::ScanKernels* calibrate_lane_choice() const;

  /// The lane engine the next scan() chunk will use (nullptr = scalar):
  /// the calibrated choice if calibrate_lane_choice() has run, else the
  /// widest width the host supports, else nullptr when lane scanning is
  /// disabled.
  const hash::simd::ScanKernels* lane_kernels() const;

 private:
  bool fast_path_applicable(std::size_t key_len) const;

  dispatch::ScanOutcome scan_fast_chunk(u128 begin_id, u128 count,
                                        const std::string& first_key) const;

  CrackRequest request_;
  keyspace::KeyCodec codec_;
  u128 offset_;      ///< global codec id of generator-relative id 0
  u128 space_size_;  ///< total candidates
  std::optional<hash::Md5Digest> md5_target_;
  std::optional<hash::Sha1Digest> sha1_target_;
  bool lanes_enabled_ = true;
  mutable std::atomic<bool> lane_calibrated_{false};
  mutable std::atomic<const hash::simd::ScanKernels*> lane_choice_{nullptr};
};

}  // namespace gks::core
