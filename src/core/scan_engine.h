#pragma once

#include <optional>

#include "core/crack_request.h"
#include "dispatch/search.h"
#include "hash/md5_crack.h"
#include "hash/sha1_crack.h"
#include "keyspace/interval.h"

namespace gks::core {

/// Single-threaded scanning engine for a crack request: the host-side
/// equivalent of the GPU kernel's thread loop. Precomputes the codec
/// and the parsed target; scan() walks a generator-relative identifier
/// interval.
///
/// Fast path (MD5/SHA1, no prefix salt, key length >= 4 or unsalted):
/// per block of N^min(4,L) consecutive identifiers — which share their
/// tail characters under the prefix-fastest mapping (4) — one crack
/// context is built and candidates are tested by rewriting message
/// word 0 only, exactly like a kernel thread applying the `next`
/// operator (Section IV-A). Everything else falls back to the generic
/// path: materialize each candidate and hash it fully.
class ScanPlan {
 public:
  explicit ScanPlan(CrackRequest request);

  const CrackRequest& request() const { return request_; }

  /// Scans [interval.begin, interval.end) of generator-relative ids on
  /// the calling thread. busy_virtual_s is the measured wall time.
  dispatch::ScanOutcome scan(const keyspace::Interval& interval) const;

  /// Identifier of a known plaintext (generator-relative); used by
  /// benches to plant solutions. Throws if outside the key space.
  u128 id_of(const std::string& key) const;

  /// Toggles the lane-vectorized MD5 scanner. Off by default: with
  /// GCC's autovectorization of the generic Lane type the 8-wide
  /// 49-step blocks only tie the scalar early-exit loop (see
  /// bench_hash_cpu), so the scalar engine wins until hand-tuned
  /// SIMD kernels exist. The path is fully tested and kept for
  /// comparison and for compilers that vectorize it better.
  void set_lane_scanning(bool enabled) { lanes_enabled_ = enabled; }

 private:
  bool fast_path_applicable(std::size_t key_len) const;

  dispatch::ScanOutcome scan_fast_chunk(u128 begin_id, u128 count,
                                        const std::string& first_key) const;

  CrackRequest request_;
  keyspace::KeyCodec codec_;
  u128 offset_;      ///< global codec id of generator-relative id 0
  u128 space_size_;  ///< total candidates
  std::optional<hash::Md5Digest> md5_target_;
  std::optional<hash::Sha1Digest> sha1_target_;
  bool lanes_enabled_ = false;
};

}  // namespace gks::core
