#include "dispatch/agent.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <set>
#include <thread>

#include "support/error.h"

namespace gks::dispatch {
namespace {

using Clock = std::chrono::steady_clock;

double remaining_virtual(const simnet::VirtualClock& clock,
                         Clock::time_point deadline) {
  const auto now = Clock::now();
  if (now >= deadline) return 0.0;
  return clock.to_virtual(deadline - now);
}

}  // namespace

NodeAgent::NodeAgent(simnet::Network& net, simnet::NodeId self,
                     std::vector<std::unique_ptr<IntervalSearcher>> devices,
                     AgentConfig config)
    : net_(net), self_(self), devices_(std::move(devices)), config_(config) {}

std::vector<std::size_t> NodeAgent::alive_members() const {
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].alive) alive.push_back(i);
  }
  return alive;
}

Capability NodeAgent::tune_all(const keyspace::Interval& scratch) {
  tune_scratch_ = scratch;
  members_.clear();

  // Fire the children's tuning passes first so subtrees tune in
  // parallel with our local devices.
  const auto& children = net_.children_of(self_);
  for (simnet::NodeId child : children) {
    net_.send(self_, child, TuneRequest{scratch});
  }

  for (auto& device : devices_) {
    Member m;
    m.device = device.get();
    m.name = device->description();
    m.capability = tune_searcher(*device, scratch, config_.tune);
    members_.push_back(std::move(m));
  }

  // Collect child reports. Subtree tuning involves nested timeouts, so
  // the window scales with the tree height conservatively; a child
  // missing it is dead for the whole search.
  std::set<simnet::NodeId> pending(children.begin(), children.end());
  std::map<simnet::NodeId, Capability> reported;
  const double floor_virtual =
      config_.min_timeout_real_s / net_.clock().scale();
  const auto deadline =
      net_.clock().deadline(std::max(60.0, 4.0 * floor_virtual));
  while (!pending.empty()) {
    const double budget = remaining_virtual(net_.clock(), deadline);
    if (budget <= 0) break;
    auto msg = net_.recv(self_, budget);
    if (!msg) break;
    if (const auto* report = std::any_cast<TuneReport>(&msg->payload)) {
      if (pending.erase(msg->from) > 0) {
        reported[msg->from] = report->capability;
      }
    }
    // Anything else (stale work results) is dropped during tuning.
  }

  for (simnet::NodeId child : children) {
    Member m;
    m.child = child;
    m.name = net_.name_of(child);
    if (const auto it = reported.find(child); it != reported.end()) {
      m.capability = it->second;
    } else {
      m.alive = false;
      ++failures_detected_;
    }
    members_.push_back(std::move(m));
  }

  std::vector<Capability> caps;
  for (const std::size_t i : alive_members()) {
    caps.push_back(members_[i].capability);
  }
  GKS_ENSURE(!caps.empty(), "no working device or child in this subtree");
  return aggregate_capability(caps);
}

WorkResult NodeAgent::process_interval(const keyspace::Interval& interval,
                                       std::uint64_t base_round,
                                       bool& stopped) {
  WorkResult total;
  total.round = base_round;

  keyspace::IntervalCursor cursor(interval);
  std::deque<keyspace::Interval> requeued;
  const auto multiplier = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, config_.rounds_multiplier)));
  std::uint64_t round_seq = 0;
  bool found_stop = false;

  const auto take_chunk = [&](u128 want) -> keyspace::Interval {
    if (!requeued.empty()) {
      keyspace::Interval next = requeued.front();
      requeued.pop_front();
      if (next.size() > want) {
        requeued.push_front(keyspace::Interval(next.begin + want, next.end));
        next.end = next.begin + want;
      }
      return next;
    }
    return cursor.take(want);
  };

  while ((!cursor.exhausted() || !requeued.empty()) && !found_stop &&
         !stopped) {
    // Drain asynchronous traffic that arrived outside an awaiting
    // window — in particular rejoin TuneReports when no child was
    // assigned work last round, and early StopSearch.
    while (auto pending_msg = net_.recv(self_, 0.0)) {
      if (std::any_cast<StopSearch>(&pending_msg->payload) != nullptr) {
        stopped = true;
        break;
      }
      if (const auto* revived =
              std::any_cast<TuneReport>(&pending_msg->payload)) {
        for (Member& m : members_) {
          if (!m.alive && m.child == pending_msg->from) {
            m.alive = true;
            m.capability = revived->capability;
          }
        }
      }
    }
    if (stopped) break;

    // Re-probe temporarily inactive children so they can rejoin
    // (Section III's dynamic network): any TuneReport that comes back
    // is picked up while awaiting this round's results.
    if (config_.allow_rejoin && config_.reprobe_every_rounds > 0 &&
        round_seq % config_.reprobe_every_rounds == 0) {
      for (const Member& m : members_) {
        if (!m.alive && m.child) {
          net_.send(self_, *m.child, TuneRequest{tune_scratch_});
        }
      }
    }

    const std::vector<std::size_t> alive = alive_members();
    if (alive.empty()) break;  // everything died; report partial coverage

    std::vector<Capability> caps;
    caps.reserve(alive.size());
    for (const std::size_t i : alive) caps.push_back(members_[i].capability);
    const std::vector<u128> quotas = balance_quotas(caps);

    // Assign this round's chunks, proportional to member throughput.
    struct Assignment {
      std::size_t member;
      keyspace::Interval chunk;
    };
    std::vector<Assignment> assigns;

    std::vector<u128> wants(alive.size());
    u128 round_total(0);
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const u128 time_floor(static_cast<std::uint64_t>(
          caps[k].throughput * config_.round_virtual_target_s));
      wants[k] = std::max(
          u128::checked_mul(quotas[k], u128(multiplier)), time_floor);
      round_total = u128::saturating_add(round_total, wants[k]);
    }

    // Final-round balancing: when less than a full round remains,
    // shrink every member's share proportionally so they all finish
    // together — the N_j/X_j equal-time condition applied to the tail.
    u128 available = cursor.remaining();
    for (const auto& r : requeued) {
      available = u128::saturating_add(available, r.size());
    }
    if (available < round_total) {
      const double scale = available.to_double() / round_total.to_double();
      for (auto& want : wants) {
        want = u128(
            static_cast<std::uint64_t>(want.to_double() * scale) + 1);
      }
    }

    double expected_round_s = 0;
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const keyspace::Interval chunk = take_chunk(wants[k]);
      if (chunk.empty()) continue;
      assigns.push_back({alive[k], chunk});
      expected_round_s =
          std::max(expected_round_s,
                   chunk.size().to_double() / caps[k].throughput);
    }
    if (assigns.empty()) break;
    ++round_seq;
    const std::uint64_t tag = (base_round << 20) | round_seq;
    const auto t_round_start = Clock::now();
    std::vector<Clock::time_point> completions;

    // Children first (their subtrees start while we compute locally).
    for (const Assignment& a : assigns) {
      Member& m = members_[a.member];
      if (m.child) net_.send(self_, *m.child, WorkAssign{a.chunk, tag});
    }

    // Local devices scan concurrently on their own threads; simulated
    // devices realize their modeled duration on the virtual clock so
    // the parent genuinely waits for the slower device.
    std::vector<std::thread> scan_threads;
    std::vector<std::pair<std::size_t, ScanOutcome>> local_results(
        assigns.size());
    std::vector<Clock::time_point> local_done(assigns.size());
    for (std::size_t ai = 0; ai < assigns.size(); ++ai) {
      Member& m = members_[assigns[ai].member];
      if (!m.device) continue;
      local_results[ai].first = assigns[ai].member;
      scan_threads.emplace_back(
          [this, ai, &assigns, &local_results, &local_done, &m] {
            ScanOutcome out = m.device->scan(assigns[ai].chunk);
            if (m.device->is_simulated()) {
              net_.clock().sleep_virtual(out.busy_virtual_s);
            }
            local_results[ai].second = std::move(out);
            local_done[ai] = Clock::now();
          });
    }
    const auto t_scatter_end = Clock::now();
    for (auto& t : scan_threads) t.join();
    for (std::size_t ai = 0; ai < assigns.size(); ++ai) {
      if (members_[assigns[ai].member].device) {
        completions.push_back(local_done[ai]);
      }
    }

    // Merge local outcomes.
    for (std::size_t ai = 0; ai < assigns.size(); ++ai) {
      Member& m = members_[assigns[ai].member];
      if (!m.device) continue;
      const ScanOutcome& out = local_results[ai].second;
      m.tested += out.tested;
      m.busy_virtual_s += out.busy_virtual_s;
      total.tested += out.tested;
      total.busy_virtual_s += out.busy_virtual_s;
      for (const Found& f : out.found) total.found.push_back(f);
    }

    // Await the children of this round.
    std::set<std::size_t> awaiting;
    for (const Assignment& a : assigns) {
      if (members_[a.member].child) awaiting.insert(a.member);
    }
    const double floor_virtual =
        config_.min_timeout_real_s / net_.clock().scale();
    const double window = std::max(
        floor_virtual, expected_round_s * config_.child_timeout_factor);
    const auto deadline = net_.clock().deadline(window);
    while (!awaiting.empty()) {
      const double budget = remaining_virtual(net_.clock(), deadline);
      if (budget <= 0) break;
      auto msg = net_.recv(self_, budget);
      if (!msg) break;
      if (std::any_cast<StopSearch>(&msg->payload) != nullptr) {
        stopped = true;
        break;
      }
      if (const auto* revived = std::any_cast<TuneReport>(&msg->payload)) {
        for (Member& m : members_) {
          if (!m.alive && m.child == msg->from) {
            m.alive = true;
            m.capability = revived->capability;
          }
        }
        continue;
      }
      const auto* result = std::any_cast<WorkResult>(&msg->payload);
      if (result == nullptr || result->round != tag) continue;  // stale
      // Find the member this child backs.
      for (auto it = awaiting.begin(); it != awaiting.end(); ++it) {
        Member& m = members_[*it];
        if (m.child == msg->from) {
          m.tested += result->tested;
          m.busy_virtual_s += result->busy_virtual_s;
          total.tested += result->tested;
          total.busy_virtual_s += result->busy_virtual_s;
          for (const Found& f : result->found) total.found.push_back(f);
          completions.push_back(Clock::now());
          awaiting.erase(it);
          break;
        }
      }
    }

    // Section III cost accounting for this round, as seen from this
    // dispatcher: scatter = sends + local spawns, search = first/last
    // member completion, gather = trailing wait and merge.
    if (!completions.empty()) {
      const auto t_round_end = Clock::now();
      const auto first_done =
          *std::min_element(completions.begin(), completions.end());
      const auto last_done =
          *std::max_element(completions.begin(), completions.end());
      RoundCosts costs;
      costs.round = tag;
      costs.members = assigns.size();
      costs.scatter_s = net_.clock().to_virtual(t_scatter_end - t_round_start);
      costs.search_min_s = net_.clock().to_virtual(first_done - t_scatter_end);
      costs.search_max_s = net_.clock().to_virtual(last_done - t_scatter_end);
      costs.gather_s = net_.clock().to_virtual(t_round_end - last_done);
      ledger_.record(costs);
    }

    // Children that missed the window are declared dead; their
    // intervals go back in the queue and the next round's quotas are
    // recomputed over the survivors — the dynamic reconfiguration of
    // Section III.
    if (!awaiting.empty() && !stopped) {
      for (const std::size_t mi : awaiting) {
        members_[mi].alive = false;
        ++failures_detected_;
        for (const Assignment& a : assigns) {
          if (a.member == mi) requeued.push_back(a.chunk);
        }
      }
    }

    if (!total.found.empty() && config_.stop_on_first_find) {
      found_stop = true;
    }
  }

  rounds_run_ += round_seq;
  return total;
}

void NodeAgent::forward_stop() {
  for (simnet::NodeId child : net_.children_of(self_)) {
    net_.send(self_, child, StopSearch{});
  }
}

void NodeAgent::serve() {
  const auto parent = net_.parent_of(self_);
  GKS_REQUIRE(parent.has_value(), "serve() is for non-root nodes");
  auto last_parent_traffic = Clock::now();
  for (;;) {
    // Bounded waits, for two failure modes: an injected crash of THIS
    // node must terminate the thread (a downed node can never receive
    // the final StopSearch), and a dead dispatcher above must not
    // leave this subtree waiting forever (orphan timeout).
    auto msg = net_.recv(self_, 0.05 / net_.clock().scale());
    if (!msg) {
      if (net_.is_down(self_)) return;
      const double idle_s = std::chrono::duration<double>(
                                Clock::now() - last_parent_traffic)
                                .count();
      if (idle_s > config_.orphan_timeout_real_s) {
        forward_stop();
        return;
      }
      continue;
    }
    last_parent_traffic = Clock::now();
    if (const auto* tune = std::any_cast<TuneRequest>(&msg->payload)) {
      const Capability cap = tune_all(tune->scratch);
      net_.send(self_, *parent, TuneReport{cap});
      continue;
    }
    if (const auto* work = std::any_cast<WorkAssign>(&msg->payload)) {
      bool stopped = false;
      WorkResult result =
          process_interval(work->interval, work->round, stopped);
      result.round = work->round;
      net_.send(self_, *parent, std::move(result));
      if (stopped) {
        forward_stop();
        return;
      }
      continue;
    }
    if (std::any_cast<StopSearch>(&msg->payload) != nullptr) {
      forward_stop();
      return;
    }
  }
}

SearchReport NodeAgent::run_root(const keyspace::Interval& space,
                                 const keyspace::Interval& tune_scratch) {
  const Capability cluster = tune_all(tune_scratch);

  const auto start = Clock::now();
  bool stopped = false;
  const WorkResult result = process_interval(space, 1, stopped);
  const double elapsed = net_.clock().to_virtual(Clock::now() - start);

  forward_stop();

  SearchReport report;
  report.found = result.found;
  report.tested = result.tested;
  report.elapsed_virtual_s = elapsed;
  report.throughput = elapsed > 0 ? result.tested.to_double() / elapsed : 0;
  report.theoretical_sum = cluster.theoretical_sum;
  report.efficiency = report.theoretical_sum > 0
                          ? report.throughput / report.theoretical_sum
                          : 0;
  report.failures_detected = failures_detected_;
  report.rounds = rounds_run_;
  report.costs = ledger_;
  for (const Member& m : members_) {
    MemberStats stats;
    stats.name = m.name;
    stats.throughput = m.capability.throughput;
    stats.theoretical = m.capability.theoretical_sum;
    stats.tested = m.tested;
    stats.busy_virtual_s = m.busy_virtual_s;
    stats.failed = !m.alive;
    report.members.push_back(std::move(stats));
  }
  return report;
}

}  // namespace gks::dispatch
