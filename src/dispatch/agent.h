#pragma once

#include <memory>
#include <vector>

#include "dispatch/balancer.h"
#include "dispatch/protocol.h"
#include "dispatch/report.h"
#include "dispatch/search.h"
#include "dispatch/tuner.h"
#include "simnet/network.h"
#include "support/thread_pool.h"

namespace gks::dispatch {

/// Knobs of the dispatch pattern.
struct AgentConfig {
  TuneConfig tune;

  /// A dispatch round hands each member `rounds_multiplier` × its
  /// balanced quota N_j, amortizing the scatter/gather overhead
  /// (Section III: "N_node could be arbitrarily increased to minimize
  /// the overhead caused by the dispatch and merge steps").
  double rounds_multiplier = 8.0;

  /// Floor on each member's round chunk expressed as seconds of work
  /// at its tuned throughput. Balanced quotas guarantee the target
  /// efficiency *inside* a device, but per-round fixed costs (links,
  /// host scheduling) still need deep rounds to amortize; assigning
  /// whole seconds of work per round keeps them negligible.
  double round_virtual_target_s = 30.0;

  /// A child that has not answered within `child_timeout_factor` times
  /// the expected round duration is declared dead; its interval is
  /// requeued and quotas are recomputed over the survivors (the
  /// paper's minimum fault-tolerance model).
  double child_timeout_factor = 6.0;

  /// Floor on the timeout in *real* seconds, protecting fault
  /// detection from host scheduling jitter when virtual time is
  /// heavily compressed.
  double min_timeout_real_s = 0.25;

  /// A serving node that has been idle (no parent traffic) this many
  /// *real* seconds concludes its dispatcher died and unwinds,
  /// stopping its own subtree. This is the practical edge of the
  /// paper's caveat that "the inactivity of a dispatching node would
  /// block the contribution of all the nodes in the dispatching sub
  /// tree" — the orphans cannot contribute, but they must not hang.
  double orphan_timeout_real_s = 10.0;

  /// Stop dispatching new work once a solution is known.
  bool stop_on_first_find = true;

  /// Section III speaks of nodes becoming *temporarily* inactive: when
  /// enabled, the dispatcher re-probes dead children every
  /// `reprobe_every_rounds` rounds with a fresh TuneRequest and
  /// restores any that answer, recomputing quotas over the grown
  /// membership (the dynamic-network extension of the pattern).
  bool allow_rejoin = true;
  unsigned reprobe_every_rounds = 4;
};

/// The role every node of the cluster runs — worker, dispatcher, or
/// both at once (the paper's node A holds a GPU *and* dispatches to B
/// and C). An agent owns zero or more local devices and dispatches to
/// zero or more children over the network; a subtree aggregates into
/// a single capability toward the next level up (Section III).
class NodeAgent {
 public:
  NodeAgent(simnet::Network& net, simnet::NodeId self,
            std::vector<std::unique_ptr<IntervalSearcher>> devices,
            AgentConfig config = {});

  /// Thread body for non-root nodes: serves TuneRequest/WorkAssign
  /// from the parent until StopSearch arrives (which is forwarded to
  /// the children before returning).
  void serve();

  /// Root-only: runs the complete search over `space`, using
  /// `tune_scratch` for the tuning pass, and reports the Table IX
  /// metrics. Sends StopSearch down the tree before returning.
  SearchReport run_root(const keyspace::Interval& space,
                        const keyspace::Interval& tune_scratch);

  simnet::NodeId id() const { return self_; }

 private:
  struct Member {
    // Exactly one of device / child is set.
    IntervalSearcher* device = nullptr;
    std::optional<simnet::NodeId> child;
    Capability capability;
    std::string name;
    bool alive = true;
    u128 tested{0};
    double busy_virtual_s = 0;
  };

  /// Runs the tuning step over local devices and children; fills
  /// members_ and returns the aggregated subtree capability.
  Capability tune_all(const keyspace::Interval& scratch);

  /// Dispatch loop over one interval; stops early on a find when
  /// configured. `stopped` is set if a StopSearch arrived mid-work.
  WorkResult process_interval(const keyspace::Interval& interval,
                              std::uint64_t base_round, bool& stopped);

  void forward_stop();

  std::vector<std::size_t> alive_members() const;

  simnet::Network& net_;
  simnet::NodeId self_;
  std::vector<std::unique_ptr<IntervalSearcher>> devices_;
  AgentConfig config_;
  std::vector<Member> members_;
  keyspace::Interval tune_scratch_;  ///< reused by rejoin re-probes
  std::uint64_t rounds_run_ = 0;
  unsigned failures_detected_ = 0;
  CostLedger ledger_;
};

}  // namespace gks::dispatch
