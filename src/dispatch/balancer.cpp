#include "dispatch/balancer.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace gks::dispatch {

std::vector<u128> balance_quotas(const std::vector<Capability>& members) {
  GKS_REQUIRE(!members.empty(), "no members to balance");
  double x_max = 0;
  for (const Capability& m : members) {
    GKS_REQUIRE(m.throughput > 0, "member with zero throughput");
    x_max = std::max(x_max, m.throughput);
  }

  // N_max = max_j n_j * X_max / X_j.
  double n_max = 0;
  for (const Capability& m : members) {
    n_max = std::max(n_max, m.min_batch.to_double() * x_max / m.throughput);
  }
  GKS_ENSURE(n_max > 0, "balancer derived an empty quota");

  std::vector<u128> quotas;
  quotas.reserve(members.size());
  for (const Capability& m : members) {
    const double share = n_max * (m.throughput / x_max);
    quotas.push_back(
        u128(static_cast<std::uint64_t>(std::ceil(share))));
    // ceil keeps N_j >= n_j despite rounding.
  }
  return quotas;
}

Capability aggregate_capability(const std::vector<Capability>& members) {
  GKS_REQUIRE(!members.empty(), "no members to aggregate");
  const std::vector<u128> quotas = balance_quotas(members);

  Capability agg;
  u128 n_node(0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    agg.throughput += members[i].throughput;
    agg.theoretical_sum += members[i].theoretical_sum;
    agg.device_count += members[i].device_count;
    n_node = u128::saturating_add(n_node, quotas[i]);
  }
  agg.min_batch = n_node;
  return agg;
}

}  // namespace gks::dispatch
