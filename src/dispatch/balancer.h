#pragma once

#include <vector>

#include "dispatch/search.h"

namespace gks::dispatch {

/// Implements the load-balancing computation of Section III:
///
///   X_max = max_j X_j
///   N_max = max_j (n_j · X_max / X_j)      (so every N_j >= n_j)
///   N_j   = N_max · (X_j / X_max)
///
/// Every member then exhausts its quota in the same time N_max/X_max,
/// which is the condition for no node idling while others work.
std::vector<u128> balance_quotas(const std::vector<Capability>& members);

/// Aggregates member capabilities into the capability of the subtree
/// they form, as reported to the next dispatcher up the hierarchy
/// (Section III: "they can be considered as computing nodes with a
/// throughput that is the sum of the throughputs of the child nodes
/// and ... N_node = Σ_j N_j").
Capability aggregate_capability(const std::vector<Capability>& members);

}  // namespace gks::dispatch
