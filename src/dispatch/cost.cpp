#include "dispatch/cost.h"

#include <cstdio>

namespace gks::dispatch {

double CostLedger::mean_overhead_fraction() const {
  if (rounds_.empty()) return 0;
  double sum = 0;
  std::size_t counted = 0;
  for (const RoundCosts& r : rounds_) {
    const double total = r.total_s();
    if (total <= 0) continue;
    sum += (r.scatter_s + r.gather_s) / total;
    ++counted;
  }
  return counted ? sum / counted : 0;
}

double CostLedger::mean_imbalance() const {
  if (rounds_.empty()) return 0;
  double sum = 0;
  for (const RoundCosts& r : rounds_) sum += r.imbalance();
  return sum / rounds_.size();
}

std::string CostLedger::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "rounds=%zu mean_overhead=%.4f mean_imbalance=%.4f",
                rounds_.size(), mean_overhead_fraction(), mean_imbalance());
  return buf;
}

}  // namespace gks::dispatch
