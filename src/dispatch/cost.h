#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gks::dispatch {

/// Cost accounting in the vocabulary of Section III: per dispatch
/// round, the time spent scattering work, searching, gathering
/// results, and merging. Filled by the root dispatcher; lets users
/// verify the bound
///
///   K_D >= max_j(K_scatter^j + K_search^j + K_gather^j) + K_C_M
///
/// empirically and see which term dominates at their granularity.
struct RoundCosts {
  std::uint64_t round = 0;
  double scatter_s = 0;     ///< assigning chunks (sends + local spawn)
  double search_max_s = 0;  ///< slowest member's busy time (bounds K_D)
  double search_min_s = 0;  ///< fastest member — the idle-gap witness
  double gather_s = 0;      ///< waiting for and merging results
  std::size_t members = 0;

  /// Total wall time of the round as the dispatcher saw it.
  double total_s() const { return scatter_s + search_max_s + gather_s; }

  /// Imbalance: idle fraction of the fastest member while the slowest
  /// finishes (0 = perfectly balanced round).
  double imbalance() const {
    return search_max_s > 0 ? 1.0 - search_min_s / search_max_s : 0.0;
  }
};

/// Accumulates per-round costs and summarizes them.
class CostLedger {
 public:
  void record(RoundCosts costs) { rounds_.push_back(costs); }

  const std::vector<RoundCosts>& rounds() const { return rounds_; }
  bool empty() const { return rounds_.empty(); }

  /// Mean fraction of round time spent outside K_search (the dispatch
  /// overhead the granularity knob amortizes away).
  double mean_overhead_fraction() const;

  /// Mean per-round imbalance across all rounds.
  double mean_imbalance() const;

  /// Human-readable multi-line summary for reports.
  std::string summary() const;

 private:
  std::vector<RoundCosts> rounds_;
};

}  // namespace gks::dispatch
