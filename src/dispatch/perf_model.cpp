#include "dispatch/perf_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace gks::dispatch {

PerfModel::PerfModel(double peak_throughput, double fixed_overhead_s)
    : peak_(peak_throughput), overhead_(fixed_overhead_s) {
  GKS_REQUIRE(peak_throughput > 0, "peak throughput must be positive");
  GKS_REQUIRE(fixed_overhead_s >= 0, "overhead cannot be negative");
}

PerfModel PerfModel::fit(
    const std::vector<std::pair<u128, double>>& samples) {
  GKS_REQUIRE(samples.size() >= 2, "fitting needs at least two samples");
  // Ordinary least squares on t = n/X + c, i.e. t = a·n + b with
  // a = 1/X, b = c.
  double sum_n = 0, sum_t = 0, sum_nn = 0, sum_nt = 0;
  for (const auto& [n, t] : samples) {
    GKS_REQUIRE(t > 0, "sample with non-positive time");
    const double x = n.to_double();
    sum_n += x;
    sum_t += t;
    sum_nn += x * x;
    sum_nt += x * t;
  }
  const double count = static_cast<double>(samples.size());
  const double denom = count * sum_nn - sum_n * sum_n;
  GKS_REQUIRE(std::abs(denom) > 1e-30,
              "samples must span at least two batch sizes");
  const double a = (count * sum_nt - sum_n * sum_t) / denom;
  double b = (sum_t - a * sum_n) / count;
  GKS_REQUIRE(a > 0, "fitted throughput is not positive");
  b = std::max(0.0, b);  // tiny negative intercepts are noise
  return PerfModel(1.0 / a, b);
}

PerfModel PerfModel::calibrate(IntervalSearcher& searcher,
                               const keyspace::Interval& scratch,
                               const TuneConfig& config) {
  std::vector<std::pair<u128, double>> samples;
  u128 batch = config.start_batch;
  for (unsigned i = 0; i < config.max_probes; ++i) {
    const keyspace::Interval probe(
        scratch.begin,
        std::min(scratch.end, u128::saturating_add(scratch.begin, batch)));
    if (probe.empty()) break;
    const ScanOutcome out = searcher.scan(probe);
    samples.emplace_back(probe.size(), out.busy_virtual_s);
    if (probe.end == scratch.end) break;
    batch = u128::checked_mul(batch, u128(config.growth));
  }
  return fit(samples);
}

double PerfModel::predicted_seconds(u128 n) const {
  GKS_REQUIRE(peak_ > 0, "model is not calibrated");
  return n.to_double() / peak_ + overhead_;
}

double PerfModel::predicted_efficiency(u128 n) const {
  const double work = n.to_double() / peak_;
  return work / (work + overhead_);
}

u128 PerfModel::min_batch_for(double target_efficiency) const {
  GKS_REQUIRE(target_efficiency > 0 && target_efficiency < 1,
              "target efficiency must be in (0, 1)");
  GKS_REQUIRE(peak_ > 0, "model is not calibrated");
  const double n = target_efficiency / (1.0 - target_efficiency) * peak_ *
                   overhead_;
  return u128(static_cast<std::uint64_t>(std::ceil(std::max(1.0, n))));
}

Capability PerfModel::to_capability(double target_efficiency,
                                    double theoretical) const {
  Capability cap;
  cap.throughput = peak_;
  cap.min_batch = min_batch_for(target_efficiency);
  cap.theoretical_sum = theoretical > 0 ? theoretical : peak_;
  cap.device_count = 1;
  return cap;
}

std::string PerfModel::serialize() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "X=%.9e c=%.9e", peak_, overhead_);
  return buf;
}

PerfModel PerfModel::parse(const std::string& text) {
  double x = 0, c = 0;
  GKS_REQUIRE(std::sscanf(text.c_str(), "X=%lf c=%lf", &x, &c) == 2,
              "malformed PerfModel string");
  return PerfModel(x, c);
}

}  // namespace gks::dispatch
