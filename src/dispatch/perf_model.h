#pragma once

#include <string>
#include <vector>

#include "dispatch/search.h"
#include "dispatch/tuner.h"

namespace gks::dispatch {

/// The offline performance model of Section III: "The tuning step
/// could be skipped when a performance model that correlates
/// efficiency, performances, and size of the search subspace for the
/// considered algorithm is available. An approximated model could be
/// built offline by performing a sequence of tests with increasing
/// search size on each node of the cluster."
///
/// Both backends have (to first order) affine scan cost
///     t(n) = n / X + c
/// (X = peak throughput, c = fixed per-scan overhead: kernel launches,
/// thread spawns, message handling), which gives the efficiency curve
///     eff(n) = (n / X) / t(n) = n / (n + X·c).
/// The model stores (X, c) fitted from calibration probes; from it,
/// the minimum batch for any target efficiency is closed-form:
///     n_min(e) = e / (1 - e) · X·c.
class PerfModel {
 public:
  PerfModel() = default;
  PerfModel(double peak_throughput, double fixed_overhead_s);

  /// Least-squares fit of (X, c) from (batch, busy-seconds) samples;
  /// needs at least two distinct batch sizes.
  static PerfModel fit(const std::vector<std::pair<u128, double>>& samples);

  /// Builds the model by probing a searcher with geometrically growing
  /// batches — the "sequence of tests with increasing search size".
  static PerfModel calibrate(IntervalSearcher& searcher,
                             const keyspace::Interval& scratch,
                             const TuneConfig& config = {});

  double peak_throughput() const { return peak_; }
  double fixed_overhead_s() const { return overhead_; }

  /// Predicted scan time for a batch of n candidates.
  double predicted_seconds(u128 n) const;

  /// Predicted efficiency at batch size n: n / (n + X·c).
  double predicted_efficiency(u128 n) const;

  /// Closed-form minimum batch achieving `target_efficiency`.
  u128 min_batch_for(double target_efficiency) const;

  /// The Capability a dispatcher would otherwise obtain from a live
  /// tuning pass — this is what "skipping the tuning step" means.
  Capability to_capability(double target_efficiency,
                           double theoretical = 0) const;

  /// Compact textual form ("X=1.8412e+09 c=2.5e-04") for persisting
  /// offline calibrations; parse() inverts it.
  std::string serialize() const;
  static PerfModel parse(const std::string& text);

 private:
  double peak_ = 0;      ///< X, keys per second
  double overhead_ = 0;  ///< c, seconds per scan
};

}  // namespace gks::dispatch
