#pragma once

#include <cstdint>

#include "dispatch/search.h"
#include "keyspace/interval.h"

namespace gks::dispatch {

/// Messages exchanged between a dispatcher and its children. The
/// payloads are deliberately tiny — "only a very small amount of data
/// must be scattered at the beginning of the computation" (Section
/// III) — an interval is two 128-bit ids, a result a few counters.

/// Parent → child: measure yourself (and your subtree) on the scratch
/// interval; reply with a TuneReport.
struct TuneRequest {
  keyspace::Interval scratch;
};

/// Child → parent: aggregated capability of the child's subtree.
struct TuneReport {
  Capability capability;
};

/// Parent → child: search this interval and reply with a WorkResult.
struct WorkAssign {
  keyspace::Interval interval;
  std::uint64_t round = 0;
};

/// Child → parent: outcome of one assigned interval.
struct WorkResult {
  std::uint64_t round = 0;
  std::vector<Found> found;
  u128 tested{0};
  double busy_virtual_s = 0;  ///< Σ device busy time in the subtree
};

/// Parent → child, broadcast: the search is over (solution found or
/// space exhausted); tear down.
struct StopSearch {};

}  // namespace gks::dispatch
