#pragma once

#include <string>
#include <vector>

#include "dispatch/cost.h"
#include "dispatch/search.h"

namespace gks::dispatch {

/// Per-member (local device or child subtree) accounting at one
/// dispatcher, for the final report.
struct MemberStats {
  std::string name;
  double throughput = 0;       ///< tuned X_j, keys/virtual second
  double theoretical = 0;      ///< Σ theoretical device peaks
  u128 tested{0};
  double busy_virtual_s = 0;
  bool failed = false;         ///< marked dead during the search
};

/// Outcome of a whole distributed search, produced by the root
/// dispatcher — the data behind Table IX.
struct SearchReport {
  std::vector<Found> found;
  u128 tested{0};
  double elapsed_virtual_s = 0;

  /// Achieved search throughput: tested / elapsed.
  double throughput = 0;
  /// Σ theoretical throughput of every device in the cluster.
  double theoretical_sum = 0;
  /// throughput / theoretical_sum — the paper's Table IX efficiency.
  double efficiency = 0;

  std::vector<MemberStats> members;  ///< root's direct members
  unsigned failures_detected = 0;
  std::uint64_t rounds = 0;

  /// Per-round K_scatter / K_search / K_gather accounting at the root
  /// (Section III cost model, measured).
  CostLedger costs;
};

}  // namespace gks::dispatch
