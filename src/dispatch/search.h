#pragma once

#include <string>
#include <vector>

#include "keyspace/interval.h"
#include "support/uint128.h"

namespace gks::dispatch {

/// A candidate that satisfied the test condition C(f(i)) = 1.
struct Found {
  u128 id;            ///< global enumeration identifier
  std::string value;  ///< materialized solution (the cracked key)

  bool operator==(const Found&) const = default;
};

/// Result of scanning one identifier interval.
struct ScanOutcome {
  std::vector<Found> found;
  u128 tested{0};
  /// Device time consumed, in virtual seconds (equals wall time for
  /// real CPU searchers). This is the K_search term of the cost model.
  double busy_virtual_s = 0;
};

/// Per-device execution engine: evaluates the condition over intervals
/// of candidate identifiers. Implementations: the CPU backend (real
/// hashing on host threads) and the simulated-GPU backend (SIMT-model
/// timing). The dispatcher only ever talks to this interface, which is
/// what makes the pattern generic (Section III: any f/C pair).
class IntervalSearcher {
 public:
  virtual ~IntervalSearcher() = default;

  /// Scans [interval.begin, interval.end) and reports matches.
  virtual ScanOutcome scan(const keyspace::Interval& interval) = 0;

  /// True when busy_virtual_s is simulated rather than elapsed — the
  /// worker then realizes the duration on the virtual clock so the
  /// cluster's relative timing stays faithful.
  virtual bool is_simulated() const = 0;

  /// Peak candidate throughput (keys per virtual second) if the
  /// device knows it a priori; 0 lets the tuning step measure it.
  virtual double peak_throughput_hint() const { return 0; }

  /// The ideal throughput bound used for the efficiency denominator
  /// of Table IX (theoretical model for simulated GPUs; measured peak
  /// for CPUs, where no analytic bound exists).
  virtual double theoretical_throughput() const = 0;

  /// Human-readable device name for reports.
  virtual std::string description() const = 0;
};

/// What the tuning step learns about a node or subtree (Section III):
/// peak throughput X_j and the minimum batch n_j that reaches the
/// target efficiency.
struct Capability {
  double throughput = 0;       ///< X_j, keys per virtual second
  u128 min_batch{0};           ///< n_j
  double theoretical_sum = 0;  ///< Σ device theoretical peaks (Table IX)
  std::size_t device_count = 0;
};

}  // namespace gks::dispatch
