#include "dispatch/tuner.h"

#include <algorithm>
#include <vector>

#include "support/error.h"

namespace gks::dispatch {

Capability tune_searcher(IntervalSearcher& searcher,
                         const keyspace::Interval& scratch,
                         const TuneConfig& config) {
  GKS_REQUIRE(config.target_efficiency > 0 && config.target_efficiency <= 1,
              "target efficiency must be in (0, 1]");
  GKS_REQUIRE(config.start_batch > u128(0), "start batch must be positive");
  GKS_REQUIRE(config.growth >= 2, "growth factor must be at least 2");

  struct Probe {
    u128 batch;
    double throughput;
  };
  std::vector<Probe> probes;

  // Grow the probe batch until throughput flattens: the last probe's
  // rate approximates the peak X_j. Small batches are dominated by
  // fixed costs (kernel launch, thread spawn), which is exactly the
  // inefficiency n_j must amortize.
  u128 batch = config.start_batch;
  for (unsigned i = 0; i < config.max_probes; ++i) {
    keyspace::Interval probe_interval(
        scratch.begin,
        std::min(scratch.end, u128::saturating_add(scratch.begin, batch)));
    if (probe_interval.empty()) break;

    const ScanOutcome outcome = searcher.scan(probe_interval);
    GKS_ENSURE(outcome.busy_virtual_s > 0, "searcher reported zero busy time");
    const double throughput =
        probe_interval.size().to_double() / outcome.busy_virtual_s;
    probes.push_back({probe_interval.size(), throughput});

    if (probes.size() >= 2) {
      const double prev = probes[probes.size() - 2].throughput;
      if (throughput <= prev * (1.0 + config.flat_threshold)) break;
    }
    if (probe_interval.end == scratch.end) break;  // scratch exhausted
    batch = u128::saturating_add(
        u128::checked_mul(batch, u128(config.growth)), u128(0));
  }
  GKS_ENSURE(!probes.empty(), "tuning produced no probes");

  const double peak =
      std::max_element(probes.begin(), probes.end(),
                       [](const Probe& a, const Probe& b) {
                         return a.throughput < b.throughput;
                       })
          ->throughput;

  // n_j: the smallest probed batch already running at the target
  // fraction of peak.
  u128 min_batch = probes.back().batch;
  for (const Probe& p : probes) {
    if (p.throughput >= config.target_efficiency * peak) {
      min_batch = p.batch;
      break;
    }
  }

  Capability cap;
  cap.throughput = peak;
  cap.min_batch = min_batch;
  cap.theoretical_sum = searcher.theoretical_throughput();
  cap.device_count = 1;
  return cap;
}

}  // namespace gks::dispatch
