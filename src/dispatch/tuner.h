#pragma once

#include "dispatch/search.h"
#include "keyspace/interval.h"

namespace gks::dispatch {

/// Parameters of the tuning step (Section III: "perform a tuning step
/// to estimate for each node j the minimum number of candidates n_j
/// needed to achieve a given target efficiency, and get the peak
/// throughput X_j").
struct TuneConfig {
  /// Efficiency a batch must reach for its size to qualify as n_j.
  double target_efficiency = 0.9;

  /// First probed batch size; grows geometrically.
  u128 start_batch{4096};

  /// Probing stops growing once throughput gains flatten below this
  /// relative step, or at this many doublings.
  double flat_threshold = 0.03;
  unsigned max_probes = 24;

  /// Growth factor between probes.
  unsigned growth = 4;
};

/// Measures one device. `scratch` provides candidate identifiers for
/// the probe scans (it is searched redundantly; the paper runs its
/// tuning pass offline the same way). Throughput is computed from the
/// searcher's *virtual* busy time, so the result is deterministic for
/// simulated devices.
Capability tune_searcher(IntervalSearcher& searcher,
                         const keyspace::Interval& scratch,
                         const TuneConfig& config = {});

}  // namespace gks::dispatch
