#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "support/error.h"

namespace gks::dist {

namespace {

/// Registry mirrors of Coordinator::Stats plus the grant→retire
/// turnaround histogram; bumped alongside the struct counters so the
/// metrics verb and the Prometheus endpoint see the same story.
struct CoordMetrics {
  obs::Counter& sessions =
      obs::Registry::global().counter("gks_coord_sessions_total");
  obs::Counter& protocol_errors =
      obs::Registry::global().counter("gks_coord_protocol_errors_total");
  obs::Counter& forged =
      obs::Registry::global().counter("gks_coord_forged_founds_total");
  obs::Counter& quarantined =
      obs::Registry::global().counter("gks_coord_quarantines_total");
  obs::Counter& ejected =
      obs::Registry::global().counter("gks_coord_ejections_total");
  obs::Counter& found_reports =
      obs::Registry::global().counter("gks_found_reports_total");
  /// Coordinator-side lease turnaround: grant to successful retire.
  /// The worker-side twin (gks_worker_lease_seconds) excludes the
  /// grant's own round-trip; the gap between the two is pure protocol.
  obs::Histogram& turnaround_s = obs::Registry::global().histogram(
      "gks_coord_lease_turnaround_seconds");
};

CoordMetrics& cmetrics() {
  static CoordMetrics* m = new CoordMetrics;
  return *m;
}

}  // namespace

/// Per-connection state. The holder id scopes every lease to this
/// session: a reconnecting worker gets a fresh holder, so its old
/// session's leases expire normally instead of being confusable with
/// the new ones.
struct Coordinator::Session {
  std::unique_ptr<Connection> conn;
  std::string holder;        ///< "<worker-name>#<session-seq>"
  bool hello_done = false;
  /// Job *id* → target generation of the spec this session last
  /// received — the worker caches sweepers, so the spec rides a lease
  /// only when the session has never seen the job or its target set
  /// mutated since (add/remove bumps the generation and the stale
  /// cached sweeper must be rebuilt, or the worker keeps scanning the
  /// old target set while its retired intervals are journaled as
  /// covered). Keyed by id, not name: a terminal job's name may be
  /// reused by a fresh submit, and that new instance needs its spec
  /// re-sent (the id change is also what tells the worker to drop its
  /// stale cache).
  std::map<service::JobId, std::uint64_t> specs_sent;
  /// One lease this session still believes in: its job (id, name) and
  /// when it was granted (transport seconds) for turnaround timing.
  struct LiveLease {
    service::JobId job = 0;
    std::string job_name;
    double granted_s = 0;
  };
  /// Leases granted to this session the worker still believes in;
  /// fill_updates() reports the ones that died (expiry, job cancel).
  std::map<std::uint64_t, LiveLease> live_leases;
  /// Absolute cursor into Coordinator::found_log_ (see found_base_).
  /// Starts at the tail: recoveries made before this session opened
  /// reach it as `spec_found` on each job's first lease, not by
  /// replaying history.
  std::size_t found_cursor = 0;
};

Coordinator::Coordinator(service::JobManager& manager, Transport& transport,
                         CoordinatorConfig config)
    : manager_(manager), transport_(transport), config_(std::move(config)) {
  GKS_REQUIRE(config_.lease_s > 0, "lease lifetime must be positive");
  GKS_REQUIRE(config_.heartbeat_s > 0, "heartbeat cadence must be positive");
  GKS_REQUIRE(config_.heartbeat_s < config_.lease_s,
              "heartbeat cadence must beat the lease lifetime");
  GKS_REQUIRE(config_.min_lease > u128(0), "min lease must be positive");
  GKS_REQUIRE(config_.min_lease <= config_.max_lease,
              "min lease above max lease");
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start(const std::string& listen_addr) {
  GKS_REQUIRE(listener_ == nullptr, "coordinator already started");
  listener_ = transport_.listen(listen_addr);
  acceptor_ = std::thread([this] { accept_loop(); });
  reaper_ = std::thread([this] { reaper_loop(); });
}

void Coordinator::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (const auto& session : sessions_) {
      if (session->conn) session->conn->close();
    }
  }
  stop_cv_.notify_all();
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  if (reaper_.joinable()) reaper_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) t.join();
}

std::string Coordinator::address() const {
  GKS_REQUIRE(listener_ != nullptr, "coordinator not started");
  return listener_->address();
}

Coordinator::Stats Coordinator::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::string Coordinator::worker_name_of(const std::string& holder) {
  const auto pos = holder.rfind('#');
  return pos == std::string::npos ? holder : holder.substr(0, pos);
}

void Coordinator::strike_locked(const std::string& name, double weight,
                                std::uint64_t WorkerHealth::*counter) {
  if (name.empty()) return;
  WorkerHealth& h = health_[name];
  h.score += weight;
  ++h.strikes;
  if (counter != nullptr) ++(h.*counter);
  const double now = transport_.now_s();
  if (!h.ejected && h.score >= config_.disconnect_score) {
    h.ejected = true;
    h.ejected_at = now;
    ++stats_.workers_ejected;
    cmetrics().ejected.add(1);
  } else if (!h.ejected && h.score >= config_.quarantine_score &&
             now >= h.quarantined_until) {
    h.quarantined_until = now + config_.quarantine_s;
    ++stats_.workers_quarantined;
    cmetrics().quarantined.add(1);
  }
}

void Coordinator::heal_locked(const std::string& name) {
  if (name.empty()) return;
  WorkerHealth& h = health_[name];
  ++h.retires_ok;
  h.score = std::max(0.0, h.score - config_.heal_per_retire);
}

void Coordinator::note_protocol_error(const Session& session) {
  std::lock_guard lock(mu_);
  ++stats_.protocol_errors;
  cmetrics().protocol_errors.add(1);
  strike_locked(worker_name_of(session.holder), config_.strike_protocol,
                &WorkerHealth::protocol_errors);
}

std::string Coordinator::health_state_locked(const WorkerHealth& h,
                                             double now) const {
  if (h.ejected) return "ejected";
  if (now < h.quarantined_until) return "quarantined";
  if (h.score >= config_.degraded_score) return "degraded";
  return "ok";
}

std::vector<WorkerHealthWire> Coordinator::worker_health() const {
  std::lock_guard lock(mu_);
  const double now = transport_.now_s();
  std::vector<WorkerHealthWire> out;
  out.reserve(health_.size());
  for (const auto& [name, h] : health_) {
    WorkerHealthWire w;
    w.name = name;
    w.state = health_state_locked(h, now);
    w.score = h.score;
    w.strikes = h.strikes;
    w.missed_heartbeats = h.missed_heartbeats;
    w.lease_expiries = h.lease_expiries;
    w.protocol_errors = h.protocol_errors;
    w.late_retires = h.late_retires;
    w.forged_founds = h.forged_founds;
    w.retires_ok = h.retires_ok;
    out.push_back(std::move(w));
  }
  return out;
}

MetricsRespMsg Coordinator::cluster_metrics() const {
  MetricsRespMsg resp;
  resp.coordinator = obs::Registry::global().snapshot();
  std::lock_guard lock(mu_);
  const double now = transport_.now_s();
  resp.workers.reserve(worker_metrics_.size());
  for (const auto& [name, entry] : worker_metrics_) {
    WorkerMetricsWire w;
    w.name = name;
    w.age_s = std::max(0.0, now - entry.received_s);
    w.metrics = entry.snapshot;
    resp.workers.push_back(std::move(w));
  }
  return resp;
}

std::string Coordinator::prometheus_text() const {
  const MetricsRespMsg view = cluster_metrics();
  std::vector<obs::LabeledSnapshot> parts;
  parts.reserve(view.workers.size() + 1);
  parts.push_back({{{"node", "coordinator"}}, view.coordinator});
  for (const WorkerMetricsWire& w : view.workers) {
    parts.push_back({{{"worker", w.name}}, w.metrics});
  }
  return obs::prometheus_exposition(parts);
}

void Coordinator::accept_loop() {
  for (;;) {
    std::unique_ptr<Connection> conn;
    try {
      conn = listener_->accept(/*timeout_s=*/0.25);
    } catch (const TransportError&) {
      return;  // listener closed — shutting down
    }
    if (!conn) {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      continue;
    }
    auto session = std::make_shared<Session>();
    session->conn = std::move(conn);
    std::lock_guard lock(mu_);
    if (stopping_) {
      session->conn->close();
      return;
    }
    session->found_cursor = found_base_ + found_log_.size();
    ++stats_.sessions_opened;
    cmetrics().sessions.add(1);
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { serve_session(session); });
  }
}

void Coordinator::reaper_loop() {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      if (stopping_) return;
      // transport sleep without holding the lock would be cleaner, but
      // waiting on the cv keeps stop() prompt; the reaper cadence is
      // coarse real time, which tracks transport time at simnet
      // scale=1.0 (the only scale workers doing real scans run at).
      stop_cv_.wait_for(lock, std::chrono::duration<double>(
                                  config_.reap_interval_s));
      if (stopping_) return;
    }
    std::vector<std::string> expired_holders;
    manager_.expire_leases(transport_.now_s(), &expired_holders);
    if (!expired_holders.empty()) {
      std::lock_guard lock(mu_);
      for (const std::string& holder : expired_holders) {
        strike_locked(worker_name_of(holder), config_.strike_lease_expired,
                      &WorkerHealth::lease_expiries);
      }
    }
  }
}

void Coordinator::note_found(service::JobId job_id, const std::string& job,
                             const std::string& digest,
                             const std::string& key) {
  std::lock_guard lock(mu_);
  ++stats_.found_reports;
  cmetrics().found_reports.add(1);
  if (!found_seen_.emplace(job_id, digest).second) return;  // broadcast once
  found_log_.push_back(FoundUpdate{job, digest, key, job_id});
  // Drop the prefix every live session has already replayed; sessions
  // that closed no longer hold it back, and new sessions start at the
  // tail, so a long-running coordinator's log stays bounded.
  std::size_t min_cursor = found_base_ + found_log_.size();
  for (const auto& session : sessions_) {
    min_cursor = std::min(min_cursor, session->found_cursor);
  }
  while (found_base_ < min_cursor) {
    found_log_.pop_front();
    ++found_base_;
  }
}

void Coordinator::fill_updates(Session& session,
                               std::vector<std::uint64_t>& cancelled,
                               std::vector<FoundUpdate>& dead) {
  for (auto it = session.live_leases.begin();
       it != session.live_leases.end();) {
    if (manager_.lease_live(it->first)) {
      ++it;
    } else {
      cancelled.push_back(it->first);
      it = session.live_leases.erase(it);
    }
  }
  std::lock_guard lock(mu_);
  if (session.found_cursor < found_base_) session.found_cursor = found_base_;
  for (; session.found_cursor < found_base_ + found_log_.size();
       ++session.found_cursor) {
    dead.push_back(found_log_[session.found_cursor - found_base_]);
  }
}

std::string Coordinator::handle(Session& session, const std::string& body) {
  json::Value msg;
  std::string type;
  try {
    msg = json::parse(body);
    type = message_type(msg);
  } catch (const Error& e) {
    std::lock_guard lock(mu_);
    ++stats_.protocol_errors;
    cmetrics().protocol_errors.add(1);
    if (session.hello_done) {
      strike_locked(worker_name_of(session.holder), config_.strike_protocol,
                    &WorkerHealth::protocol_errors);
    }
    return encode(ErrorMsg{std::string("bad message: ") + e.what()});
  }

  // Decodes one message body; a malformed field is a protocol strike
  // against the worker, unlike manager-level failures (unknown job,
  // expired lease) which are honest races and nack without a strike.
  const auto decode = [&](auto decoder) {
    try {
      return decoder(msg);
    } catch (const Error&) {
      note_protocol_error(session);
      throw;
    }
  };

  try {
    if (!session.hello_done) {
      if (type != "hello") {
        return encode(ErrorMsg{"expected hello, got " + type});
      }
      const HelloMsg hello = hello_from_json(msg);
      if (hello.version != kProtocolVersion) {
        return encode(ErrorMsg{"protocol version mismatch"});
      }
      const std::string name =
          hello.name.empty() ? session.conn->peer() : hello.name;
      std::uint64_t seq;
      {
        std::lock_guard lock(mu_);
        WorkerHealth& h = health_[name];  // ledger entry exists from hello on
        if (h.ejected) {
          // Probation: an ejected worker may return after sitting out
          // twice the quarantine window, and re-enters degraded (not
          // clean) so one fresh offence re-quarantines it.
          const double now = transport_.now_s();
          if (now < h.ejected_at + 2 * config_.quarantine_s) {
            return encode(ErrorMsg{"worker '" + name +
                                   "' is ejected; retry after probation"});
          }
          h.ejected = false;
          h.quarantined_until = 0;
          h.score = config_.degraded_score;
        }
        seq = next_session_++;
      }
      session.holder = name + "#" + std::to_string(seq);
      session.hello_done = true;
      WelcomeMsg welcome;
      welcome.lease_s = config_.lease_s;
      welcome.heartbeat_s = config_.heartbeat_s;
      welcome.holder = session.holder;
      return encode(welcome);
    }

    if (type == "lease_req") {
      const LeaseRequestMsg req = decode(lease_request_from_json);
      u128 want = req.max_ids;
      if (want == u128(0)) want = config_.max_lease;
      want = std::min(std::max(want, config_.min_lease), config_.max_lease);
      bool ejected = false;
      bool degraded = false;
      double quarantined_until = 0;
      {
        std::lock_guard lock(mu_);
        const auto it = health_.find(worker_name_of(session.holder));
        if (it != health_.end()) {
          ejected = it->second.ejected;
          quarantined_until = it->second.quarantined_until;
          degraded = it->second.score >= config_.degraded_score;
        }
      }
      if (ejected) {
        return encode(ErrorMsg{"worker ejected for repeated faults"});
      }
      const double q_now = transport_.now_s();
      if (q_now < quarantined_until) {
        // Quarantined: no work until the window passes. Idle (not an
        // error) keeps the session alive so the worker sits the window
        // out instead of burning reconnects.
        IdleMsg idle;
        idle.retry_s = std::max(config_.idle_retry_s,
                                quarantined_until - q_now);
        std::vector<std::uint64_t> cancelled;  // idle has no lease list
        fill_updates(session, cancelled, idle.dead);
        return encode(idle);
      }
      // Degraded workers get the smallest leases: bounded blast radius
      // while they prove themselves back to health.
      if (degraded) want = config_.min_lease;
      const double deadline = transport_.now_s() + config_.lease_s;
      const auto grant = manager_.lease(session.holder, want, deadline);
      if (!grant.has_value()) {
        IdleMsg idle;
        idle.retry_s = config_.idle_retry_s;
        std::vector<std::uint64_t> cancelled;  // idle has no lease list
        fill_updates(session, cancelled, idle.dead);
        return encode(idle);
      }
      LeaseGrantWire wire;
      wire.lease_id = grant->lease_id;
      wire.job = grant->job;
      wire.job_name = grant->job_name;
      wire.begin = grant->interval.begin;
      wire.end = grant->interval.end;
      wire.target_gen = grant->target_gen;
      const auto sent = session.specs_sent.find(grant->job);
      if (sent == session.specs_sent.end() ||
          sent->second != grant->target_gen) {
        wire.has_spec = true;
        // wire_spec may observe a generation newer than the grant's (a
        // mutation can land between lease() and here); recording the
        // grant's generation then just re-sends the spec next lease —
        // erring on the resend side is the safe direction.
        wire.spec = manager_.wire_spec(grant->job, &wire.spec_found);
        session.specs_sent[grant->job] = grant->target_gen;
      }
      session.live_leases.emplace(
          grant->lease_id,
          Session::LiveLease{grant->job, grant->job_name, transport_.now_s()});
      std::vector<std::uint64_t> cancelled;
      fill_updates(session, cancelled, wire.dead);
      {
        std::lock_guard lock(mu_);
        ++stats_.leases_granted;
      }
      return encode(wire);
    }

    if (type == "found") {
      const FoundMsg found = decode(found_from_json);
      const service::FoundOutcome outcome =
          manager_.report_found(found.lease_id, found.digest, found.key);
      AckMsg ack;
      switch (outcome) {
        case service::FoundOutcome::kApplied:
        case service::FoundOutcome::kDuplicate: {
          // Verified against the job's own digest recompute; only now
          // may it broadcast to other workers.
          const auto it = session.live_leases.find(found.lease_id);
          if (it != session.live_leases.end()) {
            note_found(it->second.job, it->second.job_name, found.digest,
                       found.key);
          }
          break;
        }
        case service::FoundOutcome::kForged: {
          // The key does not hash to the digest: a bug or a liar.
          // Either way the report dies here — never journaled, never
          // broadcast — and the worker earns a heavy strike.
          ack.ok = false;
          ack.error = "found report failed verification";
          std::lock_guard lock(mu_);
          ++stats_.forged_founds;
          cmetrics().forged.add(1);
          strike_locked(worker_name_of(session.holder),
                        config_.strike_forged_found,
                        &WorkerHealth::forged_founds);
          break;
        }
        case service::FoundOutcome::kNoLease:
          ack.ok = false;
          ack.cancelled.push_back(found.lease_id);
          break;
      }
      fill_updates(session, ack.cancelled, ack.dead);
      return encode(ack);
    }

    if (type == "retire") {
      RetireMsg retire = decode(retire_from_json);
      // Apply batched recoveries one by one (not via retire_lease's
      // found list) so each is digest-verified and forged entries are
      // striked without suppressing the honest ones.
      std::size_t forged = 0;
      const auto it = session.live_leases.find(retire.lease_id);
      for (const auto& [digest, key] : retire.found) {
        switch (manager_.report_found(retire.lease_id, digest, key)) {
          case service::FoundOutcome::kForged:
            ++forged;
            break;
          case service::FoundOutcome::kApplied:
          case service::FoundOutcome::kDuplicate:
            if (it != session.live_leases.end()) {
              note_found(it->second.job, it->second.job_name, digest, key);
            }
            break;
          case service::FoundOutcome::kNoLease:
            break;  // the retire below settles the lease's fate
        }
      }
      const bool live = manager_.retire_lease(retire.lease_id, retire.tested,
                                              {}, retire.busy_s);
      const double retired_at = transport_.now_s();
      if (live && it != session.live_leases.end()) {
        cmetrics().turnaround_s.observe(
            std::max(0.0, retired_at - it->second.granted_s));
      }
      session.live_leases.erase(retire.lease_id);
      if (retire.metrics.has_value()) {
        std::lock_guard lock(mu_);
        WorkerMetricsEntry& entry =
            worker_metrics_[worker_name_of(session.holder)];
        entry.snapshot = std::move(*retire.metrics);
        entry.received_s = retired_at;
      }
      {
        std::lock_guard lock(mu_);
        const std::string name = worker_name_of(session.holder);
        stats_.forged_founds += forged;
        if (forged > 0) cmetrics().forged.add(forged);
        for (std::size_t i = 0; i < forged; ++i) {
          strike_locked(name, config_.strike_forged_found,
                        &WorkerHealth::forged_founds);
        }
        if (live) {
          ++stats_.leases_retired;
          if (forged == 0) heal_locked(name);
        } else {
          // Retiring a lease the reaper already expired: mild strike —
          // honest workers hit this under latency, flaky ones live here.
          strike_locked(name, config_.strike_late_retire,
                        &WorkerHealth::late_retires);
        }
      }
      AckMsg ack;
      ack.ok = live;
      if (!live) ack.error = "lease expired or unknown";
      if (forged > 0) {
        ack.ok = false;
        ack.error = "found report failed verification";
      }
      fill_updates(session, ack.cancelled, ack.dead);
      return encode(ack);
    }

    if (type == "heartbeat") {
      HeartbeatMsg hb = decode(heartbeat_from_json);
      manager_.renew_leases(session.holder,
                            transport_.now_s() + config_.lease_s);
      if (hb.metrics.has_value()) {
        std::lock_guard lock(mu_);
        WorkerMetricsEntry& entry =
            worker_metrics_[worker_name_of(session.holder)];
        entry.snapshot = std::move(*hb.metrics);
        entry.received_s = transport_.now_s();
      }
      AckMsg ack;
      fill_updates(session, ack.cancelled, ack.dead);
      return encode(ack);
    }

    if (type == "bye") {
      ByeMsg bye = decode(bye_from_json);
      manager_.revoke_leases(session.holder);
      session.live_leases.clear();
      if (bye.metrics.has_value()) {
        std::lock_guard lock(mu_);
        WorkerMetricsEntry& entry =
            worker_metrics_[worker_name_of(session.holder)];
        entry.snapshot = std::move(*bye.metrics);
        entry.received_s = transport_.now_s();
      }
      return encode(AckMsg{});
    }

    if (type == "submit") {
      const SubmitMsg submit = decode(submit_from_json);
      AckMsg ack;
      // Idempotent by name: the documented flow starts the coordinator
      // with --batch and points `gks-jobs --connect` at the *same*
      // batch file to watch/drive it, so a name the coordinator
      // already knows — live or finished — attaches to that job
      // instead of failing the client or silently rerunning a done
      // sweep. (The journal has the same precedent: duplicate job
      // records keep the first occurrence. Rerunning needs a fresh
      // name.) find_or_submit does the lookup and insert under one
      // JobManager lock, so two clients racing the same name both get
      // the same id instead of the loser drawing a duplicate-name nack.
      ack.id = manager_.find_or_submit(submit.spec);
      return encode(ack);
    }

    if (type == "cancel") {
      const CancelMsg cancel = decode(cancel_from_json);
      const auto id = manager_.find_job(cancel.job);
      GKS_REQUIRE(id.has_value(), "unknown job: " + cancel.job);
      manager_.cancel(*id);
      return encode(AckMsg{});
    }

    if (type == "targets") {
      const TargetsMsg targets = decode(targets_from_json);
      const auto id = manager_.find_job(targets.job);
      GKS_REQUIRE(id.has_value(), "unknown job: " + targets.job);
      if (!targets.add.empty()) manager_.add_targets(*id, targets.add);
      if (!targets.remove.empty()) {
        manager_.remove_targets(*id, targets.remove);
      }
      return encode(AckMsg{});
    }

    if (type == "status") {
      const StatusMsg status = decode(status_from_json);
      StatusRespMsg resp;
      if (status.job.empty()) {
        resp.jobs = manager_.snapshot_all();
      } else {
        const auto id = manager_.find_job(status.job);
        GKS_REQUIRE(id.has_value(), "unknown job: " + status.job);
        resp.jobs.push_back(manager_.status(*id));
      }
      resp.workers = worker_health();
      return encode(resp);
    }

    if (type == "metrics") {
      return encode(cluster_metrics());
    }

    {
      std::lock_guard lock(mu_);
      ++stats_.protocol_errors;
      cmetrics().protocol_errors.add(1);
      strike_locked(worker_name_of(session.holder), config_.strike_protocol,
                    &WorkerHealth::protocol_errors);
    }
    return encode(ErrorMsg{"unknown message type: " + type});
  } catch (const Error& e) {
    AckMsg nack;
    nack.ok = false;
    nack.error = e.what();
    return encode(nack);
  }
}

void Coordinator::serve_session(std::shared_ptr<Session> session) {
  Connection& conn = *session->conn;
  try {
    for (;;) {
      const auto body = conn.recv(config_.session_timeout_s);
      if (!body.has_value()) {
        // Silent too long — presumed dead. The silence is itself a
        // health signal: a worker that keeps vanishing mid-session
        // drifts toward quarantine even if its leases are small.
        if (session->hello_done) {
          std::lock_guard lock(mu_);
          strike_locked(worker_name_of(session->holder),
                        config_.strike_silence,
                        &WorkerHealth::missed_heartbeats);
        }
        break;
      }
      const std::string reply = handle(*session, *body);
      conn.send(reply);
      if (!session->hello_done) break;  // pre-hello protocol error
    }
  } catch (const TransportError&) {
    // Closed, reset, or corrupt stream — all the same teardown.
  }
  if (!session->holder.empty()) manager_.revoke_leases(session->holder);
  conn.close();
  std::lock_guard lock(mu_);
  ++stats_.sessions_closed;
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                  sessions_.end());
}

}  // namespace gks::dist
