#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "dist/protocol.h"
#include "dist/transport.h"
#include "obs/metrics.h"
#include "service/job_manager.h"
#include "support/uint128.h"

namespace gks::dist {

struct CoordinatorConfig {
  /// Validity of a granted lease, in transport seconds. A worker that
  /// goes silent for this long forfeits its intervals to re-dispatch.
  double lease_s = 3.0;
  /// Cadence the coordinator asks workers to heartbeat at (welcome
  /// message). Several heartbeats fit one lease lifetime, so a single
  /// dropped renewal does not expire a healthy worker.
  double heartbeat_s = 0.5;
  /// How long an idle worker should wait before asking again.
  double idle_retry_s = 0.2;
  /// Reaper cadence: how often expired leases are swept back into the
  /// pending queues.
  double reap_interval_s = 0.25;
  /// Clamp on granted lease sizes, in candidates. Workers request a
  /// size from their measured rate; the clamp bounds both bookkeeping
  /// overhead (floor) and the work lost when a holder dies (ceiling).
  u128 min_lease{4096};
  u128 max_lease{u128(1) << 24};
  /// recv timeout for an established session; a worker silent this
  /// long (no requests, no heartbeats) is presumed dead and its
  /// session closes (leases then expire via the reaper).
  double session_timeout_s = 6.0;

  // --- Worker health policy (docs/distributed.md, "Failure model") ---
  // Scores are per worker *name* and accumulate strikes weighted by
  // offence; clean retires heal. The lifecycle degrades gradually:
  //   score >= degraded_score    leases clamp to min_lease
  //   score >= quarantine_score  no leases for quarantine_s
  //   score >= disconnect_score  ejected: hellos rejected until a
  //                              probation period passes
  double degraded_score = 3.0;
  double quarantine_score = 6.0;
  double disconnect_score = 10.0;
  /// How long a quarantined worker is refused leases; an ejected
  /// worker may re-hello after 2x this on probation (it re-enters at
  /// degraded_score, not zero).
  double quarantine_s = 5.0;
  /// Score healed by each clean retire.
  double heal_per_retire = 0.5;
  // Strike weights.
  double strike_protocol = 1.0;      ///< unparsable / malformed request
  double strike_forged_found = 2.0;  ///< found report failing digest check
  double strike_lease_expired = 1.0; ///< lease lost to the reaper
  double strike_late_retire = 0.5;   ///< retire of a dead/unknown lease
  double strike_silence = 1.0;       ///< session_timeout_s of silence
};

/// The dispatch server: owns nothing but references — a JobManager
/// (jobs, scheduler, journal) and a Transport — and serves the wire
/// protocol of protocol.h on top of them. One thread per session plus
/// an acceptor and a lease reaper.
///
/// The coordinator is transport-agnostic by construction: every
/// deadline it computes uses Transport::now_s(), so the same object
/// runs over real TCP sockets and over a simnet virtual network
/// without a single branch on the backend.
class Coordinator {
 public:
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t leases_granted = 0;
    std::uint64_t leases_retired = 0;
    std::uint64_t found_reports = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t forged_founds = 0;
    std::uint64_t workers_quarantined = 0;
    std::uint64_t workers_ejected = 0;
  };

  Coordinator(service::JobManager& manager, Transport& transport,
              CoordinatorConfig config = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds `listen_addr` and starts the acceptor + reaper threads.
  /// Throws TransportError when the address cannot be bound.
  void start(const std::string& listen_addr);

  /// Closes the listener and every live session, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound address (resolves ":0" to the real port). Valid after
  /// start().
  std::string address() const;

  Stats stats() const;

  /// Health snapshot of every worker the coordinator has ever scored,
  /// as the status verb reports them (sorted by name).
  std::vector<WorkerHealthWire> worker_health() const;

  /// The cluster telemetry view the `metrics` verb returns: this
  /// process's registry plus the latest snapshot each worker *name*
  /// piggybacked on a heartbeat or retire. Worker entries replace on
  /// arrival and persist across reconnects — the same keying (and the
  /// same survival rule) as the health table, so `status` and
  /// `metrics` rows join on the name.
  MetricsRespMsg cluster_metrics() const;

  /// Prometheus text exposition of cluster_metrics(): coordinator
  /// series labelled node="coordinator", worker series labelled
  /// worker="<name>". This is what --metrics-listen serves.
  std::string prometheus_text() const;

 private:
  struct Session;

  /// Per-worker health ledger entry. Keyed by worker *name* (the part
  /// of the holder before '#'), never by session: a worker cannot
  /// launder its score by reconnecting under a fresh session.
  struct WorkerHealth {
    double score = 0;
    std::uint64_t strikes = 0;
    std::uint64_t missed_heartbeats = 0;
    std::uint64_t lease_expiries = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t late_retires = 0;
    std::uint64_t forged_founds = 0;
    std::uint64_t retires_ok = 0;
    double quarantined_until = 0;
    bool ejected = false;
    double ejected_at = 0;
  };

  /// Latest telemetry snapshot a worker name sent, and when.
  struct WorkerMetricsEntry {
    obs::RegistrySnapshot snapshot;
    double received_s = 0;
  };

  void accept_loop();
  void reaper_loop();
  void serve_session(std::shared_ptr<Session> session);
  /// One request → one response string (never throws; protocol
  /// failures become error/nack responses). `session` accumulates the
  /// per-connection state (holder id, specs already sent, found-log
  /// cursor).
  std::string handle(Session& session, const std::string& body);
  /// Piggyback state for a response: leases of this session that died
  /// under it, and recoveries it has not heard yet.
  void fill_updates(Session& session, std::vector<std::uint64_t>& cancelled,
                    std::vector<FoundUpdate>& dead);
  void note_found(service::JobId job_id, const std::string& job,
                  const std::string& digest, const std::string& key);

  /// The worker name a holder id belongs to ("alice#7" → "alice").
  static std::string worker_name_of(const std::string& holder);
  /// Records a strike against `name` (weight per the config) and moves
  /// it through the quarantine/ejection lifecycle. `counter`, when
  /// non-null, is the per-reason tally inside that worker's ledger.
  /// Caller must hold mu_.
  void strike_locked(const std::string& name, double weight,
                     std::uint64_t WorkerHealth::*counter);
  /// Heals `name` by heal_per_retire after a clean retire. Caller must
  /// hold mu_.
  void heal_locked(const std::string& name);
  /// Counts a malformed request from an established session: bumps the
  /// protocol_errors stat and strikes the worker.
  void note_protocol_error(const Session& session);
  /// The lifecycle state string of a ledger entry at `now`. Caller
  /// must hold mu_.
  std::string health_state_locked(const WorkerHealth& h, double now) const;

  service::JobManager& manager_;
  Transport& transport_;
  CoordinatorConfig config_;

  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  std::thread reaper_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::uint64_t next_session_ = 1;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;
  /// Log of recoveries; sessions replay it from their own cursor so
  /// every worker eventually hears about every dead target. Entries
  /// carry the job id so a broadcast can never kill a target in a
  /// later job that reused the name. Cursors are absolute indices;
  /// the deque holds entries [found_base_, found_base_ + size()) and
  /// note_found() prunes the prefix every live session has replayed
  /// (new sessions start at the tail — recoveries-so-far reach them
  /// via each job's spec), so the log is bounded by live sessions'
  /// lag, not the coordinator's lifetime.
  std::deque<FoundUpdate> found_log_;
  std::size_t found_base_ = 0;
  /// (job id, digest) pairs ever logged — O(log n) dedup of the
  /// found reports racing holders send for the same digest.
  std::set<std::pair<service::JobId, std::string>> found_seen_;
  /// Health ledger, keyed by worker name. Entries persist across
  /// sessions (and past disconnects) for the coordinator's lifetime.
  std::map<std::string, WorkerHealth> health_;
  /// Latest piggybacked telemetry per worker name; replace-on-arrival
  /// (worker snapshots are cumulative), survives reconnects like the
  /// health ledger.
  std::map<std::string, WorkerMetricsEntry> worker_metrics_;
  Stats stats_;
  mutable std::condition_variable stop_cv_;  ///< wakes the reaper early
};

}  // namespace gks::dist
