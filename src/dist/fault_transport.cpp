#include "dist/fault_transport.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace gks::dist {

namespace {

/// Golden-ratio stride keeps per-connection streams far apart even for
/// adjacent connection ids.
constexpr std::uint64_t kConnStride = 0x9e3779b97f4a7c15ULL;

/// Registry mirror of one FaultStats field; member-pointer keyed so
/// count() stays the single choke-point for both books.
obs::Counter& fault_counter(std::uint64_t FaultStats::*m) {
  obs::Registry& reg = obs::Registry::global();
  if (m == &FaultStats::sent) {
    static obs::Counter& c = reg.counter("gks_faultnet_sent_total");
    return c;
  }
  if (m == &FaultStats::received) {
    static obs::Counter& c = reg.counter("gks_faultnet_received_total");
    return c;
  }
  if (m == &FaultStats::dropped) {
    static obs::Counter& c = reg.counter("gks_faultnet_dropped_total");
    return c;
  }
  if (m == &FaultStats::duplicated) {
    static obs::Counter& c = reg.counter("gks_faultnet_duplicated_total");
    return c;
  }
  if (m == &FaultStats::corrupted) {
    static obs::Counter& c = reg.counter("gks_faultnet_corrupted_total");
    return c;
  }
  if (m == &FaultStats::truncated) {
    static obs::Counter& c = reg.counter("gks_faultnet_truncated_total");
    return c;
  }
  if (m == &FaultStats::delayed) {
    static obs::Counter& c = reg.counter("gks_faultnet_delayed_total");
    return c;
  }
  if (m == &FaultStats::resets) {
    static obs::Counter& c = reg.counter("gks_faultnet_resets_total");
    return c;
  }
  static obs::Counter& c = reg.counter("gks_faultnet_blackholed_total");
  return c;
}

}  // namespace

/// One faulted connection. The RNG is this connection's own stream;
/// rolls are serialized under rng_mu_ because send() may be called
/// from any thread while recv() runs on another.
class FaultInjectingTransport::FaultConnection : public Connection {
 public:
  FaultConnection(std::unique_ptr<Connection> inner,
                  std::shared_ptr<Shared> shared, std::uint64_t conn_id)
      : inner_(std::move(inner)),
        shared_(std::move(shared)),
        rng_(shared_->seed ^ (conn_id * kConnStride)) {}

  void send(const std::string& frame) override {
    if (!armed()) {
      inner_->send(frame);
      count(&FaultStats::sent);
      return;
    }
    if (partitioned()) {
      count(&FaultStats::blackholed);
      return;  // the void accepts all messages
    }
    const FaultSpec& f = shared_->plan.send;
    if (roll(f.reset)) {
      count(&FaultStats::resets);
      inner_->close();
      throw ConnectionClosed("fault injection: connection reset on send");
    }
    if (roll(f.drop)) {
      count(&FaultStats::dropped);
      return;  // caller believes it sent; that is the point
    }
    if (roll(f.delay_p)) {
      count(&FaultStats::delayed);
      shared_->inner.sleep_s(f.delay_s);
    }
    std::string out = frame;
    mutate(f, out);
    inner_->send(out);
    count(&FaultStats::sent);
    if (roll(f.duplicate)) {
      count(&FaultStats::duplicated);
      inner_->send(out);
    }
  }

  std::optional<std::string> recv(double timeout_s) override {
    // A duplicate injected on a previous recv is delivered first.
    {
      std::lock_guard lock(rng_mu_);
      if (pending_.has_value()) {
        std::optional<std::string> out;
        out.swap(pending_);
        return out;
      }
    }
    const double deadline =
        timeout_s < 0 ? -1 : shared_->inner.now_s() + timeout_s;
    for (;;) {
      double wait = -1;
      if (deadline >= 0) {
        wait = std::max(0.0, deadline - shared_->inner.now_s());
      }
      auto msg = inner_->recv(wait);
      if (!msg.has_value()) return std::nullopt;  // genuine timeout
      if (!armed()) {
        count(&FaultStats::received);
        return msg;
      }
      if (partitioned()) {
        count(&FaultStats::blackholed);
        continue;  // eaten; keep waiting out the timeout budget
      }
      const FaultSpec& f = shared_->plan.recv;
      if (roll(f.reset)) {
        count(&FaultStats::resets);
        inner_->close();
        throw ConnectionClosed("fault injection: connection reset on recv");
      }
      if (roll(f.drop)) {
        count(&FaultStats::dropped);
        continue;
      }
      if (roll(f.delay_p)) {
        count(&FaultStats::delayed);
        shared_->inner.sleep_s(f.delay_s);
      }
      mutate(f, *msg);
      if (roll(f.duplicate)) {
        count(&FaultStats::duplicated);
        std::lock_guard lock(rng_mu_);
        pending_ = *msg;
      }
      count(&FaultStats::received);
      return msg;
    }
  }

  void close() override { inner_->close(); }

  std::string peer() const override { return inner_->peer(); }

 private:
  bool armed() const {
    return shared_->inner.now_s() - shared_->t0 >= shared_->plan.arm_after_s;
  }

  bool partitioned() const {
    const double elapsed = shared_->inner.now_s() - shared_->t0;
    const std::string who = inner_->peer();
    for (const Partition& p : shared_->plan.partitions) {
      if (elapsed < p.from_s || elapsed >= p.until_s) continue;
      if (p.peer_match.empty() || who.find(p.peer_match) != std::string::npos)
        return true;
    }
    return false;
  }

  bool roll(double p) {
    if (p <= 0) return false;
    std::lock_guard lock(rng_mu_);
    return rng_.uniform01() < p;
  }

  /// In-place truncation/corruption of one payload.
  void mutate(const FaultSpec& f, std::string& payload) {
    if (roll(f.truncate) && !payload.empty()) {
      count(&FaultStats::truncated);
      std::lock_guard lock(rng_mu_);
      payload.resize(rng_.below(payload.size()));
    }
    if (roll(f.corrupt) && !payload.empty()) {
      count(&FaultStats::corrupted);
      std::lock_guard lock(rng_mu_);
      const std::size_t at = rng_.below(payload.size());
      // xor with a nonzero mask guarantees the byte actually changes.
      payload[at] = static_cast<char>(
          static_cast<unsigned char>(payload[at]) ^
          static_cast<unsigned char>(1 + rng_.below(255)));
    }
  }

  void count(std::uint64_t FaultStats::*counter) {
    {
      std::lock_guard lock(shared_->mu);
      ++(shared_->stats.*counter);
    }
    fault_counter(counter).add(1);
  }

  std::unique_ptr<Connection> inner_;
  std::shared_ptr<Shared> shared_;
  std::mutex rng_mu_;
  SplitMix64 rng_;
  std::optional<std::string> pending_;  ///< recv-side duplicate, queued
};

class FaultInjectingTransport::FaultListener : public Listener {
 public:
  FaultListener(std::unique_ptr<Listener> inner,
                std::shared_ptr<Shared> shared)
      : inner_(std::move(inner)), shared_(std::move(shared)) {}

  std::unique_ptr<Connection> accept(double timeout_s) override {
    auto conn = inner_->accept(timeout_s);
    if (!conn) return nullptr;
    std::uint64_t id;
    {
      std::lock_guard lock(shared_->mu);
      id = shared_->next_conn++;
    }
    return std::make_unique<FaultConnection>(std::move(conn), shared_, id);
  }

  std::string address() const override { return inner_->address(); }

  void close() override { inner_->close(); }

 private:
  std::unique_ptr<Listener> inner_;
  std::shared_ptr<Shared> shared_;
};

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultPlan plan,
                                                 std::uint64_t seed)
    : shared_(std::make_shared<Shared>(inner)) {
  shared_->plan = std::move(plan);
  shared_->seed = seed;
  shared_->t0 = inner.now_s();
}

std::unique_ptr<Listener> FaultInjectingTransport::listen(
    const std::string& address) {
  return std::make_unique<FaultListener>(shared_->inner.listen(address),
                                         shared_);
}

std::unique_ptr<Connection> FaultInjectingTransport::connect(
    const std::string& address, double timeout_s) {
  auto conn = shared_->inner.connect(address, timeout_s);
  std::uint64_t id;
  {
    std::lock_guard lock(shared_->mu);
    id = shared_->next_conn++;
  }
  return std::make_unique<FaultConnection>(std::move(conn), shared_, id);
}

double FaultInjectingTransport::now_s() const { return shared_->inner.now_s(); }

void FaultInjectingTransport::sleep_s(double seconds) const {
  shared_->inner.sleep_s(seconds);
}

std::uint64_t FaultInjectingTransport::seed() const { return shared_->seed; }

FaultStats FaultInjectingTransport::stats() const {
  std::lock_guard lock(shared_->mu);
  return shared_->stats;
}

}  // namespace gks::dist
