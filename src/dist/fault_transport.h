#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/transport.h"
#include "support/rng.h"

namespace gks::dist {

/// Per-direction fault probabilities. Each is rolled independently per
/// message (in the order reset → drop → delay → truncate → corrupt →
/// duplicate), so a plan can compose several failure modes at once.
/// All probabilities default to zero: a default FaultSpec is a no-op.
struct FaultSpec {
  double drop = 0;       ///< message silently vanishes
  double duplicate = 0;  ///< message delivered twice
  double corrupt = 0;    ///< one payload byte flipped
  double truncate = 0;   ///< payload cut short (possibly to zero bytes)
  double reset = 0;      ///< connection torn down mid-call
  double delay_p = 0;    ///< probability of an injected stall …
  double delay_s = 0;    ///< … of this many transport seconds
};

/// A scripted network partition: while elapsed time (since the
/// transport was built) is inside [from_s, until_s), every message on
/// a connection whose peer() contains `peer_match` is blackholed in
/// both directions. An empty match severs everyone.
struct Partition {
  double from_s = 0;
  double until_s = 0;
  std::string peer_match;
};

/// The full chaos schedule for one run.
struct FaultPlan {
  FaultSpec send;  ///< faults on outbound messages
  FaultSpec recv;  ///< faults on inbound messages
  std::vector<Partition> partitions;
  /// Grace period: no faults before this much elapsed transport time,
  /// so a plan can let sessions establish before the weather turns.
  double arm_after_s = 0;
};

/// Counts of injected faults, for assertions ("this run actually
/// exercised corruption") and for the chaos harness log line.
struct FaultStats {
  std::uint64_t sent = 0;      ///< messages passed through outbound
  std::uint64_t received = 0;  ///< messages passed through inbound
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t resets = 0;
  std::uint64_t blackholed = 0;  ///< messages eaten by a partition
};

/// A decorator over any Transport (TCP or simnet) that injects faults
/// into the payload stream: drops, duplicates, byte corruption,
/// truncation, stalls, connection resets, and scripted partitions —
/// the whole failure model of docs/distributed.md, deterministic from
/// one seed.
///
/// Every connection (dialed or accepted) draws its own PRNG stream
/// from the seed and a connection counter, so a run's fault schedule
/// is reproducible given the same seed and connection order. Chaos
/// harnesses must log seed() on failure; replaying the seed replays
/// the weather.
///
/// Faults apply at the payload level, above framing: a corrupted
/// message still arrives as a well-formed frame whose *content* is
/// garbage, which is exactly the case the protocol layer has to
/// survive (the framing layer's own CRC/length defenses are exercised
/// separately). Note that when both endpoints wrap their transport in
/// a fault injector, a message runs the gauntlet twice — effective
/// loss is 1-(1-p)^2.
class FaultInjectingTransport : public Transport {
 public:
  /// `inner` must outlive this transport and every connection and
  /// listener obtained through it.
  FaultInjectingTransport(Transport& inner, FaultPlan plan,
                          std::uint64_t seed);

  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Connection> connect(const std::string& address,
                                      double timeout_s) override;
  double now_s() const override;
  void sleep_s(double seconds) const override;

  std::uint64_t seed() const;
  FaultStats stats() const;

 private:
  /// State shared by the transport and every connection/listener it
  /// spawned (they may outlive different subsets of each other, but
  /// never `inner` — see the constructor contract).
  struct Shared {
    Transport& inner;
    FaultPlan plan;
    std::uint64_t seed;
    double t0;  ///< transport birth time; partitions are relative to it
    mutable std::mutex mu;
    FaultStats stats;
    std::uint64_t next_conn = 1;

    explicit Shared(Transport& t) : inner(t), seed(0), t0(0) {}
  };

  class FaultConnection;
  class FaultListener;

  std::shared_ptr<Shared> shared_;
};

}  // namespace gks::dist
