#include "dist/frame.h"

#include <cstring>

namespace gks::dist {

std::string encode_frame(std::string_view payload) {
  GKS_REQUIRE(payload.size() <= kMaxFramePayload,
              "frame payload exceeds the 16 MiB wire cap");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  const auto len = static_cast<std::uint32_t>(payload.size());
  char lenbuf[4];
  lenbuf[0] = static_cast<char>(len & 0xff);
  lenbuf[1] = static_cast<char>((len >> 8) & 0xff);
  lenbuf[2] = static_cast<char>((len >> 16) & 0xff);
  lenbuf[3] = static_cast<char>((len >> 24) & 0xff);
  out.append(lenbuf, 4);
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (poisoned_) throw ProtocolError("frame decoder already poisoned");
  buffer_.append(data, n);
  check_header();
}

void FrameDecoder::check_header() {
  if (buffer_.size() < kFrameHeaderBytes) {
    // A short prefix of the magic must still be a *valid* prefix —
    // rejecting garbage early closes probing connections before they
    // can dribble bytes forever.
    const std::size_t have = std::min(buffer_.size(), sizeof(kFrameMagic));
    if (std::memcmp(buffer_.data(), kFrameMagic, have) != 0) {
      poisoned_ = true;
      throw ProtocolError("bad frame magic (not a gks peer?)");
    }
    return;
  }
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    poisoned_ = true;
    throw ProtocolError("bad frame magic (not a gks peer?)");
  }
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[4 + i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (len > kMaxFramePayload) {
    poisoned_ = true;
    throw ProtocolError("frame length " + std::to_string(len) +
                        " exceeds the 16 MiB wire cap");
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (poisoned_) throw ProtocolError("frame decoder already poisoned");
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[4 + i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (buffer_.size() < kFrameHeaderBytes + len) return std::nullopt;
  std::string payload = buffer_.substr(kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  // The next frame's header (if fully buffered) must validate too.
  check_header();
  return payload;
}

}  // namespace gks::dist
