#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dist/transport.h"

namespace gks::dist {

/// Wire framing for the TCP backend: each frame is
///
///   "GKF1"  (4-byte magic)
///   length  (uint32, little-endian, payload bytes)
///   payload (length bytes)
///
/// The magic catches cross-protocol garbage (an HTTP probe, a port
/// scanner) before a bogus length can be trusted; the length cap
/// bounds the allocation a malicious or corrupt peer can force. Both
/// violations throw ProtocolError, after which the stream cannot be
/// resynchronized and the connection must be torn down — exactly what
/// the frame-hardening tests assert.
inline constexpr char kFrameMagic[4] = {'G', 'K', 'F', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::size_t kMaxFramePayload = std::size_t(1) << 24;  // 16 MiB

/// Renders header + payload as one contiguous byte string.
std::string encode_frame(std::string_view payload);

/// Incremental decoder over an arbitrary re-chunking of the byte
/// stream: feed() whatever the socket produced, then drain next()
/// until it returns nullopt. Torn frames simply wait for more bytes;
/// header violations throw ProtocolError and poison the decoder.
class FrameDecoder {
 public:
  /// Appends raw bytes. Throws ProtocolError on a bad magic or an
  /// oversized length as soon as the full header is visible.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next complete payload, if one is buffered.
  std::optional<std::string> next();

  /// Bytes buffered but not yet returned (torn-frame observability).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  void check_header();

  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace gks::dist
