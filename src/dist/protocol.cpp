#include "dist/protocol.h"

#include "service/journal.h"
#include "support/error.h"

namespace gks::dist {

namespace {

void write_found_updates(json::Writer& w, const char* key,
                         const std::vector<FoundUpdate>& dead) {
  w.key(key).begin_array();
  for (const FoundUpdate& f : dead) {
    w.begin_object()
        .key("job").value(f.job)
        .key("job_id").value(f.job_id)
        .key("digest").value(f.digest)
        .key("key").value(f.key)
        .end_object();
  }
  w.end_array();
}

std::vector<FoundUpdate> found_updates_from(const json::Value& v,
                                            const char* key) {
  std::vector<FoundUpdate> out;
  if (const json::Value* arr = v.find(key)) {
    for (const json::Value& f : arr->as_array()) {
      FoundUpdate u;
      u.job = f.at("job").as_string();
      u.job_id = static_cast<std::uint64_t>(f.at("job_id").as_number());
      u.digest = f.at("digest").as_string();
      u.key = f.at("key").as_string();
      out.push_back(std::move(u));
    }
  }
  return out;
}

void write_pairs(json::Writer& w, const char* key,
                 const std::vector<std::pair<std::string, std::string>>& kv) {
  w.key(key).begin_array();
  for (const auto& [digest, found_key] : kv) {
    w.begin_object()
        .key("digest").value(digest)
        .key("key").value(found_key)
        .end_object();
  }
  w.end_array();
}

std::vector<std::pair<std::string, std::string>> pairs_from(
    const json::Value& v, const char* key) {
  std::vector<std::pair<std::string, std::string>> out;
  if (const json::Value* arr = v.find(key)) {
    for (const json::Value& f : arr->as_array()) {
      out.emplace_back(f.at("digest").as_string(), f.at("key").as_string());
    }
  }
  return out;
}

std::uint64_t u64_field(const json::Value& v, const char* key) {
  // Lease/job ids fit a double exactly for any realistic session
  // (2^53 leases is beyond the protocol's lifetime), so a JSON number
  // is safe here — unlike keyspace ids, which travel as strings.
  return static_cast<std::uint64_t>(v.at(key).as_number());
}

}  // namespace

std::string message_type(const json::Value& v) {
  return v.at("type").as_string();
}

std::string encode(const HelloMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("hello")
      .key("version").value(m.version)
      .key("name").value(m.name)
      .key("threads").value(m.threads)
      .end_object();
  return w.str();
}

HelloMsg hello_from_json(const json::Value& v) {
  HelloMsg m;
  m.version = static_cast<int>(v.at("version").as_number());
  m.name = v.at("name").as_string();
  m.threads = static_cast<int>(v.number_or("threads", 1));
  return m;
}

std::string encode(const WelcomeMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("welcome")
      .key("version").value(m.version)
      .key("lease_s").value(m.lease_s)
      .key("heartbeat_s").value(m.heartbeat_s)
      .key("holder").value(m.holder)
      .end_object();
  return w.str();
}

WelcomeMsg welcome_from_json(const json::Value& v) {
  WelcomeMsg m;
  m.version = static_cast<int>(v.at("version").as_number());
  m.lease_s = v.at("lease_s").as_number();
  m.heartbeat_s = v.at("heartbeat_s").as_number();
  m.holder = v.string_or("holder", "");
  return m;
}

std::string encode(const LeaseRequestMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("lease_req")
      .key("max_ids").value(m.max_ids.to_string())
      .end_object();
  return w.str();
}

LeaseRequestMsg lease_request_from_json(const json::Value& v) {
  LeaseRequestMsg m;
  m.max_ids = u128::parse(v.at("max_ids").as_string());
  return m;
}

std::string encode(const LeaseGrantWire& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("lease")
      .key("lease").value(m.lease_id)
      .key("job_id").value(m.job)
      .key("name").value(m.job_name)
      .key("begin").value(m.begin.to_string())
      .key("end").value(m.end.to_string())
      .key("gen").value(m.target_gen);
  if (m.has_spec) {
    w.key("spec").begin_object();
    service::write_job_spec_fields(w, m.spec);
    w.end_object();
    write_pairs(w, "spec_found", m.spec_found);
  }
  write_found_updates(w, "dead", m.dead);
  w.end_object();
  return w.str();
}

LeaseGrantWire lease_grant_from_json(const json::Value& v) {
  LeaseGrantWire m;
  m.lease_id = u64_field(v, "lease");
  m.job = u64_field(v, "job_id");
  m.job_name = v.at("name").as_string();
  m.begin = u128::parse(v.at("begin").as_string());
  m.end = u128::parse(v.at("end").as_string());
  m.target_gen = static_cast<std::uint64_t>(v.number_or("gen", 0));
  if (const json::Value* spec = v.find("spec")) {
    m.has_spec = true;
    m.spec = service::job_spec_from_json(*spec);
    m.spec_found = pairs_from(v, "spec_found");
  }
  m.dead = found_updates_from(v, "dead");
  return m;
}

std::string encode(const IdleMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("idle")
      .key("retry_s").value(m.retry_s);
  write_found_updates(w, "dead", m.dead);
  w.end_object();
  return w.str();
}

IdleMsg idle_from_json(const json::Value& v) {
  IdleMsg m;
  m.retry_s = v.number_or("retry_s", 0.2);
  m.dead = found_updates_from(v, "dead");
  return m;
}

std::string encode(const FoundMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("found")
      .key("lease").value(m.lease_id)
      .key("digest").value(m.digest)
      .key("key").value(m.key)
      .end_object();
  return w.str();
}

FoundMsg found_from_json(const json::Value& v) {
  FoundMsg m;
  m.lease_id = u64_field(v, "lease");
  m.digest = v.at("digest").as_string();
  m.key = v.at("key").as_string();
  return m;
}

std::string encode(const RetireMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("retire")
      .key("lease").value(m.lease_id)
      .key("tested").value(m.tested.to_string())
      .key("busy_s").value(m.busy_s);
  write_pairs(w, "found", m.found);
  if (m.metrics.has_value()) {
    w.key("metrics");
    obs::snapshot_to_json(w, *m.metrics);
  }
  w.end_object();
  return w.str();
}

RetireMsg retire_from_json(const json::Value& v) {
  RetireMsg m;
  m.lease_id = u64_field(v, "lease");
  m.tested = u128::parse(v.at("tested").as_string());
  m.busy_s = v.number_or("busy_s", 0);
  m.found = pairs_from(v, "found");
  if (const json::Value* snap = v.find("metrics")) {
    m.metrics = obs::snapshot_from_json(*snap);
  }
  return m;
}

std::string encode(const HeartbeatMsg& m) {
  json::Writer w;
  w.begin_object().key("type").value("heartbeat");
  if (m.metrics.has_value()) {
    w.key("metrics");
    obs::snapshot_to_json(w, *m.metrics);
  }
  w.end_object();
  return w.str();
}

HeartbeatMsg heartbeat_from_json(const json::Value& v) {
  HeartbeatMsg m;
  if (const json::Value* snap = v.find("metrics")) {
    m.metrics = obs::snapshot_from_json(*snap);
  }
  return m;
}

std::string encode(const ByeMsg& m) {
  json::Writer w;
  w.begin_object().key("type").value("bye");
  if (m.metrics.has_value()) {
    w.key("metrics");
    obs::snapshot_to_json(w, *m.metrics);
  }
  w.end_object();
  return w.str();
}

ByeMsg bye_from_json(const json::Value& v) {
  ByeMsg m;
  if (const json::Value* snap = v.find("metrics")) {
    m.metrics = obs::snapshot_from_json(*snap);
  }
  return m;
}

std::string encode(const AckMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("ack")
      .key("ok").value(m.ok);
  if (!m.error.empty()) w.key("error").value(m.error);
  if (m.id != 0) w.key("id").value(m.id);
  w.key("cancelled").begin_array();
  for (const std::uint64_t lease : m.cancelled) w.value(lease);
  w.end_array();
  write_found_updates(w, "dead", m.dead);
  w.end_object();
  return w.str();
}

AckMsg ack_from_json(const json::Value& v) {
  AckMsg m;
  m.ok = v.at("ok").as_bool();
  m.error = v.string_or("error", "");
  m.id = static_cast<std::uint64_t>(v.number_or("id", 0));
  if (const json::Value* arr = v.find("cancelled")) {
    for (const json::Value& lease : arr->as_array()) {
      m.cancelled.push_back(static_cast<std::uint64_t>(lease.as_number()));
    }
  }
  m.dead = found_updates_from(v, "dead");
  return m;
}

std::string encode(const SubmitMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("submit")
      .key("spec").begin_object();
  service::write_job_spec_fields(w, m.spec);
  w.end_object().end_object();
  return w.str();
}

SubmitMsg submit_from_json(const json::Value& v) {
  SubmitMsg m;
  m.spec = service::job_spec_from_json(v.at("spec"));
  return m;
}

std::string encode(const CancelMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("cancel")
      .key("job").value(m.job)
      .end_object();
  return w.str();
}

CancelMsg cancel_from_json(const json::Value& v) {
  CancelMsg m;
  m.job = v.at("job").as_string();
  return m;
}

std::string encode(const TargetsMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("targets")
      .key("job").value(m.job)
      .key("add").begin_array();
  for (const std::string& hex : m.add) w.value(hex);
  w.end_array().key("remove").begin_array();
  for (const std::string& hex : m.remove) w.value(hex);
  w.end_array().end_object();
  return w.str();
}

TargetsMsg targets_from_json(const json::Value& v) {
  TargetsMsg m;
  m.job = v.at("job").as_string();
  if (const json::Value* arr = v.find("add")) {
    for (const json::Value& hex : arr->as_array()) {
      m.add.push_back(hex.as_string());
    }
  }
  if (const json::Value* arr = v.find("remove")) {
    for (const json::Value& hex : arr->as_array()) {
      m.remove.push_back(hex.as_string());
    }
  }
  return m;
}

std::string encode(const StatusMsg& m) {
  json::Writer w;
  w.begin_object().key("type").value("status");
  if (!m.job.empty()) w.key("job").value(m.job);
  w.end_object();
  return w.str();
}

StatusMsg status_from_json(const json::Value& v) {
  StatusMsg m;
  m.job = v.string_or("job", "");
  return m;
}

std::string encode(const StatusRespMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("status_resp")
      .key("jobs").begin_array();
  for (const service::JobSnapshot& s : m.jobs) {
    service::snapshot_to_json(w, s);
  }
  w.end_array();
  if (!m.workers.empty()) {
    w.key("workers").begin_array();
    for (const WorkerHealthWire& h : m.workers) {
      w.begin_object()
          .key("name").value(h.name)
          .key("state").value(h.state)
          .key("score").value(h.score)
          .key("strikes").value(h.strikes)
          .key("missed_heartbeats").value(h.missed_heartbeats)
          .key("lease_expiries").value(h.lease_expiries)
          .key("protocol_errors").value(h.protocol_errors)
          .key("late_retires").value(h.late_retires)
          .key("forged_founds").value(h.forged_founds)
          .key("retires_ok").value(h.retires_ok)
          .end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

StatusRespMsg status_resp_from_json(const json::Value& v) {
  StatusRespMsg m;
  for (const json::Value& s : v.at("jobs").as_array()) {
    m.jobs.push_back(service::snapshot_from_json(s));
  }
  if (const json::Value* arr = v.find("workers")) {
    for (const json::Value& h : arr->as_array()) {
      WorkerHealthWire w;
      w.name = h.at("name").as_string();
      w.state = h.string_or("state", "ok");
      w.score = h.number_or("score", 0);
      w.strikes = static_cast<std::uint64_t>(h.number_or("strikes", 0));
      w.missed_heartbeats =
          static_cast<std::uint64_t>(h.number_or("missed_heartbeats", 0));
      w.lease_expiries =
          static_cast<std::uint64_t>(h.number_or("lease_expiries", 0));
      w.protocol_errors =
          static_cast<std::uint64_t>(h.number_or("protocol_errors", 0));
      w.late_retires =
          static_cast<std::uint64_t>(h.number_or("late_retires", 0));
      w.forged_founds =
          static_cast<std::uint64_t>(h.number_or("forged_founds", 0));
      w.retires_ok =
          static_cast<std::uint64_t>(h.number_or("retires_ok", 0));
      m.workers.push_back(std::move(w));
    }
  }
  return m;
}

std::string encode(const MetricsMsg&) {
  json::Writer w;
  w.begin_object().key("type").value("metrics").end_object();
  return w.str();
}

std::string encode(const MetricsRespMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("metrics_resp")
      .key("coordinator");
  obs::snapshot_to_json(w, m.coordinator);
  w.key("workers").begin_array();
  for (const WorkerMetricsWire& wm : m.workers) {
    w.begin_object()
        .key("name").value(wm.name)
        .key("age_s").value(wm.age_s)
        .key("metrics");
    obs::snapshot_to_json(w, wm.metrics);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

MetricsRespMsg metrics_resp_from_json(const json::Value& v) {
  MetricsRespMsg m;
  m.coordinator = obs::snapshot_from_json(v.at("coordinator"));
  if (const json::Value* arr = v.find("workers")) {
    for (const json::Value& wm : arr->as_array()) {
      WorkerMetricsWire out;
      out.name = wm.at("name").as_string();
      out.age_s = wm.number_or("age_s", 0);
      out.metrics = obs::snapshot_from_json(wm.at("metrics"));
      m.workers.push_back(std::move(out));
    }
  }
  return m;
}

std::string encode(const ErrorMsg& m) {
  json::Writer w;
  w.begin_object()
      .key("type").value("error")
      .key("error").value(m.error)
      .end_object();
  return w.str();
}

ErrorMsg error_from_json(const json::Value& v) {
  ErrorMsg m;
  m.error = v.at("error").as_string();
  return m;
}

}  // namespace gks::dist
