#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/job.h"
#include "support/json.h"
#include "support/uint128.h"

namespace gks::dist {

/// Wire protocol of the distributed tier (docs/distributed.md): JSON
/// message bodies carried in GKF1 frames (frame.h). One request, one
/// response — a worker never has two messages in flight, so the
/// protocol needs no multiplexing and a response can always piggyback
/// session-scoped updates (cancelled leases, dead targets).
///
/// Requests (worker or client → coordinator):
///   hello      open a worker session (version handshake)
///   lease_req  ask for an interval lease
///   found      report a recovery against a live lease, immediately
///   retire     return a lease with its scanned prefix + recoveries
///   heartbeat  renew every lease of this session
///   bye        orderly goodbye (revokes the session's leases)
///   submit     submit a job (control clients, gks-jobs --connect)
///   cancel     cancel a job by name
///   targets    add/remove target digests of a job by name
///   status     snapshot one job or all jobs
///   metrics    cluster telemetry (coordinator + per-worker snapshots)
///
/// Responses (coordinator → peer):
///   welcome      hello accepted; carries the lease/heartbeat cadence
///   lease        a granted lease (+ the job spec if this session has
///                not seen the job yet, + recoveries so far)
///   idle         no work right now; retry after retry_s
///   ack          generic success/failure for found/retire/heartbeat/
///                bye/submit/cancel/targets
///   status_resp  job snapshots
///   error        protocol-level failure; the session should close
///
/// All u128 quantities travel as decimal strings (json.h keeps large
/// integers out of JSON numbers by design).
inline constexpr int kProtocolVersion = 1;

/// A recovery broadcast: job `job` no longer needs `digest` (key was
/// `key`). Responses piggyback these so every worker stops scanning
/// for digests some other worker already recovered. `job_id` pins the
/// update to one job *instance*: job names are reusable once a job is
/// terminal, and a stale broadcast must never mark a target dead in a
/// later job that happens to share the name.
struct FoundUpdate {
  std::string job;
  std::string digest;
  std::string key;
  std::uint64_t job_id = 0;
};

struct HelloMsg {
  int version = kProtocolVersion;
  std::string name;  ///< worker name (coordinator scopes it per session)
  int threads = 1;   ///< informational: the worker's scan parallelism
};

struct WelcomeMsg {
  int version = kProtocolVersion;
  double lease_s = 0;      ///< lease validity the coordinator grants
  double heartbeat_s = 0;  ///< cadence the worker should renew at
  std::string holder;      ///< session-scoped holder id assigned
};

struct LeaseRequestMsg {
  /// Upper bound on the interval size the worker wants; 0 lets the
  /// coordinator pick from its rate estimate.
  u128 max_ids{0};
};

/// A granted lease on the wire. `spec` rides along the first time this
/// session sees the job (the worker caches sweepers per job name) and
/// again whenever the job's target generation moved past the one this
/// session last received (live add/remove of targets invalidates the
/// cached sweeper); `spec_found` are the recoveries already made, so a
/// fresh worker doesn't re-report them.
struct LeaseGrantWire {
  std::uint64_t lease_id = 0;
  std::uint64_t job = 0;
  std::string job_name;
  u128 begin{0};
  u128 end{0};
  /// Target-set generation of the job at grant time; a worker whose
  /// cached sweeper carries an older generation must rebuild from the
  /// spec on this grant before scanning.
  std::uint64_t target_gen = 0;
  bool has_spec = false;
  service::JobSpec spec;
  std::vector<std::pair<std::string, std::string>> spec_found;
  std::vector<FoundUpdate> dead;
};

struct IdleMsg {
  double retry_s = 0.2;
  std::vector<FoundUpdate> dead;
};

struct FoundMsg {
  std::uint64_t lease_id = 0;
  std::string digest;
  std::string key;
};

struct RetireMsg {
  std::uint64_t lease_id = 0;
  u128 tested{0};  ///< contiguous prefix of the lease actually scanned
  double busy_s = 0;
  /// Recoveries not yet reported via FoundMsg (normally empty — the
  /// worker reports immediately — but kept for batching strategies).
  std::vector<std::pair<std::string, std::string>> found;
  /// The worker's full telemetry snapshot at retire time (absent from
  /// pre-obs workers; the decoder tolerates a missing member). Retire
  /// carries it too — not just heartbeat — so a lease that finishes
  /// between heartbeats still lands its final counters.
  std::optional<obs::RegistrySnapshot> metrics;
};

struct HeartbeatMsg {
  /// Telemetry piggyback: the worker's registry snapshot, replacing
  /// the coordinator's previous view of this worker name. Optional so
  /// old (or minimal) peers stay decodable.
  std::optional<obs::RegistrySnapshot> metrics;
};

struct ByeMsg {
  /// Final telemetry piggyback: a session's last retire cannot carry
  /// the counters that retire's own ack will bump (leases_completed),
  /// so a graceful exit lands them here instead of losing them.
  std::optional<obs::RegistrySnapshot> metrics;
};

struct AckMsg {
  bool ok = true;
  std::string error;
  /// Leases of this session no longer live (job cancelled or lease
  /// expired before the renewal arrived): the worker should abandon
  /// them without retiring.
  std::vector<std::uint64_t> cancelled;
  std::vector<FoundUpdate> dead;
  /// submit: the assigned JobId.
  std::uint64_t id = 0;
};

struct SubmitMsg {
  service::JobSpec spec;
};

struct CancelMsg {
  std::string job;
};

struct TargetsMsg {
  std::string job;
  std::vector<std::string> add;
  std::vector<std::string> remove;
};

struct StatusMsg {
  std::string job;  ///< empty selects every job
};

/// Control verb: ask the coordinator for the cluster telemetry view.
struct MetricsMsg {};

/// One worker's latest snapshot as the coordinator retains it, keyed
/// by worker *name* (same key as the health table, so `status` and
/// `metrics` rows join trivially); `age_s` is how long ago it arrived.
struct WorkerMetricsWire {
  std::string name;
  double age_s = 0;
  obs::RegistrySnapshot metrics;
};

struct MetricsRespMsg {
  /// The coordinator process's own registry (journal, job service,
  /// local scans, session counters).
  obs::RegistrySnapshot coordinator;
  std::vector<WorkerMetricsWire> workers;
};

/// One worker's health as the coordinator scores it (see
/// docs/distributed.md, "Failure model & chaos testing"). Keyed by
/// worker *name*, not session holder, so a flaky worker cannot launder
/// its score by reconnecting.
struct WorkerHealthWire {
  std::string name;
  /// "ok" | "degraded" | "quarantined" | "ejected"
  std::string state;
  double score = 0;
  std::uint64_t strikes = 0;
  std::uint64_t missed_heartbeats = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t late_retires = 0;
  std::uint64_t forged_founds = 0;
  std::uint64_t retires_ok = 0;
};

struct StatusRespMsg {
  std::vector<service::JobSnapshot> jobs;
  /// Worker health scores (absent from pre-health coordinators; the
  /// decoder tolerates a missing list).
  std::vector<WorkerHealthWire> workers;
};

struct ErrorMsg {
  std::string error;
};

/// The "type" member of a parsed message; throws InvalidArgument when
/// absent (every protocol message carries one).
std::string message_type(const json::Value& v);

/// Encoders — one JSON document per message, ready for encode_frame().
std::string encode(const HelloMsg& m);
std::string encode(const WelcomeMsg& m);
std::string encode(const LeaseRequestMsg& m);
std::string encode(const LeaseGrantWire& m);
std::string encode(const IdleMsg& m);
std::string encode(const FoundMsg& m);
std::string encode(const RetireMsg& m);
std::string encode(const HeartbeatMsg& m);
std::string encode(const ByeMsg& m);
std::string encode(const AckMsg& m);
std::string encode(const SubmitMsg& m);
std::string encode(const CancelMsg& m);
std::string encode(const TargetsMsg& m);
std::string encode(const StatusMsg& m);
std::string encode(const StatusRespMsg& m);
std::string encode(const MetricsMsg& m);
std::string encode(const MetricsRespMsg& m);
std::string encode(const ErrorMsg& m);

/// Decoders — the caller dispatches on message_type() first; each
/// throws InvalidArgument on missing or malformed fields.
HelloMsg hello_from_json(const json::Value& v);
WelcomeMsg welcome_from_json(const json::Value& v);
LeaseRequestMsg lease_request_from_json(const json::Value& v);
LeaseGrantWire lease_grant_from_json(const json::Value& v);
IdleMsg idle_from_json(const json::Value& v);
FoundMsg found_from_json(const json::Value& v);
RetireMsg retire_from_json(const json::Value& v);
HeartbeatMsg heartbeat_from_json(const json::Value& v);
ByeMsg bye_from_json(const json::Value& v);
AckMsg ack_from_json(const json::Value& v);
SubmitMsg submit_from_json(const json::Value& v);
CancelMsg cancel_from_json(const json::Value& v);
TargetsMsg targets_from_json(const json::Value& v);
StatusMsg status_from_json(const json::Value& v);
StatusRespMsg status_resp_from_json(const json::Value& v);
MetricsRespMsg metrics_resp_from_json(const json::Value& v);
ErrorMsg error_from_json(const json::Value& v);

}  // namespace gks::dist
