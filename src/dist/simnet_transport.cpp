#include "dist/simnet_transport.h"

#include <any>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace gks::dist {

namespace {

/// The simnet stand-in for one TCP segment. `initiator` + `conn`
/// identify a connection globally (the initiator numbers its own
/// connections), so both endpoints derive the same demux key.
struct SimFrame {
  enum class Kind { kSyn, kSynAck, kRst, kData, kFin };
  Kind kind = Kind::kData;
  simnet::NodeId initiator = 0;
  std::uint64_t conn = 0;
  std::string bytes;
};

constexpr std::size_t kSimFrameOverhead = 24;  // emulated header bytes

using ConnKey = std::pair<simnet::NodeId, std::uint64_t>;

struct ConnState {
  simnet::NodeId peer = 0;
  simnet::NodeId initiator = 0;
  std::uint64_t conn = 0;
  std::deque<std::string> inbox;
  bool established = false;  ///< SYN-ACK seen (initiator side)
  bool refused = false;      ///< RST seen
  bool peer_fin = false;
  bool local_closed = false;
};

}  // namespace

struct SimnetTransport::State {
  simnet::Network& net;
  simnet::NodeId self;

  std::mutex mu;
  std::condition_variable cv;
  bool pumping = false;        ///< one thread drains the mailbox at a time
  bool listener_open = false;
  std::deque<std::shared_ptr<ConnState>> accept_q;
  std::map<ConnKey, std::shared_ptr<ConnState>> conns;
  std::uint64_t next_conn = 1;

  State(simnet::Network& n, simnet::NodeId s) : net(n), self(s) {}

  void send_frame(simnet::NodeId to, SimFrame frame) {
    const std::size_t wire = kSimFrameOverhead + frame.bytes.size();
    // Silently dropped when either endpoint is down — by design.
    net.send(self, to, std::any(std::move(frame)), wire);
  }

  /// Routes one inbound message (mu held).
  void route_locked(const simnet::Message& msg) {
    const auto* frame = std::any_cast<SimFrame>(&msg.payload);
    if (frame == nullptr) return;  // foreign traffic on a shared node
    const ConnKey key{frame->initiator, frame->conn};
    const auto it = conns.find(key);
    switch (frame->kind) {
      case SimFrame::Kind::kSyn: {
        if (!listener_open) {
          send_frame(msg.from, {SimFrame::Kind::kRst, frame->initiator,
                                frame->conn, {}});
          return;
        }
        if (it != conns.end()) return;  // duplicate SYN
        auto cs = std::make_shared<ConnState>();
        cs->peer = msg.from;
        cs->initiator = frame->initiator;
        cs->conn = frame->conn;
        cs->established = true;
        conns.emplace(key, cs);
        accept_q.push_back(cs);
        send_frame(msg.from, {SimFrame::Kind::kSynAck, frame->initiator,
                              frame->conn, {}});
        return;
      }
      case SimFrame::Kind::kSynAck:
        if (it != conns.end()) it->second->established = true;
        return;
      case SimFrame::Kind::kRst:
        if (it != conns.end()) it->second->refused = true;
        return;
      case SimFrame::Kind::kData:
        if (it != conns.end()) it->second->inbox.push_back(frame->bytes);
        return;
      case SimFrame::Kind::kFin:
        if (it != conns.end()) it->second->peer_fin = true;
        return;
    }
  }

  /// Blocks until `pred()` holds or `timeout_virtual_s` elapses
  /// (negative: forever). Whichever waiter finds the mailbox
  /// un-pumped becomes the pump; everyone else sleeps on the cv and
  /// re-checks after each routed delivery. Returns pred() at exit.
  template <typename Pred>
  bool pump_until(std::unique_lock<std::mutex>& lk, Pred pred,
                  double timeout_virtual_s) {
    const bool forever = timeout_virtual_s < 0;
    const auto deadline = net.clock().deadline(forever ? 0 : timeout_virtual_s);
    // Pump in short real-time slices so close()/shutdown stays
    // responsive regardless of the virtual time scale.
    const double slice_virtual =
        net.clock().to_virtual(std::chrono::milliseconds(20));
    while (!pred()) {
      const auto now = std::chrono::steady_clock::now();
      if (!forever && now >= deadline) return false;
      if (pumping) {
        if (forever) {
          cv.wait_for(lk, std::chrono::milliseconds(20));
        } else {
          cv.wait_until(lk, deadline);
        }
        continue;
      }
      pumping = true;
      lk.unlock();
      double slice = slice_virtual;
      if (!forever) {
        slice = std::min(slice, net.clock().to_virtual(deadline - now));
      }
      std::optional<simnet::Message> msg = net.recv(self, slice);
      lk.lock();
      pumping = false;
      if (msg.has_value()) route_locked(*msg);
      cv.notify_all();
    }
    return true;
  }
};

namespace {

class SimnetConnection : public Connection {
 public:
  SimnetConnection(std::shared_ptr<SimnetTransport::State> st,
                   std::shared_ptr<ConnState> cs)
      : st_(std::move(st)), cs_(std::move(cs)) {}

  ~SimnetConnection() override { close(); }

  void send(const std::string& frame) override {
    std::unique_lock lk(st_->mu);
    if (cs_->local_closed) {
      throw ConnectionClosed("send on closed connection to " + peer_name());
    }
    if (cs_->peer_fin || cs_->refused) {
      throw ConnectionClosed("peer " + peer_name() + " closed");
    }
    st_->send_frame(cs_->peer, {SimFrame::Kind::kData, cs_->initiator,
                                cs_->conn, frame});
  }

  std::optional<std::string> recv(double timeout_s) override {
    std::unique_lock lk(st_->mu);
    st_->pump_until(
        lk,
        [&] {
          return !cs_->inbox.empty() || cs_->peer_fin || cs_->refused ||
                 cs_->local_closed;
        },
        timeout_s);
    if (!cs_->inbox.empty()) {
      // Drain data queued before the FIN, like TCP does.
      std::string frame = std::move(cs_->inbox.front());
      cs_->inbox.pop_front();
      return frame;
    }
    if (cs_->local_closed) {
      throw ConnectionClosed("recv on closed connection to " + peer_name());
    }
    if (cs_->peer_fin || cs_->refused) {
      throw ConnectionClosed("peer " + peer_name() + " closed");
    }
    return std::nullopt;
  }

  void close() override {
    std::unique_lock lk(st_->mu);
    if (cs_->local_closed) return;
    cs_->local_closed = true;
    st_->send_frame(cs_->peer,
                    {SimFrame::Kind::kFin, cs_->initiator, cs_->conn, {}});
    st_->conns.erase(ConnKey{cs_->initiator, cs_->conn});
    st_->cv.notify_all();
  }

  std::string peer() const override { return "sim:" + peer_name(); }

 private:
  std::string peer_name() const { return st_->net.name_of(cs_->peer); }

  std::shared_ptr<SimnetTransport::State> st_;
  std::shared_ptr<ConnState> cs_;
};

class SimnetListener : public Listener {
 public:
  explicit SimnetListener(std::shared_ptr<SimnetTransport::State> st)
      : st_(std::move(st)) {
    std::unique_lock lk(st_->mu);
    GKS_REQUIRE(!st_->listener_open,
                "node already has a live listener: " +
                    st_->net.name_of(st_->self));
    st_->listener_open = true;
  }

  ~SimnetListener() override { close(); }

  std::unique_ptr<Connection> accept(double timeout_s) override {
    std::unique_lock lk(st_->mu);
    st_->pump_until(
        lk, [&] { return !st_->accept_q.empty() || !st_->listener_open; },
        timeout_s);
    if (!st_->accept_q.empty()) {
      auto cs = std::move(st_->accept_q.front());
      st_->accept_q.pop_front();
      return std::make_unique<SimnetConnection>(st_, std::move(cs));
    }
    if (!st_->listener_open) {
      throw ConnectionClosed("listener on " + address() + " closed");
    }
    return nullptr;
  }

  std::string address() const override {
    return "sim:" + st_->net.name_of(st_->self);
  }

  void close() override {
    std::unique_lock lk(st_->mu);
    st_->listener_open = false;
    st_->cv.notify_all();
  }

 private:
  std::shared_ptr<SimnetTransport::State> st_;
};

}  // namespace

SimnetTransport::SimnetTransport(simnet::Network& net, simnet::NodeId self)
    : state_(std::make_shared<State>(net, self)),
      epoch_(std::chrono::steady_clock::now()) {}

SimnetTransport::~SimnetTransport() = default;

simnet::NodeId SimnetTransport::node() const { return state_->self; }

double SimnetTransport::now_s() const {
  return state_->net.clock().to_virtual(std::chrono::steady_clock::now() -
                                        epoch_);
}

void SimnetTransport::sleep_s(double seconds) const {
  state_->net.clock().sleep_virtual(seconds);
}

std::unique_ptr<Listener> SimnetTransport::listen(const std::string& address) {
  const std::string name = address.rfind("sim:", 0) == 0 ? address.substr(4)
                                                         : address;
  GKS_REQUIRE(name.empty() || name == state_->net.name_of(state_->self),
              "simnet listen address '" + address +
                  "' does not name this node");
  return std::make_unique<SimnetListener>(state_);
}

std::unique_ptr<Connection> SimnetTransport::connect(
    const std::string& address, double timeout_s) {
  const std::string name = address.rfind("sim:", 0) == 0 ? address.substr(4)
                                                         : address;
  std::optional<simnet::NodeId> peer;
  for (simnet::NodeId id = 0; id < state_->net.node_count(); ++id) {
    if (state_->net.name_of(id) == name) peer = id;
  }
  GKS_REQUIRE(peer.has_value(), "unknown simnet node: " + address);

  std::unique_lock lk(state_->mu);
  auto cs = std::make_shared<ConnState>();
  cs->peer = *peer;
  cs->initiator = state_->self;
  cs->conn = state_->next_conn++;
  const ConnKey key{cs->initiator, cs->conn};
  state_->conns.emplace(key, cs);
  state_->send_frame(cs->peer,
                     {SimFrame::Kind::kSyn, cs->initiator, cs->conn, {}});
  state_->pump_until(lk, [&] { return cs->established || cs->refused; },
                     timeout_s);
  if (!cs->established || cs->refused) {
    state_->conns.erase(key);
    throw TransportError("cannot connect to '" + address + "': " +
                         (cs->refused ? "refused" : "timed out"));
  }
  return std::make_unique<SimnetConnection>(state_, std::move(cs));
}

}  // namespace gks::dist
