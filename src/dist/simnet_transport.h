#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "dist/transport.h"
#include "simnet/network.h"

namespace gks::dist {

/// Transport backend over the in-process virtual-time network
/// (src/simnet/): connections are emulated with a tiny SYN/SYN-ACK/
/// FIN handshake on top of simnet messages, so the Coordinator and
/// WorkerDaemon run their *identical* dispatch logic against the
/// paper's Section III cost model — link latency, bandwidth, loss and
/// node crashes included. A crashed node (`Network::set_node_down`)
/// silently eats traffic in both directions, which the dispatch tier
/// observes purely as missed heartbeats and lease expiry, exactly as a
/// SIGKILLed worker looks over TCP.
///
/// One SimnetTransport per node: it owns the node's single mailbox and
/// demultiplexes inbound messages to the node's connections and
/// listener. Any thread blocked in recv()/accept() volunteers to pump
/// the mailbox (leader/follower), so no extra router thread is needed.
///
/// Addresses are node names ("sim:coordinator" or just "coordinator").
///
/// Timebase: now_s()/sleep_s() and every timeout are *virtual*
/// seconds. Runs where workers do real CPU scanning should use a
/// Network time scale of 1.0 so compute and protocol timing agree
/// (see simnet/clock.h).
class SimnetTransport : public Transport {
 public:
  SimnetTransport(simnet::Network& net, simnet::NodeId self);
  ~SimnetTransport() override;

  SimnetTransport(const SimnetTransport&) = delete;
  SimnetTransport& operator=(const SimnetTransport&) = delete;

  /// At most one live listener per node; `address` must name this
  /// node (or be empty).
  std::unique_ptr<Listener> listen(const std::string& address) override;

  std::unique_ptr<Connection> connect(const std::string& address,
                                      double timeout_s) override;

  double now_s() const override;
  void sleep_s(double seconds) const override;

  simnet::NodeId node() const;

  /// Shared mailbox/router state; public only for the implementation's
  /// connection and listener classes (defined in the .cpp).
  struct State;

 private:
  std::shared_ptr<State> state_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace gks::dist
