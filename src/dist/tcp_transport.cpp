#include "dist/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "dist/frame.h"

namespace gks::dist {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Splits "host:port" (hostname or IPv4 literal) or "[host]:port"
/// (IPv6 literal — the brackets disambiguate the address's own colons
/// from the port separator, RFC 3986 style). An empty host means the
/// wildcard address of the respective family.
std::pair<std::string, std::string> split_address(const std::string& addr) {
  if (!addr.empty() && addr.front() == '[') {
    const auto close = addr.find(']');
    GKS_REQUIRE(close != std::string::npos && close + 1 < addr.size() &&
                    addr[close + 1] == ':',
                "bracketed tcp address must be [host]:port, got '" + addr +
                    "'");
    std::string host = addr.substr(1, close - 1);
    if (host.empty()) host = "::";
    return {host, addr.substr(close + 2)};
  }
  const auto colon = addr.rfind(':');
  GKS_REQUIRE(colon != std::string::npos,
              "tcp address must be host:port, got '" + addr + "'");
  std::string host = addr.substr(0, colon);
  if (host.empty()) host = "0.0.0.0";
  return {host, addr.substr(colon + 1)};
}

std::string sockaddr_text(const sockaddr_storage& ss) {
  char host[INET6_ADDRSTRLEN] = {0};
  std::uint16_t port = 0;
  if (ss.ss_family == AF_INET) {
    const auto* a = reinterpret_cast<const sockaddr_in*>(&ss);
    ::inet_ntop(AF_INET, &a->sin_addr, host, sizeof(host));
    port = ntohs(a->sin_port);
  } else if (ss.ss_family == AF_INET6) {
    const auto* a = reinterpret_cast<const sockaddr_in6*>(&ss);
    ::inet_ntop(AF_INET6, &a->sin6_addr, host, sizeof(host));
    port = ntohs(a->sin6_port);
    // Bracketed so the text round-trips through split_address (a v6
    // listener's address() is directly usable as a connect target).
    return "[" + std::string(host) + "]:" + std::to_string(port);
  }
  return std::string(host) + ":" + std::to_string(port);
}

/// poll() one fd for `events`, bounded by the deadline semantics of
/// Connection::recv (timeout < 0 waits forever). Returns false on
/// timeout. EINTR restarts with the remaining budget.
bool poll_fd(int fd, short events, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s < 0 ? 0 : timeout_s));
  for (;;) {
    int ms = -1;
    if (timeout_s >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      ms = left <= 0 ? 0 : static_cast<int>(left);
    }
    pollfd pfd{fd, events, 0};
    const int r = ::poll(&pfd, 1, ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) throw TransportError(errno_text("poll"));
  }
}

class TcpConnection : public Connection {
 public:
  TcpConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    close();
    ::close(fd_);
  }

  void send(const std::string& frame) override {
    const std::string wire = encode_frame(frame);
    std::lock_guard lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) {
      throw ConnectionClosed("send on closed connection to " + peer_);
    }
    std::size_t off = 0;
    while (off < wire.size()) {
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      throw ConnectionClosed("send to " + peer_ + " failed: " +
                             std::strerror(errno));
    }
  }

  std::optional<std::string> recv(double timeout_s) override {
    for (;;) {
      if (auto frame = decoder_.next()) return frame;
      if (closed_.load(std::memory_order_acquire)) {
        throw ConnectionClosed("recv on closed connection to " + peer_);
      }
      if (!poll_fd(fd_, POLLIN, timeout_s)) return std::nullopt;
      char buf[16 * 1024];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) throw ConnectionClosed("peer " + peer_ + " closed");
      throw ConnectionClosed("read from " + peer_ + " failed: " +
                             std::strerror(errno));
    }
  }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      // shutdown (not close) so a racing recv() wakes with EOF while
      // the fd number stays valid until the destructor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  FrameDecoder decoder_;
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}

  ~TcpListener() override {
    close();
    ::close(fd_);
  }

  std::unique_ptr<Connection> accept(double timeout_s) override {
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        throw ConnectionClosed("listener on " + address_ + " closed");
      }
      if (!poll_fd(fd_, POLLIN, timeout_s)) return nullptr;
      sockaddr_storage ss{};
      socklen_t len = sizeof(ss);
      const int cfd = ::accept(fd_, reinterpret_cast<sockaddr*>(&ss), &len);
      if (cfd >= 0) {
        return std::make_unique<TcpConnection>(cfd, sockaddr_text(ss));
      }
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (closed_.load(std::memory_order_acquire)) {
        throw ConnectionClosed("listener on " + address_ + " closed");
      }
      throw TransportError(errno_text("accept"));
    }
  }

  std::string address() const override { return address_; }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  int fd_;
  std::string address_;
  std::atomic<bool> closed_{false};
};

}  // namespace

TcpTransport::TcpTransport() : epoch_(std::chrono::steady_clock::now()) {}

double TcpTransport::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TcpTransport::sleep_s(double seconds) const {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::unique_ptr<Listener> TcpTransport::listen(const std::string& address) {
  const auto [host, port] = split_address(address);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  GKS_REQUIRE(gai == 0, "cannot resolve listen address '" + address +
                            "': " + gai_strerror(gai));
  int fd = -1;
  std::string error;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = errno_text("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    error = errno_text("bind/listen");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw TransportError("cannot listen on '" + address + "': " + error);
  }
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len);
  return std::make_unique<TcpListener>(fd, sockaddr_text(ss));
}

std::unique_ptr<Connection> TcpTransport::connect(const std::string& address,
                                                  double timeout_s) {
  const auto [host, port] = split_address(address);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    throw TransportError("cannot resolve '" + address +
                         "': " + gai_strerror(gai));
  }
  int fd = -1;
  std::string error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = errno_text("socket");
      continue;
    }
    // Non-blocking connect so the caller's timeout is honored even
    // against a black-holed address.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    bool ok = rc == 0;
    if (!ok && errno == EINPROGRESS) {
      try {
        ok = poll_fd(fd, POLLOUT, timeout_s);
      } catch (const TransportError&) {
        ok = false;
      }
      if (ok) {
        int soerr = 0;
        socklen_t slen = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
        ok = soerr == 0;
        if (!ok) error = std::string("connect: ") + std::strerror(soerr);
      } else {
        error = "connect timed out";
      }
    } else if (!ok) {
      error = errno_text("connect");
    }
    if (ok) {
      ::fcntl(fd, F_SETFL, flags);
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw TransportError("cannot connect to '" + address + "': " + error);
  }
  return std::make_unique<TcpConnection>(fd, address);
}

}  // namespace gks::dist
