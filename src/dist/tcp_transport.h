#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "dist/transport.h"

namespace gks::dist {

/// Real-socket transport backend: POSIX TCP with the GKF1 length-
/// prefixed framing (dist/frame.h) on the byte stream. Addresses are
/// "host:port" for hostnames and IPv4 literals, "[host]:port" for
/// IPv6 literals (e.g. "[::1]:7101" — the brackets disambiguate the
/// address's own colons from the port separator); a port of 0 binds
/// an ephemeral port, and Listener::address() reports the actual one
/// (bracketed for v6, so it is directly usable as a connect target) —
/// which is how the CI smoke test and the loopback benches avoid port
/// collisions.
///
/// TCP_NODELAY is set on every connection: the dispatch protocol is
/// small request/response frames, and Nagle would serialize the lease
/// loop on the ACK clock.
class TcpTransport : public Transport {
 public:
  TcpTransport();

  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Connection> connect(const std::string& address,
                                      double timeout_s) override;

  /// Real monotonic seconds since transport construction.
  double now_s() const override;
  void sleep_s(double seconds) const override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace gks::dist
