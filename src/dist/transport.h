#pragma once

#include <memory>
#include <optional>
#include <string>

#include "support/error.h"

namespace gks::dist {

/// Errors raised by the transport tier. Sessions treat every
/// TransportError as "this connection is gone": the coordinator closes
/// the session and lets lease expiry reclaim the worker's intervals;
/// the worker daemon falls back to its reconnect loop.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// The peer closed (or the connection broke mid-transfer).
class ConnectionClosed : public TransportError {
 public:
  explicit ConnectionClosed(const std::string& what) : TransportError(what) {}
};

/// The byte stream violated the framing protocol (bad magic, oversized
/// length). Unrecoverable for the connection: the decoder cannot
/// resynchronize on a corrupt length prefix, so callers tear down.
class ProtocolError : public TransportError {
 public:
  explicit ProtocolError(const std::string& what) : TransportError(what) {}
};

/// A reliable, ordered, message-framed duplex connection. Messages are
/// opaque byte strings (the dispatch protocol puts JSON in them);
/// callers hand send() the bare payload and recv() returns the bare
/// payload — how messages are delimited on the underlying medium is
/// the backend's business (the TCP backend wraps each payload in a
/// GKF1 length-prefixed frame, frame.h; simnet messages are already
/// discrete).
///
/// Thread model: one thread receives; send() may be called from any
/// thread (internally serialized); close() may race either and wakes a
/// blocked recv() with ConnectionClosed.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Sends one message. Throws ConnectionClosed on a dead connection.
  virtual void send(const std::string& frame) = 0;

  /// Receives the next frame, waiting at most `timeout_s` transport
  /// seconds (negative: forever). Returns nullopt on timeout; throws
  /// ConnectionClosed when the peer is gone and ProtocolError on a
  /// corrupt stream.
  virtual std::optional<std::string> recv(double timeout_s) = 0;

  /// Closes the connection (idempotent); pending recv() calls wake.
  virtual void close() = 0;

  /// Peer identity for logs ("127.0.0.1:52114", "sim:worker-1").
  virtual std::string peer() const = 0;
};

/// Server half: accepts inbound connections on a bound address.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts the next connection, waiting at most `timeout_s`
  /// (negative: forever). nullptr on timeout; throws ConnectionClosed
  /// once the listener is closed.
  virtual std::unique_ptr<Connection> accept(double timeout_s) = 0;

  /// The actual bound address — resolves ":0" port requests.
  virtual std::string address() const = 0;

  virtual void close() = 0;
};

/// A pluggable point-to-point transport. Two implementations ship:
/// TcpTransport (real sockets, real processes) and SimnetTransport
/// (adapter over simnet::Network, virtual time) — the coordinator and
/// worker daemons are written against this interface only, so
/// paper-scale simnet experiments and real multi-process runs exercise
/// the identical dispatch code path.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::unique_ptr<Listener> listen(const std::string& address) = 0;

  /// Connects to a listening address; throws TransportError when the
  /// peer is unreachable within `timeout_s`.
  virtual std::unique_ptr<Connection> connect(const std::string& address,
                                              double timeout_s) = 0;

  /// Monotonic now, in transport seconds — *real* seconds for TCP,
  /// *virtual* seconds for simnet. All lease deadlines, heartbeat
  /// cadences and timeouts in the dispatch tier live in this timebase,
  /// which is what keeps the Coordinator/WorkerDaemon logic free of
  /// any transport-specific clock handling.
  virtual double now_s() const = 0;

  /// Sleeps for `seconds` transport seconds.
  virtual void sleep_s(double seconds) const = 0;
};

}  // namespace gks::dist
