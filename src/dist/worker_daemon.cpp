#include "dist/worker_daemon.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/crc32.h"
#include "support/error.h"

namespace gks::dist {

namespace {

/// Worker-side telemetry. The rtt histogram times every roundtrip()
/// (lease requests, found reports, heartbeats, retires alike) — the
/// protocol cost the dispatch bench decomposes; lease_s is the whole
/// grant→retire wall from the worker's side, chunk_s one scan slice.
struct WorkerMetrics {
  obs::Counter& leases_completed =
      obs::Registry::global().counter("gks_worker_leases_completed_total");
  obs::Counter& leases_abandoned =
      obs::Registry::global().counter("gks_worker_leases_abandoned_total");
  obs::Counter& found_reported =
      obs::Registry::global().counter("gks_worker_found_reported_total");
  obs::Counter& reconnects =
      obs::Registry::global().counter("gks_worker_reconnects_total");
  obs::Counter& backoffs =
      obs::Registry::global().counter("gks_worker_backoffs_total");
  obs::Counter& hellos =
      obs::Registry::global().counter("gks_worker_hellos_total");
  /// Cumulative scan rate (keys_scanned / busy_s) — the same estimate
  /// chunk and lease sizing run on, exported for gks-top.
  obs::Gauge& keys_per_s =
      obs::Registry::global().gauge("gks_worker_keys_per_s");
  obs::Histogram& rtt_s =
      obs::Registry::global().histogram("gks_worker_rtt_seconds");
  obs::Histogram& lease_s =
      obs::Registry::global().histogram("gks_worker_lease_seconds");
  obs::Histogram& chunk_s =
      obs::Registry::global().histogram("gks_worker_chunk_seconds");
};

WorkerMetrics& wmetrics() {
  static WorkerMetrics* m = new WorkerMetrics;
  return *m;
}

/// The snapshot a worker piggybacks on heartbeat/retire: the whole
/// process registry, so coordinator-side merges see sweep and kernel
/// counters too, not just the daemon's own.
std::optional<obs::RegistrySnapshot> piggyback_snapshot() {
  if (!obs::enabled()) return std::nullopt;
  return obs::Registry::global().snapshot();
}

/// Re-throws a malformed coordinator reply as ProtocolError (a
/// TransportError) so the reconnect loop absorbs it — under fault
/// injection a corrupted frame must cost a reconnect, not the process.
template <typename Fn>
auto decode_reply(Fn&& fn) {
  try {
    return fn();
  } catch (const TransportError&) {
    throw;
  } catch (const Error& e) {
    throw ProtocolError(std::string("malformed coordinator reply: ") +
                        e.what());
  }
}

}  // namespace

double backoff_delay(int attempt, const WorkerConfig& config,
                     SplitMix64& rng) {
  double base = config.reconnect_backoff_s;
  for (int i = 0; i < attempt && base < config.reconnect_backoff_max_s; ++i) {
    base *= 2;
  }
  base = std::min(base, config.reconnect_backoff_max_s);
  return base * (0.5 + rng.uniform01());
}

WorkerDaemon::WorkerDaemon(Transport& transport, WorkerConfig config)
    : transport_(transport),
      config_(std::move(config)),
      rng_(config_.backoff_seed != 0
               ? config_.backoff_seed
               : 0x9e3779b97f4a7c15ULL ^ crc32(config_.name)) {
  GKS_REQUIRE(config_.threads > 0, "worker needs at least one scan thread");
  GKS_REQUIRE(config_.chunk_slice_s > 0, "chunk slice must be positive");
  GKS_REQUIRE(config_.min_chunk > u128(0), "min chunk must be positive");
  GKS_REQUIRE(config_.min_chunk <= config_.max_chunk,
              "min chunk above max chunk");
  GKS_REQUIRE(config_.reconnect_backoff_s > 0,
              "reconnect backoff must be positive");
  GKS_REQUIRE(config_.reconnect_backoff_s <= config_.reconnect_backoff_max_s,
              "reconnect backoff above its cap");
}

void WorkerDaemon::stop() {
  stop_.store(true, std::memory_order_release);
  interrupt_.store(true, std::memory_order_release);
}

WorkerDaemon::Stats WorkerDaemon::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

u128 WorkerDaemon::chunk_size() const {
  u128 scanned{0};
  {
    std::lock_guard lock(stats_mu_);
    scanned = stats_.keys_scanned;
  }
  const double rate = busy_s_ > 0 ? scanned.to_double() / busy_s_ : 0;
  if (rate <= 0) return config_.min_chunk;
  const double target = rate * config_.chunk_slice_s;
  if (target <= config_.min_chunk.to_double()) return config_.min_chunk;
  if (target >= config_.max_chunk.to_double()) return config_.max_chunk;
  return u128(static_cast<std::uint64_t>(target));
}

u128 WorkerDaemon::lease_ask() const {
  // Leases worth ~lease_target_s of work: small enough that a crashed
  // worker forfeits little, large enough that the request round-trip
  // amortizes. Before the first rate estimate, ask for 0 and let the
  // coordinator pick.
  u128 scanned{0};
  {
    std::lock_guard lock(stats_mu_);
    scanned = stats_.keys_scanned;
  }
  const double rate = busy_s_ > 0 ? scanned.to_double() / busy_s_ : 0;
  if (rate <= 0) return u128(0);
  const double target = rate * config_.lease_target_s;
  if (target < 1) return u128(1);
  return u128(static_cast<std::uint64_t>(target));
}

void WorkerDaemon::apply_dead(const std::vector<FoundUpdate>& dead) {
  for (const FoundUpdate& f : dead) {
    const auto it = sweepers_.find(f.job);
    if (it == sweepers_.end()) continue;
    // A broadcast about an older job instance that shared this name
    // must not kill the target in the current one.
    if (it->second.job_id != f.job_id) continue;
    try {
      it->second.sweeper->mark_found_hex(f.digest, f.key);
    } catch (const Error&) {
      // A digest this sweeper never had (target removed before the
      // spec reached us) — nothing to stop scanning for.
    }
  }
}

bool WorkerDaemon::apply_ack(const AckMsg& ack, std::uint64_t lease_id) {
  apply_dead(ack.dead);
  if (lease_id == 0) return true;
  return std::find(ack.cancelled.begin(), ack.cancelled.end(), lease_id) ==
         ack.cancelled.end();
}

json::Value WorkerDaemon::roundtrip(Connection& conn,
                                    const std::string& body) {
  const auto start = std::chrono::steady_clock::now();
  conn.send(body);
  const auto reply = conn.recv(config_.recv_timeout_s);
  if (!reply.has_value()) {
    throw ConnectionClosed("coordinator silent past recv timeout");
  }
  wmetrics().rtt_s.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return decode_reply([&] {
    json::Value v = json::parse(*reply);
    message_type(v);  // every reply must carry a type
    return v;
  });
}

u128 WorkerDaemon::scan_chunk(core::MultiSweeper& sweeper,
                              const keyspace::Interval& iv,
                              std::vector<core::SweepHit>& hits) {
  const std::size_t parts =
      static_cast<std::size_t>(std::min<u128>(u128(config_.threads),
                                              iv.size()).to_u64());
  if (parts <= 1) {
    return sweeper.scan(iv, hits, &interrupt_);
  }

  // Split the chunk into equal parts, one thread each. The retired
  // count must be a contiguous prefix of the chunk, so a short part
  // (interrupt, generation handoff) truncates the accounting at its
  // end — later parts' work is re-scanned after re-dispatch, which the
  // recovery dedup absorbs. Hits are kept regardless: a key is never
  // thrown away just because its part fell past the prefix.
  const u128 per = iv.size() / u128(static_cast<std::uint64_t>(parts));
  std::vector<keyspace::Interval> slices;
  u128 at = iv.begin;
  for (std::size_t i = 0; i < parts; ++i) {
    const u128 end = i + 1 == parts ? iv.end : at + per;
    slices.emplace_back(at, end);
    at = end;
  }
  std::vector<u128> tested(parts, u128(0));
  std::vector<std::vector<core::SweepHit>> part_hits(parts);
  std::vector<std::thread> threads;
  threads.reserve(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    threads.emplace_back([&, i] {
      tested[i] = sweeper.scan(slices[i], part_hits[i], &interrupt_);
    });
  }
  for (std::thread& t : threads) t.join();

  u128 prefix{0};
  bool contiguous = true;
  for (std::size_t i = 0; i < parts; ++i) {
    if (contiguous) {
      prefix += tested[i];
      if (tested[i] < slices[i].size()) contiguous = false;
    }
    hits.insert(hits.end(), part_hits[i].begin(), part_hits[i].end());
  }
  return prefix;
}

bool WorkerDaemon::run_lease(Connection& conn, const LeaseGrantWire& grant) {
  auto it = sweepers_.find(grant.job_name);
  if (it != sweepers_.end() && (it->second.job_id != grant.job ||
                                it->second.target_gen != grant.target_gen)) {
    // Either a different job instance under the same name (the old one
    // went terminal and the name was resubmitted — the stale sweeper's
    // found-marks belong to the dead instance) or the same job with a
    // mutated target set (add/remove bumped the generation — scanning
    // with the old set would retire intervals that never looked for
    // the new digests). The coordinator re-sends the spec in both
    // cases: drop the cache and rebuild from it below.
    sweepers_.erase(it);
    it = sweepers_.end();
  }
  if (it == sweepers_.end()) {
    GKS_REQUIRE(grant.has_spec,
                "lease for a job this session has no spec for: " +
                    grant.job_name);
    auto sweeper = std::make_unique<core::MultiSweeper>(grant.spec.request);
    for (const auto& [digest, key] : grant.spec_found) {
      sweeper->mark_found_hex(digest, key);
    }
    it = sweepers_
             .emplace(grant.job_name,
                      JobCache{grant.job, grant.target_gen,
                               std::move(sweeper)})
             .first;
  }
  core::MultiSweeper& sweeper = *it->second.sweeper;
  apply_dead(grant.dead);

  obs::Span lease_span("dist.lease");
  lease_span.note(grant.job_name);
  // The lease histogram is fed explicitly before the retire roundtrip
  // (not by the span destructor) so the snapshot piggybacked on that
  // retire already contains this lease's own duration.
  const auto lease_start = std::chrono::steady_clock::now();
  const auto lease_elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         lease_start)
        .count();
  };
  const keyspace::Interval lease_iv(grant.begin, grant.end);
  u128 done{0};
  double lease_busy = 0;  ///< scan seconds in this lease; retire reports it
  double last_heartbeat = transport_.now_s();
  bool lease_lost = false;

  while (done < lease_iv.size()) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (sweeper.all_found()) break;  // nothing left to look for
    const u128 remaining = lease_iv.size() - done;
    const u128 take = std::min(chunk_size(), remaining);
    const keyspace::Interval chunk(lease_iv.begin + done,
                                   lease_iv.begin + done + take);

    std::vector<core::SweepHit> hits;
    const auto start = std::chrono::steady_clock::now();
    const u128 tested = scan_chunk(sweeper, chunk, hits);
    const double scan_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Report recoveries the moment they exist: a worker that dies one
    // microsecond from now has already made its keys durable on the
    // coordinator. Duplicates (another holder beat us to the digest)
    // come back as dedup no-ops.
    for (const core::SweepHit& hit : hits) {
      const auto slots = sweeper.mark_found(hit.unique_index, hit.key);
      if (slots.empty()) continue;  // duplicate of an applied update
      FoundMsg msg;
      msg.lease_id = grant.lease_id;
      msg.digest = sweeper.slot_hex(slots.front());
      msg.key = hit.key;
      const json::Value reply = roundtrip(conn, encode(msg));
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.found_reported;
      }
      wmetrics().found_reported.add(1);
      if (message_type(reply) == "ack" &&
          !apply_ack(decode_reply([&] { return ack_from_json(reply); }),
                     grant.lease_id)) {
        lease_lost = true;
      }
    }

    done += tested;
    u128 scanned_total{0};
    {
      std::lock_guard lock(stats_mu_);
      stats_.keys_scanned += tested;
      scanned_total = stats_.keys_scanned;
    }
    busy_s_ += scan_s;
    lease_busy += scan_s;
    if (obs::enabled()) {
      wmetrics().chunk_s.observe(scan_s);
      if (busy_s_ > 0) {
        wmetrics().keys_per_s.set(scanned_total.to_double() / busy_s_);
      }
    }
    if (lease_lost) break;
    // A short scan without an interrupt is a generation handoff (the
    // target set changed mid-chunk): rescan the remainder against the
    // current targets by simply continuing from `done`.

    const double now = transport_.now_s();
    if (now - last_heartbeat >= config_.heartbeat_interval_s) {
      HeartbeatMsg hb;
      hb.metrics = piggyback_snapshot();
      const json::Value reply = roundtrip(conn, encode(hb));
      last_heartbeat = now;
      if (message_type(reply) == "ack" &&
          !apply_ack(decode_reply([&] { return ack_from_json(reply); }),
                     grant.lease_id)) {
        lease_lost = true;
        break;
      }
    }
  }

  if (lease_lost) {
    lease_span.note("abandoned");
    wmetrics().lease_s.observe(lease_elapsed());
    wmetrics().leases_abandoned.add(1);
    std::lock_guard lock(stats_mu_);
    ++stats_.leases_abandoned;
    return true;
  }

  wmetrics().lease_s.observe(lease_elapsed());
  RetireMsg retire;
  retire.lease_id = grant.lease_id;
  retire.tested = done;
  retire.busy_s = lease_busy;
  retire.metrics = piggyback_snapshot();
  const json::Value reply = roundtrip(conn, encode(retire));
  if (message_type(reply) == "ack") {
    const AckMsg ack = decode_reply([&] { return ack_from_json(reply); });
    apply_ack(ack, 0);
    if (ack.ok) {
      wmetrics().leases_completed.add(1);
    } else {
      lease_span.note("expired");
      wmetrics().leases_abandoned.add(1);
    }
    std::lock_guard lock(stats_mu_);
    if (ack.ok) {
      ++stats_.leases_completed;
    } else {
      ++stats_.leases_abandoned;  // expired before we got back
    }
  }
  return true;
}

bool WorkerDaemon::serve_session(Connection& conn) {
  HelloMsg hello;
  hello.name = config_.name;
  hello.threads = static_cast<int>(config_.threads);
  const json::Value welcome_v = roundtrip(conn, encode(hello));
  if (message_type(welcome_v) != "welcome") {
    // Rejected (version mismatch, ejected, …): a transport-class error
    // so run() backs off and retries — by the time the backoff runs
    // out, an ejection's probation may have passed.
    throw ProtocolError("coordinator rejected hello: " +
                        welcome_v.string_or("error", "unexpected reply"));
  }
  const WelcomeMsg welcome =
      decode_reply([&] { return welcome_from_json(welcome_v); });
  hello_ok_ = true;
  wmetrics().hellos.add(1);
  config_.heartbeat_interval_s = welcome.heartbeat_s > 0
                                     ? welcome.heartbeat_s
                                     : config_.heartbeat_interval_s;

  double last_idle_heartbeat = transport_.now_s();
  while (!stop_.load(std::memory_order_acquire)) {
    LeaseRequestMsg req;
    req.max_ids = lease_ask();
    const json::Value reply = roundtrip(conn, encode(req));
    const std::string type = message_type(reply);
    if (type == "lease") {
      const LeaseGrantWire grant =
          decode_reply([&] { return lease_grant_from_json(reply); });
      if (!run_lease(conn, grant)) return false;
      last_idle_heartbeat = transport_.now_s();
    } else if (type == "idle") {
      const IdleMsg idle =
          decode_reply([&] { return idle_from_json(reply); });
      apply_dead(idle.dead);
      // Sleep in short slices so stop() stays prompt.
      double left = idle.retry_s;
      while (left > 0 && !stop_.load(std::memory_order_acquire)) {
        const double nap = std::min(left, 0.05);
        transport_.sleep_s(nap);
        left -= nap;
      }
      // An idle worker holds no leases, but heartbeats anyway at the
      // usual cadence so its telemetry keeps reaching the coordinator
      // — without this, a worker that never wins a lease is invisible
      // to gks-top.
      const double now = transport_.now_s();
      if (now - last_idle_heartbeat >= config_.heartbeat_interval_s) {
        HeartbeatMsg hb;
        hb.metrics = piggyback_snapshot();
        const json::Value hb_reply = roundtrip(conn, encode(hb));
        last_idle_heartbeat = now;
        if (message_type(hb_reply) == "ack") {
          apply_ack(decode_reply([&] { return ack_from_json(hb_reply); }), 0);
        }
      }
    } else if (type == "error") {
      throw ProtocolError("coordinator error: " +
                          reply.string_or("error", "unspecified"));
    } else {
      throw ProtocolError("unexpected coordinator reply: " + type);
    }
  }

  // Orderly exit: revoke our leases instead of making the coordinator
  // wait out the deadlines.
  try {
    // The final snapshot rides the bye: the last retire's piggyback
    // predates its own ack, so counters bumped by that ack
    // (leases_completed) would otherwise never reach the coordinator.
    ByeMsg bye;
    bye.metrics = piggyback_snapshot();
    roundtrip(conn, encode(bye));
  } catch (const TransportError&) {
    // The coordinator may already be gone; leases expire either way.
  }
  return true;
}

bool WorkerDaemon::run(const std::string& coordinator_addr) {
  int attempts_left = config_.reconnect_attempts;
  int attempt = 0;  ///< consecutive failures since the last accepted hello

  // Sleep out one backoff step in short slices so stop() stays prompt.
  const auto back_off = [&] {
    wmetrics().backoffs.add(1);
    double left = backoff_delay(attempt++, config_, rng_);
    while (left > 0 && !stop_.load(std::memory_order_acquire)) {
      const double nap = std::min(left, 0.05);
      transport_.sleep_s(nap);
      left -= nap;
    }
  };

  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return true;
    std::unique_ptr<Connection> conn;
    try {
      conn = transport_.connect(coordinator_addr, config_.connect_timeout_s);
    } catch (const TransportError&) {
      if (attempts_left-- <= 0) return false;
      back_off();
      continue;
    }
    // Deliberately no reset here: a coordinator that accepts TCP but
    // rejects every hello (ejection, version skew) must not see an
    // eager reconnect loop. Only an accepted hello below resets.

    hello_ok_ = false;
    bool orderly = false;
    try {
      orderly = serve_session(*conn);
    } catch (const TransportError&) {
      // Dropped mid-session: abandon in-flight state (the coordinator
      // reclaims our leases) and reconnect with a fresh hello.
      sweepers_.clear();  // next session gets specs again
      wmetrics().reconnects.add(1);
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.reconnects;
      }
      conn->close();
      if (hello_ok_) {
        // The session was genuinely established before it died — a
        // fresh failure run starts now, with a fresh budget.
        attempts_left = config_.reconnect_attempts;
        attempt = 0;
      }
      if (attempts_left-- <= 0) return false;
      back_off();
      continue;
    }
    conn->close();
    if (orderly) return true;
  }
}

}  // namespace gks::dist
