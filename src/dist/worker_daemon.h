#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/multi_sweep.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "support/rng.h"
#include "support/uint128.h"

namespace gks::dist {

struct WorkerConfig {
  /// Worker identity; the coordinator scopes it per session, so
  /// duplicate names across machines are harmless.
  std::string name = "worker";
  /// Scan threads: each leased chunk is split this many ways.
  std::size_t threads = 1;
  /// Ask for leases worth roughly this many seconds at the measured
  /// scan rate (clamped by the coordinator's min/max).
  double lease_target_s = 1.0;
  /// Target wall time of one scan chunk — the worker's heartbeat
  /// opportunity cadence; must sit well under the coordinator's lease
  /// lifetime.
  double chunk_slice_s = 0.1;
  u128 min_chunk{4096};
  u128 max_chunk{u128(1) << 22};
  /// Heartbeat cadence; the coordinator's welcome overrides it.
  double heartbeat_interval_s = 0.5;
  double connect_timeout_s = 5.0;
  /// recv timeout on an established session; a coordinator silent this
  /// long is presumed gone.
  double recv_timeout_s = 10.0;
  /// Reconnect attempts after a dropped connection (0 = give up at the
  /// first failure). The delay between attempts grows exponentially
  /// from reconnect_backoff_s, capped at reconnect_backoff_max_s, with
  /// ±50% jitter (backoff_delay()). Attempts and the exponent reset
  /// only after a *successful hello* — a coordinator that accepts the
  /// TCP connection but rejects the session (version mismatch, worker
  /// ejected) still sees a backed-off worker, not a reconnect storm.
  int reconnect_attempts = 5;
  double reconnect_backoff_s = 0.5;
  double reconnect_backoff_max_s = 10.0;
  /// Seed of the jitter PRNG; 0 derives one from the worker name so a
  /// fleet of identically-configured workers spreads its retries
  /// instead of thundering back in lock-step.
  std::uint64_t backoff_seed = 0;
};

/// The delay before reconnect attempt `attempt` (0-based, counting
/// consecutive failures since the last accepted hello): exponential
/// doubling from config.reconnect_backoff_s, capped at
/// config.reconnect_backoff_max_s, scaled by a jitter factor uniform
/// in [0.5, 1.5). Pure given the RNG — unit-testable without a
/// transport.
double backoff_delay(int attempt, const WorkerConfig& config,
                     SplitMix64& rng);

/// The dispatch client: leases interval quanta from a Coordinator,
/// sweeps them with core::MultiSweeper, reports recoveries the moment
/// they hit, and retires the scanned prefix. Heartbeats between chunks
/// keep the leases alive; a worker that dies mid-lease simply stops
/// heartbeating and the coordinator re-dispatches.
///
/// Like the coordinator, the daemon is written purely against the
/// Transport interface — the simnet fault-injection tests and the real
/// TCP daemons run this exact class.
class WorkerDaemon {
 public:
  struct Stats {
    std::uint64_t leases_completed = 0;
    std::uint64_t leases_abandoned = 0;  ///< cancelled under us or dropped
    std::uint64_t found_reported = 0;
    std::uint64_t reconnects = 0;
    u128 keys_scanned{0};
  };

  WorkerDaemon(Transport& transport, WorkerConfig config = {});

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  /// Serves leases until stop() or until the coordinator goes away for
  /// good (reconnect attempts exhausted). Returns true on an orderly
  /// exit — stop() was called and BYE was delivered (or the session
  /// was already gone); false when the coordinator became unreachable.
  bool run(const std::string& coordinator_addr);

  /// Asks run() to wind down: the current chunk is interrupted, the
  /// current lease retired, BYE sent. Callable from any thread and
  /// from signal-ish contexts (only atomics are touched).
  void stop();

  Stats stats() const;

 private:
  /// One cached per-job scan state. `job_id` identifies the job
  /// *instance*: names are reusable once a job goes terminal, and a
  /// lease for a resubmitted name (new id) must rebuild the sweeper
  /// instead of scanning with the stale one — whose targets may all
  /// be marked found, which would retire every lease empty and spin
  /// the grant/retire loop forever.
  /// `target_gen` is the target-set generation of the spec the sweeper
  /// was built from: the coordinator re-sends the spec when the job's
  /// targets mutate (add/remove), and a grant carrying a newer
  /// generation means this sweeper is scanning a stale target set and
  /// must be rebuilt before the lease runs.
  struct JobCache {
    std::uint64_t job_id = 0;
    std::uint64_t target_gen = 0;
    std::unique_ptr<core::MultiSweeper> sweeper;
  };

  /// One connected session; returns false when the connection dropped
  /// (caller decides on reconnect) and true on orderly shutdown.
  bool serve_session(Connection& conn);
  /// Scans one granted lease; returns false when the connection died.
  bool run_lease(Connection& conn, const LeaseGrantWire& grant);
  /// Splits `iv` across the scan threads; returns the prefix-
  /// contiguous tested count and appends hits.
  u128 scan_chunk(core::MultiSweeper& sweeper, const keyspace::Interval& iv,
                  std::vector<core::SweepHit>& hits);
  /// Sends one frame and receives the reply; throws TransportError on
  /// timeout (a silent coordinator is a dead coordinator).
  json::Value roundtrip(Connection& conn, const std::string& body);
  /// Applies piggybacked updates; returns false when `lease_id` (0 =
  /// none in flight) was cancelled under us.
  bool apply_ack(const AckMsg& ack, std::uint64_t lease_id);
  void apply_dead(const std::vector<FoundUpdate>& dead);
  u128 chunk_size() const;
  u128 lease_ask() const;

  Transport& transport_;
  WorkerConfig config_;
  SplitMix64 rng_;  ///< backoff jitter; seeded for reproducible tests

  std::atomic<bool> stop_{false};
  std::atomic<bool> interrupt_{false};
  /// Set by serve_session() once the coordinator accepted our hello;
  /// run() resets the reconnect budget on it (never on a bare TCP
  /// connect, which an ejecting coordinator still grants).
  bool hello_ok_ = false;

  /// Sweepers by job name — a worker sees many leases of the same job
  /// and pays target parsing / filter construction once.
  std::map<std::string, JobCache> sweepers_;

  double busy_s_ = 0;  ///< wall seconds inside scan() (rate estimate)
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace gks::dist
