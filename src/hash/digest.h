#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "support/hex.h"

namespace gks::hash {

/// Fixed-size message digest (N bytes). Value type with ordering so
/// digests can key maps and be compared bytewise.
template <std::size_t N>
struct Digest {
  std::array<std::uint8_t, N> bytes{};

  static constexpr std::size_t size() { return N; }

  /// Parses the canonical lower/upper-case hex form ("d41d8cd98f00...").
  static Digest from_hex(std::string_view hex) {
    return Digest{gks::from_hex_fixed<N>(hex)};
  }

  /// Canonical lower-case hex rendering.
  std::string to_hex() const { return gks::to_hex(bytes); }

  auto operator<=>(const Digest&) const = default;
};

/// 128-bit MD5 digest (RFC 1321).
using Md5Digest = Digest<16>;
/// 160-bit SHA1 digest (RFC 3174).
using Sha1Digest = Digest<20>;
/// 256-bit SHA256 digest (FIPS 180-4).
using Sha256Digest = Digest<32>;

/// Identifies which hash algorithm a crack request targets.
enum class Algorithm { kMd5, kSha1, kSha256 };

/// Human-readable algorithm name ("MD5", "SHA1", "SHA256").
constexpr const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMd5: return "MD5";
    case Algorithm::kSha1: return "SHA1";
    case Algorithm::kSha256: return "SHA256";
  }
  return "?";
}

/// Digest size in bytes for an algorithm.
constexpr std::size_t digest_size(Algorithm a) {
  switch (a) {
    case Algorithm::kMd5: return 16;
    case Algorithm::kSha1: return 20;
    case Algorithm::kSha256: return 32;
  }
  return 0;
}

}  // namespace gks::hash
