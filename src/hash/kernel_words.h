#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "support/error.h"

namespace gks::hash {

/// Maximum key length the fixed-length crack kernels accept. The paper
/// limits keys to 20 characters (Section IV-A); anything up to 55 bytes
/// would still fit a single 64-byte block, but 20 keeps every kernel in
/// the single-block fast path with margin for salts.
inline constexpr std::size_t kMaxKernelKeyLength = 20;

/// Rotate-left on 32-bit words. On CUDA targets this is the operation
/// the compiler lowers to SHL+SHR+ADD (cc 1.x), SHL+IMAD (cc 2.x/3.0)
/// or a funnel shift (cc 3.5); see simgpu::Lowering.
constexpr std::uint32_t rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32u - n));
}

/// Rotate-right on 32-bit words.
constexpr std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32u - n));
}

/// Logical shift-right customization point (distinct from operator>>
/// so traced words can tell shifts apart from other uses).
constexpr std::uint32_t shr(std::uint32_t x, unsigned n) { return x >> n; }

/// A 16-word one-block message schedule plus original byte length.
/// This is the unit the kernels consume; `Md5Block`/`Sha1Block` encode
/// endianness at packing time so the compression cores stay word-only.
struct MessageBlock {
  std::array<std::uint32_t, 16> words{};
  std::size_t length = 0;  ///< message byte length encoded in the padding
};

/// Packs `key` into an MD5 message block: little-endian words, 0x80
/// terminator, zero fill, bit length in word 14 (RFC 1321 §3.1-3.3).
/// Requires key.size() <= 55 so the whole padded message is one block.
inline MessageBlock pack_md5_block(std::string_view key) {
  GKS_REQUIRE(key.size() <= 55, "key does not fit a single MD5 block");
  MessageBlock b;
  b.length = key.size();
  std::array<std::uint8_t, 64> bytes{};
  for (std::size_t i = 0; i < key.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(key[i]);
  bytes[key.size()] = 0x80;
  for (std::size_t w = 0; w < 16; ++w) {
    b.words[w] = static_cast<std::uint32_t>(bytes[4 * w]) |
                 static_cast<std::uint32_t>(bytes[4 * w + 1]) << 8 |
                 static_cast<std::uint32_t>(bytes[4 * w + 2]) << 16 |
                 static_cast<std::uint32_t>(bytes[4 * w + 3]) << 24;
  }
  b.words[14] = static_cast<std::uint32_t>(key.size() * 8);
  b.words[15] = 0;
  return b;
}

/// Packs `key` into a SHA1/SHA256 message block: big-endian words, 0x80
/// terminator, zero fill, bit length in word 15 (RFC 3174 §4).
inline MessageBlock pack_sha_block(std::string_view key) {
  GKS_REQUIRE(key.size() <= 55, "key does not fit a single SHA block");
  MessageBlock b;
  b.length = key.size();
  std::array<std::uint8_t, 64> bytes{};
  for (std::size_t i = 0; i < key.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(key[i]);
  bytes[key.size()] = 0x80;
  for (std::size_t w = 0; w < 16; ++w) {
    b.words[w] = static_cast<std::uint32_t>(bytes[4 * w]) << 24 |
                 static_cast<std::uint32_t>(bytes[4 * w + 1]) << 16 |
                 static_cast<std::uint32_t>(bytes[4 * w + 2]) << 8 |
                 static_cast<std::uint32_t>(bytes[4 * w + 3]);
  }
  b.words[15] = static_cast<std::uint32_t>(key.size() * 8);
  return b;
}

/// Repacks the first four key characters into MD5 message word 0.
/// This is the only word a crack-kernel thread mutates while walking
/// its interval with the prefix-major `next` operator, so it has a
/// dedicated fast path.
inline std::uint32_t pack_md5_word0(const char* prefix, std::size_t key_len) {
  std::array<std::uint8_t, 4> b{};
  const std::size_t n = key_len < 4 ? key_len : 4;
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(prefix[i]);
  if (key_len < 4) b[key_len] = 0x80;
  return static_cast<std::uint32_t>(b[0]) |
         static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 |
         static_cast<std::uint32_t>(b[3]) << 24;
}

/// Repacks the first four key characters into SHA1 message word 0
/// (big-endian counterpart of pack_md5_word0).
inline std::uint32_t pack_sha_word0(const char* prefix, std::size_t key_len) {
  std::array<std::uint8_t, 4> b{};
  const std::size_t n = key_len < 4 ? key_len : 4;
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(prefix[i]);
  if (key_len < 4) b[key_len] = 0x80;
  return static_cast<std::uint32_t>(b[0]) << 24 |
         static_cast<std::uint32_t>(b[1]) << 16 |
         static_cast<std::uint32_t>(b[2]) << 8 |
         static_cast<std::uint32_t>(b[3]);
}

}  // namespace gks::hash
