#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "hash/kernel_words.h"

namespace gks::hash {

/// SoA bundle of N independent 32-bit words with elementwise operators.
///
/// Instantiating a hash kernel with `Lane<std::uint32_t, N>` computes N
/// hashes in lockstep from a single instruction stream — the paper's
/// "interleaving the production of the hash of two strings at a time"
/// ILP optimization (Section V-B, recommended on Fermi, pointless on
/// Kepler). On the CPU backend the same structure lets the compiler
/// auto-vectorize the kernels.
template <class T, std::size_t N>
struct Lane {
  std::array<T, N> v{};

  constexpr Lane() = default;

  /// Broadcast constructor (constants are shared across lanes).
  explicit constexpr Lane(T scalar) {
    for (auto& x : v) x = scalar;
  }

  constexpr T& operator[](std::size_t i) { return v[i]; }
  constexpr const T& operator[](std::size_t i) const { return v[i]; }

  friend constexpr Lane operator+(Lane a, const Lane& b) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = a.v[i] + b.v[i];
    return a;
  }
  friend constexpr Lane operator-(Lane a, const Lane& b) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = a.v[i] - b.v[i];
    return a;
  }
  friend constexpr Lane operator&(Lane a, const Lane& b) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = a.v[i] & b.v[i];
    return a;
  }
  friend constexpr Lane operator|(Lane a, const Lane& b) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = a.v[i] | b.v[i];
    return a;
  }
  friend constexpr Lane operator^(Lane a, const Lane& b) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = a.v[i] ^ b.v[i];
    return a;
  }
  friend constexpr Lane operator~(Lane a) {
    for (std::size_t i = 0; i < N; ++i) a.v[i] = ~a.v[i];
    return a;
  }
};

/// Elementwise rotate-left (ADL customization point used by kernels).
template <class T, std::size_t N>
constexpr Lane<T, N> rotl(Lane<T, N> a, unsigned n) {
  for (std::size_t i = 0; i < N; ++i) a.v[i] = rotl(a.v[i], n);
  return a;
}

/// Elementwise rotate-right.
template <class T, std::size_t N>
constexpr Lane<T, N> rotr(Lane<T, N> a, unsigned n) {
  for (std::size_t i = 0; i < N; ++i) a.v[i] = rotr(a.v[i], n);
  return a;
}

/// Elementwise logical shift-right.
template <class T, std::size_t N>
constexpr Lane<T, N> shr(Lane<T, N> a, unsigned n) {
  for (std::size_t i = 0; i < N; ++i) a.v[i] = shr(a.v[i], n);
  return a;
}

}  // namespace gks::hash
