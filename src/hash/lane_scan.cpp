#include "hash/lane_scan.h"

#include "hash/lane.h"
#include "hash/md5_kernel.h"

namespace gks::hash {

std::optional<std::uint64_t> md5_scan_prefixes_lanes(
    const Md5CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count) {
  using W = Lane<std::uint32_t, kScanLanes>;

  // Broadcast the fixed message words once; only word 0 varies.
  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const Md5State<std::uint32_t>& rev = ctx.reverted_target();

  std::uint64_t scanned = 0;
  while (count - scanned >= kScanLanes) {
    // Keep the block's start so a hit can reposition the iterator to
    // the candidate after the match, exactly like the scalar scanner.
    const PrefixWord0Iterator block_start = it;
    std::array<std::uint32_t, kScanLanes> word0s;
    for (std::size_t l = 0; l < kScanLanes; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < kScanLanes; ++l) m[0][l] = word0s[l];

    Md5State<W> s{W(kMd5Init[0]), W(kMd5Init[1]), W(kMd5Init[2]),
                  W(kMd5Init[3])};
    md5_forward_steps(s, m, 49);

    for (std::size_t l = 0; l < kScanLanes; ++l) {
      if (s.a[l] == rev.a && s.b[l] == rev.b && s.c[l] == rev.c &&
          s.d[l] == rev.d) {
        it = block_start;
        for (std::size_t skip = 0; skip <= l; ++skip) it.advance();
        return scanned + l;
      }
    }
    scanned += kScanLanes;
  }

  // Scalar tail (and it also re-verifies nothing was skipped: the two
  // engines share PrefixWord0Iterator semantics).
  if (scanned < count) {
    const auto hit = md5_scan_prefixes(ctx, it, count - scanned);
    if (hit) return scanned + *hit;
  }
  return std::nullopt;
}

}  // namespace gks::hash
