#include "hash/lane_scan.h"

#include "hash/simd/dispatch.h"

namespace gks::hash {

std::optional<std::uint64_t> md5_scan_prefixes_lanes(
    const Md5CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count) {
  return simd::best_kernels().md5_scan(ctx, it, count);
}

std::optional<std::uint64_t> sha1_scan_prefixes_lanes(
    const Sha1CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count) {
  return simd::best_kernels().sha1_scan(ctx, it, count);
}

}  // namespace gks::hash
