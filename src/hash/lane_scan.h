#pragma once

#include <cstdint>
#include <optional>

#include "hash/md5_crack.h"

namespace gks::hash {

/// Number of interleaved candidates per pass of the lane scanner.
/// Eight 32-bit lanes fill an AVX2 register; the compiler vectorizes
/// the Lane-instantiated compression core accordingly.
inline constexpr std::size_t kScanLanes = 8;

/// Lane-parallel variant of md5_scan_prefixes: tests kScanLanes
/// candidates per kernel pass through the Lane-instantiated MD5 core —
/// the CPU analogue of a warp's data parallelism. Trades the scalar
/// path's early exit (46 steps/candidate) for uniform 49-step blocks
/// the compiler can vectorize 8-wide, a large net win on SIMD hosts.
///
/// Semantics are identical to md5_scan_prefixes: scans `count`
/// prefix-major candidates from the iterator's position, returns the
/// offset of the first match, leaves the iterator past the scanned
/// range.
std::optional<std::uint64_t> md5_scan_prefixes_lanes(
    const Md5CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count);

}  // namespace gks::hash
