#pragma once

#include <cstdint>
#include <optional>

#include "hash/md5_crack.h"
#include "hash/sha1_crack.h"

namespace gks::hash {

/// Lane-parallel variant of md5_scan_prefixes: tests N candidates per
/// kernel pass through the LaneVec-instantiated MD5 core — the CPU
/// analogue of a warp's data parallelism — where N is the widest vector
/// width the host supports (runtime-dispatched, see simd/dispatch.h).
/// The paper's early exit survives vectorization: only the step-45
/// value is compared against the reverted target's `a` word with an
/// any-lane test, and steps 46..48 run only for the rare block that
/// passes.
///
/// Semantics are identical to md5_scan_prefixes: scans `count`
/// prefix-major candidates from the iterator's position, returns the
/// offset of the first match, leaves the iterator past the scanned
/// range.
std::optional<std::uint64_t> md5_scan_prefixes_lanes(
    const Md5CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count);

/// SHA1 counterpart: identical iterator semantics to sha1_scan_prefixes,
/// N lanes per pass, early exit after step 75 against the unfed
/// target's `e` word.
std::optional<std::uint64_t> sha1_scan_prefixes_lanes(
    const Sha1CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count);

}  // namespace gks::hash
