#include "hash/md5.h"

#include <cstring>

namespace gks::hash {
namespace {

std::array<std::uint32_t, 16> load_le(const std::uint8_t* p) {
  std::array<std::uint32_t, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = static_cast<std::uint32_t>(p[4 * w]) |
           static_cast<std::uint32_t>(p[4 * w + 1]) << 8 |
           static_cast<std::uint32_t>(p[4 * w + 2]) << 16 |
           static_cast<std::uint32_t>(p[4 * w + 3]) << 24;
  }
  return m;
}

void store_le(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void Md5::compress_buffer() {
  const auto m = load_le(buffer_);
  const Md5State<std::uint32_t> init = state_;
  md5_forward_steps(state_, m, 64);
  md5_feed_forward(state_, init);
  buffered_ = 0;
}

void Md5::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  while (!data.empty()) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    data = data.subspan(take);
    if (buffered_ == 64) compress_buffer();
  }
}

Md5Digest Md5::finalize() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  update(std::span<const std::uint8_t>(len, 8));

  Md5Digest d;
  store_le(state_.a, d.bytes.data());
  store_le(state_.b, d.bytes.data() + 4);
  store_le(state_.c, d.bytes.data() + 8);
  store_le(state_.d, d.bytes.data() + 12);
  return d;
}

}  // namespace gks::hash
