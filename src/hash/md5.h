#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "hash/digest.h"
#include "hash/md5_kernel.h"

namespace gks::hash {

/// Streaming MD5 (RFC 1321) for arbitrary-length input. This is the
/// reference implementation: the crack kernels are verified against it
/// and the auditing tools use it to hash password lists.
class Md5 {
 public:
  Md5() = default;

  /// Absorbs `data`; may be called any number of times.
  void update(std::span<const std::uint8_t> data);

  /// Convenience overload for text input.
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Applies padding and returns the digest. The object must not be
  /// updated afterwards (construct a fresh Md5 for the next message).
  Md5Digest finalize();

  /// One-shot digest of a full message.
  static Md5Digest digest(std::string_view text) {
    Md5 h;
    h.update(text);
    return h.finalize();
  }

  static Md5Digest digest(std::span<const std::uint8_t> data) {
    Md5 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void compress_buffer();

  Md5State<std::uint32_t> state_{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                                 kMd5Init[3]};
  std::uint8_t buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gks::hash
