#include "hash/md5_crack.h"

#include <string>

#include "support/error.h"

namespace gks::hash {
namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

Md5CrackContext::Md5CrackContext(const Md5Digest& target,
                                 std::string_view tail, std::size_t total_len)
    : target_(target) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single MD5 block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }

  // Assemble the fixed block with a placeholder first word.
  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  m_ = pack_md5_block(message).words;

  // Undo the feed-forward, then revert steps 63..49. None of those
  // steps reads word 0, so the placeholder is harmless.
  Md5State<std::uint32_t> t{
      load_le32(target.bytes.data()) - kMd5Init[0],
      load_le32(target.bytes.data() + 4) - kMd5Init[1],
      load_le32(target.bytes.data() + 8) - kMd5Init[2],
      load_le32(target.bytes.data() + 12) - kMd5Init[3]};
  md5_reverse_steps(t, m_, 49);
  reverted_ = t;
}

bool Md5CrackContext::test(std::uint32_t m0) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;

  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, m, 45);

  // Steps 45..48 with early exit. The value produced at step 45 lands
  // in register a of the after-step-48 state, 46 in d, 47 in c, 48 in b.
  std::uint32_t a = s.a, b = s.b, c = s.c, d = s.d;
  const auto step = [&m](unsigned i, std::uint32_t va, std::uint32_t vb,
                         std::uint32_t vc, std::uint32_t vd) {
    return vb + rotl(va + md5_round_fn(i, vb, vc, vd) + m[md5_msg_index(i)] +
                         kMd5K[i],
                     kMd5S[i]);
  };

  const std::uint32_t t45 = step(45, a, b, c, d);
  if (t45 != reverted_.a) return false;
  std::uint32_t na = d, nb = t45, nc = b, nd = c;

  const std::uint32_t t46 = step(46, na, nb, nc, nd);
  if (t46 != reverted_.d) return false;
  a = nd;
  b = t46;
  c = nb;
  d = nc;

  const std::uint32_t t47 = step(47, a, b, c, d);
  if (t47 != reverted_.c) return false;
  na = d;
  nb = t47;
  nc = b;
  nd = c;

  const std::uint32_t t48 = step(48, na, nb, nc, nd);
  return t48 == reverted_.b;
}

bool Md5CrackContext::test_plain(std::uint32_t m0) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;
  const Md5State<std::uint32_t> s = md5_single_block(m);
  return s.a == load_le32(target_.bytes.data()) &&
         s.b == load_le32(target_.bytes.data() + 4) &&
         s.c == load_le32(target_.bytes.data() + 8) &&
         s.d == load_le32(target_.bytes.data() + 12);
}

PrefixWord0Iterator::PrefixWord0Iterator(std::span<const char> charset,
                                         unsigned prefix_chars,
                                         std::size_t key_len, bool big_endian)
    : charset_(charset),
      prefix_chars_(prefix_chars),
      key_len_(key_len),
      big_endian_(big_endian) {
  GKS_REQUIRE(!charset.empty(), "charset must not be empty");
  GKS_REQUIRE(prefix_chars >= 1 && prefix_chars <= 4,
              "prefix must cover 1..4 characters");
  // The iterator owns every byte of word 0, so the varying window must
  // be exactly the key characters that live there: any smaller and the
  // remaining word-0 bytes would be fixed key characters it cannot know.
  GKS_REQUIRE(prefix_chars == (key_len < 4 ? key_len : 4),
              "prefix must cover min(4, key_len) characters");
  for (unsigned i = 0; i < prefix_chars_; ++i) chars_[i] = charset_[0];
  pack_all();
}

void PrefixWord0Iterator::pack_all() {
  std::array<std::uint8_t, 4> b{};
  const std::size_t n = key_len_ < 4 ? key_len_ : 4;
  for (std::size_t i = 0; i < n; ++i)
    b[i] = i < prefix_chars_ ? static_cast<std::uint8_t>(chars_[i]) : 0;
  if (key_len_ < 4) b[key_len_] = 0x80;
  if (big_endian_) {
    word_ = static_cast<std::uint32_t>(b[0]) << 24 |
            static_cast<std::uint32_t>(b[1]) << 16 |
            static_cast<std::uint32_t>(b[2]) << 8 |
            static_cast<std::uint32_t>(b[3]);
  } else {
    word_ = static_cast<std::uint32_t>(b[0]) |
            static_cast<std::uint32_t>(b[1]) << 8 |
            static_cast<std::uint32_t>(b[2]) << 16 |
            static_cast<std::uint32_t>(b[3]) << 24;
  }
}

void PrefixWord0Iterator::set_char(unsigned pos, char c) {
  chars_[pos] = c;
  const unsigned shift = big_endian_ ? 8u * (3 - pos) : 8u * pos;
  word_ = (word_ & ~(0xFFu << shift)) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(c)) << shift);
}

void PrefixWord0Iterator::seek(std::span<const std::uint32_t> digits) {
  GKS_REQUIRE(digits.size() == prefix_chars_,
              "seek needs one digit per prefix character");
  for (unsigned i = 0; i < prefix_chars_; ++i) {
    GKS_REQUIRE(digits[i] < charset_.size(), "digit outside charset");
    digits_[i] = digits[i];
    chars_[i] = charset_[digits[i]];
  }
  pack_all();
}

bool PrefixWord0Iterator::advance() {
  // Prefix-major order: the first character is the fastest digit, the
  // word-0 analogue of the paper's modified `next` operator.
  for (unsigned pos = 0; pos < prefix_chars_; ++pos) {
    if (++digits_[pos] < charset_.size()) {
      set_char(pos, charset_[digits_[pos]]);
      return true;
    }
    digits_[pos] = 0;
    set_char(pos, charset_[0]);
  }
  return false;  // wrapped around
}

std::uint64_t PrefixWord0Iterator::combinations() const {
  std::uint64_t n = 1;
  for (unsigned i = 0; i < prefix_chars_; ++i) n *= charset_.size();
  return n;
}

std::optional<std::uint64_t> md5_scan_prefixes(const Md5CrackContext& ctx,
                                               PrefixWord0Iterator& it,
                                               std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if (ctx.test(it.word0())) {
      it.advance();
      return i;
    }
    it.advance();
  }
  return std::nullopt;
}

}  // namespace gks::hash
