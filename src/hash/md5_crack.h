#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "hash/digest.h"
#include "hash/md5_kernel.h"

namespace gks::hash {

/// Precomputed context for the optimized MD5 crack kernel of Section V.
///
/// A context fixes everything about the candidate message except its
/// first four bytes (message word 0): the tail characters, the padding,
/// and the length word. From the target digest it precomputes the
/// 15-step *reverted* state — MD5's word 0 is consumed by steps 0, 19,
/// 41 and 48 but never by steps 49..63, so those steps can be undone
/// once per target instead of executed once per candidate (the BarsWF
/// optimization, ~1.25x). Each test then runs only 49 forward steps,
/// and usually far fewer thanks to the early-exit comparison after
/// step 45 (the "save three more steps" optimization).
///
/// Threads must therefore enumerate candidates in *prefix-major* order
/// (paper mapping (4)): consecutive identifiers vary the first
/// characters, which all live in word 0.
///
/// Suffix salts are supported transparently (they are part of the fixed
/// tail). Prefix salts would displace the varying characters out of
/// word 0; callers must use the plain kernel for those.
class Md5CrackContext {
 public:
  /// `tail` holds the message bytes from offset 4 onward (key characters
  /// after the first four, then any suffix salt); `total_len` is the full
  /// message length in bytes. If total_len < 4 the tail must be empty
  /// (the padding byte then lives inside word 0).
  Md5CrackContext(const Md5Digest& target, std::string_view tail,
                  std::size_t total_len);

  /// Tests one candidate (first four message bytes packed little-endian,
  /// as produced by pack_md5_word0). Uses the reverted target: 45 forward
  /// steps, then up to 4 early-exit compare steps.
  bool test(std::uint32_t m0) const;

  /// Tests the same candidate with the unoptimized kernel: all 64 steps,
  /// feed-forward, full digest compare. Used by the naive baseline and by
  /// tests cross-checking the optimized path.
  bool test_plain(std::uint32_t m0) const;

  /// Fixed message words (word 0 is a placeholder).
  const std::array<std::uint32_t, 16>& message_words() const { return m_; }

  /// The reverted state the forward steps are compared against.
  const Md5State<std::uint32_t>& reverted_target() const { return reverted_; }

  /// The target digest this context was built for.
  const Md5Digest& target() const { return target_; }

 private:
  std::array<std::uint32_t, 16> m_{};
  Md5State<std::uint32_t> reverted_{};
  Md5Digest target_{};
};

/// Walks the word-0 candidate values for keys whose first
/// min(4, key_len) characters range over a charset in prefix-major
/// order (first character fastest — paper mapping (4)).
///
/// The iterator maintains the packed word incrementally: advancing
/// usually rewrites a single byte, the word-level analogue of the
/// `next` operator of Figure 2.
class PrefixWord0Iterator {
 public:
  /// `charset`: candidate characters; `prefix_chars`: how many leading
  /// characters vary (1..4); `key_len`: full key length (determines
  /// where the 0x80 pad byte sits when key_len < 4); `big_endian`:
  /// false for MD5 word packing, true for SHA1.
  PrefixWord0Iterator(std::span<const char> charset, unsigned prefix_chars,
                      std::size_t key_len, bool big_endian);

  /// Sets the current position from per-character digit indices
  /// (digits[0] is the first, fastest-varying character).
  void seek(std::span<const std::uint32_t> digits);

  /// Packed word 0 for the current prefix.
  std::uint32_t word0() const { return word_; }

  /// Current prefix characters (first `prefix_chars()` entries valid).
  std::span<const char> prefix() const {
    return {chars_.data(), prefix_chars_};
  }

  /// Advances to the next prefix; returns false (and wraps to the first
  /// prefix) when all combinations are exhausted.
  bool advance();

  unsigned prefix_chars() const { return prefix_chars_; }

  /// Total number of distinct prefixes (|charset|^prefix_chars).
  std::uint64_t combinations() const;

 private:
  void pack_all();
  void set_char(unsigned pos, char c);

  std::array<char, 4> chars_{};
  std::array<std::uint32_t, 4> digits_{};
  std::uint32_t word_ = 0;
  std::span<const char> charset_;
  unsigned prefix_chars_;
  std::size_t key_len_;
  bool big_endian_;
};

/// Scans `count` consecutive prefix-major candidates starting at the
/// iterator's current position; returns the offset of the first match,
/// if any. The iterator is left positioned after the scanned range.
/// This is the inner loop a simulated-GPU thread executes.
std::optional<std::uint64_t> md5_scan_prefixes(const Md5CrackContext& ctx,
                                               PrefixWord0Iterator& it,
                                               std::uint64_t count);

}  // namespace gks::hash
