#pragma once

// MD5 compression core, written once as a function template over the
// word type `W` (see DESIGN.md §5.1). Instantiations:
//   - W = std::uint32_t            → the production kernel;
//   - W = Lane<std::uint32_t, N>   → N interleaved hashes (ILP);
//   - W = simgpu::TracedWord       → symbolic instruction stream for
//                                    the per-architecture lowering pass.
// The only operations used are +, &, |, ^, ~ and rotl/rotr found by
// ADL, so any word type providing those participates.

#include <array>
#include <cstdint>

#include "hash/kernel_words.h"

namespace gks::hash {

/// MD5 chaining state (A, B, C, D registers of RFC 1321).
template <class W>
struct Md5State {
  W a, b, c, d;
};

/// RFC 1321 initial state.
inline constexpr std::array<std::uint32_t, 4> kMd5Init = {
    0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};

/// Per-step sine-derived additive constants T[i] (RFC 1321 §3.4).
inline constexpr std::array<std::uint32_t, 64> kMd5K = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

/// Per-step left-rotation amounts (RFC 1321 §3.4).
inline constexpr std::array<unsigned, 64> kMd5S = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

/// Message word index consumed by step i.
constexpr unsigned md5_msg_index(unsigned step) {
  if (step < 16) return step;
  if (step < 32) return (1 + 5 * step) % 16;
  if (step < 48) return (5 + 3 * step) % 16;
  return (7 * step) % 16;
}

/// Round function for step i applied to registers (b, c, d).
template <class W>
constexpr W md5_round_fn(unsigned step, const W& b, const W& c, const W& d) {
  if (step < 16) return (b & c) | (~b & d);
  if (step < 32) return (d & b) | (~d & c);
  if (step < 48) return b ^ c ^ d;
  return c ^ (b | ~d);
}

/// Executes steps [0, n_steps) of the MD5 compression function on
/// `s` given message words `m`. n_steps = 64 is a full compression
/// (without the final feed-forward addition — see md5_feed_forward).
/// Running a prefix of the steps is what the optimized crack kernel
/// does (49 forward steps against a 15-step-reverted target).
template <class W, std::size_t M>
constexpr void md5_forward_steps(Md5State<W>& s, const std::array<W, M>& m,
                                 unsigned n_steps = 64) {
  W a = s.a, b = s.b, c = s.c, d = s.d;
  for (unsigned i = 0; i < n_steps; ++i) {
    const W f = md5_round_fn(i, b, c, d);
    const W t = b + rotl(a + f + m[md5_msg_index(i)] + W(kMd5K[i]), kMd5S[i]);
    a = d;
    d = c;
    c = b;
    b = t;
  }
  s = {a, b, c, d};
}

/// Adds the initial state into the final registers (RFC 1321 "add
/// the saved state" feed-forward). Split out so the crack kernel can
/// skip it (the target is reverted past it instead).
template <class W>
constexpr void md5_feed_forward(Md5State<W>& s, const Md5State<W>& init) {
  s.a = s.a + init.a;
  s.b = s.b + init.b;
  s.c = s.c + init.c;
  s.d = s.d + init.d;
}

/// Full single-block MD5: init → 64 steps → feed-forward.
template <class W, std::size_t M>
constexpr Md5State<W> md5_single_block(const std::array<W, M>& m) {
  Md5State<W> init{W(kMd5Init[0]), W(kMd5Init[1]), W(kMd5Init[2]),
                   W(kMd5Init[3])};
  Md5State<W> s = init;
  md5_forward_steps(s, m, 64);
  md5_feed_forward(s, init);
  return s;
}

/// Inverts MD5 steps [to_step, 63]: given the register values *after*
/// step 63 (with the feed-forward already subtracted), produces the
/// values after step `to_step - 1`. Templated over the word type like
/// the forward core — a multi-target context reverts whole batches of
/// digests in vector lanes (every target shares the fixed message
/// words, so lanes never diverge).
///
/// This is the BarsWF reversal trick of Section V-B: message word 0 is
/// not consumed by steps 49..63, so a thread that varies only the first
/// four characters can revert the target once and compare 15 steps
/// early.
template <class W>
inline void md5_reverse_steps(Md5State<W>& s, const std::array<W, 16>& m,
                              unsigned to_step) {
  for (unsigned i = 63; i + 1 > to_step; --i) {
    // Forward step i mapped (a,b,c,d) -> (d, bnew, b, c); undo it.
    const W a_out = s.a, b_out = s.b, c_out = s.c, d_out = s.d;
    const W b = c_out;
    const W c = d_out;
    const W d = a_out;
    const W f = md5_round_fn(i, b, c, d);
    const W a = rotr(b_out - c_out, kMd5S[i]) - f - m[md5_msg_index(i)] -
                W(kMd5K[i]);
    s = {a, b, c, d};
  }
}

}  // namespace gks::hash
