#include "hash/multi_crack.h"

#include <string>

#include "hash/kernel_words.h"
#include "hash/simd/lane_vec.h"
#include "support/error.h"

namespace gks::hash {
namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

std::array<std::uint32_t, 16> fixed_md5_words(std::string_view tail,
                                              std::size_t total_len) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }
  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  return pack_md5_block(message).words;
}

std::array<std::uint32_t, 16> fixed_sha_words(std::string_view tail,
                                              std::size_t total_len) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }
  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  return pack_sha_block(message).words;
}

std::vector<std::uint32_t> md5_index_words(
    const std::vector<Md5State<std::uint32_t>>& reverted) {
  std::vector<std::uint32_t> words;
  words.reserve(reverted.size());
  for (const auto& r : reverted) words.push_back(r.a);
  return words;
}

std::vector<std::uint32_t> sha1_index_words(
    const std::vector<Sha1State<std::uint32_t>>& unfed) {
  std::vector<std::uint32_t> words;
  words.reserve(unfed.size());
  for (const auto& u : unfed) words.push_back(u.e);
  return words;
}

}  // namespace

Md5MultiContext::Md5MultiContext(std::vector<Md5Digest> targets,
                                 std::string_view tail, std::size_t total_len,
                                 const TargetIndex::Config& index_config)
    : targets_(std::move(targets)), m_(fixed_md5_words(tail, total_len)) {
  GKS_REQUIRE(!targets_.empty(), "need at least one target digest");
  revert_from(0);
  index_ = TargetIndex(md5_index_words(reverted_), index_config);
}

void Md5MultiContext::revert_from(std::size_t begin) {
  reverted_.resize(targets_.size());
  // Every target shares the fixed message words, so the 15-step
  // reversals never diverge — revert four digests in lockstep per
  // vector pass. This is the dominant cost of building a large batch's
  // per-tail context.
  using V = simd::LaneVec<4>;
  std::array<V, 16> mv;
  for (std::size_t w = 0; w < 16; ++w) mv[w] = V(m_[w]);
  std::size_t i = begin;
  for (; i + 4 <= targets_.size(); i += 4) {
    Md5State<V> s{};
    for (std::size_t l = 0; l < 4; ++l) {
      const std::uint8_t* p = targets_[i + l].bytes.data();
      simd::lane_set(s.a, l, load_le32(p) - kMd5Init[0]);
      simd::lane_set(s.b, l, load_le32(p + 4) - kMd5Init[1]);
      simd::lane_set(s.c, l, load_le32(p + 8) - kMd5Init[2]);
      simd::lane_set(s.d, l, load_le32(p + 12) - kMd5Init[3]);
    }
    md5_reverse_steps(s, mv, 49);
    for (std::size_t l = 0; l < 4; ++l) {
      reverted_[i + l] = {simd::lane_get(s.a, l), simd::lane_get(s.b, l),
                          simd::lane_get(s.c, l), simd::lane_get(s.d, l)};
    }
  }
  for (; i < targets_.size(); ++i) {
    const std::uint8_t* p = targets_[i].bytes.data();
    Md5State<std::uint32_t> s{load_le32(p) - kMd5Init[0],
                              load_le32(p + 4) - kMd5Init[1],
                              load_le32(p + 8) - kMd5Init[2],
                              load_le32(p + 12) - kMd5Init[3]};
    md5_reverse_steps(s, m_, 49);
    reverted_[i] = s;
  }
}

void Md5MultiContext::add_targets(std::span<const Md5Digest> more) {
  if (more.empty()) return;
  const std::size_t begin = targets_.size();
  targets_.insert(targets_.end(), more.begin(), more.end());
  revert_from(begin);
  std::vector<std::uint32_t> words;
  words.reserve(more.size());
  for (std::size_t i = begin; i < reverted_.size(); ++i) {
    words.push_back(reverted_[i].a);
  }
  index_.add(words, static_cast<std::uint32_t>(begin));
}

void Md5MultiContext::retire_slots(std::span<const std::uint32_t> slots) {
  // Only the index forgets the slots; targets_/reverted_ keep the
  // holes so surviving slot numbers stay stable.
  index_.remove(slots);
}

bool Md5MultiContext::confirm(const std::array<std::uint32_t, 16>& m,
                              const Md5State<std::uint32_t>& s45,
                              std::uint32_t t45,
                              const Md5State<std::uint32_t>& r) const {
  const auto step = [&m](unsigned i, std::uint32_t va, std::uint32_t vb,
                         std::uint32_t vc, std::uint32_t vd) {
    return vb + rotl(va + md5_round_fn(i, vb, vc, vd) + m[md5_msg_index(i)] +
                         kMd5K[i],
                     kMd5S[i]);
  };
  // Finish steps 46..48 and verify the remaining three registers (the
  // index already established r.a == t45).
  const std::uint32_t a = s45.d, b = t45, c = s45.b, d = s45.c;
  const std::uint32_t t46 = step(46, a, b, c, d);
  if (t46 != r.d) return false;
  const std::uint32_t t47 = step(47, d, t46, b, c);
  if (t47 != r.c) return false;
  const std::uint32_t t48 = step(48, c, t47, t46, b);
  return t48 == r.b;
}

std::size_t Md5MultiContext::test(std::uint32_t m0) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;

  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, m, 45);

  // One early-exit value, one filter load — target count never enters.
  const std::uint32_t t45 =
      s.b + rotl(s.a + md5_round_fn(45, s.b, s.c, s.d) +
                     m[md5_msg_index(45)] + kMd5K[45],
                 kMd5S[45]);
  if (!index_.may_match(t45)) return npos;

  // Rare path: every target whose reverted word matches is confirmed —
  // 32-bit collisions between targets must not shadow the real one.
  const auto slots = index_.matches(t45);
  for (const std::uint32_t slot : slots) {
    if (confirm(m, s, t45, reverted_[slot])) return slot;
  }
  if (!slots.empty()) index_.note_false_positive();
  return npos;
}

void Md5MultiContext::test_hits(std::uint32_t m0, std::uint64_t offset,
                                std::vector<MultiHit>& out) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;

  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, m, 45);
  const std::uint32_t t45 =
      s.b + rotl(s.a + md5_round_fn(45, s.b, s.c, s.d) +
                     m[md5_msg_index(45)] + kMd5K[45],
                 kMd5S[45]);
  if (!index_.may_match(t45)) return;
  confirm_hits(m0, s, t45, offset, out);
}

void Md5MultiContext::confirm_hits(std::uint32_t m0,
                                   const Md5State<std::uint32_t>& s45,
                                   std::uint32_t t45, std::uint64_t offset,
                                   std::vector<MultiHit>& out) const {
  // The usual filter false positive resolves right here: no target owns
  // the word, so the slot lookup is the entire cost.
  const auto slots = index_.matches(t45);
  if (slots.empty()) return;
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;
  const std::size_t before = out.size();
  for (const std::uint32_t slot : slots) {
    if (confirm(m, s45, t45, reverted_[slot])) out.push_back({offset, slot});
  }
  if (out.size() == before) index_.note_false_positive();
}

Sha1MultiContext::Sha1MultiContext(std::vector<Sha1Digest> targets,
                                   std::string_view tail,
                                   std::size_t total_len,
                                   const TargetIndex::Config& index_config)
    : targets_(std::move(targets)), m_(fixed_sha_words(tail, total_len)) {
  GKS_REQUIRE(!targets_.empty(), "need at least one target digest");
  unfed_.reserve(targets_.size());
  for (const Sha1Digest& t : targets_) {
    unfed_.push_back({load_be32(t.bytes.data()) - kSha1Init[0],
                      load_be32(t.bytes.data() + 4) - kSha1Init[1],
                      load_be32(t.bytes.data() + 8) - kSha1Init[2],
                      load_be32(t.bytes.data() + 12) - kSha1Init[3],
                      load_be32(t.bytes.data() + 16) - kSha1Init[4]});
  }
  index_ = TargetIndex(sha1_index_words(unfed_), index_config);
}

void Sha1MultiContext::add_targets(std::span<const Sha1Digest> more) {
  if (more.empty()) return;
  const std::size_t begin = targets_.size();
  targets_.insert(targets_.end(), more.begin(), more.end());
  std::vector<std::uint32_t> words;
  words.reserve(more.size());
  for (const Sha1Digest& t : more) {
    unfed_.push_back({load_be32(t.bytes.data()) - kSha1Init[0],
                      load_be32(t.bytes.data() + 4) - kSha1Init[1],
                      load_be32(t.bytes.data() + 8) - kSha1Init[2],
                      load_be32(t.bytes.data() + 12) - kSha1Init[3],
                      load_be32(t.bytes.data() + 16) - kSha1Init[4]});
    words.push_back(unfed_.back().e);
  }
  index_.add(words, static_cast<std::uint32_t>(begin));
}

void Sha1MultiContext::retire_slots(std::span<const std::uint32_t> slots) {
  index_.remove(slots);
}

bool Sha1MultiContext::confirm(std::array<std::uint32_t, 16> ring,
                               std::uint32_t a, std::uint32_t b,
                               std::uint32_t c, std::uint32_t d,
                               std::uint32_t e,
                               const Sha1State<std::uint32_t>& u) const {
  // Steps 76..79 on private copies of the ring and registers, so one
  // confirm cannot corrupt the state another colliding target needs.
  const auto advance = [&](unsigned t, std::uint32_t wt) {
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  };
  advance(76, sha1_expand(ring, 76));
  if (rotl(a, 30) != u.d) return false;
  advance(77, sha1_expand(ring, 77));
  if (rotl(a, 30) != u.c) return false;
  advance(78, sha1_expand(ring, 78));
  if (a != u.b) return false;
  advance(79, sha1_expand(ring, 79));
  return a == u.a;
}

std::size_t Sha1MultiContext::test(std::uint32_t w0) const {
  std::array<std::uint32_t, 16> ring = m_;
  ring[0] = w0;

  std::uint32_t a = kSha1Init[0], b = kSha1Init[1], c = kSha1Init[2],
                d = kSha1Init[3], e = kSha1Init[4];
  const auto advance = [&](unsigned t, std::uint32_t wt) {
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  };
  for (unsigned t = 0; t < 16; ++t) advance(t, ring[t]);
  for (unsigned t = 16; t < 76; ++t) advance(t, sha1_expand(ring, t));

  const std::uint32_t check = rotl(a, 30);
  if (!index_.may_match(check)) return npos;
  const auto slots = index_.matches(check);
  for (const std::uint32_t slot : slots) {
    if (confirm(ring, a, b, c, d, e, unfed_[slot])) return slot;
  }
  if (!slots.empty()) index_.note_false_positive();
  return npos;
}

void Sha1MultiContext::test_hits(std::uint32_t w0, std::uint64_t offset,
                                 std::vector<MultiHit>& out) const {
  std::array<std::uint32_t, 16> ring = m_;
  ring[0] = w0;

  std::uint32_t a = kSha1Init[0], b = kSha1Init[1], c = kSha1Init[2],
                d = kSha1Init[3], e = kSha1Init[4];
  const auto advance = [&](unsigned t, std::uint32_t wt) {
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  };
  for (unsigned t = 0; t < 16; ++t) advance(t, ring[t]);
  for (unsigned t = 16; t < 76; ++t) advance(t, sha1_expand(ring, t));

  const std::uint32_t check = rotl(a, 30);
  if (!index_.may_match(check)) return;
  confirm_hits(ring, a, b, c, d, e, offset, out);
}

void Sha1MultiContext::confirm_hits(const std::array<std::uint32_t, 16>& ring,
                                    std::uint32_t a, std::uint32_t b,
                                    std::uint32_t c, std::uint32_t d,
                                    std::uint32_t e, std::uint64_t offset,
                                    std::vector<MultiHit>& out) const {
  const std::uint32_t check = rotl(a, 30);
  const auto slots = index_.matches(check);
  if (slots.empty()) return;
  const std::size_t before = out.size();
  for (const std::uint32_t slot : slots) {
    if (confirm(ring, a, b, c, d, e, unfed_[slot])) {
      out.push_back({offset, slot});
    }
  }
  if (out.size() == before) index_.note_false_positive();
}

void md5_multi_scan_prefixes(const Md5MultiContext& ctx,
                             PrefixWord0Iterator& it, std::uint64_t count,
                             std::vector<MultiHit>& hits) {
  for (std::uint64_t i = 0; i < count; ++i) {
    ctx.test_hits(it.word0(), i, hits);
    it.advance();
  }
}

void sha1_multi_scan_prefixes(const Sha1MultiContext& ctx,
                              PrefixWord0Iterator& it, std::uint64_t count,
                              std::vector<MultiHit>& hits) {
  for (std::uint64_t i = 0; i < count; ++i) {
    ctx.test_hits(it.word0(), i, hits);
    it.advance();
  }
}

}  // namespace gks::hash
