#include "hash/multi_crack.h"

#include <string>

#include "hash/kernel_words.h"
#include "support/error.h"

namespace gks::hash {
namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

std::array<std::uint32_t, 16> fixed_md5_words(std::string_view tail,
                                              std::size_t total_len) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }
  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  return pack_md5_block(message).words;
}

std::array<std::uint32_t, 16> fixed_sha_words(std::string_view tail,
                                              std::size_t total_len) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }
  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  return pack_sha_block(message).words;
}

}  // namespace

Md5MultiContext::Md5MultiContext(std::vector<Md5Digest> targets,
                                 std::string_view tail,
                                 std::size_t total_len)
    : targets_(std::move(targets)), m_(fixed_md5_words(tail, total_len)) {
  GKS_REQUIRE(!targets_.empty(), "need at least one target digest");
  reverted_.reserve(targets_.size());
  for (const Md5Digest& t : targets_) {
    Md5State<std::uint32_t> s{load_le32(t.bytes.data()) - kMd5Init[0],
                              load_le32(t.bytes.data() + 4) - kMd5Init[1],
                              load_le32(t.bytes.data() + 8) - kMd5Init[2],
                              load_le32(t.bytes.data() + 12) - kMd5Init[3]};
    md5_reverse_steps(s, m_, 49);
    reverted_.push_back(s);
  }
}

std::size_t Md5MultiContext::test(std::uint32_t m0) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = m0;

  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, m, 45);

  const auto step = [&m](unsigned i, std::uint32_t va, std::uint32_t vb,
                         std::uint32_t vc, std::uint32_t vd) {
    return vb + rotl(va + md5_round_fn(i, vb, vc, vd) + m[md5_msg_index(i)] +
                         kMd5K[i],
                     kMd5S[i]);
  };

  // One early-exit value, N comparisons — targets only pay a compare.
  const std::uint32_t t45 = step(45, s.a, s.b, s.c, s.d);
  std::size_t candidate_target = npos;
  for (std::size_t i = 0; i < reverted_.size(); ++i) {
    if (reverted_[i].a == t45) {
      candidate_target = i;
      break;
    }
  }
  if (candidate_target == npos) return npos;

  // Rare path: finish the remaining steps and verify all registers.
  const Md5State<std::uint32_t>& r = reverted_[candidate_target];
  std::uint32_t a = s.d, b = t45, c = s.b, d = s.c;
  const std::uint32_t t46 = step(46, a, b, c, d);
  if (t46 != r.d) return npos;
  std::uint32_t na = d, nb = t46, nc = b, nd = c;
  const std::uint32_t t47 = step(47, na, nb, nc, nd);
  if (t47 != r.c) return npos;
  a = nd;
  b = t47;
  c = nb;
  d = nc;
  const std::uint32_t t48 = step(48, a, b, c, d);
  return t48 == r.b ? candidate_target : npos;
}

Sha1MultiContext::Sha1MultiContext(std::vector<Sha1Digest> targets,
                                   std::string_view tail,
                                   std::size_t total_len)
    : targets_(std::move(targets)), m_(fixed_sha_words(tail, total_len)) {
  GKS_REQUIRE(!targets_.empty(), "need at least one target digest");
  unfed_.reserve(targets_.size());
  for (const Sha1Digest& t : targets_) {
    unfed_.push_back({load_be32(t.bytes.data()) - kSha1Init[0],
                      load_be32(t.bytes.data() + 4) - kSha1Init[1],
                      load_be32(t.bytes.data() + 8) - kSha1Init[2],
                      load_be32(t.bytes.data() + 12) - kSha1Init[3],
                      load_be32(t.bytes.data() + 16) - kSha1Init[4]});
  }
}

std::size_t Sha1MultiContext::test(std::uint32_t w0) const {
  std::array<std::uint32_t, 16> ring = m_;
  ring[0] = w0;

  std::uint32_t a = kSha1Init[0], b = kSha1Init[1], c = kSha1Init[2],
                d = kSha1Init[3], e = kSha1Init[4];
  const auto advance = [&](unsigned t, std::uint32_t wt) {
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  };
  for (unsigned t = 0; t < 16; ++t) advance(t, ring[t]);
  for (unsigned t = 16; t < 76; ++t) advance(t, sha1_expand(ring, t));

  const std::uint32_t check = rotl(a, 30);
  std::size_t candidate_target = npos;
  for (std::size_t i = 0; i < unfed_.size(); ++i) {
    if (unfed_[i].e == check) {
      candidate_target = i;
      break;
    }
  }
  if (candidate_target == npos) return npos;

  const Sha1State<std::uint32_t>& u = unfed_[candidate_target];
  advance(76, sha1_expand(ring, 76));
  if (rotl(a, 30) != u.d) return npos;
  advance(77, sha1_expand(ring, 77));
  if (rotl(a, 30) != u.c) return npos;
  advance(78, sha1_expand(ring, 78));
  if (a != u.b) return npos;
  advance(79, sha1_expand(ring, 79));
  return a == u.a ? candidate_target : npos;
}

}  // namespace gks::hash
