#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hash/digest.h"
#include "hash/md5_crack.h"  // PrefixWord0Iterator
#include "hash/md5_kernel.h"
#include "hash/sha1_kernel.h"
#include "hash/target_index.h"

namespace gks::hash {

/// One multi-target scan hit: the candidate's offset into the scanned
/// range and the matching target slot (index into the context's target
/// vector). A candidate can produce several hits when the batch holds
/// duplicate digests.
struct MultiHit {
  std::uint64_t offset;
  std::uint32_t slot;

  friend bool operator==(const MultiHit&, const MultiHit&) = default;
};

/// Multi-target MD5 crack context: tests one candidate against many
/// digests with a *single* forward computation.
///
/// The kernel's forward steps depend only on the message, never on the
/// target — targets enter solely through the final comparisons. A
/// candidate costs the usual 45 steps plus one early-exit value; the
/// targets are then consulted through a shared TargetIndex over their
/// reverted t45 words, so the per-candidate cost is O(1) expected
/// *regardless of target count* (one filter load on the common miss,
/// a binary search plus confirm steps on the rare word match). Cracking
/// N digests over the same key space therefore costs essentially the
/// same as cracking one — the engine auditing sessions (Section I) use.
class Md5MultiContext {
 public:
  /// All targets share the fixed tail/total_len (same key-space sweep).
  /// `index_config` selects the front-gate geometry (direct bit array
  /// vs blocked Bloom), its false-positive rate, and the optional
  /// shared stats sink — see TargetIndex::Config.
  Md5MultiContext(std::vector<Md5Digest> targets, std::string_view tail,
                  std::size_t total_len,
                  const TargetIndex::Config& index_config = {});

  /// Live mutation: appends targets (they take slots target_count()..)
  /// or detaches slots from the index. Retired digests keep their slot
  /// numbers — the target vector holds the hole — so hits reported by
  /// concurrent snapshot users never renumber.
  void add_targets(std::span<const Md5Digest> more);
  void retire_slots(std::span<const std::uint32_t> slots);

  /// Tests a candidate word 0; returns the lowest-numbered matching
  /// target, or npos (the overwhelmingly common case). Targets whose
  /// reverted word collides on 32 bits are each confirmed — a word
  /// match never shadows the real target behind it.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t test(std::uint32_t m0) const;

  /// Appends {offset, slot} for *every* target the candidate fully
  /// matches (duplicates included), slots ascending. Used by the scan
  /// drivers, which must report all hits, not just the first.
  void test_hits(std::uint32_t m0, std::uint64_t offset,
                 std::vector<MultiHit>& out) const;

  /// Resolves a filter hit from state a scan engine already computed:
  /// `s45` is the state after step 45 and `t45` the early-exit value for
  /// candidate word `m0`. Appends exactly what test_hits(m0, ...) would,
  /// without redoing the 45 forward steps — lane kernels hold that state
  /// in registers, so a filter false positive costs only the slot lookup
  /// here instead of a full scalar recompute.
  void confirm_hits(std::uint32_t m0, const Md5State<std::uint32_t>& s45,
                    std::uint32_t t45, std::uint64_t offset,
                    std::vector<MultiHit>& out) const;

  std::size_t target_count() const { return reverted_.size(); }
  const std::vector<Md5Digest>& targets() const { return targets_; }

  /// Fixed message words (word 0 is a placeholder) — lane kernels.
  const std::array<std::uint32_t, 16>& message_words() const { return m_; }

  /// Index over the targets' reverted t45 words — lane kernels probe it
  /// per lane and confirm only on filter hits.
  const TargetIndex& index() const { return index_; }

 private:
  bool confirm(const std::array<std::uint32_t, 16>& m,
               const Md5State<std::uint32_t>& s45, std::uint32_t t45,
               const Md5State<std::uint32_t>& reverted) const;
  void revert_from(std::size_t begin);

  std::vector<Md5Digest> targets_;
  std::array<std::uint32_t, 16> m_{};
  std::vector<Md5State<std::uint32_t>> reverted_;
  TargetIndex index_;
};

/// SHA1 counterpart: steps 0..75 run once, the early-exit comparison
/// value is looked up in the index over every target's
/// feed-forward-reverted `e` word.
class Sha1MultiContext {
 public:
  Sha1MultiContext(std::vector<Sha1Digest> targets, std::string_view tail,
                   std::size_t total_len,
                   const TargetIndex::Config& index_config = {});

  /// Live mutation — same slot-stability contract as Md5MultiContext.
  void add_targets(std::span<const Sha1Digest> more);
  void retire_slots(std::span<const std::uint32_t> slots);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t test(std::uint32_t w0) const;

  void test_hits(std::uint32_t w0, std::uint64_t offset,
                 std::vector<MultiHit>& out) const;

  /// Filter-hit resolution from precomputed state: `ring` holds the last
  /// 16 schedule words and a..e the registers, both as of step 76 (after
  /// 76 steps, before step 76's expansion). Appends exactly what
  /// test_hits(w0, ...) would without redoing the 76 steps.
  void confirm_hits(const std::array<std::uint32_t, 16>& ring,
                    std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    std::uint32_t d, std::uint32_t e, std::uint64_t offset,
                    std::vector<MultiHit>& out) const;

  std::size_t target_count() const { return unfed_.size(); }
  const std::vector<Sha1Digest>& targets() const { return targets_; }

  const std::array<std::uint32_t, 16>& message_words() const { return m_; }
  const TargetIndex& index() const { return index_; }

 private:
  bool confirm(std::array<std::uint32_t, 16> ring, std::uint32_t a,
               std::uint32_t b, std::uint32_t c, std::uint32_t d,
               std::uint32_t e, const Sha1State<std::uint32_t>& unfed) const;

  std::vector<Sha1Digest> targets_;
  std::array<std::uint32_t, 16> m_{};
  std::vector<Sha1State<std::uint32_t>> unfed_;
  TargetIndex index_;
};

/// Scans `count` consecutive prefix-major candidates from the
/// iterator's position, appending every hit (offset relative to the
/// scan start, hits offset-ascending). Unlike the single-target
/// scanners these never stop early — a batch sweep wants all hits in
/// the range. The iterator is left past the scanned range. These are
/// the scalar reference engines; the lane-vectorized counterparts live
/// behind hash/simd/dispatch.h and are bit-identical.
void md5_multi_scan_prefixes(const Md5MultiContext& ctx,
                             PrefixWord0Iterator& it, std::uint64_t count,
                             std::vector<MultiHit>& hits);
void sha1_multi_scan_prefixes(const Sha1MultiContext& ctx,
                              PrefixWord0Iterator& it, std::uint64_t count,
                              std::vector<MultiHit>& hits);

}  // namespace gks::hash
