#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "hash/digest.h"
#include "hash/md5_kernel.h"
#include "hash/sha1_kernel.h"

namespace gks::hash {

/// Multi-target MD5 crack context: tests one candidate against many
/// digests with a *single* forward computation.
///
/// The kernel's forward steps depend only on the message, never on the
/// target — targets enter solely through the final comparisons. So a
/// candidate costs the usual 45 steps plus one early-exit value, and
/// each additional target costs one 32-bit compare (the per-target
/// reverted states are precomputed as in Md5CrackContext). Cracking N
/// digests over the same key space is therefore barely more expensive
/// than cracking one — the right engine for auditing sessions.
class Md5MultiContext {
 public:
  /// All targets share the fixed tail/total_len (same key-space sweep).
  Md5MultiContext(std::vector<Md5Digest> targets, std::string_view tail,
                  std::size_t total_len);

  /// Tests a candidate word 0; returns the index of the matching
  /// target, or npos (the overwhelmingly common case).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t test(std::uint32_t m0) const;

  std::size_t target_count() const { return reverted_.size(); }
  const std::vector<Md5Digest>& targets() const { return targets_; }

 private:
  std::vector<Md5Digest> targets_;
  std::array<std::uint32_t, 16> m_{};
  std::vector<Md5State<std::uint32_t>> reverted_;
};

/// SHA1 counterpart: steps 0..75 run once, the early-exit comparison
/// value is checked against every target's feed-forward-reverted state.
class Sha1MultiContext {
 public:
  Sha1MultiContext(std::vector<Sha1Digest> targets, std::string_view tail,
                   std::size_t total_len);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t test(std::uint32_t w0) const;

  std::size_t target_count() const { return unfed_.size(); }
  const std::vector<Sha1Digest>& targets() const { return targets_; }

 private:
  std::vector<Sha1Digest> targets_;
  std::array<std::uint32_t, 16> m_{};
  std::vector<Sha1State<std::uint32_t>> unfed_;
};

}  // namespace gks::hash
