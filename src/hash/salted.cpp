#include "hash/salted.h"

#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::hash {

Md5Digest md5_salted(const SaltSpec& spec, std::string_view key) {
  return Md5::digest(spec.apply(key));
}

Sha1Digest sha1_salted(const SaltSpec& spec, std::string_view key) {
  return Sha1::digest(spec.apply(key));
}

}  // namespace gks::hash
