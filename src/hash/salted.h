#pragma once

#include <string>
#include <string_view>

#include "hash/digest.h"

namespace gks::hash {

/// Where the salt is concatenated relative to the key. Salting defeats
/// lookup/rainbow tables (paper Section I) but leaves the brute-force
/// search space unchanged — the salt is known, so the crack kernels
/// simply fold it into the fixed message words.
enum class SaltPosition { kNone, kPrefix, kSuffix };

/// A salting scheme: a (possibly empty) salt string and its position.
struct SaltSpec {
  SaltPosition position = SaltPosition::kNone;
  std::string salt;

  /// Applies the scheme: returns salt+key, key+salt, or key.
  std::string apply(std::string_view key) const {
    switch (position) {
      case SaltPosition::kNone: return std::string(key);
      case SaltPosition::kPrefix: return salt + std::string(key);
      case SaltPosition::kSuffix: return std::string(key) + salt;
    }
    return std::string(key);
  }

  /// Extra bytes the salt adds to every hashed message.
  std::size_t extra_length() const {
    return position == SaltPosition::kNone ? 0 : salt.size();
  }
};

/// MD5 of the salted key.
Md5Digest md5_salted(const SaltSpec& spec, std::string_view key);

/// SHA1 of the salted key.
Sha1Digest sha1_salted(const SaltSpec& spec, std::string_view key);

}  // namespace gks::hash
