#include "hash/sha1.h"

#include <algorithm>
#include <cstring>

namespace gks::hash {
namespace {

std::array<std::uint32_t, 16> load_be(const std::uint8_t* p) {
  std::array<std::uint32_t, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = static_cast<std::uint32_t>(p[4 * w]) << 24 |
           static_cast<std::uint32_t>(p[4 * w + 1]) << 16 |
           static_cast<std::uint32_t>(p[4 * w + 2]) << 8 |
           static_cast<std::uint32_t>(p[4 * w + 3]);
  }
  return m;
}

void store_be(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Sha1::compress_buffer() {
  const auto m = load_be(buffer_);
  const Sha1State<std::uint32_t> init = state_;
  sha1_forward_steps(state_, m, 80);
  sha1_feed_forward(state_, init);
  buffered_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  while (!data.empty()) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    data = data.subspan(take);
    if (buffered_ == 64) compress_buffer();
  }
}

Sha1Digest Sha1::finalize() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  update(std::span<const std::uint8_t>(len, 8));

  Sha1Digest d;
  store_be(state_.a, d.bytes.data());
  store_be(state_.b, d.bytes.data() + 4);
  store_be(state_.c, d.bytes.data() + 8);
  store_be(state_.d, d.bytes.data() + 12);
  store_be(state_.e, d.bytes.data() + 16);
  return d;
}

}  // namespace gks::hash
