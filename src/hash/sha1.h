#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "hash/digest.h"
#include "hash/sha1_kernel.h"

namespace gks::hash {

/// Streaming SHA1 (RFC 3174) for arbitrary-length input; the reference
/// implementation the SHA1 crack kernel is verified against.
class Sha1 {
 public:
  Sha1() = default;

  /// Absorbs `data`; may be called any number of times.
  void update(std::span<const std::uint8_t> data);

  /// Convenience overload for text input.
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Applies padding and returns the digest; single use per object.
  Sha1Digest finalize();

  /// One-shot digest of a full message.
  static Sha1Digest digest(std::string_view text) {
    Sha1 h;
    h.update(text);
    return h.finalize();
  }

  static Sha1Digest digest(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void compress_buffer();

  Sha1State<std::uint32_t> state_{kSha1Init[0], kSha1Init[1], kSha1Init[2],
                                  kSha1Init[3], kSha1Init[4]};
  std::uint8_t buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gks::hash
