#include "hash/sha1_crack.h"

#include <string>

#include "support/error.h"

namespace gks::hash {
namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

Sha1CrackContext::Sha1CrackContext(const Sha1Digest& target,
                                   std::string_view tail,
                                   std::size_t total_len)
    : target_(target) {
  GKS_REQUIRE(total_len <= 55, "message does not fit a single SHA1 block");
  if (total_len >= 4) {
    GKS_REQUIRE(tail.size() == total_len - 4,
                "tail must hold exactly the bytes after the first word");
  } else {
    GKS_REQUIRE(tail.empty(), "short keys have no tail");
  }

  std::string message(total_len, '\0');
  for (std::size_t i = 4; i < total_len; ++i) message[i] = tail[i - 4];
  m_ = pack_sha_block(message).words;

  unfed_ = {load_be32(target.bytes.data()) - kSha1Init[0],
            load_be32(target.bytes.data() + 4) - kSha1Init[1],
            load_be32(target.bytes.data() + 8) - kSha1Init[2],
            load_be32(target.bytes.data() + 12) - kSha1Init[3],
            load_be32(target.bytes.data() + 16) - kSha1Init[4]};
}

bool Sha1CrackContext::test(std::uint32_t w0) const {
  std::array<std::uint32_t, 16> ring = m_;
  ring[0] = w0;

  std::uint32_t a = kSha1Init[0], b = kSha1Init[1], c = kSha1Init[2],
                d = kSha1Init[3], e = kSha1Init[4];

  const auto advance = [&](unsigned t, std::uint32_t wt) {
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  };

  for (unsigned t = 0; t < 16; ++t) advance(t, ring[t]);
  for (unsigned t = 16; t < 76; ++t) advance(t, sha1_expand(ring, t));

  // Early exit: the value produced at step 75 (now in register `a`,
  // about to be rotated into position) settles into the final state's e
  // after the remaining four register shuffles; likewise 76 -> d,
  // 77 -> c, 78 -> b, 79 -> a. Each comparison usually fails on the
  // first check, skipping four steps and their expansion work.
  if (rotl(a, 30) != unfed_.e) return false;
  advance(76, sha1_expand(ring, 76));
  if (rotl(a, 30) != unfed_.d) return false;
  advance(77, sha1_expand(ring, 77));
  if (rotl(a, 30) != unfed_.c) return false;
  advance(78, sha1_expand(ring, 78));
  if (a != unfed_.b) return false;
  advance(79, sha1_expand(ring, 79));
  return a == unfed_.a;
}

bool Sha1CrackContext::test_plain(std::uint32_t w0) const {
  std::array<std::uint32_t, 16> m = m_;
  m[0] = w0;
  const Sha1State<std::uint32_t> s = sha1_single_block(m);
  return s.a == load_be32(target_.bytes.data()) &&
         s.b == load_be32(target_.bytes.data() + 4) &&
         s.c == load_be32(target_.bytes.data() + 8) &&
         s.d == load_be32(target_.bytes.data() + 12) &&
         s.e == load_be32(target_.bytes.data() + 16);
}

std::optional<std::uint64_t> sha1_scan_prefixes(const Sha1CrackContext& ctx,
                                                PrefixWord0Iterator& it,
                                                std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if (ctx.test(it.word0())) {
      it.advance();
      return i;
    }
    it.advance();
  }
  return std::nullopt;
}

}  // namespace gks::hash
