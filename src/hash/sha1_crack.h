#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "hash/digest.h"
#include "hash/md5_crack.h"  // PrefixWord0Iterator
#include "hash/sha1_kernel.h"

namespace gks::hash {

/// Precomputed context for the optimized SHA1 crack kernel.
///
/// SHA1's message expansion feeds word 0 into most of W[16..79], so the
/// deep reversal that works for MD5 is not available. The applicable
/// optimizations (Section V-B, "the same kind of analysis...") are:
///   - undo the feed-forward once per target instead of adding the
///     initial state once per candidate;
///   - early-exit: the values produced at steps 75..79 each settle into
///     one register of the final state, so the comparison can begin
///     after step 75 and usually rejects immediately, skipping the last
///     four steps and their expansion work.
class Sha1CrackContext {
 public:
  /// Same contract as Md5CrackContext: `tail` holds message bytes from
  /// offset 4 on, `total_len` the full message length (<= 55 bytes).
  Sha1CrackContext(const Sha1Digest& target, std::string_view tail,
                   std::size_t total_len);

  /// Tests one candidate (first four message bytes packed big-endian, as
  /// produced by pack_sha_word0 / PrefixWord0Iterator in big-endian mode).
  bool test(std::uint32_t w0) const;

  /// Unoptimized test: 80 steps, feed-forward, full digest compare.
  bool test_plain(std::uint32_t w0) const;

  /// Fixed message words (word 0 is a placeholder).
  const std::array<std::uint32_t, 16>& message_words() const { return m_; }

  /// The feed-forward-stripped state the forward steps are compared
  /// against (used by the lane scanners).
  const Sha1State<std::uint32_t>& unfed_target() const { return unfed_; }

  /// The target digest this context was built for.
  const Sha1Digest& target() const { return target_; }

 private:
  std::array<std::uint32_t, 16> m_{};
  Sha1State<std::uint32_t> unfed_{};  ///< target minus initial state
  Sha1Digest target_{};
};

/// Scans `count` consecutive prefix-major candidates starting at the
/// iterator's current position (the iterator must be in big-endian
/// mode); returns the offset of the first match, if any.
std::optional<std::uint64_t> sha1_scan_prefixes(const Sha1CrackContext& ctx,
                                                PrefixWord0Iterator& it,
                                                std::uint64_t count);

}  // namespace gks::hash
