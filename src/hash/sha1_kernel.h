#pragma once

// SHA1 compression core as a function template over the word type,
// mirroring md5_kernel.h (see that header for the instantiation map).

#include <array>
#include <cstdint>

#include "hash/kernel_words.h"

namespace gks::hash {

/// SHA1 chaining state (H0..H4 of RFC 3174).
template <class W>
struct Sha1State {
  W a, b, c, d, e;
};

/// RFC 3174 initial state.
inline constexpr std::array<std::uint32_t, 5> kSha1Init = {
    0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};

/// Per-round additive constants.
inline constexpr std::array<std::uint32_t, 4> kSha1K = {
    0x5a827999u, 0x6ed9eba1u, 0x8f1bbcdcu, 0xca62c1d6u};

/// Round function for step t applied to registers (b, c, d).
template <class W>
constexpr W sha1_round_fn(unsigned t, const W& b, const W& c, const W& d) {
  if (t < 20) return (b & c) | (~b & d);
  if (t < 40) return b ^ c ^ d;
  if (t < 60) return (b & c) | (b & d) | (c & d);
  return b ^ c ^ d;
}

/// Expanded message word W[t] computed over a 16-entry ring holding the
/// most recent 16 schedule words (RFC 3174 method 2, constant memory).
template <class W>
constexpr W sha1_expand(std::array<W, 16>& ring, unsigned t) {
  const W w = rotl(ring[(t - 3) & 15] ^ ring[(t - 8) & 15] ^
                       ring[(t - 14) & 15] ^ ring[(t - 16) & 15],
                   1);
  ring[t & 15] = w;
  return w;
}

/// Executes steps [0, n_steps) of SHA1 compression on `s`. The message
/// block `m` is copied into a ring that is expanded in place, so `m`
/// itself is not modified. No feed-forward (see sha1_feed_forward).
template <class W>
constexpr void sha1_forward_steps(Sha1State<W>& s, const std::array<W, 16>& m,
                                  unsigned n_steps = 80) {
  std::array<W, 16> ring = m;
  W a = s.a, b = s.b, c = s.c, d = s.d, e = s.e;
  for (unsigned t = 0; t < n_steps; ++t) {
    const W wt = t < 16 ? ring[t] : sha1_expand(ring, t);
    const W f = sha1_round_fn(t, b, c, d);
    const W temp = rotl(a, 5) + f + e + wt + W(kSha1K[t / 20]);
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  s = {a, b, c, d, e};
}

/// RFC 3174 feed-forward addition of the initial state.
template <class W>
constexpr void sha1_feed_forward(Sha1State<W>& s, const Sha1State<W>& init) {
  s.a = s.a + init.a;
  s.b = s.b + init.b;
  s.c = s.c + init.c;
  s.d = s.d + init.d;
  s.e = s.e + init.e;
}

/// Full single-block SHA1: init → 80 steps → feed-forward.
template <class W>
constexpr Sha1State<W> sha1_single_block(const std::array<W, 16>& m) {
  Sha1State<W> init{W(kSha1Init[0]), W(kSha1Init[1]), W(kSha1Init[2]),
                    W(kSha1Init[3]), W(kSha1Init[4])};
  Sha1State<W> s = init;
  sha1_forward_steps(s, m, 80);
  sha1_feed_forward(s, init);
  return s;
}

}  // namespace gks::hash
