#include "hash/sha256.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"

namespace gks::hash {
namespace {

std::array<std::uint32_t, 16> load_be(const std::uint8_t* p) {
  std::array<std::uint32_t, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = static_cast<std::uint32_t>(p[4 * w]) << 24 |
           static_cast<std::uint32_t>(p[4 * w + 1]) << 16 |
           static_cast<std::uint32_t>(p[4 * w + 2]) << 8 |
           static_cast<std::uint32_t>(p[4 * w + 3]);
  }
  return m;
}

void store_be(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Sha256::compress_buffer() {
  const auto m = load_be(buffer_);
  sha256_compress(state_, m);
  buffered_ = 0;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  while (!data.empty()) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    data = data.subspan(take);
    if (buffered_ == 64) compress_buffer();
  }
}

Sha256State<std::uint32_t> Sha256::midstate() const {
  GKS_REQUIRE(buffered_ == 0, "midstate only valid at a 64-byte boundary");
  return state_;
}

void Sha256::restore(const Sha256State<std::uint32_t>& s,
                     std::uint64_t bytes_consumed) {
  GKS_REQUIRE(bytes_consumed % 64 == 0,
              "midstate restore requires a 64-byte boundary");
  state_ = s;
  buffered_ = 0;
  total_bytes_ = bytes_consumed;
}

Sha256Digest Sha256::finalize() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  update(std::span<const std::uint8_t>(len, 8));

  Sha256Digest d;
  for (std::size_t i = 0; i < 8; ++i)
    store_be(state_.h[i], d.bytes.data() + 4 * i);
  return d;
}

}  // namespace gks::hash
