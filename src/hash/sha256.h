#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "hash/digest.h"
#include "hash/sha256_kernel.h"

namespace gks::hash {

/// Streaming SHA256 (FIPS 180-4). Used by the Bitcoin-style nonce
/// search (double SHA256 over an 80-byte block header) and available
/// as a general reference hash.
class Sha256 {
 public:
  Sha256() = default;

  /// Absorbs `data`; may be called any number of times.
  void update(std::span<const std::uint8_t> data);

  /// Convenience overload for text input.
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Applies padding and returns the digest; single use per object.
  Sha256Digest finalize();

  /// One-shot digest of a full message.
  static Sha256Digest digest(std::string_view text) {
    Sha256 h;
    h.update(text);
    return h.finalize();
  }

  static Sha256Digest digest(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

  /// Returns the current chaining state. Valid only at a 64-byte
  /// boundary (buffered bytes == 0); used by the nonce search to cache
  /// the midstate of the first header block, the paper's
  /// "save the intermediate result and process only the last block"
  /// optimization.
  Sha256State<std::uint32_t> midstate() const;

  /// Restores a previously captured midstate as if `bytes_consumed`
  /// bytes had already been absorbed.
  void restore(const Sha256State<std::uint32_t>& s,
               std::uint64_t bytes_consumed);

 private:
  void compress_buffer();

  Sha256State<std::uint32_t> state_{
      {kSha256Init[0], kSha256Init[1], kSha256Init[2], kSha256Init[3],
       kSha256Init[4], kSha256Init[5], kSha256Init[6], kSha256Init[7]}};
  std::uint8_t buffer_[64] = {};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gks::hash
