#pragma once

// SHA256 compression core as a function template over the word type.
// Used by the reference SHA256 (streaming API) and by the Bitcoin-style
// nonce search of Section I (double SHA256 with midstate reuse — the
// paper's "intermediate result of the hashing algorithm may be saved
// and reused" optimization).

#include <array>
#include <cstdint>

#include "hash/kernel_words.h"

namespace gks::hash {

/// SHA256 chaining state (H0..H7 of FIPS 180-4).
template <class W>
struct Sha256State {
  std::array<W, 8> h;
};

/// FIPS 180-4 initial state.
inline constexpr std::array<std::uint32_t, 8> kSha256Init = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

/// FIPS 180-4 round constants.
inline constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

/// One full SHA256 compression (64 steps + feed-forward) of message
/// block `m` into state `s`.
template <class W>
constexpr void sha256_compress(Sha256State<W>& s, const std::array<W, 16>& m) {
  const auto big_sigma0 = [](const W& x) {
    return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
  };
  const auto big_sigma1 = [](const W& x) {
    return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
  };
  const auto small_sigma0 = [](const W& x) {
    return rotr(x, 7) ^ rotr(x, 18) ^ shr(x, 3);
  };
  const auto small_sigma1 = [](const W& x) {
    return rotr(x, 17) ^ rotr(x, 19) ^ shr(x, 10);
  };

  std::array<W, 16> ring = m;
  W a = s.h[0], b = s.h[1], c = s.h[2], d = s.h[3];
  W e = s.h[4], f = s.h[5], g = s.h[6], h = s.h[7];

  for (unsigned t = 0; t < 64; ++t) {
    W wt = ring[t & 15];
    if (t >= 16) {
      wt = wt + small_sigma0(ring[(t - 15) & 15]) + ring[(t - 7) & 15] +
           small_sigma1(ring[(t - 2) & 15]);
      ring[t & 15] = wt;
    }
    const W ch = (e & f) ^ (~e & g);
    const W maj = (a & b) ^ (a & c) ^ (b & c);
    const W t1 = h + big_sigma1(e) + ch + wt + W(kSha256K[t]);
    const W t2 = big_sigma0(a) + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  s.h[0] = s.h[0] + a;
  s.h[1] = s.h[1] + b;
  s.h[2] = s.h[2] + c;
  s.h[3] = s.h[3] + d;
  s.h[4] = s.h[4] + e;
  s.h[5] = s.h[5] + f;
  s.h[6] = s.h[6] + g;
  s.h[7] = s.h[7] + h;
}

}  // namespace gks::hash
