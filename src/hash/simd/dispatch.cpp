#include "hash/simd/dispatch.h"

#include <vector>

#include "hash/simd/scan_kernels.h"
#include "support/error.h"

namespace gks::hash::simd {
namespace {

// Which ISA each width's translation unit was compiled for. CMake sets
// the GKS_SIMD_W*_ macros in lockstep with the per-TU target flags, so
// a variant's runtime requirement always matches its codegen. Without
// flags (non-x86, GKS_SIMD=OFF, or an old compiler) everything is
// baseline code and unconditionally executable.
enum class IsaReq { kBaseline, kAvx2, kAvx512f };

bool host_supports(IsaReq req) {
  switch (req) {
    case IsaReq::kBaseline:
      return true;
    case IsaReq::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case IsaReq::kAvx512f:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

#if defined(GKS_SIMD_PORTABLE)
constexpr const char* kBaseIsaName = "portable";
#else
constexpr const char* kBaseIsaName = "baseline";
#endif

struct Variant {
  ScanKernels kernels;
  IsaReq requires_isa;
};

constexpr Variant kVariants[] = {
    {{4, kBaseIsaName, &md5_scan_w4, &sha1_scan_w4, &md5_multi_scan_w4,
      &sha1_multi_scan_w4},
     IsaReq::kBaseline},
#if defined(GKS_SIMD_W8_AVX2)
    {{8, "avx2", &md5_scan_w8, &sha1_scan_w8, &md5_multi_scan_w8,
      &sha1_multi_scan_w8},
     IsaReq::kAvx2},
#else
    {{8, kBaseIsaName, &md5_scan_w8, &sha1_scan_w8, &md5_multi_scan_w8,
      &sha1_multi_scan_w8},
     IsaReq::kBaseline},
#endif
#if defined(GKS_SIMD_W16_AVX512)
    {{16, "avx512f", &md5_scan_w16, &sha1_scan_w16, &md5_multi_scan_w16,
      &sha1_multi_scan_w16},
     IsaReq::kAvx512f},
#else
    {{16, kBaseIsaName, &md5_scan_w16, &sha1_scan_w16, &md5_multi_scan_w16,
      &sha1_multi_scan_w16},
     IsaReq::kBaseline},
#endif
};

const std::vector<ScanKernels>& compiled_table() {
  static const std::vector<ScanKernels> table = [] {
    std::vector<ScanKernels> v;
    for (const Variant& variant : kVariants) v.push_back(variant.kernels);
    return v;
  }();
  return table;
}

const std::vector<ScanKernels>& available_table() {
  static const std::vector<ScanKernels> table = [] {
    std::vector<ScanKernels> v;
    for (const Variant& variant : kVariants) {
      if (host_supports(variant.requires_isa)) v.push_back(variant.kernels);
    }
    GKS_ENSURE(!v.empty(), "the baseline lane variant must always run");
    return v;
  }();
  return table;
}

}  // namespace

std::span<const ScanKernels> compiled_kernels() { return compiled_table(); }

std::span<const ScanKernels> available_kernels() { return available_table(); }

const ScanKernels& best_kernels() { return available_table().back(); }

const ScanKernels* kernels_for_width(unsigned width) {
  for (const ScanKernels& k : available_table()) {
    if (k.width == width) return &k;
  }
  return nullptr;
}

}  // namespace gks::hash::simd
