#pragma once

// Runtime dispatch for the SIMD lane-scan engine. The library compiles
// the lane scanners at widths 4, 8 and 16 in separate translation units
// with per-TU target flags (SSE2-baseline / AVX2 / AVX-512 where the
// compiler supports them); this header exposes the table of compiled
// variants and selects, once per process via CPUID, the subset the host
// can actually execute. See docs/simd.md for the full ladder.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace gks::hash {
class Md5CrackContext;
class Md5MultiContext;
struct MultiHit;
class PrefixWord0Iterator;
class Sha1CrackContext;
class Sha1MultiContext;
}  // namespace gks::hash

namespace gks::hash::simd {

using Md5ScanFn = std::optional<std::uint64_t> (*)(const Md5CrackContext&,
                                                   PrefixWord0Iterator&,
                                                   std::uint64_t);
using Sha1ScanFn = std::optional<std::uint64_t> (*)(const Sha1CrackContext&,
                                                    PrefixWord0Iterator&,
                                                    std::uint64_t);
using Md5MultiScanFn = void (*)(const Md5MultiContext&, PrefixWord0Iterator&,
                                std::uint64_t, std::vector<MultiHit>&);
using Sha1MultiScanFn = void (*)(const Sha1MultiContext&, PrefixWord0Iterator&,
                                 std::uint64_t, std::vector<MultiHit>&);

/// One compiled scan-engine variant: both algorithms at one lane width.
/// Semantics of the single-target function pointers match
/// md5_scan_prefixes / sha1_scan_prefixes exactly (first-match offset,
/// iterator left past the scanned range or just past the hit); the
/// multi-target pointers match md5_multi_scan_prefixes /
/// sha1_multi_scan_prefixes (every hit appended, no early stop).
struct ScanKernels {
  unsigned width;   ///< candidates per kernel pass (vector lanes)
  const char* isa;  ///< codegen target the TU was built for
  Md5ScanFn md5_scan;
  Sha1ScanFn sha1_scan;
  Md5MultiScanFn md5_multi_scan;
  Sha1MultiScanFn sha1_multi_scan;
};

/// Every variant compiled into this binary, width-ascending — including
/// ones the running host may not be able to execute.
std::span<const ScanKernels> compiled_kernels();

/// The variants the host supports (CPUID-filtered once, then cached),
/// width-ascending. Never empty: the width-4 variant uses baseline
/// codegen and is always executable.
std::span<const ScanKernels> available_kernels();

/// The widest available variant — the default engine when no
/// calibration has run.
const ScanKernels& best_kernels();

/// The available variant of exactly `width`, or nullptr if that width
/// was not compiled or the host cannot run it.
const ScanKernels* kernels_for_width(unsigned width);

}  // namespace gks::hash::simd
