#pragma once

// LaneVec<N>: N independent 32-bit words in one hardware vector — the
// explicit-SIMD sibling of Lane<std::uint32_t, N> (lane.h). Where Lane
// leaves vectorization to the optimizer, LaneVec is backed by GCC/Clang
// vector extensions (`__attribute__((vector_size)))`, so every + / ^ /
// rotl in the templated hash cores lowers to one vector instruction per
// N lanes when the translation unit is compiled for a wide enough ISA
// (see src/hash/CMakeLists.txt for the per-width target flags and
// simd/dispatch.h for the runtime selection).
//
// When the build opts out (-DGKS_SIMD=OFF) or the compiler has no
// vector extensions, LaneVec falls back to the portable array-based
// Lane — identical semantics, scalar codegen.

#include <cstddef>
#include <cstdint>

#include "hash/lane.h"

#if defined(GKS_SIMD_PORTABLE) || !(defined(__GNUC__) || defined(__clang__))
#define GKS_SIMD_HAVE_VECTOR_EXT 0
#else
#define GKS_SIMD_HAVE_VECTOR_EXT 1
#endif

namespace gks::hash::simd {

#if GKS_SIMD_HAVE_VECTOR_EXT

template <std::size_t N>
struct LaneVec {
  typedef std::uint32_t Vec
      __attribute__((vector_size(N * sizeof(std::uint32_t))));

  Vec v;

  LaneVec() : v{} {}

  /// Broadcast constructor (constants are shared across lanes).
  explicit LaneVec(std::uint32_t scalar) : v(Vec{} + scalar) {}

  friend LaneVec operator+(LaneVec a, const LaneVec& b) {
    a.v += b.v;
    return a;
  }
  friend LaneVec operator-(LaneVec a, const LaneVec& b) {
    a.v -= b.v;
    return a;
  }
  friend LaneVec operator&(LaneVec a, const LaneVec& b) {
    a.v &= b.v;
    return a;
  }
  friend LaneVec operator|(LaneVec a, const LaneVec& b) {
    a.v |= b.v;
    return a;
  }
  friend LaneVec operator^(LaneVec a, const LaneVec& b) {
    a.v ^= b.v;
    return a;
  }
  friend LaneVec operator~(LaneVec a) {
    a.v = ~a.v;
    return a;
  }
};

/// Elementwise rotate-left (ADL customization point used by kernels).
template <std::size_t N>
inline LaneVec<N> rotl(LaneVec<N> a, unsigned n) {
  a.v = (a.v << n) | (a.v >> (32u - n));
  return a;
}

/// Elementwise rotate-right.
template <std::size_t N>
inline LaneVec<N> rotr(LaneVec<N> a, unsigned n) {
  a.v = (a.v >> n) | (a.v << (32u - n));
  return a;
}

/// Elementwise logical shift-right.
template <std::size_t N>
inline LaneVec<N> shr(LaneVec<N> a, unsigned n) {
  a.v >>= n;
  return a;
}

template <std::size_t N>
inline std::uint32_t lane_get(const LaneVec<N>& a, std::size_t i) {
  return a.v[i];
}

template <std::size_t N>
inline void lane_set(LaneVec<N>& a, std::size_t i, std::uint32_t x) {
  a.v[i] = x;
}

/// Spill all N lanes to out[0..N): one vector store. Reading lanes one
/// by one with lane_get costs a cross-lane extract each — cheap for the
/// low 128 bits, an extract-then-extract chain for the upper lanes of
/// wide vectors — so per-block spills on the hot path must use this.
template <std::size_t N>
inline void lane_store(const LaneVec<N>& a, std::uint32_t* out) {
  __builtin_memcpy(out, &a.v, N * sizeof(std::uint32_t));
}

/// Movemask-style test: does any lane equal `s`? One vector compare
/// (lanes become all-ones/all-zeros), then an OR-reduction the compiler
/// folds into ptest/vptest/kortest.
template <std::size_t N>
inline bool any_lane_eq(const LaneVec<N>& a, std::uint32_t s) {
  const auto m = a.v == (typename LaneVec<N>::Vec{} + s);
  std::int32_t any = 0;
  for (std::size_t i = 0; i < N; ++i) any |= m[i];
  return any != 0;
}

#else  // portable fallback: the array-based Lane with the same surface

template <std::size_t N>
using LaneVec = Lane<std::uint32_t, N>;

template <std::size_t N>
inline std::uint32_t lane_get(const LaneVec<N>& a, std::size_t i) {
  return a[i];
}

template <std::size_t N>
inline void lane_set(LaneVec<N>& a, std::size_t i, std::uint32_t x) {
  a[i] = x;
}

template <std::size_t N>
inline void lane_store(const LaneVec<N>& a, std::uint32_t* out) {
  for (std::size_t i = 0; i < N; ++i) out[i] = a[i];
}

template <std::size_t N>
inline bool any_lane_eq(const LaneVec<N>& a, std::uint32_t s) {
  for (std::size_t i = 0; i < N; ++i) {
    if (a[i] == s) return true;
  }
  return false;
}

#endif  // GKS_SIMD_HAVE_VECTOR_EXT

}  // namespace gks::hash::simd
