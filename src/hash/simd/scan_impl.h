#pragma once

// Width-generic lane scanners over LaneVec<N>. This header is included
// by exactly one translation unit per width (scan_w4/w8/w16.cpp), each
// compiled with its own target flags, so every instantiation gets the
// codegen of its ISA rung. Do not include it anywhere else — the
// dispatch table (simd/dispatch.h) is the public surface.
//
// Semantics are bit-identical to the scalar engines: scan `count`
// prefix-major candidates from the iterator's position, return the
// offset of the first match, leave the iterator past the scanned range
// (just past the hit on a match). The paper's early exit survives
// vectorization as a movemask-style any-lane test: MD5 compares only
// the step-45 value against the reverted target's `a` word and skips
// steps 46..48 for the whole block when no lane can match (Section V-B
// "save three more steps"); SHA1 compares the step-75 value against the
// unfed target's `e` and skips the last four steps plus their message
// expansion. Rare any-lane passes (true hit, or a ~N·2^-32 partial-word
// collision) are confirmed lane by lane with the scalar kernel, which
// also preserves exact first-match ordering.

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "hash/md5_crack.h"
#include "hash/md5_kernel.h"
#include "hash/multi_crack.h"
#include "hash/sha1_crack.h"
#include "hash/sha1_kernel.h"
#include "hash/simd/lane_vec.h"
#include "hash/target_index.h"

namespace gks::hash::simd {

template <std::size_t N>
std::optional<std::uint64_t> md5_scan_prefixes_vec(const Md5CrackContext& ctx,
                                                   PrefixWord0Iterator& it,
                                                   std::uint64_t count) {
  using W = LaneVec<N>;

  // Broadcast the fixed message words once; only word 0 varies.
  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const Md5State<std::uint32_t>& rev = ctx.reverted_target();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    // Keep the block's start so a hit can reposition the iterator to
    // the candidate after the match, exactly like the scalar scanner.
    const PrefixWord0Iterator block_start = it;
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    Md5State<W> s{W(kMd5Init[0]), W(kMd5Init[1]), W(kMd5Init[2]),
                  W(kMd5Init[3])};
    md5_forward_steps(s, m, 45);

    // The value produced at step 45 settles into register a of the
    // after-step-48 state, so comparing it against the reverted
    // target's a rejects the whole block without steps 46..48.
    const W f45 = md5_round_fn(45, s.b, s.c, s.d);
    const W t45 =
        s.b + rotl(s.a + f45 + m[md5_msg_index(45)] + W(kMd5K[45]), kMd5S[45]);
    if (any_lane_eq(t45, rev.a)) {
      for (std::size_t l = 0; l < N; ++l) {
        if (ctx.test(word0s[l])) {
          it = block_start;
          for (std::size_t skip = 0; skip <= l; ++skip) it.advance();
          return scanned + l;
        }
      }
    }
    scanned += N;
  }

  // Scalar tail: fewer than N candidates left.
  if (scanned < count) {
    const auto hit = md5_scan_prefixes(ctx, it, count - scanned);
    if (hit) return scanned + *hit;
  }
  return std::nullopt;
}

template <std::size_t N>
std::optional<std::uint64_t> sha1_scan_prefixes_vec(
    const Sha1CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count) {
  using W = LaneVec<N>;

  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const Sha1State<std::uint32_t>& unfed = ctx.unfed_target();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    const PrefixWord0Iterator block_start = it;
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    Sha1State<W> s{W(kSha1Init[0]), W(kSha1Init[1]), W(kSha1Init[2]),
                   W(kSha1Init[3]), W(kSha1Init[4])};
    // The value produced at step 75 settles (rotated) into the final
    // state's e; comparing it rejects the block without steps 76..79
    // and their expansion work.
    sha1_forward_steps(s, m, 76);
    if (any_lane_eq(rotl(s.a, 30), unfed.e)) {
      for (std::size_t l = 0; l < N; ++l) {
        if (ctx.test(word0s[l])) {
          it = block_start;
          for (std::size_t skip = 0; skip <= l; ++skip) it.advance();
          return scanned + l;
        }
      }
    }
    scanned += N;
  }

  if (scanned < count) {
    const auto hit = sha1_scan_prefixes(ctx, it, count - scanned);
    if (hit) return scanned + *hit;
  }
  return std::nullopt;
}

/// Lanes whose early-exit word hits the target index's bit filter,
/// as a bitmask. The words leave the vector registers through one
/// lane_store spill (per-lane extracts would dominate the block); the
/// filter probes themselves are one scalar load per lane (a bit-array
/// gather has no portable vector-extension form), accumulated
/// branchlessly so the hot loop keeps its single
/// almost-never-taken branch.
template <std::size_t N>
inline std::uint32_t filter_hit_lanes(const LaneVec<N>& words,
                                      const TargetIndex& index) {
  std::array<std::uint32_t, N> w;
  lane_store(words, w.data());
  std::uint32_t mask = 0;
  for (std::size_t l = 0; l < N; ++l) {
    mask |= static_cast<std::uint32_t>(index.may_match(w[l])) << l;
  }
  return mask;
}

// Multi-target lane scanners: same block structure as the single-target
// kernels above, but the early-exit word of every lane is tested
// against the shared TargetIndex instead of one reverted word, so the
// per-candidate cost stays O(1) in the target count. No early return —
// a batch sweep reports every hit in the range — and filter hits are
// resolved through the context's confirm_hits from the state already
// sitting in the vector registers: a false positive (~1/32 of
// candidates) costs one slot lookup, never a scalar hash recompute.
// Hit order (offset ascending, slots ascending per candidate) is
// bit-identical to the scalar md5/sha1_multi_scan_prefixes.

template <std::size_t N>
void md5_multi_scan_vec(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits) {
  using W = LaneVec<N>;

  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const TargetIndex& index = ctx.index();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    Md5State<W> s{W(kMd5Init[0]), W(kMd5Init[1]), W(kMd5Init[2]),
                  W(kMd5Init[3])};
    md5_forward_steps(s, m, 45);
    const W f45 = md5_round_fn(45, s.b, s.c, s.d);
    const W t45 =
        s.b + rotl(s.a + f45 + m[md5_msg_index(45)] + W(kMd5K[45]), kMd5S[45]);

    std::uint32_t lanes = filter_hit_lanes(t45, index);
    while (lanes != 0) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(lanes));
      lanes &= lanes - 1;
      const Md5State<std::uint32_t> s_l{lane_get(s.a, l), lane_get(s.b, l),
                                        lane_get(s.c, l), lane_get(s.d, l)};
      ctx.confirm_hits(word0s[l], s_l, lane_get(t45, l), scanned + l, hits);
    }
    scanned += N;
  }

  // Scalar tail: fewer than N candidates left.
  if (scanned < count) {
    const std::size_t before = hits.size();
    md5_multi_scan_prefixes(ctx, it, count - scanned, hits);
    for (std::size_t i = before; i < hits.size(); ++i) {
      hits[i].offset += scanned;
    }
  }
}

template <std::size_t N>
void sha1_multi_scan_vec(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                         std::uint64_t count, std::vector<MultiHit>& hits) {
  using W = LaneVec<N>;

  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const TargetIndex& index = ctx.index();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    // Open-coded 76 steps (rather than sha1_forward_steps, which keeps
    // its ring private): confirm_hits needs the schedule ring as of
    // step 76, and extracting it from vector registers on the rare
    // filter hit is far cheaper than recomputing 76 scalar steps.
    std::array<W, 16> ring = m;
    W a = W(kSha1Init[0]), b = W(kSha1Init[1]), c = W(kSha1Init[2]),
      d = W(kSha1Init[3]), e = W(kSha1Init[4]);
    const auto advance = [&](unsigned t, const W& wt) {
      const W f = sha1_round_fn(t, b, c, d);
      const W temp = rotl(a, 5) + f + e + wt + W(kSha1K[t / 20]);
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    };
    for (unsigned t = 0; t < 16; ++t) advance(t, ring[t]);
    for (unsigned t = 16; t < 76; ++t) advance(t, sha1_expand(ring, t));

    std::uint32_t lanes = filter_hit_lanes(rotl(a, 30), index);
    while (lanes != 0) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(lanes));
      lanes &= lanes - 1;
      std::array<std::uint32_t, 16> ring_l;
      for (std::size_t k = 0; k < 16; ++k) ring_l[k] = lane_get(ring[k], l);
      ctx.confirm_hits(ring_l, lane_get(a, l), lane_get(b, l),
                       lane_get(c, l), lane_get(d, l), lane_get(e, l),
                       scanned + l, hits);
    }
    scanned += N;
  }

  if (scanned < count) {
    const std::size_t before = hits.size();
    sha1_multi_scan_prefixes(ctx, it, count - scanned, hits);
    for (std::size_t i = before; i < hits.size(); ++i) {
      hits[i].offset += scanned;
    }
  }
}

}  // namespace gks::hash::simd
