#pragma once

// Width-generic lane scanners over LaneVec<N>. This header is included
// by exactly one translation unit per width (scan_w4/w8/w16.cpp), each
// compiled with its own target flags, so every instantiation gets the
// codegen of its ISA rung. Do not include it anywhere else — the
// dispatch table (simd/dispatch.h) is the public surface.
//
// Semantics are bit-identical to the scalar engines: scan `count`
// prefix-major candidates from the iterator's position, return the
// offset of the first match, leave the iterator past the scanned range
// (just past the hit on a match). The paper's early exit survives
// vectorization as a movemask-style any-lane test: MD5 compares only
// the step-45 value against the reverted target's `a` word and skips
// steps 46..48 for the whole block when no lane can match (Section V-B
// "save three more steps"); SHA1 compares the step-75 value against the
// unfed target's `e` and skips the last four steps plus their message
// expansion. Rare any-lane passes (true hit, or a ~N·2^-32 partial-word
// collision) are confirmed lane by lane with the scalar kernel, which
// also preserves exact first-match ordering.

#include <array>
#include <cstdint>
#include <optional>

#include "hash/md5_crack.h"
#include "hash/md5_kernel.h"
#include "hash/sha1_crack.h"
#include "hash/sha1_kernel.h"
#include "hash/simd/lane_vec.h"

namespace gks::hash::simd {

template <std::size_t N>
std::optional<std::uint64_t> md5_scan_prefixes_vec(const Md5CrackContext& ctx,
                                                   PrefixWord0Iterator& it,
                                                   std::uint64_t count) {
  using W = LaneVec<N>;

  // Broadcast the fixed message words once; only word 0 varies.
  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const Md5State<std::uint32_t>& rev = ctx.reverted_target();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    // Keep the block's start so a hit can reposition the iterator to
    // the candidate after the match, exactly like the scalar scanner.
    const PrefixWord0Iterator block_start = it;
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    Md5State<W> s{W(kMd5Init[0]), W(kMd5Init[1]), W(kMd5Init[2]),
                  W(kMd5Init[3])};
    md5_forward_steps(s, m, 45);

    // The value produced at step 45 settles into register a of the
    // after-step-48 state, so comparing it against the reverted
    // target's a rejects the whole block without steps 46..48.
    const W f45 = md5_round_fn(45, s.b, s.c, s.d);
    const W t45 =
        s.b + rotl(s.a + f45 + m[md5_msg_index(45)] + W(kMd5K[45]), kMd5S[45]);
    if (any_lane_eq(t45, rev.a)) {
      for (std::size_t l = 0; l < N; ++l) {
        if (ctx.test(word0s[l])) {
          it = block_start;
          for (std::size_t skip = 0; skip <= l; ++skip) it.advance();
          return scanned + l;
        }
      }
    }
    scanned += N;
  }

  // Scalar tail: fewer than N candidates left.
  if (scanned < count) {
    const auto hit = md5_scan_prefixes(ctx, it, count - scanned);
    if (hit) return scanned + *hit;
  }
  return std::nullopt;
}

template <std::size_t N>
std::optional<std::uint64_t> sha1_scan_prefixes_vec(
    const Sha1CrackContext& ctx, PrefixWord0Iterator& it,
    std::uint64_t count) {
  using W = LaneVec<N>;

  std::array<W, 16> m;
  for (std::size_t w = 1; w < 16; ++w) m[w] = W(ctx.message_words()[w]);
  const Sha1State<std::uint32_t>& unfed = ctx.unfed_target();

  std::uint64_t scanned = 0;
  std::array<std::uint32_t, N> word0s;
  while (count - scanned >= N) {
    const PrefixWord0Iterator block_start = it;
    for (std::size_t l = 0; l < N; ++l) {
      word0s[l] = it.word0();
      it.advance();
    }
    for (std::size_t l = 0; l < N; ++l) lane_set(m[0], l, word0s[l]);

    Sha1State<W> s{W(kSha1Init[0]), W(kSha1Init[1]), W(kSha1Init[2]),
                   W(kSha1Init[3]), W(kSha1Init[4])};
    // The value produced at step 75 settles (rotated) into the final
    // state's e; comparing it rejects the block without steps 76..79
    // and their expansion work.
    sha1_forward_steps(s, m, 76);
    if (any_lane_eq(rotl(s.a, 30), unfed.e)) {
      for (std::size_t l = 0; l < N; ++l) {
        if (ctx.test(word0s[l])) {
          it = block_start;
          for (std::size_t skip = 0; skip <= l; ++skip) it.advance();
          return scanned + l;
        }
      }
    }
    scanned += N;
  }

  if (scanned < count) {
    const auto hit = sha1_scan_prefixes(ctx, it, count - scanned);
    if (hit) return scanned + *hit;
  }
  return std::nullopt;
}

}  // namespace gks::hash::simd
