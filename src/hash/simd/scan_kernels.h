#pragma once

// Internal: entry points of the per-width scanner translation units
// (scan_w4/w8/w16.cpp). The dispatch table (dispatch.cpp) is the only
// consumer; user code goes through simd/dispatch.h.

#include <cstdint>
#include <optional>
#include <vector>

namespace gks::hash {
class Md5CrackContext;
class Md5MultiContext;
struct MultiHit;
class PrefixWord0Iterator;
class Sha1CrackContext;
class Sha1MultiContext;
}  // namespace gks::hash

namespace gks::hash::simd {

std::optional<std::uint64_t> md5_scan_w4(const Md5CrackContext& ctx,
                                         PrefixWord0Iterator& it,
                                         std::uint64_t count);
std::optional<std::uint64_t> sha1_scan_w4(const Sha1CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count);

std::optional<std::uint64_t> md5_scan_w8(const Md5CrackContext& ctx,
                                         PrefixWord0Iterator& it,
                                         std::uint64_t count);
std::optional<std::uint64_t> sha1_scan_w8(const Sha1CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count);

std::optional<std::uint64_t> md5_scan_w16(const Md5CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count);
std::optional<std::uint64_t> sha1_scan_w16(const Sha1CrackContext& ctx,
                                           PrefixWord0Iterator& it,
                                           std::uint64_t count);

// Multi-target counterparts (TargetIndex filter per lane, all hits in
// the range appended — see scan_impl.h).

void md5_multi_scan_w4(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                       std::uint64_t count, std::vector<MultiHit>& hits);
void sha1_multi_scan_w4(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits);

void md5_multi_scan_w8(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                       std::uint64_t count, std::vector<MultiHit>& hits);
void sha1_multi_scan_w8(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits);

void md5_multi_scan_w16(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits);
void sha1_multi_scan_w16(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                         std::uint64_t count, std::vector<MultiHit>& hits);

}  // namespace gks::hash::simd
