// 16-lane scanners: one 512-bit vector of 32-bit words. Compiled with
// -mavx512f when the compiler supports it (see src/hash/CMakeLists.txt);
// runtime dispatch guarantees these run only on AVX-512 hosts.

#include "hash/simd/scan_impl.h"
#include "hash/simd/scan_kernels.h"

namespace gks::hash::simd {

std::optional<std::uint64_t> md5_scan_w16(const Md5CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count) {
  return md5_scan_prefixes_vec<16>(ctx, it, count);
}

std::optional<std::uint64_t> sha1_scan_w16(const Sha1CrackContext& ctx,
                                           PrefixWord0Iterator& it,
                                           std::uint64_t count) {
  return sha1_scan_prefixes_vec<16>(ctx, it, count);
}

void md5_multi_scan_w16(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits) {
  md5_multi_scan_vec<16>(ctx, it, count, hits);
}

void sha1_multi_scan_w16(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                         std::uint64_t count, std::vector<MultiHit>& hits) {
  sha1_multi_scan_vec<16>(ctx, it, count, hits);
}

}  // namespace gks::hash::simd
