// 4-lane scanners: one 128-bit vector of 32-bit words. SSE2 codegen on
// x86-64 baseline — always executable, the floor of the dispatch ladder.

#include "hash/simd/scan_impl.h"
#include "hash/simd/scan_kernels.h"

namespace gks::hash::simd {

std::optional<std::uint64_t> md5_scan_w4(const Md5CrackContext& ctx,
                                         PrefixWord0Iterator& it,
                                         std::uint64_t count) {
  return md5_scan_prefixes_vec<4>(ctx, it, count);
}

std::optional<std::uint64_t> sha1_scan_w4(const Sha1CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count) {
  return sha1_scan_prefixes_vec<4>(ctx, it, count);
}

}  // namespace gks::hash::simd
