// 4-lane scanners: one 128-bit vector of 32-bit words. SSE2 codegen on
// x86-64 baseline — always executable, the floor of the dispatch ladder.

#include "hash/simd/scan_impl.h"
#include "hash/simd/scan_kernels.h"

namespace gks::hash::simd {

std::optional<std::uint64_t> md5_scan_w4(const Md5CrackContext& ctx,
                                         PrefixWord0Iterator& it,
                                         std::uint64_t count) {
  return md5_scan_prefixes_vec<4>(ctx, it, count);
}

std::optional<std::uint64_t> sha1_scan_w4(const Sha1CrackContext& ctx,
                                          PrefixWord0Iterator& it,
                                          std::uint64_t count) {
  return sha1_scan_prefixes_vec<4>(ctx, it, count);
}

void md5_multi_scan_w4(const Md5MultiContext& ctx, PrefixWord0Iterator& it,
                       std::uint64_t count, std::vector<MultiHit>& hits) {
  md5_multi_scan_vec<4>(ctx, it, count, hits);
}

void sha1_multi_scan_w4(const Sha1MultiContext& ctx, PrefixWord0Iterator& it,
                        std::uint64_t count, std::vector<MultiHit>& hits) {
  sha1_multi_scan_vec<4>(ctx, it, count, hits);
}

}  // namespace gks::hash::simd
