#include "hash/target_index.h"

#include <algorithm>
#include <array>

namespace gks::hash {
namespace {

/// Smallest power of two >= x (x <= 2^31).
std::uint32_t next_pow2(std::uint32_t x) {
  std::uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Stable LSD radix sort of packed (word << 32 | slot) entries by the
/// word: four 8-bit counting-sort passes over the high half. Stability
/// keeps equal words' slots ascending, which matches()'s contract
/// relies on. ~4n moves, versus std::sort's n·log n branchy compares —
/// the difference is what a 64k-target sweep pays per tail block, once
/// per context build.
void radix_sort_by_word(std::vector<std::uint64_t>& v) {
  std::vector<std::uint64_t> tmp(v.size());
  for (unsigned pass = 0; pass < 4; ++pass) {
    const unsigned shift = 32 + pass * 8;
    std::array<std::uint32_t, 257> count{};
    for (const std::uint64_t x : v) ++count[((x >> shift) & 0xff) + 1];
    for (std::size_t i = 0; i < 256; ++i) count[i + 1] += count[i];
    for (const std::uint64_t x : v) tmp[count[(x >> shift) & 0xff]++] = x;
    v.swap(tmp);
  }
}

}  // namespace

TargetIndex::TargetIndex(std::span<const std::uint32_t> words) {
  const std::size_t n = words.size();

  // >= 64 filter bits per target keeps the false-positive rate <= 1/64,
  // cheap enough that even wide lane scanners (one probe per lane) stay
  // within a few percent of their single-target throughput; the 64-bit
  // floor keeps the tiny-batch filter one whole word. Capped at 2^27
  // bits (16 MiB) — beyond ~2M targets the sorted array dominates
  // memory anyway and the filter saturates gracefully.
  const std::uint32_t want = static_cast<std::uint32_t>(
      std::min<std::size_t>(n, (std::size_t{1} << 21)) * 64);
  const std::uint32_t buckets = std::min(next_pow2(std::max(64u, want)),
                                         1u << 27);
  bucket_mask_ = buckets - 1;
  bits_.assign(buckets / 64, 0);

  // Sort (word, slot) pairs packed into one uint64 so equal words keep
  // their slots ascending without a custom comparator. Large batches
  // take the radix path — comparison sorting is the dominant cost of a
  // big context build otherwise; small ones stay with std::sort, which
  // wins below the histogram overhead.
  std::vector<std::uint64_t> packed;
  packed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packed.push_back(static_cast<std::uint64_t>(words[i]) << 32 | i);
  }
  if (n >= 4096) {
    radix_sort_by_word(packed);
  } else {
    std::sort(packed.begin(), packed.end());
  }

  words_.reserve(n);
  slots_.reserve(n);
  for (const std::uint64_t p : packed) {
    const auto word = static_cast<std::uint32_t>(p >> 32);
    words_.push_back(word);
    slots_.push_back(static_cast<std::uint32_t>(p));
    const std::uint32_t b = word & bucket_mask_;
    bits_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }
}

std::span<const std::uint32_t> TargetIndex::matches(std::uint32_t word) const {
  // One binary search, then a linear walk over the (rare, short) run of
  // equal words — half the probing of equal_range, and this is the hot
  // cost of every filter false positive.
  const auto lo = std::lower_bound(words_.begin(), words_.end(), word);
  auto hi = lo;
  while (hi != words_.end() && *hi == word) ++hi;
  const auto first = static_cast<std::size_t>(lo - words_.begin());
  return {slots_.data() + first, static_cast<std::size_t>(hi - lo)};
}

}  // namespace gks::hash
