#include "hash/target_index.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "obs/metrics.h"

namespace gks::hash {
namespace {

/// Smallest power of two >= v.
std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  return std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

double clamp_fpr(double fpr) { return std::clamp(fpr, 1.0 / 65536.0, 0.5); }

/// Bits per key for the blocked Bloom geometry (k=2 bits in one 64-bit
/// block), solved from p = (1 - e^(-2/b))^2  =>  b = -2/ln(1 - sqrt(p)).
/// fpr 1/64 gives ~15.5 bits/key — a 1M-target gate in under 2 MiB,
/// where the direct array would want 8 MiB.
double bloom_bits_per_key(double fpr) {
  return -2.0 / std::log(1.0 - std::sqrt(clamp_fpr(fpr)));
}

/// Stable LSD radix sort of packed (word << 32 | slot) entries by the
/// word: four 8-bit counting-sort passes over the high half. Stability
/// keeps equal words' slots ascending, which matches()'s contract
/// relies on. ~4n moves, versus std::sort's n·log n branchy compares —
/// the difference is what a large-target sweep pays per tail block,
/// once per context build.
void radix_sort_by_word(std::vector<std::uint64_t>& v) {
  std::vector<std::uint64_t> tmp(v.size());
  for (unsigned pass = 0; pass < 4; ++pass) {
    const unsigned shift = 32 + pass * 8;
    std::array<std::size_t, 257> count{};
    for (const std::uint64_t x : v) ++count[((x >> shift) & 0xff) + 1];
    for (std::size_t i = 0; i < 256; ++i) count[i + 1] += count[i];
    for (const std::uint64_t x : v) tmp[count[(x >> shift) & 0xff]++] = x;
    v.swap(tmp);
  }
}

}  // namespace

TargetIndex::TargetIndex() {
  rebuild_gate();
  rebuild_offsets();
}

TargetIndex::TargetIndex(std::span<const std::uint32_t> words)
    : TargetIndex(words, Config()) {}

TargetIndex::TargetIndex(std::span<const std::uint32_t> words,
                         const Config& config)
    : config_(config) {
  const std::size_t n = words.size();
  // Sort (word, slot) pairs packed into one uint64 so equal words keep
  // their slots ascending without a custom comparator. Large batches
  // take the radix path — comparison sorting is the dominant cost of a
  // big context build otherwise; small ones stay with std::sort, which
  // wins below the histogram overhead.
  std::vector<std::uint64_t> packed;
  packed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packed.push_back(static_cast<std::uint64_t>(words[i]) << 32 | i);
  }
  if (n >= 4096) {
    radix_sort_by_word(packed);
  } else {
    std::sort(packed.begin(), packed.end());
  }
  words_.reserve(n);
  slots_.reserve(n);
  for (const std::uint64_t p : packed) {
    words_.push_back(static_cast<std::uint32_t>(p >> 32));
    slots_.push_back(static_cast<std::uint32_t>(p));
  }
  rebuild_gate();
  rebuild_offsets();
}

void TargetIndex::set_gate_bit(std::uint32_t word) {
  if (direct_) {
    const std::uint32_t b = word & bucket_mask_;
    bits_[b >> 6] |= std::uint64_t{1} << (b & 63);
  } else {
    const std::uint64_t h = mix_word(word);
    const auto block = static_cast<std::uint32_t>(
        (static_cast<std::uint32_t>(h) * std::uint64_t{nblocks_}) >> 32);
    bits_[block] |= (std::uint64_t{1} << ((h >> 32) & 63)) |
                    (std::uint64_t{1} << ((h >> 38) & 63));
  }
}

void TargetIndex::rebuild_gate() {
  const std::size_t n = words_.size();
  gate_capacity_ = 2 * std::max<std::size_t>(n, 1);
  if (!config_.gate) {
    // Disabled gate: one all-ones direct block, so may_match() stays
    // the same load-and-test and simply always passes — no extra mode
    // branch in the hot loop.
    direct_ = true;
    bucket_mask_ = 63;
    bits_.assign(1, ~std::uint64_t{0});
    return;
  }
  const double fpr = clamp_fpr(config_.fpr);
  // Direct mode spends 1/fpr bits per target: a uniform foreign word
  // then lands on a set bit with probability ~fpr. The 64-bit floor
  // keeps the tiny-batch filter one whole word.
  const std::uint64_t direct_bits = next_pow2(std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(std::ceil(static_cast<double>(n) / fpr))));
  if (direct_bits <= config_.max_direct_bits) {
    direct_ = true;
    bucket_mask_ = static_cast<std::uint32_t>(direct_bits - 1);
    bits_.assign(static_cast<std::size_t>(direct_bits >> 6), 0);
  } else {
    direct_ = false;
    auto blocks = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(n) * bloom_bits_per_key(fpr) / 64.0));
    blocks = std::clamp<std::uint64_t>(blocks, 1, config_.max_filter_bytes / 8);
    nblocks_ = static_cast<std::uint32_t>(blocks);
    bits_.assign(nblocks_, 0);
  }
  for (const std::uint32_t w : words_) set_gate_bit(w);
}

void TargetIndex::rebuild_offsets() {
  // ~1 entry per bucket in expectation, capped at 4M buckets (16 MiB of
  // offsets); past the cap a bucket holds n/2^22 entries and the
  // in-bucket lower_bound stays a handful of in-cache probes.
  const auto buckets = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      next_pow2(words_.size()), 2, std::uint64_t{1} << 22));
  offset_shift_ = 32u - static_cast<unsigned>(std::countr_zero(buckets));
  offsets_.assign(std::size_t{buckets} + 1, 0);
  for (const std::uint32_t w : words_) ++offsets_[(w >> offset_shift_) + 1];
  for (std::size_t b = 1; b < offsets_.size(); ++b) {
    offsets_[b] += offsets_[b - 1];
  }
}

std::span<const std::uint32_t> TargetIndex::matches(std::uint32_t word) const {
  // Bucket range, then a short lower_bound and a linear walk over the
  // (rare, short) run of equal words. This is the whole cost of a gate
  // false positive.
  const std::uint32_t lo = offsets_[word >> offset_shift_];
  const std::uint32_t hi = offsets_[(word >> offset_shift_) + 1];
  const auto first =
      std::lower_bound(words_.begin() + lo, words_.begin() + hi, word);
  auto last = first;
  while (last != words_.begin() + hi && *last == word) ++last;
  const auto begin = static_cast<std::size_t>(first - words_.begin());
  const auto count = static_cast<std::size_t>(last - first);
  if (config_.stats != nullptr) {
    config_.stats->gate_hits.fetch_add(1, std::memory_order_relaxed);
    if (count == 0) {
      config_.stats->false_positives.fetch_add(1, std::memory_order_relaxed);
    }
    // Global telemetry rides the same gate-frequency path (never per
    // candidate); calibration probes run with stats == nullptr and so
    // stay out of the process counters too.
    if (obs::enabled()) {
      static obs::Counter& hits =
          obs::Registry::global().counter("gks_kernel_gate_hits_total");
      static obs::Counter& fps = obs::Registry::global().counter(
          "gks_kernel_gate_false_positives_total");
      hits.add(1);
      if (count == 0) fps.add(1);
    }
  }
  return {slots_.data() + begin, count};
}

void TargetIndex::add(std::span<const std::uint32_t> words,
                      std::uint32_t first_slot) {
  if (words.empty()) return;
  const std::size_t old_n = words_.size();
  std::vector<std::uint64_t> fresh(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    fresh[i] = static_cast<std::uint64_t>(words[i]) << 32 |
               (first_slot + static_cast<std::uint32_t>(i));
  }
  std::sort(fresh.begin(), fresh.end());

  // One backward merge pass, in place: packed comparison orders by word
  // first and slot second, which preserves the ascending-slot contract
  // even when re-attached slots interleave with existing ones.
  words_.resize(old_n + fresh.size());
  slots_.resize(old_n + fresh.size());
  std::size_t a = old_n, b = fresh.size(), out = words_.size();
  while (b > 0) {
    const std::uint64_t old_packed =
        a > 0 ? static_cast<std::uint64_t>(words_[a - 1]) << 32 | slots_[a - 1]
              : 0;
    --out;
    if (a > 0 && old_packed > fresh[b - 1]) {
      --a;
      words_[out] = static_cast<std::uint32_t>(old_packed >> 32);
      slots_[out] = static_cast<std::uint32_t>(old_packed);
    } else {
      --b;
      words_[out] = static_cast<std::uint32_t>(fresh[b] >> 32);
      slots_[out] = static_cast<std::uint32_t>(fresh[b]);
    }
  }

  // A gate sized for the old batch drifts above its designed rate as
  // keys accumulate; rebuild once the set outgrows twice the size the
  // gate was last built for, otherwise just set the new bits.
  if (words_.size() > gate_capacity_) {
    rebuild_gate();
  } else if (config_.gate) {
    for (const std::uint32_t w : words) set_gate_bit(w);
  }
  rebuild_offsets();
}

std::size_t TargetIndex::remove(std::span<const std::uint32_t> slots) {
  if (slots.empty() || words_.empty()) return 0;
  std::vector<std::uint32_t> dead(slots.begin(), slots.end());
  std::sort(dead.begin(), dead.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (std::binary_search(dead.begin(), dead.end(), slots_[i])) continue;
    words_[out] = words_[i];
    slots_[out] = slots_[i];
    ++out;
  }
  const std::size_t removed = words_.size() - out;
  if (removed == 0) return 0;
  words_.resize(out);
  slots_.resize(out);
  // Bloom bits cannot be unset individually, so removal rebuilds the
  // gate from the survivors — same O(n) as the compaction pass above,
  // and it guarantees detached targets leave no ghost bits behind.
  rebuild_gate();
  rebuild_offsets();
  return removed;
}

const char* TargetIndex::filter_kind() const {
  if (!config_.gate) return "off";
  return direct_ ? "direct" : "bloom";
}

}  // namespace gks::hash
