#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gks::hash {

/// Gate-traffic counters for a TargetIndex, owned by the caller (the
/// sweep engine keeps one per sweeper and shares it across every
/// per-tail context). Updated with relaxed atomics on the rare
/// filter-hit path only — the per-candidate miss path never touches
/// them.
///
///   gate_hits:       filter passes handed to the slot lookup;
///   false_positives: filter passes that confirmed no target — either
///                    the slot lookup found no matching word, or every
///                    word-matching slot failed full confirmation.
///
/// false_positives / candidates_tested is the measured false-positive
/// rate; it bounds the confirm-from-state traffic the 32-bit early-exit
/// words leak as target counts approach 2^32 saturation.
struct TargetIndexStats {
  std::atomic<std::uint64_t> gate_hits{0};
  std::atomic<std::uint64_t> false_positives{0};
};

/// Shared lookup structure over the 32-bit early-exit words of a batch
/// of crack targets (t45 for MD5, the rotated step-75 value for SHA1).
///
/// The multi-target contexts used to pay one compare per outstanding
/// digest per candidate — linear in the batch size, which defeats the
/// point of auditing a whole credential store in one sweep. The index
/// makes the per-candidate test O(1) expected regardless of target
/// count, in two layers:
///
///   1. a *front gate* answering "could any target have this word?"
///      in one load. Below ~256k targets this is a direct-indexed bit
///      array (1/fpr bits per target, exact geometry of the original
///      filter); beyond that a direct array would fall out of cache,
///      so the gate switches to a blocked Bloom filter — the word is
///      mixed to 64 bits, a multiply-shift picks one 64-bit block, and
///      k=2 bits of that block must be set. One load either way, and
///      the Bloom geometry holds the configured false-positive rate in
///      ~16 bits/target instead of 64, keeping a million-target gate
///      cache-resident (docs/multi_target.md derives the sizing).
///   2. a (word, slot) array sorted by word behind a prefix-offset
///      bucket table: the word's high bits index a bucket whose
///      [offset, offset) range in the sorted array is then searched.
///      Two loads replace the former whole-array binary search — at
///      millions of targets that search was ~23 dependent cache misses
///      per gate hit. Every slot whose word matches is returned — not
///      just the first: distinct digests collide on the 32-bit word at
///      birthday rates (likely beyond ~77k targets), and a
///      first-match-only lookup would silently drop the colliding
///      target behind it.
///
/// Slots are the caller's target indices (0..n-1 in construction
/// order); duplicate words are fine and all their slots are returned,
/// ascending. add()/remove() mutate the target set in place — the
/// sweep engine uses them for live attach/detach without rebuilding
/// the per-tail contexts from scratch.
class TargetIndex {
 public:
  struct Config {
    /// Designed gate false-positive rate (clamped to [2^-16, 1/2]).
    /// Note the floor at huge batches: n targets occupy ~n/2^32 of the
    /// word space, so true word matches alone pass at that rate no
    /// matter how large the filter grows.
    double fpr = 1.0 / 64;
    /// Largest direct-indexed bit array (in bits) before the gate
    /// switches to the blocked Bloom filter. 2^24 bits = 2 MiB —
    /// L2-resident on the reference container.
    std::size_t max_direct_bits = std::size_t{1} << 24;
    /// Bloom filter byte cap; past it the rate degrades gracefully.
    std::size_t max_filter_bytes = std::size_t{1} << 25;
    /// false disables the gate entirely (every probe passes, the slot
    /// lookup does all filtering) — the ablation/differential-test
    /// switch.
    bool gate = true;
    /// Optional shared counters; may be null.
    TargetIndexStats* stats = nullptr;
  };

  /// Empty index: matches nothing. Exists so contexts can build their
  /// reverted words first and assign the index after.
  TargetIndex();

  /// words[i] is the early-exit word of target slot i.
  explicit TargetIndex(std::span<const std::uint32_t> words);
  TargetIndex(std::span<const std::uint32_t> words, const Config& config);

  std::size_t size() const { return slots_.size(); }

  /// One-load gate: false means *no* target has this word (definitive);
  /// true means "run matches()". Hot-path inline. The disabled-gate
  /// mode is encoded in the data (a single all-ones direct block), so
  /// the hot loop carries no extra branch for it.
  bool may_match(std::uint32_t word) const {
    if (direct_) {
      const std::uint32_t b = word & bucket_mask_;
      return (bits_[b >> 6] >> (b & 63)) & 1u;
    }
    const std::uint64_t h = mix_word(word);
    const std::uint64_t mask = (std::uint64_t{1} << ((h >> 32) & 63)) |
                               (std::uint64_t{1} << ((h >> 38) & 63));
    const auto block = static_cast<std::uint32_t>(
        (static_cast<std::uint32_t>(h) * std::uint64_t{nblocks_}) >> 32);
    return (bits_[block] & mask) == mask;
  }

  /// Every slot whose word equals `word`, ascending. Bucketed lookup
  /// over the sorted array — call only after may_match (it is correct
  /// regardless, just slower than the gate on misses). Counts gate
  /// traffic into the configured stats sink.
  std::span<const std::uint32_t> matches(std::uint32_t word) const;

  /// Appends targets: entry i becomes (words[i], first_slot + i). The
  /// sorted array is merged in place and the gate is extended (or
  /// rebuilt when the batch outgrows the gate's design capacity).
  void add(std::span<const std::uint32_t> words, std::uint32_t first_slot);

  /// Removes every entry whose slot is in `slots` (need not be sorted;
  /// unknown slots are ignored). Returns the number of entries
  /// removed. The gate is rebuilt from the surviving words — removal
  /// never leaves ghost bits behind.
  std::size_t remove(std::span<const std::uint32_t> slots);

  /// Called by the contexts when a gate pass found word-matching slots
  /// but none survived full confirmation — the second flavor of false
  /// positive (see TargetIndexStats).
  void note_false_positive() const {
    if (config_.stats != nullptr) {
      config_.stats->false_positives.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Gate geometry observability. bucket_mask() is the direct-mode
  /// bit-array mask (bucket count - 1); 0 in bloom mode.
  const char* filter_kind() const;  // "direct" | "bloom" | "off"
  std::size_t filter_bytes() const { return bits_.size() * 8; }
  std::uint32_t bucket_mask() const { return direct_ ? bucket_mask_ : 0; }
  const Config& config() const { return config_; }

 private:
  /// splitmix64 finalizer over the word: decorrelates the Bloom block
  /// and bit choices from the low bits the direct mode indexes by.
  static std::uint64_t mix_word(std::uint32_t word) {
    std::uint64_t z = static_cast<std::uint64_t>(word) +
                      0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  void rebuild_gate();
  void rebuild_offsets();
  void set_gate_bit(std::uint32_t word);

  Config config_;
  std::vector<std::uint64_t> bits_;  ///< direct bit array or Bloom blocks
  bool direct_ = true;               ///< which gate geometry bits_ holds
  std::uint32_t bucket_mask_ = 63;   ///< direct: bit count - 1 (pow2)
  std::uint32_t nblocks_ = 0;        ///< bloom: 64-bit block count
  std::size_t gate_capacity_ = 0;    ///< adds past this rebuild the gate

  std::vector<std::uint32_t> words_;  ///< sorted early-exit words
  std::vector<std::uint32_t> slots_;  ///< slots_[i] owns words_[i]
  /// Prefix-offset bucket table: entries with word >> offset_shift_ ==
  /// b live at [offsets_[b], offsets_[b+1]) in the sorted array.
  std::vector<std::uint32_t> offsets_;
  unsigned offset_shift_ = 31;
};

}  // namespace gks::hash
