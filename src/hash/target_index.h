#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gks::hash {

/// Shared lookup structure over the 32-bit early-exit words of a batch
/// of crack targets (t45 for MD5, the rotated step-75 value for SHA1).
///
/// The multi-target contexts used to pay one compare per outstanding
/// digest per candidate — linear in the batch size, which defeats the
/// point of auditing a whole credential store in one sweep. The index
/// makes the per-candidate test O(1) expected regardless of target
/// count, in two layers:
///
///   1. a power-of-two *bit filter* indexed by the low bits of the
///      word: one load answers "could any target have this word?".
///      Sized at >= 64 bits per target, so on a miss (the
///      overwhelmingly common case — candidate words are effectively
///      uniform) the test costs one load and the false-positive rate
///      stays <= 1/64;
///   2. a (word, slot) array sorted by word, binary-searched only on
///      filter hits, returning *every* slot whose word matches — not
///      just the first. Distinct digests collide on the 32-bit word at
///      birthday rates (likely beyond ~77k targets), and a
///      first-match-only lookup would silently drop the colliding
///      target behind it.
///
/// Slots are the caller's target indices (0..n-1 in construction
/// order); duplicate words are fine and all their slots are returned,
/// ascending.
class TargetIndex {
 public:
  /// words[i] is the early-exit word of target slot i.
  explicit TargetIndex(std::span<const std::uint32_t> words);

  std::size_t size() const { return slots_.size(); }

  /// One-load filter: false means *no* target has this word
  /// (definitive); true means "run matches()". Hot-path inline.
  bool may_match(std::uint32_t word) const {
    const std::uint32_t b = word & bucket_mask_;
    return (bits_[b >> 6] >> (b & 63)) & 1u;
  }

  /// Every slot whose word equals `word`, ascending. Binary search over
  /// the sorted array — call only after may_match (it is correct
  /// regardless, just slower than the filter on misses).
  std::span<const std::uint32_t> matches(std::uint32_t word) const;

  /// Filter geometry, exposed for tests and the lane kernels' docs.
  std::uint32_t bucket_mask() const { return bucket_mask_; }

 private:
  std::vector<std::uint64_t> bits_;   ///< the bit filter
  std::uint32_t bucket_mask_ = 0;     ///< bucket count - 1 (power of two)
  std::vector<std::uint32_t> words_;  ///< sorted early-exit words
  std::vector<std::uint32_t> slots_;  ///< slots_[i] owns words_[i]
};

}  // namespace gks::hash
