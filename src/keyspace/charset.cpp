#include "keyspace/charset.h"

namespace gks::keyspace {

Charset::Charset(std::string_view chars) {
  GKS_REQUIRE(!chars.empty(), "charset must not be empty");
  index_.fill(-1);
  chars_.reserve(chars.size());
  for (char c : chars) {
    const auto u = static_cast<unsigned char>(c);
    GKS_REQUIRE(index_[u] == -1, "duplicate character in charset");
    index_[u] = static_cast<int>(chars_.size());
    chars_.push_back(c);
  }
}

namespace {
std::string range(char lo, char hi) {
  std::string s;
  for (char c = lo; c <= hi; ++c) s.push_back(c);
  return s;
}
}  // namespace

Charset Charset::lower() { return Charset(range('a', 'z')); }
Charset Charset::upper() { return Charset(range('A', 'Z')); }
Charset Charset::digits() { return Charset(range('0', '9')); }
Charset Charset::alpha() { return Charset(range('a', 'z') + range('A', 'Z')); }
Charset Charset::alphanumeric() {
  return Charset(range('a', 'z') + range('A', 'Z') + range('0', '9'));
}
Charset Charset::printable() { return Charset(range(' ', '~')); }

std::size_t Charset::index_of(char c) const {
  const int i = index_[static_cast<unsigned char>(c)];
  GKS_REQUIRE(i >= 0, std::string("character '") + c + "' not in charset");
  return static_cast<std::size_t>(i);
}

bool Charset::contains_all(std::string_view s) const {
  for (char c : s) {
    if (index_[static_cast<unsigned char>(c)] < 0) return false;
  }
  return true;
}

}  // namespace gks::keyspace
