#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace gks::keyspace {

/// An ordered alphabet of distinct characters. The order defines the
/// digit values of the base-N enumeration (charset[0] is digit 0).
class Charset {
 public:
  /// Builds a charset from the characters of `chars`, in order.
  /// Throws InvalidArgument if empty or containing duplicates.
  explicit Charset(std::string_view chars);

  /// Lower-case letters a..z (N = 26).
  static Charset lower();
  /// Upper-case letters A..Z (N = 26).
  static Charset upper();
  /// Decimal digits 0..9 (N = 10).
  static Charset digits();
  /// Lower + upper case letters (N = 52) — the paper's "alphabetic
  /// characters, both lower and upper case" example of Section I.
  static Charset alpha();
  /// Lower + upper + digits (N = 62) — the paper's evaluation keyspace
  /// ("up to 8 alphanumeric characters, both lower and upper cases").
  static Charset alphanumeric();
  /// All printable ASCII (0x20..0x7e, N = 95).
  static Charset printable();

  /// Alphabet size N.
  std::size_t size() const { return chars_.size(); }

  /// Digit value → character.
  char at(std::size_t digit) const {
    GKS_REQUIRE(digit < chars_.size(), "digit outside charset");
    return chars_[digit];
  }

  /// Character → digit value; throws InvalidArgument if the character
  /// is not part of the alphabet.
  std::size_t index_of(char c) const;

  /// True if every character of `s` belongs to the alphabet.
  bool contains_all(std::string_view s) const;

  /// The alphabet characters in digit order.
  std::span<const char> chars() const { return chars_; }

  bool operator==(const Charset& other) const = default;

 private:
  std::vector<char> chars_;
  std::array<int, 256> index_;  ///< char → digit, -1 when absent
};

}  // namespace gks::keyspace
