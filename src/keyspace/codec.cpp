#include "keyspace/codec.h"

#include <algorithm>

namespace gks::keyspace {

KeyCodec::KeyCodec(Charset charset, DigitOrder order)
    : charset_(std::move(charset)), order_(order) {}

void KeyCodec::decode_into(u128 id, std::string& key) const {
  // Figure 1: repeatedly extract the least-significant digit. With
  // kSuffixFastest the digit extracted first is the last character
  // (str = c ⊕ str in the paper); with kPrefixFastest it is the first
  // (str = str ⊕ c, the mapping (4) variant).
  key.clear();
  const u128 n(static_cast<std::uint64_t>(charset_.size()));
  while (id > u128(0)) {
    id -= u128(1);
    const std::uint64_t digit = (id % n).to_u64();
    key.push_back(charset_.at(digit));
    id /= n;
  }
  if (order_ == DigitOrder::kSuffixFastest) {
    std::reverse(key.begin(), key.end());
  }
}

std::string KeyCodec::decode(u128 id) const {
  std::string key;
  decode_into(id, key);
  return key;
}

u128 KeyCodec::encode(std::string_view key) const {
  // Inverse of decode: fold digits from most significant to least.
  // With kSuffixFastest the most significant digit is the first
  // character; with kPrefixFastest it is the last.
  const u128 n(static_cast<std::uint64_t>(charset_.size()));
  u128 id(0);
  const auto fold = [&](char c) {
    id = u128::checked_mul(id, n) +
         u128(static_cast<std::uint64_t>(charset_.index_of(c)) + 1);
  };
  if (order_ == DigitOrder::kSuffixFastest) {
    for (char c : key) fold(c);
  } else {
    for (auto it = key.rbegin(); it != key.rend(); ++it) fold(*it);
  }
  return id;
}

void KeyCodec::next_inplace(std::string& key) const {
  // Figure 2 (and its mapping-(4) variant): increment the fastest
  // digit and propagate the carry; on full wrap-around every character
  // has become charset[0] and the string grows by one such character.
  const std::size_t len = key.size();
  const std::size_t last_digit = charset_.size() - 1;
  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t pos =
        order_ == DigitOrder::kSuffixFastest ? len - 1 - k : k;
    const std::size_t digit = charset_.index_of(key[pos]);
    if (digit != last_digit) {
      key[pos] = charset_.at(digit + 1);
      return;
    }
    key[pos] = charset_.at(0);
  }
  key.push_back(charset_.at(0));
}

}  // namespace gks::keyspace
