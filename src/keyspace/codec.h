#pragma once

#include <string>
#include <string_view>

#include "keyspace/charset.h"
#include "support/uint128.h"

namespace gks::keyspace {

/// Which character of the string acts as the fastest-varying digit of
/// the base-N enumeration.
enum class DigitOrder {
  /// Paper mapping (1), Figure 1: [ε, a, b, c, aa, ab, ac, ba, ...] —
  /// the *last* character varies fastest.
  kSuffixFastest,
  /// Paper mapping (4): [ε, a, b, c, aa, ba, ca, ab, ...] — the *first*
  /// character varies fastest. Required by the optimized crack kernels,
  /// which iterate by mutating message word 0 only (Section V-B).
  kPrefixFastest,
};

/// The bijection f : N → strings over a charset (Section III-A), with
/// its inverse and the incremental `next` operator of Figure 2.
///
/// Identifier 0 is the empty string; identifiers then enumerate strings
/// of length 1, 2, ... in digit order. The codec treats a string as an
/// arbitrarily long number in base N = |charset| (Section IV).
class KeyCodec {
 public:
  KeyCodec(Charset charset, DigitOrder order);

  const Charset& charset() const { return charset_; }
  DigitOrder order() const { return order_; }

  /// f(id): materializes the string with the given identifier. Cost
  /// grows with the string length (K_f of the cost model); the `next`
  /// operator below is the cheap incremental alternative (K_next).
  std::string decode(u128 id) const;

  /// f⁻¹(key): identifier of a string. Throws InvalidArgument if the
  /// string uses characters outside the charset.
  u128 encode(std::string_view key) const;

  /// In-place `next` operator (Figure 2): transforms f(id) into
  /// f(id + 1), usually touching a single character. Grows the string
  /// by one character when the enumeration rolls over to the next
  /// length (e.g. "cc" → "aaa").
  void next_inplace(std::string& key) const;

  /// Writes f(id) into `key` reusing its storage (avoids an allocation
  /// in scanning loops).
  void decode_into(u128 id, std::string& key) const;

 private:
  Charset charset_;
  DigitOrder order_;
};

}  // namespace gks::keyspace
