#include "keyspace/dictionary.h"

#include <cctype>

#include "support/error.h"

namespace gks::keyspace {

DictionaryGenerator::DictionaryGenerator(std::vector<std::string> words,
                                         Mangle mangle)
    : words_(std::move(words)),
      variants_(mangle == Mangle::kCommonCase ? 3 : 1) {
  GKS_REQUIRE(!words_.empty(), "dictionary must not be empty");
}

u128 DictionaryGenerator::size() const {
  return u128::checked_mul(u128(words_.size()), u128(variants_));
}

void DictionaryGenerator::generate(u128 id, std::string& out) const {
  GKS_REQUIRE(id < size(), "identifier outside the dictionary");
  const std::uint64_t word_id = (id / u128(variants_)).to_u64();
  const std::uint64_t variant = (id % u128(variants_)).to_u64();
  out = words_[word_id];
  if (variant == 1) {  // Capitalized
    if (!out.empty())
      out[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(out[0])));
  } else if (variant == 2) {  // UPPER
    for (char& c : out)
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
}

HybridGenerator::HybridGenerator(const Generator& words,
                                 const Generator& tails)
    : words_(words), tails_(tails), tail_size_(tails.size()) {
  GKS_REQUIRE(tail_size_ > u128(0), "tail enumeration must not be empty");
}

u128 HybridGenerator::size() const {
  return u128::checked_mul(words_.size(), tail_size_);
}

void HybridGenerator::generate(u128 id, std::string& out) const {
  GKS_REQUIRE(id < size(), "identifier outside the hybrid space");
  const u128 word_id = id / tail_size_;
  const u128 tail_id = id % tail_size_;
  words_.generate(word_id, out);
  std::string tail;
  tails_.generate(tail_id, tail);
  out += tail;
}

}  // namespace gks::keyspace
