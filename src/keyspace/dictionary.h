#pragma once

#include <string>
#include <vector>

#include "keyspace/generator.h"

namespace gks::keyspace {

/// Dictionary attack enumeration (Section I: "the number of attempts
/// can be drastically reduced if a dictionary of recurring words is
/// involved"). Optionally expands each word with simple case mangling
/// rules, multiplying the candidate count by the number of variants.
class DictionaryGenerator final : public Generator {
 public:
  /// Case-mangling variants applied per word, a small stand-in for the
  /// "list of common password patterns" hybrid technique.
  enum class Mangle {
    kNone,        ///< word as-is (1 variant)
    kCommonCase,  ///< as-is, Capitalized, UPPER (3 variants)
  };

  explicit DictionaryGenerator(std::vector<std::string> words,
                               Mangle mangle = Mangle::kNone);

  u128 size() const override;
  void generate(u128 id, std::string& out) const override;

  std::size_t word_count() const { return words_.size(); }
  std::size_t variants_per_word() const { return variants_; }

 private:
  std::vector<std::string> words_;
  std::size_t variants_;
};

/// Hybrid attack: every dictionary candidate concatenated with every
/// string of a brute-force tail (e.g. word + 2 digits) — the paper's
/// "hybrid technique that uses a dictionary along with a list of
/// common password patterns". The tail enumeration is any Generator,
/// composed by cartesian product: id = word_id * tail_size + tail_id.
class HybridGenerator final : public Generator {
 public:
  /// Both generators are borrowed; they must outlive the hybrid.
  HybridGenerator(const Generator& words, const Generator& tails);

  u128 size() const override;
  void generate(u128 id, std::string& out) const override;

 private:
  const Generator& words_;
  const Generator& tails_;
  u128 tail_size_;
};

}  // namespace gks::keyspace
