#pragma once

#include <string>

#include "support/uint128.h"

namespace gks::keyspace {

/// Abstract candidate enumeration: a bijection from the dense
/// identifier range [0, size()) onto candidate strings — the f(i) of
/// the paper's problem definition (Section III-A). The dispatcher
/// partitions identifier intervals without knowing what they denote,
/// which is exactly why the pattern generalizes beyond base-N key
/// spaces (dictionary and hybrid attacks implement the same interface).
class Generator {
 public:
  virtual ~Generator() = default;

  /// Cardinality of the candidate set.
  virtual u128 size() const = 0;

  /// Materializes candidate `id` (0 <= id < size()) into `out`,
  /// reusing its storage. This is f(id), cost K_f.
  virtual void generate(u128 id, std::string& out) const = 0;

  /// Transforms candidate `id`'s string into candidate `id + 1`'s —
  /// the `next` operator, cost K_next. The default falls back to a
  /// full generate(id + 1); enumerations with a cheaper incremental
  /// step override it.
  virtual void next(u128 id, std::string& key) const {
    generate(id + u128(1), key);
  }

  /// Convenience wrapper allocating a fresh string.
  std::string at(u128 id) const {
    std::string s;
    generate(id, s);
    return s;
  }
};

}  // namespace gks::keyspace
