#include "keyspace/interval.h"

#include <algorithm>
#include <numeric>

#include "support/error.h"

namespace gks::keyspace {

std::vector<Interval> split_even(const Interval& whole, std::size_t parts) {
  GKS_REQUIRE(parts >= 1, "cannot split into zero parts");
  // Degenerate shapes are handled here, not by caller discipline: an
  // empty (or inverted — size() would wrap) interval yields `parts`
  // empty slices, and parts > size() yields size-1 slices followed by
  // empty ones, so every caller gets exactly `parts` intervals whose
  // union is `whole`.
  if (whole.empty()) {
    return std::vector<Interval>(parts, Interval(whole.begin, whole.begin));
  }
  const u128 n = whole.size();
  const u128 p(static_cast<std::uint64_t>(parts));
  const u128 base = n / p;
  const std::uint64_t rem = (n % p).to_u64();

  std::vector<Interval> out;
  out.reserve(parts);
  u128 cursor = whole.begin;
  for (std::size_t i = 0; i < parts; ++i) {
    u128 sz = base;
    if (i < rem) sz += u128(1);
    out.emplace_back(cursor, cursor + sz);
    cursor += sz;
  }
  GKS_ENSURE(cursor == whole.end, "split_even must cover the interval");
  return out;
}

std::vector<Interval> split_weighted(const Interval& whole,
                                     const std::vector<double>& weights) {
  GKS_REQUIRE(!weights.empty(), "need at least one weight");
  double total = 0;
  for (double w : weights) {
    GKS_REQUIRE(w >= 0, "weights must be non-negative");
    total += w;
  }
  GKS_REQUIRE(total > 0, "at least one weight must be positive");

  // Same degenerate-shape guarantee as split_even: an empty or
  // inverted interval splits into all-empty parts.
  if (whole.empty()) {
    return std::vector<Interval>(weights.size(),
                                 Interval(whole.begin, whole.begin));
  }

  const double n = whole.size().to_double();
  const std::size_t heaviest = static_cast<std::size_t>(
      std::max_element(weights.begin(), weights.end()) - weights.begin());

  // Assign floor shares to everyone except the heaviest node, which
  // receives whatever remains; the fastest node absorbs rounding slack.
  std::vector<u128> sizes(weights.size(), u128(0));
  u128 assigned(0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i == heaviest) continue;
    const double share = n * (weights[i] / total);
    // Convert via two 64-bit halves to stay exact for huge intervals.
    const double clamped = std::max(0.0, share);
    u128 sz(0);
    if (clamped >= 18446744073709551616.0) {
      const auto high = static_cast<std::uint64_t>(clamped / 18446744073709551616.0);
      sz = u128(high, 0);
    } else {
      sz = u128(static_cast<std::uint64_t>(clamped));
    }
    if (assigned + sz > whole.size()) sz = whole.size() - assigned;
    sizes[i] = sz;
    assigned += sz;
  }
  sizes[heaviest] = whole.size() - assigned;

  std::vector<Interval> out;
  out.reserve(weights.size());
  u128 cursor = whole.begin;
  for (const u128& sz : sizes) {
    out.emplace_back(cursor, cursor + sz);
    cursor += sz;
  }
  GKS_ENSURE(cursor == whole.end, "split_weighted must cover the interval");
  return out;
}

Interval IntervalCursor::take(u128 max_size) {
  if (exhausted() || max_size == u128(0)) return Interval(next_, next_);
  const u128 sz = std::min(max_size, whole_.end - next_);
  const Interval chunk(next_, next_ + sz);
  next_ += sz;
  return chunk;
}

}  // namespace gks::keyspace
