#pragma once

#include <vector>

#include "support/uint128.h"

namespace gks::keyspace {

/// A half-open range [begin, end) of enumeration identifiers — the unit
/// of work the dispatcher scatters to nodes (Section III). Intervals
/// partition the search space; their size is the dispatch granularity
/// N_j computed by the balancer.
struct Interval {
  u128 begin;
  u128 end;

  constexpr Interval() : begin(0), end(0) {}
  constexpr Interval(u128 b, u128 e) : begin(b), end(e) {}

  constexpr u128 size() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }

  constexpr bool contains(u128 id) const { return id >= begin && id < end; }

  bool operator==(const Interval&) const = default;
};

/// Splits an interval into `parts` consecutive sub-intervals whose
/// sizes differ by at most one (remainder spread over the leading
/// parts). Used for fine-grain splitting inside a node (one slice per
/// GPU thread block in the paper's terms). Degenerate shapes are
/// well-defined: an empty (or inverted) interval yields `parts` empty
/// slices, and `parts` > size() yields size() one-id slices followed
/// by empty ones — callers never have to pre-clamp.
std::vector<Interval> split_even(const Interval& whole, std::size_t parts);

/// Splits an interval into consecutive sub-intervals proportional to
/// the given non-negative weights (throughputs X_j of the balancing
/// step). The rounding remainder goes to the highest-weight part so
/// the fastest node absorbs the slack. Zero-weight parts receive empty
/// intervals; at least one weight must be positive.
std::vector<Interval> split_weighted(const Interval& whole,
                                     const std::vector<double>& weights);

/// Sequential cursor over an interval that hands out consecutive
/// chunks of bounded size — the "periodically assign an interval to
/// each node" loop of the dispatcher, and the per-kernel-launch
/// batching that keeps each launch under the driver's watchdog limit
/// (Section IV-A).
class IntervalCursor {
 public:
  explicit IntervalCursor(Interval whole) : whole_(whole), next_(whole.begin) {}

  /// Identifiers not yet handed out.
  u128 remaining() const { return next_ >= whole_.end ? u128(0) : whole_.end - next_; }

  bool exhausted() const { return next_ >= whole_.end; }

  /// Takes the next chunk of at most `max_size` identifiers (possibly
  /// smaller at the tail; empty once exhausted).
  Interval take(u128 max_size);

 private:
  Interval whole_;
  u128 next_;
};

}  // namespace gks::keyspace
