#pragma once

#include "keyspace/codec.h"
#include "keyspace/generator.h"
#include "keyspace/space.h"

namespace gks::keyspace {

/// The base-N brute-force enumeration of Section IV: all strings over a
/// charset with length in [min_length, max_length], exposed through the
/// dense Generator interface (identifier 0 is the first string of
/// min_length, not the empty string).
class KeyspaceGenerator final : public Generator {
 public:
  KeyspaceGenerator(KeyCodec codec, unsigned min_length, unsigned max_length)
      : codec_(std::move(codec)),
        min_length_(min_length),
        max_length_(max_length),
        offset_(first_id_of_length(codec_.charset().size(), min_length)),
        size_(space_size(codec_.charset().size(), min_length, max_length)) {
    GKS_REQUIRE(min_length <= max_length, "invalid length range");
  }

  u128 size() const override { return size_; }

  void generate(u128 id, std::string& out) const override {
    GKS_REQUIRE(id < size_, "identifier outside the key space");
    codec_.decode_into(id + offset_, out);
  }

  /// The incremental step is the codec's Figure-2 operator: O(1)
  /// amortized versus O(length) for generate().
  void next(u128 /*id*/, std::string& key) const override {
    codec_.next_inplace(key);
  }

  const KeyCodec& codec() const { return codec_; }
  unsigned min_length() const { return min_length_; }
  unsigned max_length() const { return max_length_; }

  /// Offset of this range's id 0 in the codec's global enumeration
  /// (which starts at the empty string).
  u128 global_offset() const { return offset_; }

 private:
  KeyCodec codec_;
  unsigned min_length_;
  unsigned max_length_;
  u128 offset_;
  u128 size_;
};

}  // namespace gks::keyspace
