#include "keyspace/markov.h"

#include <algorithm>
#include <array>

#include "support/error.h"

namespace gks::keyspace {

MarkovOrderedGenerator::MarkovOrderedGenerator(
    const Charset& charset, unsigned length,
    const std::vector<std::string>& corpus) {
  GKS_REQUIRE(length >= 1, "length must be at least 1");

  positions_.resize(length);
  index_.resize(length);
  for (unsigned pos = 0; pos < length; ++pos) {
    // Count corpus occurrences of each charset character at `pos`.
    std::array<std::uint64_t, 256> counts{};
    for (const std::string& word : corpus) {
      if (word.size() <= pos) continue;
      const auto c = static_cast<unsigned char>(word[pos]);
      if (charset.contains_all(std::string_view(&word[pos], 1))) {
        ++counts[c];
      }
    }

    // Stable sort by descending count: unseen characters keep the
    // charset's own order behind the seen ones.
    std::vector<char> order(charset.chars().begin(), charset.chars().end());
    std::stable_sort(order.begin(), order.end(),
                     [&counts](char a, char b) {
                       return counts[static_cast<unsigned char>(a)] >
                              counts[static_cast<unsigned char>(b)];
                     });
    index_[pos].fill(0);
    for (std::size_t d = 0; d < order.size(); ++d) {
      index_[pos][static_cast<unsigned char>(order[d])] =
          static_cast<std::uint32_t>(d);
    }
    positions_[pos] = std::move(order);
  }
}

u128 MarkovOrderedGenerator::size() const {
  u128 n(1);
  for (const auto& p : positions_) {
    n = u128::checked_mul(n, u128(p.size()));
  }
  return n;
}

void MarkovOrderedGenerator::generate(u128 id, std::string& out) const {
  GKS_REQUIRE(id < size(), "identifier outside the enumeration");
  out.resize(positions_.size());
  for (std::size_t pos = 0; pos < positions_.size(); ++pos) {
    const u128 base(positions_[pos].size());
    out[pos] = positions_[pos][(id % base).to_u64()];
    id /= base;
  }
}

const std::vector<char>& MarkovOrderedGenerator::order_at(
    unsigned position) const {
  GKS_REQUIRE(position < positions_.size(), "position outside the mask");
  return positions_[position];
}

u128 MarkovOrderedGenerator::rank_of(const std::string& key) const {
  GKS_REQUIRE(key.size() == positions_.size(),
              "key length does not match the enumeration");
  u128 rank(0);
  // Horner evaluation from the most significant (last) position down.
  for (std::size_t i = positions_.size(); i-- > 0;) {
    const auto c = static_cast<unsigned char>(key[i]);
    const std::uint32_t digit = index_[i][c];
    GKS_REQUIRE(positions_[i][digit] == key[i],
                "key character outside the charset");
    rank = u128::checked_mul(rank, u128(positions_[i].size())) + u128(digit);
  }
  return rank;
}

}  // namespace gks::keyspace
