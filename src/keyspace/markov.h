#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "keyspace/charset.h"
#include "keyspace/generator.h"

namespace gks::keyspace {

/// Likelihood-ordered fixed-length enumeration, in the spirit of the
/// Markov-chain candidate ordering the paper's related work discusses
/// (Narayanan & Shmatikov [3]; Marechal [2]): instead of walking the
/// key space alphabetically, walk it so that statistically likely
/// passwords come first.
///
/// This is the practical "Markov-lite" variant shipped by real
/// crackers: from a training corpus it learns, per key position, the
/// frequency order of characters, then enumerates with each position's
/// charset re-ordered most-frequent-first (first position varying
/// fastest, consistent with the rest of the library). The mapping
/// stays a bijection with O(length) random access — which is exactly
/// what the dispatch pattern needs from f(i) (Section III-A notes
/// f(i) "can follow a heuristics to favor testing of the most likely
/// solutions").
class MarkovOrderedGenerator final : public Generator {
 public:
  /// Learns per-position frequencies of `charset` characters from the
  /// corpus (typically a leaked-password wordlist); characters never
  /// seen at a position keep their charset order after the seen ones.
  /// Corpus entries longer/shorter than `length` still contribute
  /// their overlapping positions; characters outside the charset are
  /// ignored.
  MarkovOrderedGenerator(const Charset& charset, unsigned length,
                         const std::vector<std::string>& corpus);

  u128 size() const override;
  void generate(u128 id, std::string& out) const override;

  /// The learned character order at a position (most frequent first).
  const std::vector<char>& order_at(unsigned position) const;

  /// Rank of `key` in this enumeration — how many candidates a sweep
  /// tests before reaching it. The quality metric for the ordering:
  /// likely passwords should rank far earlier than in alphabetical
  /// order.
  u128 rank_of(const std::string& key) const;

 private:
  std::vector<std::vector<char>> positions_;  ///< reordered charsets
  std::vector<std::array<std::uint32_t, 256>> index_;  ///< char → digit
};

}  // namespace gks::keyspace
