#include "keyspace/mask.h"

#include "support/error.h"

namespace gks::keyspace {
namespace {

std::vector<char> class_for(char code) {
  const auto range = [](char lo, char hi) {
    std::vector<char> v;
    for (char c = lo; c <= hi; ++c) v.push_back(c);
    return v;
  };
  switch (code) {
    case 'l': return range('a', 'z');
    case 'u': return range('A', 'Z');
    case 'd': return range('0', '9');
    case 's': {
      // Printable ASCII that is neither alphanumeric nor space.
      std::vector<char> v;
      for (char c = '!'; c <= '~'; ++c) {
        const bool alnum = (c >= '0' && c <= '9') ||
                           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
        if (!alnum) v.push_back(c);
      }
      return v;
    }
    case 'a': return range(' ', '~');
    case '?': return {'?'};
    default:
      throw InvalidArgument(std::string("unknown mask class '?") + code +
                            "'");
  }
}

}  // namespace

MaskGenerator::MaskGenerator(const std::string& mask) {
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == '?') {
      GKS_REQUIRE(i + 1 < mask.size(), "dangling '?' at end of mask");
      positions_.push_back(class_for(mask[i + 1]));
      ++i;
    } else {
      positions_.push_back({mask[i]});
    }
  }
  GKS_REQUIRE(!positions_.empty(), "mask must cover at least one position");
}

u128 MaskGenerator::size() const {
  u128 n(1);
  for (const auto& p : positions_) {
    n = u128::checked_mul(n, u128(p.size()));
  }
  return n;
}

void MaskGenerator::generate(u128 id, std::string& out) const {
  GKS_REQUIRE(id < size(), "identifier outside the mask space");
  out.resize(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const u128 base(positions_[i].size());
    out[i] = positions_[i][(id % base).to_u64()];
    id /= base;
  }
}

void MaskGenerator::next(u128 /*id*/, std::string& key) const {
  GKS_REQUIRE(key.size() == positions_.size(),
              "key does not match the mask length");
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const auto& choices = positions_[i];
    // Locate the current character's index within its class.
    std::size_t idx = 0;
    while (idx < choices.size() && choices[idx] != key[i]) ++idx;
    GKS_REQUIRE(idx < choices.size(), "key character outside its class");
    if (idx + 1 < choices.size()) {
      key[i] = choices[idx + 1];
      return;
    }
    key[i] = choices[0];  // carry into the next position
  }
  // Wrapped around: back to candidate 0 (mask spaces are fixed-length,
  // there is no longer string to grow into).
}

}  // namespace gks::keyspace
