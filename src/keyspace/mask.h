#pragma once

#include <string>
#include <vector>

#include "keyspace/charset.h"
#include "keyspace/generator.h"

namespace gks::keyspace {

/// Mask-based enumeration in the hashcat tradition — per-position
/// character classes, the machine-readable form of the "list of common
/// password patterns" Section I's hybrid technique relies on.
///
/// Mask syntax (one token per key position):
///   ?l  lower-case letter        ?u  upper-case letter
///   ?d  decimal digit            ?s  printable symbol
///   ?a  any printable ASCII      ??  a literal '?'
///   c   any other character stands for itself (fixed position)
///
/// Example: "?u?l?l?l?d?d" enumerates Capitalized four-letter words
/// followed by two digits — 26·26³·10² = 45,697,600 candidates.
/// Identifier order is prefix-fastest (the first position varies
/// quickest), consistent with the crack kernels' iteration order.
class MaskGenerator final : public Generator {
 public:
  explicit MaskGenerator(const std::string& mask);

  u128 size() const override;
  void generate(u128 id, std::string& out) const override;

  /// The incremental step: increments position 0's class index and
  /// carries — O(1) amortized, like the Figure 2 operator.
  void next(u128 id, std::string& key) const override;

  std::size_t length() const { return positions_.size(); }

 private:
  /// Character choices for one key position (size 1 for literals).
  std::vector<std::vector<char>> positions_;
};

}  // namespace gks::keyspace
