#include "keyspace/rules.h"

#include <algorithm>
#include <cctype>

#include "support/error.h"

namespace gks::keyspace {
namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
char upper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}
bool is_lower(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Rule::Rule(std::string spec) : spec_(std::move(spec)) {
  GKS_REQUIRE(!spec_.empty(), "empty rule string");
  for (std::size_t i = 0; i < spec_.size(); ++i) {
    Op op{spec_[i]};
    switch (spec_[i]) {
      case ':':
      case 'l':
      case 'u':
      case 'c':
      case 'C':
      case 'r':
      case 'd':
      case 't':
      case '[':
      case ']':
        break;
      case '$':
      case '^':
        GKS_REQUIRE(i + 1 < spec_.size(), "rule needs a character argument");
        op.arg1 = spec_[++i];
        break;
      case 's':
        GKS_REQUIRE(i + 2 < spec_.size(),
                    "substitution needs two character arguments");
        op.arg1 = spec_[++i];
        op.arg2 = spec_[++i];
        break;
      default:
        throw InvalidArgument(std::string("unknown rule operation '") +
                              spec_[i] + "' in \"" + spec_ + "\"");
    }
    ops_.push_back(op);
  }
}

std::string Rule::apply(std::string_view word) const {
  std::string w(word);
  for (const Op& op : ops_) {
    switch (op.code) {
      case ':':
        break;
      case 'l':
        for (char& c : w) c = lower(c);
        break;
      case 'u':
        for (char& c : w) c = upper(c);
        break;
      case 'c':
        for (char& c : w) c = lower(c);
        if (!w.empty()) w[0] = upper(w[0]);
        break;
      case 'C':
        for (char& c : w) c = upper(c);
        if (!w.empty()) w[0] = lower(w[0]);
        break;
      case 'r':
        std::reverse(w.begin(), w.end());
        break;
      case 'd':
        w += w;
        break;
      case 't':
        for (char& c : w) c = is_lower(c) ? upper(c) : lower(c);
        break;
      case '$':
        w.push_back(op.arg1);
        break;
      case '^':
        w.insert(w.begin(), op.arg1);
        break;
      case 's':
        for (char& c : w) {
          if (c == op.arg1) c = op.arg2;
        }
        break;
      case '[':
        if (!w.empty()) w.erase(w.begin());
        break;
      case ']':
        if (!w.empty()) w.pop_back();
        break;
    }
  }
  return w;
}

RuleSet::RuleSet(const std::vector<std::string>& specs) {
  GKS_REQUIRE(!specs.empty(), "rule set must contain at least one rule");
  rules_.reserve(specs.size());
  for (const std::string& s : specs) rules_.emplace_back(s);
}

RuleSet RuleSet::common() {
  return RuleSet({
      ":",                 // as is
      "l", "u", "c",       // case variants
      "c$1", "c$1$2$3",    // Capitalized + digits
      "$1", "$1$2$3",      // trailing digits
      "$2$0$2$4", "$2$0$2$5",  // years
      "$!",                // trailing bang
      "sa@se3si1so0",      // leetspeak
      "csa@se3si1so0",     // Capitalized + leetspeak
      "r",                 // reversed
      "d",                 // doubled
  });
}

const Rule& RuleSet::at(std::size_t i) const {
  GKS_REQUIRE(i < rules_.size(), "rule index out of range");
  return rules_[i];
}

std::vector<std::string> RuleSet::expand(std::string_view word) const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const Rule& r : rules_) out.push_back(r.apply(word));
  return out;
}

RuledDictionaryGenerator::RuledDictionaryGenerator(
    const std::vector<std::string>& words, const RuleSet& rules)
    : words_(words), rules_(rules) {
  GKS_REQUIRE(!words.empty(), "dictionary must not be empty");
}

u128 RuledDictionaryGenerator::size() const {
  return u128::checked_mul(u128(words_.size()), u128(rules_.size()));
}

void RuledDictionaryGenerator::generate(u128 id, std::string& out) const {
  GKS_REQUIRE(id < size(), "identifier outside the enumeration");
  const u128 per_word(rules_.size());
  const std::uint64_t word_id = (id / per_word).to_u64();
  const std::uint64_t rule_id = (id % per_word).to_u64();
  out = rules_.at(rule_id).apply(words_[word_id]);
}

}  // namespace gks::keyspace
