#pragma once

#include <string>
#include <vector>

#include "keyspace/generator.h"

namespace gks::keyspace {

/// A word-mangling rule in the hashcat/John tradition — the concrete
/// form of the "list of common password patterns" the paper's hybrid
/// technique combines with a dictionary (Section I). A rule is a small
/// program over a word; a RuleSet × dictionary is an enumeration.
///
/// Supported rule strings (a practical subset of hashcat syntax):
///   :     no-op (keep the word as is)
///   l     lowercase all        u     uppercase all
///   c     capitalize           C     invert capitalize
///   r     reverse              d     duplicate word ("pass" → "passpass")
///   t     toggle case of every character
///   $X    append character X   ^X    prepend character X
///   sXY   substitute every X with Y (e.g. "sa@" → leetspeak a→@)
///   [     delete first char    ]     delete last char
/// Multiple operations compose left to right within one rule string:
/// "c$1$2" capitalizes and appends "12".
class Rule {
 public:
  /// Parses a rule string; throws InvalidArgument on unknown syntax.
  explicit Rule(std::string spec);

  /// Applies the rule to a word.
  std::string apply(std::string_view word) const;

  const std::string& spec() const { return spec_; }

 private:
  struct Op {
    char code;
    char arg1 = 0;
    char arg2 = 0;
  };
  std::string spec_;
  std::vector<Op> ops_;
};

/// A parsed list of rules. `common()` provides the classic starter set
/// real-world audits begin with.
class RuleSet {
 public:
  explicit RuleSet(const std::vector<std::string>& specs);

  /// The usual suspects: as-is, case variants, years and digits
  /// appended, basic leetspeak.
  static RuleSet common();

  std::size_t size() const { return rules_.size(); }
  const Rule& at(std::size_t i) const;

  /// All variants of one word, in rule order.
  std::vector<std::string> expand(std::string_view word) const;

 private:
  std::vector<Rule> rules_;
};

/// Dictionary × RuleSet as a Generator: candidate id maps to
/// (word id, rule id) with the rule varying fastest, so all variants
/// of a word are adjacent — cache-friendly and human-debuggable.
class RuledDictionaryGenerator final : public Generator {
 public:
  /// Both are borrowed; they must outlive the generator.
  RuledDictionaryGenerator(const std::vector<std::string>& words,
                           const RuleSet& rules);

  u128 size() const override;
  void generate(u128 id, std::string& out) const override;

 private:
  const std::vector<std::string>& words_;
  const RuleSet& rules_;
};

}  // namespace gks::keyspace
