#include "keyspace/space.h"

#include "support/error.h"

namespace gks::keyspace {

u128 keys_of_length(std::size_t n, unsigned length) {
  GKS_REQUIRE(n >= 1, "alphabet must have at least one symbol");
  return u128::checked_pow(u128(static_cast<std::uint64_t>(n)), length);
}

u128 keys_up_to(std::size_t n, unsigned length) {
  GKS_REQUIRE(n >= 1, "alphabet must have at least one symbol");
  if (n == 1) return u128(length + 1);  // Equation (3) with K0 = 0
  // (n^(L+1) - 1) / (n - 1) computed without forming n^(L+1) when it
  // would overflow the sum itself does not: accumulate directly.
  u128 total(1);  // the empty string
  u128 pow(1);
  const u128 base(static_cast<std::uint64_t>(n));
  for (unsigned k = 1; k <= length; ++k) {
    pow = u128::checked_mul(pow, base);
    const u128 next = total + pow;
    GKS_ENSURE(next >= total, "key space size overflows 128 bits");
    total = next;
  }
  return total;
}

u128 space_size(std::size_t n, unsigned min_length, unsigned max_length) {
  GKS_REQUIRE(min_length <= max_length,
              "min_length must not exceed max_length");
  if (min_length == 0) return keys_up_to(n, max_length);
  return keys_up_to(n, max_length) - keys_up_to(n, min_length - 1);
}

u128 first_id_of_length(std::size_t n, unsigned length) {
  if (length == 0) return u128(0);
  return keys_up_to(n, length - 1);
}

unsigned length_of_id(std::size_t n, u128 id) {
  unsigned length = 0;
  while (id >= keys_up_to(n, length)) ++length;
  return length;
}

}  // namespace gks::keyspace
