#pragma once

#include "support/uint128.h"

namespace gks::keyspace {

/// Number of distinct strings of exactly `length` characters over an
/// alphabet of `n` symbols: n^length. Throws on 128-bit overflow.
u128 keys_of_length(std::size_t n, unsigned length);

/// Number of distinct strings with length in [0, length] — including
/// the empty string: (n^(length+1) - 1) / (n - 1), or length + 1 when
/// n = 1 (the paper's Equations (2) and (3) with K0 = 0).
u128 keys_up_to(std::size_t n, unsigned length);

/// The paper's S_{K0}^{K} (Equation 2): number of strings with length
/// in [min_length, max_length] = (n^(K+1) - n^(K0)) / (n - 1), falling
/// back to Equation (3), K - K0 + 1, when n = 1.
u128 space_size(std::size_t n, unsigned min_length, unsigned max_length);

/// First enumeration identifier assigned to strings of exactly
/// `length` characters (the empty string is id 0, so this equals
/// keys_up_to(n, length - 1), and 1 when length == 1... i.e. the count
/// of all shorter strings including epsilon).
u128 first_id_of_length(std::size_t n, unsigned length);

/// The enumeration length of the string with identifier `id` over an
/// alphabet of `n` symbols (0 for the empty string).
unsigned length_of_id(std::size_t n, u128 id);

}  // namespace gks::keyspace
