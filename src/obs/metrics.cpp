#include "obs/metrics.h"

#include <bit>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "support/error.h"
#include "support/json.h"

namespace gks::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  return total;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  sum += other.sum;
}

double HistogramSnapshot::bucket_upper_s(std::size_t i) {
  return static_cast<double>(std::uint64_t(1) << i) * 1e-6;
}

double HistogramSnapshot::quantile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double rank = p * static_cast<double>(total);
  double cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets[i]);
    if (next >= rank) {
      const double lo = i == 0 ? 0 : bucket_upper_s(i - 1);
      const double hi = bucket_upper_s(i);
      const double frac =
          (rank - cum) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * (frac < 0 ? 0 : frac);
    }
    cum = next;
  }
  return bucket_upper_s(kBuckets - 1);
}

double HistogramSnapshot::mean() const {
  const std::uint64_t total = count();
  return total == 0 ? 0 : sum / static_cast<double>(total);
}

std::size_t Histogram::bucket_of(double seconds) {
  if (!(seconds > 0)) return 0;
  const double us = seconds * 1e6;
  // Beyond 2^53 µs (~285 years) the double has no integer precision
  // left; everything lands in the top bucket anyway.
  if (us >= 9.0e15) return kBuckets - 1;
  const auto u = static_cast<std::uint64_t>(us);
  const std::size_t b = std::bit_width(u);
  return b < kBuckets ? b : kBuckets - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& [name, v] : other.metrics) {
    auto [it, inserted] = metrics.try_emplace(name, v);
    if (inserted) continue;
    MetricValue& mine = it->second;
    if (mine.kind != v.kind) {
      throw InvalidArgument("metric '" + name +
                            "' merged with mismatched kind");
    }
    switch (v.kind) {
      case MetricKind::kCounter: mine.counter += v.counter; break;
      case MetricKind::kGauge: mine.gauge += v.gauge; break;
      case MetricKind::kHistogram: mine.hist.merge(v.hist); break;
    }
  }
}

const MetricValue* RegistrySnapshot::find(std::string_view name) const {
  const auto it = metrics.find(std::string(name));
  return it == metrics.end() ? nullptr : &it->second;
}

std::uint64_t RegistrySnapshot::counter_or(std::string_view name,
                                           std::uint64_t fallback) const {
  const MetricValue* v = find(name);
  return v != nullptr && v->kind == MetricKind::kCounter ? v->counter
                                                         : fallback;
}

double RegistrySnapshot::gauge_or(std::string_view name,
                                  double fallback) const {
  const MetricValue* v = find(name);
  return v != nullptr && v->kind == MetricKind::kGauge ? v->gauge : fallback;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    std::string_view name) const {
  const MetricValue* v = find(name);
  return v != nullptr && v->kind == MetricKind::kHistogram ? &v->hist
                                                           : nullptr;
}

RegistrySnapshot diff(const RegistrySnapshot& after,
                      const RegistrySnapshot& before) {
  RegistrySnapshot out;
  for (const auto& [name, a] : after.metrics) {
    MetricValue d = a;
    if (const MetricValue* b = before.find(name);
        b != nullptr && b->kind == a.kind) {
      switch (a.kind) {
        case MetricKind::kCounter:
          d.counter = a.counter >= b->counter ? a.counter - b->counter : 0;
          break;
        case MetricKind::kGauge:
          break;  // gauges are instantaneous; keep `after`
        case MetricKind::kHistogram:
          for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
            d.hist.buckets[i] = a.hist.buckets[i] >= b->hist.buckets[i]
                                    ? a.hist.buckets[i] - b->hist.buckets[i]
                                    : 0;
          }
          d.hist.sum = a.hist.sum - b->hist.sum;
          if (d.hist.sum < 0) d.hist.sum = 0;
          break;
      }
    }
    out.metrics.emplace(name, std::move(d));
  }
  return out;
}

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  if (!ok_first(name.front())) return false;
  for (const char c : name) {
    if (!ok_first(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return true;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

Registry::Cell& Registry::cell(std::string_view name, MetricKind kind) {
  std::lock_guard lock(mu_);
  const auto it = cells_.find(name);
  if (it != cells_.end()) {
    if (it->second.kind != kind) {
      throw InvalidArgument("metric '" + std::string(name) +
                            "' already registered as " +
                            kind_name(it->second.kind) + ", requested as " +
                            kind_name(kind));
    }
    return it->second;
  }
  if (!valid_metric_name(name)) {
    throw InvalidArgument("invalid metric name '" + std::string(name) +
                          "' (want [a-zA-Z_][a-zA-Z0-9_]*)");
  }
  Cell c;
  c.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: c.counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: c.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      c.hist = std::make_unique<Histogram>();
      break;
  }
  return cells_.emplace(std::string(name), std::move(c)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *cell(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *cell(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *cell(name, MetricKind::kHistogram).hist;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot s;
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : cells_) {
    MetricValue v;
    v.kind = c.kind;
    switch (c.kind) {
      case MetricKind::kCounter: v.counter = c.counter->value(); break;
      case MetricKind::kGauge: v.gauge = c.gauge->value(); break;
      case MetricKind::kHistogram: v.hist = c.hist->snapshot(); break;
    }
    s.metrics.emplace(name, std::move(v));
  }
  return s;
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // never destroyed: instrumented
  return *r;                          // code may run during exit
}

void snapshot_to_json(json::Writer& w, const RegistrySnapshot& s) {
  w.begin_object();
  for (const auto& [name, v] : s.metrics) {
    w.key(name).begin_object();
    switch (v.kind) {
      case MetricKind::kCounter:
        w.key("type").value("counter");
        w.key("value").value(std::to_string(v.counter));
        break;
      case MetricKind::kGauge:
        w.key("type").value("gauge");
        w.key("value").value(v.gauge);
        break;
      case MetricKind::kHistogram:
        w.key("type").value("histogram");
        w.key("sum").value(v.hist.sum);
        w.key("buckets").begin_object();
        for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
          if (v.hist.buckets[i] == 0) continue;
          w.key(std::to_string(i)).value(std::to_string(v.hist.buckets[i]));
        }
        w.end_object();
        break;
    }
    w.end_object();
  }
  w.end_object();
}

std::string snapshot_to_json_string(const RegistrySnapshot& s) {
  json::Writer w;
  snapshot_to_json(w, s);
  return w.str();
}

namespace {

std::uint64_t parse_u64_string(const json::Value& v, const char* what) {
  if (!v.is_string()) {
    throw InvalidArgument(std::string("metrics json: ") + what +
                          " must be a decimal string");
  }
  const std::string& s = v.as_string();
  std::uint64_t out = 0;
  if (std::sscanf(s.c_str(), "%" SCNu64, &out) != 1) {
    throw InvalidArgument(std::string("metrics json: bad ") + what + " '" +
                          s + "'");
  }
  return out;
}

}  // namespace

RegistrySnapshot snapshot_from_json(const json::Value& v) {
  if (!v.is_object()) {
    throw InvalidArgument("metrics json: snapshot must be an object");
  }
  RegistrySnapshot s;
  for (const auto& [name, mv] : v.members()) {
    if (!mv.is_object()) {
      throw InvalidArgument("metrics json: metric '" + name +
                            "' must be an object");
    }
    const std::string type = mv.string_or("type", "");
    MetricValue out;
    if (type == "counter") {
      out.kind = MetricKind::kCounter;
      out.counter = parse_u64_string(mv.at("value"), "counter value");
    } else if (type == "gauge") {
      out.kind = MetricKind::kGauge;
      out.gauge = mv.at("value").as_number();
    } else if (type == "histogram") {
      out.kind = MetricKind::kHistogram;
      out.hist.sum = mv.number_or("sum", 0);
      const json::Value& buckets = mv.at("buckets");
      if (!buckets.is_object()) {
        throw InvalidArgument("metrics json: histogram '" + name +
                              "' buckets must be an object");
      }
      for (const auto& [idx_s, count] : buckets.members()) {
        std::size_t idx = 0;
        try {
          idx = std::stoul(idx_s);
        } catch (const std::exception&) {
          throw InvalidArgument("metrics json: bad bucket index '" + idx_s +
                                "'");
        }
        if (idx >= HistogramSnapshot::kBuckets) {
          throw InvalidArgument("metrics json: bucket index out of range");
        }
        out.hist.buckets[idx] = parse_u64_string(count, "bucket count");
      }
    } else {
      throw InvalidArgument("metrics json: metric '" + name +
                            "' has unknown type '" + type + "'");
    }
    s.metrics.emplace(name, std::move(out));
  }
  return s;
}

namespace {

std::string render_labels(const LabelList& labels,
                          const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json::escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  return out + "}";
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string prometheus_exposition(
    const std::vector<LabeledSnapshot>& parts) {
  // family -> kind, first declaration wins; map keeps output stable.
  std::map<std::string, MetricKind> families;
  for (const LabeledSnapshot& part : parts) {
    for (const auto& [name, v] : part.snapshot.metrics) {
      families.try_emplace(name, v.kind);
    }
  }
  std::string out;
  for (const auto& [family, kind] : families) {
    out += "# TYPE " + family + " " + kind_name(kind) + "\n";
    for (const LabeledSnapshot& part : parts) {
      const MetricValue* v = part.snapshot.find(family);
      if (v == nullptr || v->kind != kind) continue;
      switch (kind) {
        case MetricKind::kCounter:
          out += family + render_labels(part.labels) + " " +
                 std::to_string(v->counter) + "\n";
          break;
        case MetricKind::kGauge:
          out += family + render_labels(part.labels) + " " +
                 format_double(v->gauge) + "\n";
          break;
        case MetricKind::kHistogram: {
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i + 1 < HistogramSnapshot::kBuckets;
               ++i) {
            if (v->hist.buckets[i] == 0) continue;
            cum += v->hist.buckets[i];
            out += family + "_bucket" +
                   render_labels(
                       part.labels, "le",
                       format_double(HistogramSnapshot::bucket_upper_s(i))) +
                   " " + std::to_string(cum) + "\n";
          }
          const std::uint64_t total = v->hist.count();
          out += family + "_bucket" +
                 render_labels(part.labels, "le", "+Inf") + " " +
                 std::to_string(total) + "\n";
          out += family + "_sum" + render_labels(part.labels) + " " +
                 format_double(v->hist.sum) + "\n";
          out += family + "_count" + render_labels(part.labels) + " " +
                 std::to_string(total) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace gks::obs
