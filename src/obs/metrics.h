#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gks::json {
class Writer;
class Value;
}  // namespace gks::json

namespace gks::obs {

/// Lock-cheap process-wide telemetry: monotonic counters, gauges and
/// fixed-bucket log2 histograms behind a named registry. Creation
/// (name lookup) takes a mutex once; every subsequent update is a
/// relaxed atomic on a stable address, so instrumented hot paths cache
/// the returned reference and never touch the registry again.
///
/// Snapshots are plain values that merge (cluster roll-ups), diff
/// (per-bench deltas) and round-trip through JSON (heartbeat
/// piggyback), and render to Prometheus text exposition format 0.0.4.
/// The catalog of metric families lives in docs/observability.md.

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Global instrumentation switch. Hot-path call sites (the sweep loop,
/// the filter gate) check this before recording so an A/B overhead
/// measurement can run both arms in one process; cold paths (reconnect,
/// journal flush) record unconditionally. Defaults to on.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonic event count. `add` is a relaxed fetch_add — safe from any
/// thread, never a lock.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (keys/s, pending records, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Mergeable state of a histogram: 64 log2 buckets over microseconds.
/// Bucket i counts observations in (2^(i-1), 2^i] microseconds (bucket
/// 0 holds everything at or below 1 µs), so the scheme needs no
/// configuration and any two snapshots merge bucket-wise regardless of
/// which process produced them. `count` is derived from the buckets,
/// never stored, so a snapshot taken mid-update is internally
/// consistent by construction.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  double sum = 0;  ///< total observed seconds (approximate under races)

  std::uint64_t count() const;
  void merge(const HistogramSnapshot& other);

  /// Upper bound of bucket i in seconds (2^i microseconds).
  static double bucket_upper_s(std::size_t i);

  /// Quantile in seconds by linear interpolation inside the owning
  /// bucket; p in [0,1]. Returns 0 when empty.
  double quantile(double p) const;

  /// Mean observed value in seconds; 0 when empty.
  double mean() const;
};

/// Concurrent histogram of durations in seconds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void observe(double seconds) {
    buckets_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(seconds > 0 ? seconds : 0.0,
                   std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  static std::size_t bucket_of(double seconds);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's value inside a snapshot.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0;
  HistogramSnapshot hist;
};

/// Point-in-time copy of a registry (or a merge of several). Metric
/// names are the keys; map order makes rendering deterministic.
struct RegistrySnapshot {
  std::map<std::string, MetricValue> metrics;

  /// Folds `other` in: counters and histogram buckets add, gauges add
  /// too (a cluster roll-up of rates sums naturally; per-node gauges
  /// that must not be summed belong in per-worker views, not merges).
  void merge(const RegistrySnapshot& other);

  const MetricValue* find(std::string_view name) const;

  /// Counter value by name, 0 when absent or not a counter.
  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;
  /// Gauge value by name, fallback when absent or not a gauge.
  double gauge_or(std::string_view name, double fallback = 0) const;
  /// Histogram by name, nullptr when absent or not a histogram.
  const HistogramSnapshot* histogram(std::string_view name) const;

  bool empty() const { return metrics.empty(); }
};

/// after - before, element-wise: counters and histogram buckets
/// subtract (clamped at 0), gauges keep `after`'s value. Metrics only
/// present in `after` pass through; metrics only in `before` drop.
RegistrySnapshot diff(const RegistrySnapshot& after,
                      const RegistrySnapshot& before);

/// Named metric registry. Lookup-or-create takes the mutex; the
/// returned references stay valid for the registry's lifetime.
/// Re-requesting a name with a different kind throws InvalidArgument.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  RegistrySnapshot snapshot() const;

  /// The process-wide registry every built-in instrumentation point
  /// writes to. Workers serialize its snapshot onto heartbeats.
  static Registry& global();

 private:
  struct Cell {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };
  Cell& cell(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Cell, std::less<>> cells_;
};

/// Serializes a snapshot as one JSON object member per metric:
///   {"name":{"type":"counter","value":N}, ...}
/// Histograms carry sparse buckets: {"type":"histogram","sum":S,
/// "buckets":{"12":N,...}}. Counter values above 2^53 would lose
/// precision in JSON numbers, so they are emitted as decimal strings,
/// matching the repo-wide u128 convention.
void snapshot_to_json(json::Writer& w, const RegistrySnapshot& s);
RegistrySnapshot snapshot_from_json(const json::Value& v);
std::string snapshot_to_json_string(const RegistrySnapshot& s);

using LabelList = std::vector<std::pair<std::string, std::string>>;

/// One label-set's worth of metrics inside an exposition (e.g. one
/// worker's snapshot labelled worker="w0").
struct LabeledSnapshot {
  LabelList labels;
  RegistrySnapshot snapshot;
};

/// Renders Prometheus text exposition format 0.0.4: families are
/// grouped across label sets under one `# TYPE` line; histograms emit
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
std::string prometheus_exposition(const std::vector<LabeledSnapshot>& parts);

}  // namespace gks::obs
