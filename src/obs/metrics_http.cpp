#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.h"

namespace gks::obs {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Same "host:port" / "[v6]:port" convention as the TCP transport.
std::pair<std::string, std::string> split_address(const std::string& addr) {
  if (!addr.empty() && addr.front() == '[') {
    const auto close = addr.find(']');
    GKS_REQUIRE(close != std::string::npos && close + 1 < addr.size() &&
                    addr[close + 1] == ':',
                "bracketed address must be [host]:port, got '" + addr + "'");
    std::string host = addr.substr(1, close - 1);
    if (host.empty()) host = "::";
    return {host, addr.substr(close + 2)};
  }
  const auto colon = addr.rfind(':');
  GKS_REQUIRE(colon != std::string::npos,
              "metrics listen address must be host:port, got '" + addr +
                  "'");
  std::string host = addr.substr(0, colon);
  if (host.empty()) host = "0.0.0.0";
  return {host, addr.substr(colon + 1)};
}

std::string sockaddr_text(const sockaddr_storage& ss) {
  char host[INET6_ADDRSTRLEN] = {0};
  std::uint16_t port = 0;
  if (ss.ss_family == AF_INET) {
    const auto* a = reinterpret_cast<const sockaddr_in*>(&ss);
    ::inet_ntop(AF_INET, &a->sin_addr, host, sizeof(host));
    port = ntohs(a->sin_port);
  } else if (ss.ss_family == AF_INET6) {
    const auto* a = reinterpret_cast<const sockaddr_in6*>(&ss);
    ::inet_ntop(AF_INET6, &a->sin6_addr, host, sizeof(host));
    port = ntohs(a->sin6_port);
    // Built by append: gcc 12's -Wrestrict misfires on
    // operator+(const char*, string&&) under -O2.
    std::string out = "[";
    out += host;
    out += "]:";
    out += std::to_string(port);
    return out;
  }
  std::string out = host;
  out += ":";
  out += std::to_string(port);
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // client went away mid-response; nothing to clean up
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Renderer render)
    : render_(std::move(render)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start(const std::string& listen_addr) {
  GKS_REQUIRE(!running_, "metrics server already started");
  const auto [host, port] = split_address(listen_addr);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    throw Error("cannot resolve metrics listen address '" + listen_addr +
                "': " + gai_strerror(gai));
  }
  int fd = -1;
  std::string error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = errno_text("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      break;
    }
    error = errno_text("bind/listen");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw Error("cannot serve metrics on '" + listen_addr + "': " + error);
  }
  if (::pipe(wake_fds_) != 0) {
    ::close(fd);
    throw Error(errno_text("pipe"));
  }
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len);
  address_ = sockaddr_text(ss);
  listen_fd_ = fd;
  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (!running_) return;
  running_ = false;
  // Wake the poll loop via the self-pipe; it sees running_ false and
  // exits before the fds are closed.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
}

void MetricsHttpServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, -1);
    if (!running_) return;
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    handle_client(cfd);
    ::close(cfd);
  }
}

void MetricsHttpServer::handle_client(int fd) {
  // Bound the read so a stalled client cannot wedge the serve loop.
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string request;
  char buf[4096];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  const auto line_end = request.find('\n');
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::string method, path;
  {
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  std::string status = "200 OK";
  std::string content_type =
      "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET" && method != "HEAD") {
    status = "405 Method Not Allowed";
    content_type = "text/plain";
    body = "method not allowed\n";
  } else if (path != "/metrics" && path != "/") {
    status = "404 Not Found";
    content_type = "text/plain";
    body = "try /metrics\n";
  } else {
    try {
      body = render_();
    } catch (const std::exception& e) {
      status = "500 Internal Server Error";
      content_type = "text/plain";
      body = std::string("render failed: ") + e.what() + "\n";
    }
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") response += body;
  send_all(fd, response);
}

}  // namespace gks::obs
