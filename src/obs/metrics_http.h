#pragma once

#include <functional>
#include <string>
#include <thread>

namespace gks::obs {

/// Minimal Prometheus scrape endpoint: serves GET /metrics (and /)
/// with whatever the renderer returns, over plain HTTP/1.0,
/// one-connection-per-request. It shares the dist tier's address
/// conventions — "host:port" or "[v6]:port", port 0 picks one, and
/// address() returns the resolved form — but speaks raw HTTP on its
/// own socket: the transport's GKF1 message framing cannot carry a
/// scrape, so only the addressing idiom is reused, not the framing.
///
/// The renderer runs on the serving thread; it must be thread-safe
/// (registry snapshots are) and should stay cheap — a scrape blocks
/// the next accept until it finishes.
class MetricsHttpServer {
 public:
  using Renderer = std::function<std::string()>;

  explicit MetricsHttpServer(Renderer render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and starts serving; throws gks::Error on bind failure.
  void start(const std::string& listen_addr);
  void stop();

  /// Resolved listen address ("127.0.0.1:43210"); empty before start.
  std::string address() const { return address_; }

 private:
  void serve_loop();
  void handle_client(int fd);

  Renderer render_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe to unblock the poll loop
  std::string address_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace gks::obs
