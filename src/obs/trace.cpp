#include "obs/trace.h"

#include <chrono>

#include "obs/metrics.h"
#include "support/json.h"

namespace gks::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double process_uptime_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       trace_epoch())
      .count();
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::record(SpanRecord r) {
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(r));
  } else {
    ring_[next_ % capacity_] = std::move(r);
  }
  ++next_;
  ++recorded_;
}

std::vector<SpanRecord> TraceRing::recent() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

TraceRing& TraceRing::global() {
  static TraceRing* ring = new TraceRing;
  return *ring;
}

Span::Span(std::string name, Histogram* hist, TraceRing* ring)
    : name_(std::move(name)),
      start_s_(process_uptime_s()),
      hist_(hist),
      ring_(ring),
      active_(enabled()) {}

Span::~Span() {
  if (!active_) return;
  const double dur = process_uptime_s() - start_s_;
  if (hist_ != nullptr) hist_->observe(dur);
  if (ring_ != nullptr) {
    ring_->record({std::move(name_), start_s_, dur, std::move(note_)});
  }
}

void Span::note(std::string_view text) {
  if (!active_) return;
  if (!note_.empty()) note_ += ' ';
  note_ += text;
}

ScopedTimer::ScopedTimer(Histogram& hist)
    : hist_(hist), start_s_(process_uptime_s()) {}

ScopedTimer::~ScopedTimer() {
  hist_.observe(process_uptime_s() - start_s_);
}

void spans_to_json(json::Writer& w, const TraceRing& ring) {
  w.begin_array();
  for (const SpanRecord& r : ring.recent()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("start_s").value(r.start_s);
    w.key("dur_s").value(r.dur_s);
    w.key("note").value(r.note);
    w.end_object();
  }
  w.end_array();
}

}  // namespace gks::obs
