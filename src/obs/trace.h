#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gks::json {
class Writer;
}

namespace gks::obs {

class Histogram;

/// Seconds since this process's trace epoch (first use). All span
/// start times share this clock so a dump reads as one timeline.
double process_uptime_s();

/// One finished span: what ran, when (relative to the trace epoch),
/// for how long, plus a free-form note ("job=alpha lease=42").
struct SpanRecord {
  std::string name;
  double start_s = 0;
  double dur_s = 0;
  std::string note;
};

/// Fixed-capacity ring of the most recent spans. Deliberately small
/// and mutex-guarded: spans mark millisecond-scale phases (lease →
/// scan → retire), never per-candidate work, so contention is nil.
/// The ring is process-local diagnostics — it rides the JSON metrics
/// dump, never the wire protocol.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256);

  void record(SpanRecord r);

  /// Retained spans, oldest first.
  std::vector<SpanRecord> recent() const;

  std::uint64_t dropped() const;

  static TraceRing& global();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

/// RAII span: times its scope, records into a TraceRing and optionally
/// feeds a latency histogram. Both sinks are skipped when obs is
/// disabled at construction time.
class Span {
 public:
  explicit Span(std::string name, Histogram* hist = nullptr,
                TraceRing* ring = &TraceRing::global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Appends to the span's note (space-separated).
  void note(std::string_view text);

 private:
  std::string name_;
  std::string note_;
  double start_s_;
  Histogram* hist_;
  TraceRing* ring_;
  bool active_;
};

/// Times its scope into a histogram only — the zero-allocation sibling
/// of Span for call sites that want latency but no trace entry.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  double start_s_;
};

/// Serializes a ring's retained spans as a JSON array of
/// {"name","start_s","dur_s","note"} objects (oldest first).
void spans_to_json(json::Writer& w, const TraceRing& ring);

}  // namespace gks::obs
