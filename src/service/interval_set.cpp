#include "service/interval_set.h"

#include <algorithm>

namespace gks::service {

u128 IntervalSet::add(const keyspace::Interval& iv) {
  if (iv.empty()) return u128(0);
  u128 merged_begin = iv.begin;
  u128 merged_end = iv.end;
  u128 overlap(0);

  // First piece that could overlap or touch [begin, end): the
  // predecessor if it reaches begin, else the first piece starting
  // inside.
  auto it = pieces_.upper_bound(iv.begin);
  if (it != pieces_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= iv.begin) it = prev;
  }
  // Absorb every piece that overlaps or is adjacent.
  while (it != pieces_.end() && it->first <= merged_end) {
    const u128 lo = std::max(it->first, iv.begin);
    const u128 hi = std::min(it->second, iv.end);
    if (hi > lo) overlap += hi - lo;
    merged_begin = std::min(merged_begin, it->first);
    merged_end = std::max(merged_end, it->second);
    it = pieces_.erase(it);
  }
  pieces_.emplace(merged_begin, merged_end);

  const u128 newly = iv.size() - overlap;
  covered_ += newly;
  return newly;
}

bool IntervalSet::covers(const keyspace::Interval& whole) const {
  if (whole.empty()) return true;
  auto it = pieces_.upper_bound(whole.begin);
  if (it == pieces_.begin()) return false;
  const auto& piece = *std::prev(it);
  return piece.first <= whole.begin && piece.second >= whole.end;
}

std::vector<keyspace::Interval> IntervalSet::gaps(
    const keyspace::Interval& whole) const {
  std::vector<keyspace::Interval> out;
  if (whole.empty()) return out;
  u128 cursor = whole.begin;
  auto it = pieces_.upper_bound(whole.begin);
  // A predecessor piece may reach into `whole` and cover its start.
  if (it != pieces_.begin()) {
    const auto& prev = *std::prev(it);
    if (prev.second > cursor) cursor = prev.second;
  }
  for (; it != pieces_.end() && it->first < whole.end && cursor < whole.end;
       ++it) {
    if (it->first > cursor) out.emplace_back(cursor, it->first);
    cursor = it->second;
  }
  if (cursor < whole.end) out.emplace_back(cursor, whole.end);
  return out;
}

std::vector<keyspace::Interval> IntervalSet::pieces() const {
  std::vector<keyspace::Interval> out;
  out.reserve(pieces_.size());
  for (const auto& [b, e] : pieces_) out.emplace_back(b, e);
  return out;
}

}  // namespace gks::service
