#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "keyspace/interval.h"
#include "support/uint128.h"

namespace gks::service {

/// A set of identifiers maintained as disjoint, non-adjacent
/// half-open intervals — the coverage ledger behind checkpoint/resume.
/// add() reports how many ids were *newly* covered, which is what lets
/// the resume tests prove the union of journaled intervals covers the
/// space exactly once: every add over a crash-consistent journal must
/// return the full interval size.
class IntervalSet {
 public:
  /// Inserts [iv.begin, iv.end), merging with existing coverage.
  /// Returns the number of newly covered ids: equal to iv.size() iff
  /// the interval was disjoint from everything already present.
  u128 add(const keyspace::Interval& iv);

  /// Total ids covered.
  u128 covered() const { return covered_; }

  /// Number of maximal disjoint pieces.
  std::size_t piece_count() const { return pieces_.size(); }

  bool empty() const { return pieces_.empty(); }

  /// True when every id of `whole` is covered.
  bool covers(const keyspace::Interval& whole) const;

  /// The uncovered sub-intervals of `whole`, in ascending order — the
  /// work a resumed job still has to dispatch.
  std::vector<keyspace::Interval> gaps(const keyspace::Interval& whole) const;

  /// The covered pieces, in ascending order.
  std::vector<keyspace::Interval> pieces() const;

 private:
  std::map<u128, u128> pieces_;  ///< begin → end, disjoint, non-adjacent
  u128 covered_{0};
};

}  // namespace gks::service
