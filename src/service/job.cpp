#include "service/job.h"

#include "support/error.h"

namespace gks::service {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPaused: return "paused";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

JobState job_state_from_name(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "paused") return JobState::kPaused;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  GKS_REQUIRE(false, "unknown job state: " + std::string(name));
  return JobState::kQueued;  // unreachable
}

void snapshot_to_json(json::Writer& w, const JobSnapshot& s) {
  w.begin_object()
      .key("id").value(s.id)
      .key("name").value(s.name)
      .key("state").value(job_state_name(s.state))
      .key("priority").value(s.priority)
      .key("weight").value(s.weight)
      .key("space").value(s.space.to_string())
      .key("scanned").value(s.scanned.to_string())
      .key("intervals_issued").value(s.intervals_issued)
      .key("intervals_retired").value(s.intervals_retired)
      .key("leases_expired").value(s.leases_expired)
      .key("targets_total").value(static_cast<std::uint64_t>(s.targets_total))
      .key("targets_found").value(static_cast<std::uint64_t>(s.targets_found))
      .key("keys_per_s").value(s.keys_per_s)
      .key("eta_s").value(s.eta_s)
      .key("elapsed_s").value(s.elapsed_s)
      .key("busy_s").value(s.busy_s)
      .key("filter_gate_hits").value(s.filter_gate_hits)
      .key("filter_false_positives").value(s.filter_false_positives)
      .key("found").begin_array();
  for (const auto& [digest, key] : s.found) {
    w.begin_object()
        .key("digest").value(digest)
        .key("key").value(key)
        .end_object();
  }
  w.end_array();
  if (!s.error.empty()) w.key("error").value(s.error);
  w.end_object();
}

JobSnapshot snapshot_from_json(const json::Value& v) {
  JobSnapshot s;
  s.id = static_cast<JobId>(v.number_or("id", 0));
  s.name = v.at("name").as_string();
  s.state = job_state_from_name(v.at("state").as_string());
  s.priority = static_cast<int>(v.number_or("priority", 0));
  s.weight = v.number_or("weight", 1.0);
  s.space = u128::parse(v.at("space").as_string());
  s.scanned = u128::parse(v.at("scanned").as_string());
  s.intervals_issued =
      static_cast<std::uint64_t>(v.number_or("intervals_issued", 0));
  s.intervals_retired =
      static_cast<std::uint64_t>(v.number_or("intervals_retired", 0));
  s.leases_expired =
      static_cast<std::uint64_t>(v.number_or("leases_expired", 0));
  s.targets_total =
      static_cast<std::size_t>(v.number_or("targets_total", 0));
  s.targets_found =
      static_cast<std::size_t>(v.number_or("targets_found", 0));
  s.keys_per_s = v.number_or("keys_per_s", 0);
  s.eta_s = v.number_or("eta_s", 0);
  s.elapsed_s = v.number_or("elapsed_s", 0);
  s.busy_s = v.number_or("busy_s", 0);
  s.filter_gate_hits =
      static_cast<std::uint64_t>(v.number_or("filter_gate_hits", 0));
  s.filter_false_positives =
      static_cast<std::uint64_t>(v.number_or("filter_false_positives", 0));
  if (const json::Value* found = v.find("found")) {
    for (const json::Value& f : found->as_array()) {
      s.found.emplace_back(f.at("digest").as_string(),
                           f.at("key").as_string());
    }
  }
  s.error = v.string_or("error", "");
  return s;
}

}  // namespace gks::service
