#include "service/job.h"

#include "support/error.h"

namespace gks::service {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPaused: return "paused";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

JobState job_state_from_name(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "paused") return JobState::kPaused;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  GKS_REQUIRE(false, "unknown job state: " + std::string(name));
  return JobState::kQueued;  // unreachable
}

}  // namespace gks::service
