#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/multi_crack.h"
#include "support/json.h"
#include "support/uint128.h"

namespace gks::service {

/// Handle for a submitted job; unique within one JobManager.
using JobId = std::uint64_t;

/// Job lifecycle (docs/service.md):
///
///   queued ──▶ running ◀──▶ paused
///     │           │            │
///     └──────┬────┴────┬───────┘
///            ▼         ▼
///   done / failed / cancelled          (terminal)
///
/// `queued` means runnable but no quantum dispatched yet; `running`
/// means at least one quantum has been dispatched and the job still
/// has work pending or in flight.
enum class JobState {
  kQueued,
  kRunning,
  kPaused,
  kDone,
  kFailed,
  kCancelled,
};

const char* job_state_name(JobState s);
bool is_terminal(JobState s);
/// Inverse of job_state_name; throws InvalidArgument on unknown names
/// (journal corruption).
JobState job_state_from_name(std::string_view name);

/// What a tenant submits: a multi-target crack request plus the
/// scheduling knobs. A single-digest job is simply a one-element
/// batch — the service runs everything through the multi-target sweep
/// engine.
struct JobSpec {
  /// Identity: unique among live jobs in a manager, and the key the
  /// journal uses to reassemble progress on resume.
  std::string name;
  core::MultiCrackRequest request;
  /// Scheduling share doubles per priority step (see
  /// FairShareScheduler); 0 is the normal class.
  int priority = 0;
  /// Fair-share weight within a priority class; must be positive.
  double weight = 1.0;
};

/// Point-in-time observability view of one job, safe to read after the
/// job (or the manager) is gone.
struct JobSnapshot {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  int priority = 0;
  double weight = 1.0;

  u128 space{0};    ///< total candidates in the key space
  u128 scanned{0};  ///< candidates retired (journaled coverage)
  std::uint64_t intervals_issued = 0;   ///< quanta dispatched to workers
  std::uint64_t intervals_retired = 0;  ///< quanta (incl. partials) retired
  /// Remote leases whose holder went silent past the deadline; their
  /// intervals returned to the pending queue for re-dispatch.
  std::uint64_t leases_expired = 0;
  std::size_t targets_total = 0;        ///< request slots
  std::size_t targets_found = 0;        ///< slots resolved so far

  /// Aggregate measured rate (candidates/s of wall time since first
  /// dispatch) — reflects the fair-share slice the job is actually
  /// receiving, not the hardware peak.
  double keys_per_s = 0;
  /// Remaining / keys_per_s under the affine scan-cost model of
  /// dispatch::PerfModel (t = n/X + c with the per-quantum overhead c
  /// already amortized into the measured rate); 0 when unknown.
  double eta_s = 0;
  /// Wall seconds since the first quantum was dispatched.
  double elapsed_s = 0;
  /// Summed worker wall seconds inside scan() — local quanta plus the
  /// busy time remote workers report when retiring leases. Feeds the
  /// quantum/lease sizing rate estimate.
  double busy_s = 0;

  /// Recovered (digest hex, key) pairs, in recovery order.
  std::vector<std::pair<std::string, std::string>> found;
  /// TargetIndex gate traffic across the job's sweep so far: probes
  /// that passed the front gate, and the subset that then failed
  /// confirmation (the filter's measured false-positive cost).
  std::uint64_t filter_gate_hits = 0;
  std::uint64_t filter_false_positives = 0;
  /// Failure reason when state == kFailed.
  std::string error;

  /// Fraction of the key space retired, in [0, 1].
  double progress() const {
    return space > u128(0) ? scanned.to_double() / space.to_double() : 1.0;
  }
};

/// Serializes a snapshot as one JSON object — the per-job shape of
/// `gks-jobs --json` and of the dist protocol's `status` response, so
/// local and remote observability stay key-compatible by construction.
void snapshot_to_json(json::Writer& w, const JobSnapshot& s);

/// Inverse of snapshot_to_json (missing optional members default);
/// remote clients rebuild snapshots from a coordinator's status reply.
JobSnapshot snapshot_from_json(const json::Value& v);

}  // namespace gks::service
