#include "service/job_manager.h"

#include <algorithm>
#include <cctype>
#include <exception>
#include <utility>

#include "core/multi_crack.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace gks::service {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Handles resolved once; every update after that is a relaxed atomic.
struct ServiceMetrics {
  obs::Counter& submitted =
      obs::Registry::global().counter("gks_jobs_submitted_total");
  obs::Counter& completed =
      obs::Registry::global().counter("gks_jobs_completed_total");
  obs::Counter& quanta =
      obs::Registry::global().counter("gks_job_quanta_total");
  obs::Histogram& quantum_s =
      obs::Registry::global().histogram("gks_job_quantum_seconds");
  obs::Counter& lease_granted =
      obs::Registry::global().counter("gks_lease_granted_total");
  obs::Counter& lease_retired =
      obs::Registry::global().counter("gks_lease_retired_total");
  obs::Counter& lease_expired =
      obs::Registry::global().counter("gks_lease_expired_total");
};

ServiceMetrics& metrics() {
  static ServiceMetrics* m = new ServiceMetrics;
  return *m;
}

}  // namespace

JobManager::JobManager(JobServiceConfig config) : config_(std::move(config)) {
  GKS_REQUIRE(config_.quantum_slice_s > 0, "quantum slice must be positive");
  GKS_REQUIRE(config_.min_quantum > u128(0), "min quantum must be positive");
  GKS_REQUIRE(config_.min_quantum <= config_.max_quantum,
              "min quantum above max quantum");
  if (!config_.journal_path.empty()) {
    store_.open(config_.journal_path, config_.journal_flush,
                config_.journal_rotate_bytes);
  }

  if (config_.local_scan) {
    std::size_t n = config_.workers;
    if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

JobManager::~JobManager() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    // Preempt in-flight scans at their next chunk boundary; untested
    // remainders never get journaled as covered, so non-terminal jobs
    // stay exactly resumable.
    for (auto& [id, job] : jobs_) {
      job->interrupt.store(true, std::memory_order_release);
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

JobManager::JobImpl& JobManager::job_ref(JobId id) {
  const auto it = jobs_.find(id);
  GKS_REQUIRE(it != jobs_.end(), "unknown job id " + std::to_string(id));
  return *it->second;
}

const JobManager::JobImpl& JobManager::job_ref(JobId id) const {
  const auto it = jobs_.find(id);
  GKS_REQUIRE(it != jobs_.end(), "unknown job id " + std::to_string(id));
  return *it->second;
}

bool JobManager::runnable(const JobImpl& job) const {
  // all_found() gates dispatch instead of clearing `pending`: the
  // unscanned keyspace must survive in the queue so a later
  // add_targets can resume the sweep where it left off.
  return !job.pending.empty() && !job.sweeper->all_found() &&
         !job.cancel_requested && job.error.empty() &&
         (job.state == JobState::kQueued || job.state == JobState::kRunning);
}

bool JobManager::work_available() const {
  return scheduler_.pick().has_value();
}

u128 JobManager::quantum_for(const JobImpl& job) const {
  // Per-worker rate: total ids retired over total worker-seconds spent
  // scanning them. Sized so one quantum costs ~quantum_slice_s of wall
  // time, bounding how long a worker runs between scheduler visits.
  const double rate =
      job.busy_s > 0 ? job.scanned.to_double() / job.busy_s : 0;
  if (rate <= 0) return config_.min_quantum;
  const double target = rate * config_.quantum_slice_s;
  if (target <= config_.min_quantum.to_double()) return config_.min_quantum;
  if (target >= config_.max_quantum.to_double()) return config_.max_quantum;
  return u128(static_cast<std::uint64_t>(target));
}

JobId JobManager::submit(JobSpec spec) {
  GKS_REQUIRE(!spec.name.empty(), "job name must not be empty");
  GKS_REQUIRE(spec.weight > 0, "job weight must be positive");

  auto job = std::make_unique<JobImpl>();
  job->spec = spec;
  // Validates the request and parses the targets.
  job->sweeper = std::make_unique<core::MultiSweeper>(spec.request);
  job->pending.push_back(job->sweeper->space_interval());

  std::unique_lock lock(mu_);
  GKS_REQUIRE(!stopping_, "submit on a JobManager that is shutting down");
  for (const auto& [id, other] : jobs_) {
    GKS_REQUIRE(is_terminal(other->state) || other->spec.name != spec.name,
                "a live job named '" + spec.name + "' already exists");
  }
  return insert_job_locked(std::move(job), lock);
}

JobId JobManager::find_or_submit(JobSpec spec) {
  GKS_REQUIRE(!spec.name.empty(), "job name must not be empty");
  GKS_REQUIRE(spec.weight > 0, "job weight must be positive");

  // Built before the lock like submit(); wasted when the name exists,
  // but validation errors must surface either way and the existing-name
  // case is the rare one.
  auto job = std::make_unique<JobImpl>();
  job->spec = spec;
  job->sweeper = std::make_unique<core::MultiSweeper>(spec.request);
  job->pending.push_back(job->sweeper->space_interval());

  std::unique_lock lock(mu_);
  GKS_REQUIRE(!stopping_, "submit on a JobManager that is shutting down");
  std::optional<JobId> existing;
  for (const auto& [id, other] : jobs_) {
    if (other->spec.name == spec.name) existing = id;  // latest wins
  }
  if (existing.has_value()) return *existing;
  return insert_job_locked(std::move(job), lock);
}

JobId JobManager::insert_job_locked(std::unique_ptr<JobImpl> job,
                                    std::unique_lock<std::mutex>& lock) {
  const JobId id = next_id_++;
  job->id = id;
  store_.record_job(job->spec);
  scheduler_.add(id, job->spec.weight, job->spec.priority);
  jobs_.emplace(id, std::move(job));
  metrics().submitted.add(1);
  lock.unlock();
  work_cv_.notify_all();
  return id;
}

std::size_t JobManager::resume_from(const std::string& journal_path,
                                    JobStore::LoadReport* report) {
  std::size_t brought_back = 0;
  for (JobStore::RecoveredJob& rec : JobStore::load(journal_path, report)) {
    if (rec.final_state.has_value()) continue;  // already terminal

    auto job = std::make_unique<JobImpl>();
    job->spec = rec.spec;
    job->sweeper = std::make_unique<core::MultiSweeper>(rec.spec.request);
    // Replay the target-set history in journal order: a found record
    // may reference a digest only attached by an earlier add record,
    // and a remove must not suppress a recovery journaled before it.
    using Event = JobStore::RecoveredJob::TargetEvent;
    for (const Event& ev : rec.events) {
      switch (ev.kind) {
        case Event::Kind::kFound:
          job->targets_found +=
              job->sweeper->mark_found_hex(ev.digest_hex, ev.key).size();
          break;
        case Event::Kind::kAdd: {
          const core::TargetAddOutcome out =
              job->sweeper->add_targets(ev.targets);
          job->targets_found += out.already_found;
          break;
        }
        case Event::Kind::kRemove:
          job->sweeper->remove_targets(ev.targets);
          break;
      }
    }
    job->coverage = std::move(rec.scanned);
    job->scanned = job->coverage.covered();
    const auto gaps = job->coverage.gaps(job->sweeper->space_interval());
    job->pending.assign(gaps.begin(), gaps.end());

    std::unique_lock lock(mu_);
    GKS_REQUIRE(!stopping_, "resume on a JobManager that is shutting down");
    for (const auto& [id, other] : jobs_) {
      GKS_REQUIRE(
          is_terminal(other->state) || other->spec.name != rec.spec.name,
          "a live job named '" + rec.spec.name + "' already exists");
    }
    const JobId id = next_id_++;
    job->id = id;
    // Resuming into a *different* journal: re-record everything so the
    // new journal is self-contained. Resuming into the same file keeps
    // the existing records (load() keeps a job's first spec record).
    if (store_.persistent() && store_.path() != journal_path) {
      store_.record_job(job->spec);
      for (const keyspace::Interval& piece : job->coverage.pieces()) {
        store_.record_interval(job->spec.name, piece);
      }
      for (const Event& ev : rec.events) {
        switch (ev.kind) {
          case Event::Kind::kFound:
            store_.record_found(job->spec.name, ev.digest_hex, ev.key);
            break;
          case Event::Kind::kAdd:
            store_.record_targets_add(job->spec.name, ev.targets);
            break;
          case Event::Kind::kRemove:
            store_.record_targets_remove(job->spec.name, ev.targets);
            break;
        }
      }
    }
    JobImpl& ref = *job;
    jobs_.emplace(id, std::move(job));
    if (ref.pending.empty() || ref.sweeper->all_found()) {
      // Nothing left to dispatch — the crash happened after the last
      // quantum was journaled (or every target is already recovered).
      finish(ref, JobState::kDone);
    } else {
      scheduler_.add(id, ref.spec.weight, ref.spec.priority);
    }
    lock.unlock();
    work_cv_.notify_all();
    ++brought_back;
  }
  return brought_back;
}

void JobManager::cancel(JobId id) {
  std::lock_guard lock(mu_);
  JobImpl& job = job_ref(id);
  if (is_terminal(job.state)) return;
  job.cancel_requested = true;
  job.interrupt.store(true, std::memory_order_release);
  scheduler_.set_runnable(id, false);
  // Remote leases have no interrupt flag to observe — drop them now.
  // A holder that retires one later gets `false` back, the standard
  // stale-lease answer.
  std::vector<std::uint64_t> doomed;
  for (const auto& [lease_id, ls] : leases_) {
    if (ls.job == id) doomed.push_back(lease_id);
  }
  for (const std::uint64_t lease_id : doomed) {
    reclaim_lease_locked(lease_id, /*count_expired=*/false);
  }
  maybe_complete(job);
}

void JobManager::pause(JobId id) {
  std::lock_guard lock(mu_);
  JobImpl& job = job_ref(id);
  if (is_terminal(job.state) || job.state == JobState::kPaused) return;
  job.state = JobState::kPaused;
  job.interrupt.store(true, std::memory_order_release);
  scheduler_.set_runnable(id, false);
}

void JobManager::resume(JobId id) {
  std::lock_guard lock(mu_);
  JobImpl& job = job_ref(id);
  if (job.state != JobState::kPaused) return;
  job.state = job.dispatched_once ? JobState::kRunning : JobState::kQueued;
  job.interrupt.store(false, std::memory_order_release);
  scheduler_.set_runnable(id, runnable(job));
  maybe_complete(job);  // the sweep may have finished before the pause
  work_cv_.notify_all();
}

core::TargetAddOutcome JobManager::add_targets(
    JobId id, const std::vector<std::string>& hexes) {
  std::unique_lock lock(mu_);
  JobImpl& job = job_ref(id);
  GKS_REQUIRE(!is_terminal(job.state),
              "add_targets on terminal job '" + job.spec.name + "'");
  // Validate before journaling so a malformed batch leaves no record;
  // then journal before applying so a crash between the two replays
  // the add rather than losing targets the caller was told about.
  job.sweeper->validate_target_hexes(hexes);
  store_.record_targets_add(job.spec.name, hexes);
  const core::TargetAddOutcome out = job.sweeper->add_targets(hexes);
  // Slots duplicating an already-recovered digest resolve right here.
  job.targets_found += out.already_found;
  if (out.attached > 0) {
    // The outstanding target set grew: bump the generation (lease
    // grants carry it, so coordinators re-send the spec to sessions
    // whose cached sweeper predates this add) and reclaim in-flight
    // leases — their holders are scanning with the old target set, and
    // an interval they retire as covered would never have looked for
    // the new digest. Reclaimed intervals re-dispatch under the new
    // generation; overlap with a late retire is absorbed by the
    // coverage ledger and found-dedup, exactly like lease expiry.
    ++job.target_gen;
    std::vector<std::uint64_t> stale;
    for (const auto& [lease_id, ls] : leases_) {
      if (ls.job == job.id) stale.push_back(lease_id);
    }
    for (const std::uint64_t lease_id : stale) {
      reclaim_lease_locked(lease_id, /*count_expired=*/false);
    }
    // A job idled by all-found has pending keyspace again.
    scheduler_.set_runnable(job.id, runnable(job));
    lock.unlock();
    work_cv_.notify_all();
  }
  return out;
}

std::size_t JobManager::remove_targets(JobId id,
                                       const std::vector<std::string>& hexes) {
  std::lock_guard lock(mu_);
  JobImpl& job = job_ref(id);
  GKS_REQUIRE(!is_terminal(job.state),
              "remove_targets on terminal job '" + job.spec.name + "'");
  job.sweeper->validate_target_hexes(hexes);
  store_.record_targets_remove(job.spec.name, hexes);
  const std::size_t detached = job.sweeper->remove_targets(hexes);
  if (detached > 0) {
    // Workers holding a cached spec should stop scanning for the
    // detached digests; the next lease they are granted carries the
    // new generation and re-sends the spec. (No lease reclaim: keeping
    // scanning a removed digest wastes cycles but breaks nothing.)
    ++job.target_gen;
    if (job.sweeper->all_found()) {
      // The last outstanding digest is gone: stop dispatching and let
      // the job complete once in-flight quanta retire.
      scheduler_.set_runnable(job.id, false);
      maybe_complete(job);
    }
  }
  return detached;
}

std::optional<LeaseGrant> JobManager::lease(const std::string& holder,
                                            const u128& max_ids,
                                            double deadline) {
  GKS_REQUIRE(!holder.empty(), "lease holder must not be empty");
  GKS_REQUIRE(max_ids > u128(0), "lease size must be positive");
  std::lock_guard lock(mu_);
  if (stopping_) return std::nullopt;
  for (;;) {
    const std::optional<JobId> picked = scheduler_.pick();
    if (!picked.has_value()) return std::nullopt;
    JobImpl& job = *jobs_.at(*picked);
    if (job.pending.empty()) {  // defensive: keep the scheduler honest
      scheduler_.set_runnable(job.id, false);
      continue;
    }

    // Identical bookkeeping to a local quantum dispatch: the lease is
    // an in-flight interval, charged to the job's fair share now so
    // concurrent holders don't pile onto the same underserved job.
    const keyspace::Interval front = job.pending.front();
    job.pending.pop_front();
    const u128 take = std::min(max_ids, front.size());
    const keyspace::Interval quantum(front.begin, front.begin + take);
    if (take < front.size()) {
      job.pending.emplace_front(front.begin + take, front.end);
    }
    ++job.in_flight;
    ++job.intervals_issued;
    if (!job.dispatched_once) {
      job.dispatched_once = true;
      job.first_dispatch = std::chrono::steady_clock::now();
    }
    if (job.state == JobState::kQueued) job.state = JobState::kRunning;
    scheduler_.charge(job.id, quantum.size());
    scheduler_.set_runnable(job.id, runnable(job));

    LeaseGrant grant;
    grant.lease_id = next_lease_id_++;
    grant.job = job.id;
    grant.job_name = job.spec.name;
    grant.interval = quantum;
    grant.target_gen = job.target_gen;
    leases_.emplace(grant.lease_id,
                    LeaseState{job.id, quantum, holder, deadline});
    metrics().lease_granted.add(1);
    return grant;
  }
}

bool JobManager::retire_lease(
    std::uint64_t lease_id, const u128& tested,
    const std::vector<std::pair<std::string, std::string>>& found,
    double busy_s, std::size_t* forged) {
  std::unique_lock lock(mu_);
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;  // expired / revoked / bogus
  const LeaseState ls = it->second;
  leases_.erase(it);
  metrics().lease_retired.add(1);
  JobImpl& job = *jobs_.at(ls.job);
  --job.in_flight;
  ++job.intervals_retired;
  job.busy_s += busy_s;

  // Recoveries journal before the interval that contains them — same
  // crash-ordering argument as the local worker path: losing the found
  // record at worst rescans the interval; the opposite order could
  // mark the key's interval covered while losing the key forever.
  for (const auto& [digest_hex, key] : found) {
    if (apply_found_locked(job, digest_hex, key) == FoundOutcome::kForged &&
        forged != nullptr) {
      ++*forged;
    }
  }
  const u128 n = std::min(tested, ls.interval.size());
  const keyspace::Interval done(ls.interval.begin, ls.interval.begin + n);
  if (!done.empty()) {
    store_.record_interval(job.spec.name, done);
    job.scanned += job.coverage.add(done);
  }
  if (n < ls.interval.size()) {
    job.pending.emplace_front(ls.interval.begin + n, ls.interval.end);
  }
  scheduler_.set_runnable(job.id, runnable(job));
  maybe_complete(job);
  const bool more = work_available();
  lock.unlock();
  if (more) work_cv_.notify_one();
  return true;
}

FoundOutcome JobManager::report_found(std::uint64_t lease_id,
                                      const std::string& digest_hex,
                                      const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return FoundOutcome::kNoLease;
  JobImpl& job = *jobs_.at(it->second.job);
  const FoundOutcome outcome = apply_found_locked(job, digest_hex, key);
  // The recovery may have resolved the last outstanding target; stop
  // dispatching (the job completes once in-flight work retires).
  scheduler_.set_runnable(job.id, runnable(job));
  return outcome;
}

std::size_t JobManager::renew_leases(const std::string& holder,
                                     double deadline) {
  std::lock_guard lock(mu_);
  std::size_t renewed = 0;
  for (auto& [lease_id, ls] : leases_) {
    if (ls.holder != holder) continue;
    if (deadline > ls.deadline) ls.deadline = deadline;
    ++renewed;
  }
  return renewed;
}

std::size_t JobManager::expire_leases(
    double now, std::vector<std::string>* expired_holders) {
  std::unique_lock lock(mu_);
  std::vector<std::uint64_t> dead;
  for (const auto& [lease_id, ls] : leases_) {
    if (now > ls.deadline) {
      dead.push_back(lease_id);
      if (expired_holders != nullptr) expired_holders->push_back(ls.holder);
    }
  }
  for (const std::uint64_t lease_id : dead) {
    reclaim_lease_locked(lease_id, /*count_expired=*/true);
  }
  if (!dead.empty()) metrics().lease_expired.add(dead.size());
  const bool more = !dead.empty() && work_available();
  lock.unlock();
  if (more) work_cv_.notify_all();
  return dead.size();
}

std::size_t JobManager::revoke_leases(const std::string& holder) {
  std::unique_lock lock(mu_);
  std::vector<std::uint64_t> dead;
  for (const auto& [lease_id, ls] : leases_) {
    if (ls.holder == holder) dead.push_back(lease_id);
  }
  for (const std::uint64_t lease_id : dead) {
    reclaim_lease_locked(lease_id, /*count_expired=*/false);
  }
  const bool more = !dead.empty() && work_available();
  lock.unlock();
  if (more) work_cv_.notify_all();
  return dead.size();
}

bool JobManager::lease_live(std::uint64_t lease_id) const {
  std::lock_guard lock(mu_);
  return leases_.count(lease_id) != 0;
}

std::size_t JobManager::lease_count() const {
  std::lock_guard lock(mu_);
  return leases_.size();
}

JobSpec JobManager::wire_spec(
    JobId id,
    std::vector<std::pair<std::string, std::string>>* found_so_far) const {
  std::lock_guard lock(mu_);
  const JobImpl& job = job_ref(id);
  JobSpec spec = job.spec;
  // The spec's hex list is frozen at submission; the sweeper's slot
  // view is the live target set (add_targets extends it behind the
  // spec's back).
  spec.request.target_hexes.clear();
  const std::size_t slots = job.sweeper->slot_count();
  spec.request.target_hexes.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    spec.request.target_hexes.push_back(job.sweeper->slot_hex(i));
  }
  if (found_so_far != nullptr) *found_so_far = job.sweeper->found_so_far();
  return spec;
}

void JobManager::reclaim_lease_locked(std::uint64_t lease_id,
                                      bool count_expired) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  const LeaseState ls = it->second;
  leases_.erase(it);
  JobImpl& job = *jobs_.at(ls.job);
  --job.in_flight;
  if (count_expired) ++job.leases_expired;
  if (!job.cancel_requested && !is_terminal(job.state)) {
    // The holder may have scanned part (or all) of the interval, but
    // nothing was retired, so nothing is covered: re-dispatch the
    // whole thing. Overlap with a late retire is absorbed by the
    // coverage ledger and found dedup.
    job.pending.emplace_front(ls.interval);
  }
  scheduler_.set_runnable(job.id, runnable(job));
  maybe_complete(job);
}

FoundOutcome JobManager::apply_found_locked(JobImpl& job,
                                            const std::string& digest_hex,
                                            const std::string& key) {
  // Verify before believing: recompute the claimed preimage's digest
  // under the job's salt scheme. A mismatch — fabricated key,
  // corrupted frame, malformed hex — must never reach the journal or
  // the found broadcast; the caller turns it into a strike against the
  // holder. (Comparison is on the canonical lower-case rendering, so
  // an honest mixed-case report still verifies.)
  std::string want = digest_hex;
  std::transform(want.begin(), want.end(), want.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (core::salted_digest_hex(job.spec.request.algorithm,
                              job.spec.request.salt, key) != want) {
    return FoundOutcome::kForged;
  }
  std::vector<std::size_t> slots;
  try {
    slots = job.sweeper->mark_found_hex(want, key);
  } catch (const Error&) {
    return FoundOutcome::kForged;  // unreachable: `want` verified above
  }
  // Empty means a duplicate report or a target removed mid-lease —
  // not ours to journal; this is what keeps found accounting
  // exactly-once when two holders race on a re-dispatched interval.
  if (slots.empty()) return FoundOutcome::kDuplicate;
  job.targets_found += slots.size();
  store_.record_found(job.spec.name, job.sweeper->slot_hex(slots.front()),
                      key);
  return FoundOutcome::kApplied;
}

JobSnapshot JobManager::status(JobId id) const {
  std::lock_guard lock(mu_);
  return snapshot_locked(job_ref(id));
}

std::vector<JobSnapshot> JobManager::snapshot_all() const {
  std::lock_guard lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

std::optional<JobId> JobManager::find_job(std::string_view name) const {
  std::lock_guard lock(mu_);
  std::optional<JobId> found;
  for (const auto& [id, job] : jobs_) {
    if (job->spec.name == name) found = id;  // latest submission wins
  }
  return found;
}

bool JobManager::wait(JobId id, double timeout_s) const {
  std::unique_lock lock(mu_);
  const auto done = [&] { return is_terminal(job_ref(id).state); };
  if (timeout_s < 0) {
    done_cv_.wait(lock, done);
    return true;
  }
  return done_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                           done);
}

void JobManager::wait_all() const {
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] {
    return std::all_of(jobs_.begin(), jobs_.end(), [](const auto& e) {
      return is_terminal(e.second->state);
    });
  });
}

JobSnapshot JobManager::snapshot_locked(const JobImpl& job) const {
  JobSnapshot s;
  s.id = job.id;
  s.name = job.spec.name;
  s.state = job.state;
  s.priority = job.spec.priority;
  s.weight = job.spec.weight;
  s.space = job.sweeper->space_size();
  s.scanned = job.scanned;
  s.intervals_issued = job.intervals_issued;
  s.intervals_retired = job.intervals_retired;
  s.leases_expired = job.leases_expired;
  s.targets_total = job.sweeper->slot_count();
  s.targets_found = job.targets_found;
  if (job.dispatched_once) {
    const auto end = is_terminal(job.state)
                         ? job.finished
                         : std::chrono::steady_clock::now();
    s.elapsed_s = seconds_between(job.first_dispatch, end);
  }
  s.busy_s = job.busy_s;
  s.keys_per_s = s.elapsed_s > 0 ? s.scanned.to_double() / s.elapsed_s : 0;
  if (s.keys_per_s > 0 && !is_terminal(job.state)) {
    const u128 remaining = s.space - s.scanned;
    s.eta_s = remaining.to_double() / s.keys_per_s;
  }
  s.found = job.sweeper->found_so_far();
  const core::SweepFilterStats fstats = job.sweeper->filter_stats();
  s.filter_gate_hits = fstats.gate_hits;
  s.filter_false_positives = fstats.false_positives;
  s.error = job.error;
  return s;
}

void JobManager::finish(JobImpl& job, JobState terminal) {
  job.state = terminal;
  job.finished = std::chrono::steady_clock::now();
  if (terminal == JobState::kDone) metrics().completed.add(1);
  store_.record_state(job.spec.name, terminal);
  scheduler_.remove(job.id);
  done_cv_.notify_all();
}

void JobManager::maybe_complete(JobImpl& job) {
  if (is_terminal(job.state) || job.in_flight > 0) return;
  if (!job.error.empty()) {
    finish(job, JobState::kFailed);
  } else if (job.cancel_requested) {
    finish(job, JobState::kCancelled);
  } else if ((job.pending.empty() || job.sweeper->all_found()) &&
             job.state != JobState::kPaused) {
    finish(job, JobState::kDone);
  }
}

void JobManager::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || work_available(); });
    if (stopping_) return;
    const std::optional<JobId> picked = scheduler_.pick();
    if (!picked.has_value()) continue;
    JobImpl& job = *jobs_.at(*picked);
    if (job.pending.empty()) {  // defensive: keep the scheduler honest
      scheduler_.set_runnable(job.id, false);
      continue;
    }

    // Slice one quantum off the front of the pending keyspace.
    const keyspace::Interval front = job.pending.front();
    job.pending.pop_front();
    const u128 take = std::min(quantum_for(job), front.size());
    const keyspace::Interval quantum(front.begin, front.begin + take);
    if (take < front.size()) {
      job.pending.emplace_front(front.begin + take, front.end);
    }
    ++job.in_flight;
    ++job.intervals_issued;
    if (!job.dispatched_once) {
      job.dispatched_once = true;
      job.first_dispatch = std::chrono::steady_clock::now();
    }
    if (job.state == JobState::kQueued) job.state = JobState::kRunning;
    // Charge at dispatch so concurrent workers don't all pile onto the
    // same min-vtime job while its first quantum is still in flight.
    scheduler_.charge(job.id, quantum.size());
    scheduler_.set_runnable(job.id, runnable(job));

    core::MultiSweeper* const sweeper = job.sweeper.get();
    const std::atomic<bool>* const interrupt = &job.interrupt;
    lock.unlock();

    std::vector<core::SweepHit> hits;
    u128 tested(0);
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    try {
      tested = sweeper->scan(quantum, hits, interrupt);
    } catch (const std::exception& e) {
      error = e.what();
    }
    const double wall =
        seconds_between(start, std::chrono::steady_clock::now());
    metrics().quanta.add(1);
    metrics().quantum_s.observe(wall);

    lock.lock();
    --job.in_flight;
    ++job.intervals_retired;
    job.busy_s += wall;
    if (!error.empty()) {
      // The quantum's coverage is unknown — treat it as untested and
      // keep it out of the journal. The error interrupts the job's
      // other in-flight quanta and turns terminal once they retire.
      job.pending.emplace_front(quantum);
      job.error = error;
      job.interrupt.store(true, std::memory_order_release);
    } else {
      // Journal recoveries before the interval that contains them: a
      // crash between the two appends then at worst rescans the
      // interval (the replayed recovery deduplicates the second hit);
      // the opposite order could mark the key's interval covered while
      // losing the key forever.
      for (const core::SweepHit& hit : hits) {
        const auto slots = sweeper->mark_found(hit.unique_index, hit.key);
        // Empty means a duplicate from a stale snapshot or a target
        // removed mid-flight — either way not ours to journal, which
        // is what keeps found accounting exactly-once under mutation.
        if (slots.empty()) continue;
        job.targets_found += slots.size();
        // slot_hex, not spec.request: add_targets extends the hex list
        // behind the spec's back, and the sweeper's accessor is the
        // thread-safe view of it.
        store_.record_found(job.spec.name, sweeper->slot_hex(slots.front()),
                            hit.key);
      }
      const keyspace::Interval done(quantum.begin, quantum.begin + tested);
      if (!done.empty()) {
        store_.record_interval(job.spec.name, done);
        job.scanned += job.coverage.add(done);
      }
      // A short count is an interrupt or a generation handoff (the
      // target set was mutated mid-quantum): re-queue the remainder so
      // it is rescanned against the current target set.
      if (tested < quantum.size()) {
        job.pending.emplace_front(quantum.begin + tested, quantum.end);
      }
    }
    scheduler_.set_runnable(job.id, runnable(job));
    maybe_complete(job);
    if (work_available()) work_cv_.notify_one();
  }
}

}  // namespace gks::service
