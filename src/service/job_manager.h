#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/multi_sweep.h"
#include "keyspace/interval.h"
#include "service/interval_set.h"
#include "service/job.h"
#include "service/journal.h"
#include "service/scheduler.h"
#include "support/uint128.h"

namespace gks::service {

struct JobServiceConfig {
  /// Worker threads; 0 uses the hardware concurrency.
  std::size_t workers = 0;
  /// Target wall time of one preemption quantum. Quanta are sized from
  /// the measured per-worker scan rate so that a worker re-enters the
  /// scheduler roughly this often — the knob trading fairness
  /// granularity against dispatch overhead (the affine cost model of
  /// dispatch::PerfModel: per-quantum overhead c is amortized over
  /// quantum_slice_s of useful work).
  double quantum_slice_s = 0.05;
  /// Quantum clamp, in candidates. The floor keeps per-quantum
  /// bookkeeping negligible; the ceiling bounds preemption latency
  /// even on very fast scans.
  u128 min_quantum{4096};
  u128 max_quantum{u128(1) << 22};
  /// Checkpoint journal path; empty runs the service in-memory only.
  std::string journal_path;
  /// Journal flush policy (see JobStore::FlushPolicy): the default
  /// flushes every record; coordinators serving many remote workers
  /// batch (group-commit) so interval retirement doesn't serialize on
  /// per-line flushes.
  JobStore::FlushPolicy journal_flush;
  /// Rotate the journal into `<path>.000N` segments once the active
  /// file exceeds this many bytes; 0 keeps a single file (the
  /// default). Replay reads all segments (see JobStore).
  std::size_t journal_rotate_bytes = 0;
  /// When false, no local scan threads are spawned: the manager is a
  /// pure coordinator whose keyspace is consumed exclusively through
  /// the lease API. `workers` is then ignored.
  bool local_scan = true;
};

/// One granted lease: a bounded interval of a job's keyspace checked
/// out to a remote holder until a deadline. The dual of the local
/// worker quantum — same exactly-once machinery (retired coverage is
/// journaled, unretired remainders re-dispatch), but preemption is by
/// deadline instead of interrupt flag, because a remote holder may
/// simply vanish.
struct LeaseGrant {
  std::uint64_t lease_id = 0;
  JobId job = 0;
  std::string job_name;
  keyspace::Interval interval;
  /// The job's target-set generation at grant time (bumped by every
  /// effective add_targets / remove_targets). A coordinator re-sends
  /// the job spec to any session whose last-sent generation differs,
  /// so workers with a cached sweeper rebuild it before scanning.
  std::uint64_t target_gen = 0;
};

/// How the manager judged one reported recovery. Remote workers are
/// untrusted: the manager recomputes the digest of every claimed
/// preimage before journaling it, so a buggy or malicious worker's
/// fabrication (`kForged`) is distinguishable from the benign race of
/// two holders finding the same key (`kDuplicate`) — the coordinator
/// strikes the former and ignores the latter.
enum class FoundOutcome {
  kApplied,    ///< verified, journaled, counted — a new recovery
  kDuplicate,  ///< verified but already recovered (or not a target)
  kForged,     ///< H(key) != digest: fabricated or corrupt report
  kNoLease,    ///< the lease is no longer live
};

/// The multi-tenant job service: owns the worker pool, the fair-share
/// scheduler and the checkpoint journal. Tenants submit JobSpecs and
/// get JobIds; every job — single digest or whole credential store —
/// runs through the same core::MultiSweeper batch path.
///
/// Execution model: each worker repeatedly asks the scheduler for the
/// most underserved runnable job, slices one bounded quantum off that
/// job's pending keyspace, and scans it with the job's interrupt flag
/// as the cooperative preemption hook. Retired quanta are journaled
/// before they are merged into the job's coverage, so a killed process
/// never loses acknowledged work and resume_from() re-dispatches only
/// the unscanned gaps.
///
/// All public methods are thread-safe. Destroying the manager stops
/// the workers (interrupting in-flight scans at the next chunk
/// boundary); non-terminal jobs keep their journaled coverage and can
/// be resumed by a later manager.
class JobManager {
 public:
  explicit JobManager(JobServiceConfig config = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates and enqueues a job. The spec's name must be unique
  /// among live (non-terminal) jobs; throws InvalidArgument otherwise.
  JobId submit(JobSpec spec);

  /// Idempotent-by-name submit: returns the id of the existing job
  /// with this name (live or finished — latest submission wins) or
  /// submits `spec` as a new job. Lookup and insert share one critical
  /// section, so concurrent calls for the same name all resolve to a
  /// single job instead of the losers hitting the duplicate-name
  /// error. This is what the coordinator's remote `submit` verb uses.
  JobId find_or_submit(JobSpec spec);

  /// Reloads a journal written by an earlier run and re-submits every
  /// job without a terminal state record, seeded with its journaled
  /// coverage and recoveries — only the unscanned gaps are dispatched
  /// again. Jobs whose gaps turn out empty complete immediately.
  /// Returns the number of jobs brought back. Corrupt records are
  /// quarantined rather than fatal (see JobStore::load); pass `report`
  /// to learn what was skipped.
  std::size_t resume_from(const std::string& journal_path,
                          JobStore::LoadReport* report = nullptr);

  /// Requests cancellation: the interrupt flag preempts in-flight
  /// quanta at their next chunk boundary and the job goes terminal
  /// (kCancelled) once they retire. No-op on terminal jobs.
  void cancel(JobId id);

  /// Pauses / resumes a job. Pausing preempts in-flight quanta; their
  /// untested remainders return to the pending queue, so a paused job
  /// loses no work. Resuming re-enters the scheduler at the current
  /// fair-share virtual time (no catch-up burst).
  void pause(JobId id);
  void resume(JobId id);

  /// Attaches more target hashes to a live job without restarting its
  /// sweep. The mutation is journaled before it is applied (after
  /// validation, so the journal never holds a doomed record); the
  /// sweeper's generation handoff guarantees a target added before its
  /// covering interval is scanned will be found. Digests already
  /// recovered resolve instantly (`already_found`); a job whose
  /// targets were all recovered goes back to runnable when the add
  /// attaches new outstanding work. An add that attaches outstanding
  /// digests also bumps the job's target generation and reclaims its
  /// live leases: their holders are scanning with the old target set,
  /// and retiring such an interval as covered would silently skip the
  /// new digest forever — reclaimed intervals re-dispatch under the
  /// new generation instead (the coverage ledger absorbs any overlap
  /// with a late retire). Throws InvalidArgument on
  /// malformed hexes, unknown ids, or terminal jobs.
  core::TargetAddOutcome add_targets(JobId id,
                                     const std::vector<std::string>& hexes);

  /// Detaches target hashes from a live job: their digests stop being
  /// scanned for and no longer hold the job open. Removing the last
  /// outstanding target completes the job once in-flight quanta
  /// retire. Returns the number of unique digests detached. Journaled
  /// before applying, like add_targets.
  std::size_t remove_targets(JobId id, const std::vector<std::string>& hexes);

  /// ---- Remote lease API (the distributed tier, src/dist/) --------
  ///
  /// All deadlines and `now` values are caller-supplied monotonic
  /// seconds (the coordinator's Transport::now_s() timebase); the
  /// manager only ever compares them, so real TCP clocks and virtual
  /// simnet clocks both work unchanged.

  /// Checks out up to `max_ids` of the most underserved runnable job's
  /// pending keyspace to `holder`, valid until `deadline`. Fair-share
  /// charging is identical to a local quantum. nullopt when nothing is
  /// runnable.
  std::optional<LeaseGrant> lease(const std::string& holder,
                                  const u128& max_ids, double deadline);

  /// Retires a lease: journals the recoveries then the covered prefix
  /// [begin, begin+tested), returns the untested remainder to the
  /// pending queue. Returns false for unknown or already-expired lease
  /// ids — the interval was re-dispatched, and the coverage ledger
  /// plus mark_found dedup make the late worker's overlap harmless.
  /// Every piggybacked recovery is digest-verified like report_found;
  /// `forged` (when given) counts the ones that failed verification,
  /// so the caller can strike the holder.
  bool retire_lease(std::uint64_t lease_id, const u128& tested,
                    const std::vector<std::pair<std::string, std::string>>&
                        found = {},
                    double busy_s = 0, std::size_t* forged = nullptr);

  /// Records a recovery against a live lease without retiring it (a
  /// worker reports FOUND the moment it hits, so a later crash cannot
  /// lose the key). The claimed preimage is verified — its digest
  /// recomputed under the job's salt scheme — before anything is
  /// journaled or counted; kForged reports leave no trace in the
  /// journal. Duplicates of an already-recovered digest are absorbed
  /// exactly-once (kDuplicate).
  FoundOutcome report_found(std::uint64_t lease_id,
                            const std::string& digest_hex,
                            const std::string& key);

  /// Pushes every live lease of `holder` out to `deadline` (heartbeat
  /// renewal; deadlines never move backwards). Returns the number of
  /// leases renewed.
  std::size_t renew_leases(const std::string& holder, double deadline);

  /// Returns expired leases' intervals to their jobs' pending queues.
  /// The coordinator calls this periodically with its current time;
  /// the count is the number of leases reclaimed. `expired_holders`
  /// (when given) receives the holder of each reclaimed lease — the
  /// coordinator's health scoring strikes them.
  std::size_t expire_leases(double now,
                            std::vector<std::string>* expired_holders =
                                nullptr);

  /// Immediately reclaims every lease of `holder` (connection closed
  /// or BYE — no reason to wait for the deadline).
  std::size_t revoke_leases(const std::string& holder);

  /// Whether a lease is still live (granted, not retired/expired/
  /// revoked). Heartbeat replies use this to tell workers about
  /// leases cancelled under them.
  bool lease_live(std::uint64_t lease_id) const;

  /// Live lease count across all jobs.
  std::size_t lease_count() const;

  /// The job's spec with the *current* target set (add_targets extends
  /// the original request), plus optionally the recoveries so far —
  /// what a coordinator sends a worker that has never seen the job.
  JobSpec wire_spec(JobId id,
                    std::vector<std::pair<std::string, std::string>>*
                        found_so_far = nullptr) const;

  /// ----------------------------------------------------------------

  /// Point-in-time snapshot; throws InvalidArgument for unknown ids.
  JobSnapshot status(JobId id) const;

  /// Snapshots of every job, in submission order.
  std::vector<JobSnapshot> snapshot_all() const;

  /// The id of the live or finished job with this name, if any.
  std::optional<JobId> find_job(std::string_view name) const;

  /// Blocks until the job is terminal. timeout_s < 0 waits forever.
  /// Returns true when the job is terminal on return.
  bool wait(JobId id, double timeout_s = -1) const;

  /// Blocks until every submitted job is terminal.
  void wait_all() const;

  std::size_t worker_count() const { return workers_.size(); }

 private:
  /// Everything the manager knows about one job. Guarded by mu_ except
  /// `interrupt`, which scans read lock-free.
  struct JobImpl {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::unique_ptr<core::MultiSweeper> sweeper;

    /// Unscanned sub-intervals, ascending; workers slice quanta off
    /// the front.
    std::deque<keyspace::Interval> pending;
    IntervalSet coverage;

    std::atomic<bool> interrupt{false};
    bool cancel_requested = false;
    std::size_t in_flight = 0;  ///< quanta currently being scanned

    std::uint64_t intervals_issued = 0;
    std::uint64_t intervals_retired = 0;
    std::uint64_t leases_expired = 0;
    /// Bumped by every effective target mutation; lease grants carry
    /// it so the distributed tier can invalidate cached specs.
    std::uint64_t target_gen = 0;
    u128 scanned{0};
    /// Request slots resolved — by scan hits, journal replay, or adds
    /// duplicating an already-recovered digest. Exactly-once: every
    /// slot is counted through sweeper accounting that deduplicates.
    std::size_t targets_found = 0;
    double busy_s = 0;  ///< summed worker wall time inside scan()

    bool dispatched_once = false;
    std::chrono::steady_clock::time_point first_dispatch;
    std::chrono::steady_clock::time_point finished;
    std::string error;
  };

  /// A granted, not-yet-retired lease (mu_ held).
  struct LeaseState {
    JobId job = 0;
    keyspace::Interval interval;
    std::string holder;
    double deadline = 0;
  };

  void worker_loop();
  /// Returns a lease's interval to its job's pending queue and drops
  /// the lease (mu_ held). Shared by expiry, revocation and cancel.
  void reclaim_lease_locked(std::uint64_t lease_id, bool count_expired);
  /// Verifies then applies one recovery to a job: recompute the
  /// digest, mark, count, journal (mu_ held). Forged reports touch
  /// nothing.
  FoundOutcome apply_found_locked(JobImpl& job,
                                  const std::string& digest_hex,
                                  const std::string& key);
  /// True when some runnable job has pending work (mu_ held).
  bool work_available() const;
  /// Quantum size for the job's next dispatch (mu_ held).
  u128 quantum_for(const JobImpl& job) const;
  /// Whether the scheduler should consider the job runnable (mu_ held).
  bool runnable(const JobImpl& job) const;
  /// Moves the job to a terminal state if nothing keeps it alive
  /// (mu_ held). Records state, drops it from the scheduler, notifies
  /// waiters.
  void maybe_complete(JobImpl& job);
  void finish(JobImpl& job, JobState terminal);
  JobSnapshot snapshot_locked(const JobImpl& job) const;
  JobImpl& job_ref(JobId id);
  const JobImpl& job_ref(JobId id) const;
  /// Assigns an id, journals the spec and enters the scheduler; shared
  /// tail of submit() and find_or_submit(). Unlocks `lock` to notify.
  JobId insert_job_locked(std::unique_ptr<JobImpl> job,
                          std::unique_lock<std::mutex>& lock);

  JobServiceConfig config_;
  JobStore store_;

  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;  ///< workers: work or stop
  mutable std::condition_variable done_cv_;  ///< waiters: job went terminal
  bool stopping_ = false;
  JobId next_id_ = 1;
  std::map<JobId, std::unique_ptr<JobImpl>> jobs_;  ///< submission order
  FairShareScheduler scheduler_;
  std::uint64_t next_lease_id_ = 1;
  std::map<std::uint64_t, LeaseState> leases_;

  std::vector<std::thread> workers_;
};

}  // namespace gks::service
