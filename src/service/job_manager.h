#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/multi_sweep.h"
#include "keyspace/interval.h"
#include "service/interval_set.h"
#include "service/job.h"
#include "service/journal.h"
#include "service/scheduler.h"
#include "support/uint128.h"

namespace gks::service {

struct JobServiceConfig {
  /// Worker threads; 0 uses the hardware concurrency.
  std::size_t workers = 0;
  /// Target wall time of one preemption quantum. Quanta are sized from
  /// the measured per-worker scan rate so that a worker re-enters the
  /// scheduler roughly this often — the knob trading fairness
  /// granularity against dispatch overhead (the affine cost model of
  /// dispatch::PerfModel: per-quantum overhead c is amortized over
  /// quantum_slice_s of useful work).
  double quantum_slice_s = 0.05;
  /// Quantum clamp, in candidates. The floor keeps per-quantum
  /// bookkeeping negligible; the ceiling bounds preemption latency
  /// even on very fast scans.
  u128 min_quantum{4096};
  u128 max_quantum{u128(1) << 22};
  /// Checkpoint journal path; empty runs the service in-memory only.
  std::string journal_path;
};

/// The multi-tenant job service: owns the worker pool, the fair-share
/// scheduler and the checkpoint journal. Tenants submit JobSpecs and
/// get JobIds; every job — single digest or whole credential store —
/// runs through the same core::MultiSweeper batch path.
///
/// Execution model: each worker repeatedly asks the scheduler for the
/// most underserved runnable job, slices one bounded quantum off that
/// job's pending keyspace, and scans it with the job's interrupt flag
/// as the cooperative preemption hook. Retired quanta are journaled
/// before they are merged into the job's coverage, so a killed process
/// never loses acknowledged work and resume_from() re-dispatches only
/// the unscanned gaps.
///
/// All public methods are thread-safe. Destroying the manager stops
/// the workers (interrupting in-flight scans at the next chunk
/// boundary); non-terminal jobs keep their journaled coverage and can
/// be resumed by a later manager.
class JobManager {
 public:
  explicit JobManager(JobServiceConfig config = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates and enqueues a job. The spec's name must be unique
  /// among live (non-terminal) jobs; throws InvalidArgument otherwise.
  JobId submit(JobSpec spec);

  /// Reloads a journal written by an earlier run and re-submits every
  /// job without a terminal state record, seeded with its journaled
  /// coverage and recoveries — only the unscanned gaps are dispatched
  /// again. Jobs whose gaps turn out empty complete immediately.
  /// Returns the number of jobs brought back.
  std::size_t resume_from(const std::string& journal_path);

  /// Requests cancellation: the interrupt flag preempts in-flight
  /// quanta at their next chunk boundary and the job goes terminal
  /// (kCancelled) once they retire. No-op on terminal jobs.
  void cancel(JobId id);

  /// Pauses / resumes a job. Pausing preempts in-flight quanta; their
  /// untested remainders return to the pending queue, so a paused job
  /// loses no work. Resuming re-enters the scheduler at the current
  /// fair-share virtual time (no catch-up burst).
  void pause(JobId id);
  void resume(JobId id);

  /// Attaches more target hashes to a live job without restarting its
  /// sweep. The mutation is journaled before it is applied (after
  /// validation, so the journal never holds a doomed record); the
  /// sweeper's generation handoff guarantees a target added before its
  /// covering interval is scanned will be found. Digests already
  /// recovered resolve instantly (`already_found`); a job whose
  /// targets were all recovered goes back to runnable when the add
  /// attaches new outstanding work. Throws InvalidArgument on
  /// malformed hexes, unknown ids, or terminal jobs.
  core::TargetAddOutcome add_targets(JobId id,
                                     const std::vector<std::string>& hexes);

  /// Detaches target hashes from a live job: their digests stop being
  /// scanned for and no longer hold the job open. Removing the last
  /// outstanding target completes the job once in-flight quanta
  /// retire. Returns the number of unique digests detached. Journaled
  /// before applying, like add_targets.
  std::size_t remove_targets(JobId id, const std::vector<std::string>& hexes);

  /// Point-in-time snapshot; throws InvalidArgument for unknown ids.
  JobSnapshot status(JobId id) const;

  /// Snapshots of every job, in submission order.
  std::vector<JobSnapshot> snapshot_all() const;

  /// The id of the live or finished job with this name, if any.
  std::optional<JobId> find_job(std::string_view name) const;

  /// Blocks until the job is terminal. timeout_s < 0 waits forever.
  /// Returns true when the job is terminal on return.
  bool wait(JobId id, double timeout_s = -1) const;

  /// Blocks until every submitted job is terminal.
  void wait_all() const;

  std::size_t worker_count() const { return workers_.size(); }

 private:
  /// Everything the manager knows about one job. Guarded by mu_ except
  /// `interrupt`, which scans read lock-free.
  struct JobImpl {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::unique_ptr<core::MultiSweeper> sweeper;

    /// Unscanned sub-intervals, ascending; workers slice quanta off
    /// the front.
    std::deque<keyspace::Interval> pending;
    IntervalSet coverage;

    std::atomic<bool> interrupt{false};
    bool cancel_requested = false;
    std::size_t in_flight = 0;  ///< quanta currently being scanned

    std::uint64_t intervals_issued = 0;
    std::uint64_t intervals_retired = 0;
    u128 scanned{0};
    /// Request slots resolved — by scan hits, journal replay, or adds
    /// duplicating an already-recovered digest. Exactly-once: every
    /// slot is counted through sweeper accounting that deduplicates.
    std::size_t targets_found = 0;
    double busy_s = 0;  ///< summed worker wall time inside scan()

    bool dispatched_once = false;
    std::chrono::steady_clock::time_point first_dispatch;
    std::chrono::steady_clock::time_point finished;
    std::string error;
  };

  void worker_loop();
  /// True when some runnable job has pending work (mu_ held).
  bool work_available() const;
  /// Quantum size for the job's next dispatch (mu_ held).
  u128 quantum_for(const JobImpl& job) const;
  /// Whether the scheduler should consider the job runnable (mu_ held).
  bool runnable(const JobImpl& job) const;
  /// Moves the job to a terminal state if nothing keeps it alive
  /// (mu_ held). Records state, drops it from the scheduler, notifies
  /// waiters.
  void maybe_complete(JobImpl& job);
  void finish(JobImpl& job, JobState terminal);
  JobSnapshot snapshot_locked(const JobImpl& job) const;
  JobImpl& job_ref(JobId id);
  const JobImpl& job_ref(JobId id) const;
  JobId submit_locked(JobSpec spec, std::unique_lock<std::mutex>& lock);

  JobServiceConfig config_;
  JobStore store_;

  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;  ///< workers: work or stop
  mutable std::condition_variable done_cv_;  ///< waiters: job went terminal
  bool stopping_ = false;
  JobId next_id_ = 1;
  std::map<JobId, std::unique_ptr<JobImpl>> jobs_;  ///< submission order
  FairShareScheduler scheduler_;

  std::vector<std::thread> workers_;
};

}  // namespace gks::service
