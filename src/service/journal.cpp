#include "service/journal.h"

#include <algorithm>
#include <map>

#include "support/error.h"
#include "support/json.h"

namespace gks::service {

namespace {

const char* salt_position_name(hash::SaltPosition p) {
  switch (p) {
    case hash::SaltPosition::kNone: return "none";
    case hash::SaltPosition::kPrefix: return "prefix";
    case hash::SaltPosition::kSuffix: return "suffix";
  }
  return "none";
}

hash::SaltPosition salt_position_from_name(std::string_view name) {
  if (name == "none") return hash::SaltPosition::kNone;
  if (name == "prefix") return hash::SaltPosition::kPrefix;
  if (name == "suffix") return hash::SaltPosition::kSuffix;
  GKS_REQUIRE(false, "unknown salt position in journal: " + std::string(name));
  return hash::SaltPosition::kNone;  // unreachable
}

const char* algorithm_journal_name(hash::Algorithm a) {
  switch (a) {
    case hash::Algorithm::kMd5: return "md5";
    case hash::Algorithm::kSha1: return "sha1";
    case hash::Algorithm::kSha256: return "sha256";
  }
  return "md5";
}

hash::Algorithm algorithm_from_journal_name(std::string_view name) {
  if (name == "md5") return hash::Algorithm::kMd5;
  if (name == "sha1") return hash::Algorithm::kSha1;
  if (name == "sha256") return hash::Algorithm::kSha256;
  GKS_REQUIRE(false, "unknown algorithm in journal: " + std::string(name));
  return hash::Algorithm::kMd5;  // unreachable
}

}  // namespace

void write_job_spec_fields(json::Writer& w, const JobSpec& spec) {
  w.key("job").value(spec.name)
      .key("algo").value(algorithm_journal_name(spec.request.algorithm))
      .key("charset");
  const auto chars = spec.request.charset.chars();
  w.value(std::string_view(chars.data(), chars.size()));
  w.key("min").value(static_cast<std::int64_t>(spec.request.min_length))
      .key("max").value(static_cast<std::int64_t>(spec.request.max_length))
      .key("salt_pos").value(salt_position_name(spec.request.salt.position))
      .key("salt").value(spec.request.salt.salt)
      .key("priority").value(spec.priority)
      .key("weight").value(spec.weight)
      .key("targets").begin_array();
  for (const std::string& hex : spec.request.target_hexes) w.value(hex);
  w.end_array();
}

JobSpec job_spec_from_json(const json::Value& rec) {
  JobSpec spec;
  spec.name = rec.at("job").as_string();
  spec.request.algorithm =
      algorithm_from_journal_name(rec.at("algo").as_string());
  spec.request.charset = keyspace::Charset(rec.at("charset").as_string());
  spec.request.min_length =
      static_cast<unsigned>(rec.at("min").as_number());
  spec.request.max_length =
      static_cast<unsigned>(rec.at("max").as_number());
  spec.request.salt.position =
      salt_position_from_name(rec.at("salt_pos").as_string());
  spec.request.salt.salt = rec.string_or("salt", "");
  spec.priority = static_cast<int>(rec.number_or("priority", 0));
  spec.weight = rec.number_or("weight", 1.0);
  for (const json::Value& t : rec.at("targets").as_array()) {
    spec.request.target_hexes.push_back(t.as_string());
  }
  return spec;
}

JobStore::JobStore(const std::string& path, FlushPolicy policy) {
  open(path, policy);
}

JobStore::~JobStore() {
  {
    std::lock_guard lock(mu_);
    stop_flusher_ = true;
    if (out_.is_open() && pending_ > 0) flush_locked();
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void JobStore::open(const std::string& path, FlushPolicy policy) {
  GKS_REQUIRE(!out_.is_open(), "journal is already open: " + path_);
  GKS_REQUIRE(policy.every_records > 0, "flush batch must be positive");
  GKS_REQUIRE(policy.max_delay_s >= 0, "flush delay must be non-negative");
  path_ = path;
  policy_ = policy;
  out_.open(path, std::ios::app);
  GKS_REQUIRE(out_.is_open(), "cannot open journal for append: " + path);
  if (policy_.every_records > 1 && policy_.max_delay_s > 0) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

void JobStore::flush_locked() {
  out_.flush();
  pending_ = 0;
}

void JobStore::flush() {
  if (!out_.is_open()) return;
  std::lock_guard lock(mu_);
  if (pending_ > 0) flush_locked();
}

void JobStore::flusher_loop() {
  std::unique_lock lock(mu_);
  while (!stop_flusher_) {
    if (pending_ == 0) {
      flush_cv_.wait(lock);
      continue;
    }
    const auto deadline =
        oldest_pending_ + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  policy_.max_delay_s));
    if (std::chrono::steady_clock::now() >= deadline) {
      flush_locked();
    } else {
      flush_cv_.wait_until(lock, deadline);
    }
  }
}

void JobStore::append(const std::string& line, bool force_flush) {
  if (!out_.is_open()) return;
  std::lock_guard lock(mu_);
  out_ << line << '\n';
  if (pending_ == 0) oldest_pending_ = std::chrono::steady_clock::now();
  ++pending_;
  if (force_flush || pending_ >= policy_.every_records) {
    // Flush-per-record (the default) keeps one durability point per
    // line: a crash tears at most the line in flight, which load()
    // tolerates. Batched policies reach this branch every
    // every_records appends; the flusher thread bounds the tail delay.
    flush_locked();
  } else {
    flush_cv_.notify_one();  // arm the delay-bound flusher
  }
}

void JobStore::record_job(const JobSpec& spec) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object().key("type").value("job");
  write_job_spec_fields(w, spec);
  w.end_object();
  append(w.str());
}

void JobStore::record_interval(const std::string& job,
                               const keyspace::Interval& iv) {
  if (!out_.is_open() || iv.empty()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("interval")
      .key("job").value(job)
      .key("begin").value(iv.begin.to_string())
      .key("end").value(iv.end.to_string())
      .end_object();
  append(w.str());
}

void JobStore::record_found(const std::string& job,
                            const std::string& digest_hex,
                            const std::string& key) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("found")
      .key("job").value(job)
      .key("digest").value(digest_hex)
      .key("key").value(key)
      .end_object();
  append(w.str());
}

namespace {

std::string targets_record(const char* type, const std::string& job,
                           const std::vector<std::string>& hexes) {
  json::Writer w;
  w.begin_object()
      .key("type").value(type)
      .key("job").value(job)
      .key("targets").begin_array();
  for (const std::string& hex : hexes) w.value(hex);
  w.end_array().end_object();
  return w.str();
}

}  // namespace

void JobStore::record_targets_add(const std::string& job,
                                  const std::vector<std::string>& hexes) {
  if (!out_.is_open() || hexes.empty()) return;
  append(targets_record("targets_add", job, hexes));
}

void JobStore::record_targets_remove(const std::string& job,
                                     const std::vector<std::string>& hexes) {
  if (!out_.is_open() || hexes.empty()) return;
  append(targets_record("targets_remove", job, hexes));
}

void JobStore::record_state(const std::string& job, JobState state) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("state")
      .key("job").value(job)
      .key("state").value(job_state_name(state))
      .end_object();
  // Terminal records cut the journal's replay horizon — always durable
  // immediately, even under a batched flush policy.
  append(w.str(), /*force_flush=*/true);
}

std::vector<JobStore::RecoveredJob> JobStore::load(const std::string& path) {
  std::vector<RecoveredJob> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;

  std::map<std::string, std::size_t> by_name;
  const auto job_of = [&](const std::string& name) -> RecoveredJob* {
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &out[it->second];
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value rec;
    try {
      rec = json::parse(line);
    } catch (const Error&) {
      // A torn write can only be the journal's final line; anything
      // malformed earlier is real corruption.
      GKS_REQUIRE(in.peek() == std::ifstream::traits_type::eof(),
                  "corrupt journal record at line " +
                      std::to_string(line_no) + " of " + path);
      break;
    }
    const std::string& type = rec.at("type").as_string();
    const std::string& name = rec.at("job").as_string();
    if (type == "job") {
      // Duplicate job records (e.g. a spec journaled again after an
      // earlier crash) keep the first occurrence.
      if (job_of(name) == nullptr) {
        by_name.emplace(name, out.size());
        out.emplace_back();
        out.back().spec = job_spec_from_json(rec);
      }
      continue;
    }
    RecoveredJob* job = job_of(name);
    GKS_REQUIRE(job != nullptr,
                "journal record for unknown job '" + name + "' at line " +
                    std::to_string(line_no));
    if (type == "interval") {
      const keyspace::Interval iv(u128::parse(rec.at("begin").as_string()),
                                  u128::parse(rec.at("end").as_string()));
      job->journaled += iv.size();
      job->scanned.add(iv);
    } else if (type == "found") {
      job->found.emplace_back(rec.at("digest").as_string(),
                              rec.at("key").as_string());
      RecoveredJob::TargetEvent ev;
      ev.kind = RecoveredJob::TargetEvent::Kind::kFound;
      ev.digest_hex = rec.at("digest").as_string();
      ev.key = rec.at("key").as_string();
      job->events.push_back(std::move(ev));
    } else if (type == "targets_add" || type == "targets_remove") {
      RecoveredJob::TargetEvent ev;
      ev.kind = type == "targets_add"
                    ? RecoveredJob::TargetEvent::Kind::kAdd
                    : RecoveredJob::TargetEvent::Kind::kRemove;
      for (const json::Value& t : rec.at("targets").as_array()) {
        ev.targets.push_back(t.as_string());
      }
      job->events.push_back(std::move(ev));
    } else if (type == "state") {
      const JobState s = job_state_from_name(rec.at("state").as_string());
      GKS_REQUIRE(is_terminal(s), "journal state records must be terminal");
      job->final_state = s;
    } else {
      GKS_REQUIRE(false, "unknown journal record type: " + type);
    }
  }
  return out;
}

}  // namespace gks::service
