#include "service/journal.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>

#include "obs/metrics.h"
#include "support/crc32.h"
#include "support/error.h"
#include "support/json.h"

namespace gks::service {

namespace {

/// Flush latency and lag telemetry. The pending gauge is the "journal
/// lag" gks-top shows: records appended but not yet durably flushed.
struct JournalMetrics {
  obs::Counter& records =
      obs::Registry::global().counter("gks_journal_records_total");
  obs::Counter& flushes =
      obs::Registry::global().counter("gks_journal_flushes_total");
  obs::Counter& rotations =
      obs::Registry::global().counter("gks_journal_rotations_total");
  obs::Histogram& flush_s =
      obs::Registry::global().histogram("gks_journal_flush_seconds");
  obs::Gauge& pending =
      obs::Registry::global().gauge("gks_journal_pending_records");
};

JournalMetrics& jmetrics() {
  static JournalMetrics* m = new JournalMetrics;
  return *m;
}

const char* salt_position_name(hash::SaltPosition p) {
  switch (p) {
    case hash::SaltPosition::kNone: return "none";
    case hash::SaltPosition::kPrefix: return "prefix";
    case hash::SaltPosition::kSuffix: return "suffix";
  }
  return "none";
}

hash::SaltPosition salt_position_from_name(std::string_view name) {
  if (name == "none") return hash::SaltPosition::kNone;
  if (name == "prefix") return hash::SaltPosition::kPrefix;
  if (name == "suffix") return hash::SaltPosition::kSuffix;
  GKS_REQUIRE(false, "unknown salt position in journal: " + std::string(name));
  return hash::SaltPosition::kNone;  // unreachable
}

const char* algorithm_journal_name(hash::Algorithm a) {
  switch (a) {
    case hash::Algorithm::kMd5: return "md5";
    case hash::Algorithm::kSha1: return "sha1";
    case hash::Algorithm::kSha256: return "sha256";
  }
  return "md5";
}

hash::Algorithm algorithm_from_journal_name(std::string_view name) {
  if (name == "md5") return hash::Algorithm::kMd5;
  if (name == "sha1") return hash::Algorithm::kSha1;
  if (name == "sha256") return hash::Algorithm::kSha256;
  GKS_REQUIRE(false, "unknown algorithm in journal: " + std::string(name));
  return hash::Algorithm::kMd5;  // unreachable
}

}  // namespace

void write_job_spec_fields(json::Writer& w, const JobSpec& spec) {
  w.key("job").value(spec.name)
      .key("algo").value(algorithm_journal_name(spec.request.algorithm))
      .key("charset");
  const auto chars = spec.request.charset.chars();
  w.value(std::string_view(chars.data(), chars.size()));
  w.key("min").value(static_cast<std::int64_t>(spec.request.min_length))
      .key("max").value(static_cast<std::int64_t>(spec.request.max_length))
      .key("salt_pos").value(salt_position_name(spec.request.salt.position))
      .key("salt").value(spec.request.salt.salt)
      .key("priority").value(spec.priority)
      .key("weight").value(spec.weight)
      .key("targets").begin_array();
  for (const std::string& hex : spec.request.target_hexes) w.value(hex);
  w.end_array();
}

JobSpec job_spec_from_json(const json::Value& rec) {
  JobSpec spec;
  spec.name = rec.at("job").as_string();
  spec.request.algorithm =
      algorithm_from_journal_name(rec.at("algo").as_string());
  spec.request.charset = keyspace::Charset(rec.at("charset").as_string());
  spec.request.min_length =
      static_cast<unsigned>(rec.at("min").as_number());
  spec.request.max_length =
      static_cast<unsigned>(rec.at("max").as_number());
  spec.request.salt.position =
      salt_position_from_name(rec.at("salt_pos").as_string());
  spec.request.salt.salt = rec.string_or("salt", "");
  spec.priority = static_cast<int>(rec.number_or("priority", 0));
  spec.weight = rec.number_or("weight", 1.0);
  for (const json::Value& t : rec.at("targets").as_array()) {
    spec.request.target_hexes.push_back(t.as_string());
  }
  return spec;
}

JobStore::JobStore(const std::string& path, FlushPolicy policy,
                   std::size_t rotate_bytes) {
  open(path, policy, rotate_bytes);
}

JobStore::~JobStore() {
  {
    std::lock_guard lock(mu_);
    stop_flusher_ = true;
    if (out_.is_open() && pending_ > 0) flush_locked();
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void JobStore::open(const std::string& path, FlushPolicy policy,
                    std::size_t rotate_bytes) {
  GKS_REQUIRE(!out_.is_open(), "journal is already open: " + path_);
  GKS_REQUIRE(policy.every_records > 0, "flush batch must be positive");
  GKS_REQUIRE(policy.max_delay_s >= 0, "flush delay must be non-negative");
  path_ = path;
  policy_ = policy;
  rotate_bytes_ = rotate_bytes;
  next_segment_ = 1;
  if (rotate_bytes_ > 0) {
    // Resume numbering after the highest segment already on disk.
    std::vector<std::string> segs = segment_paths(path);
    segs.pop_back();  // the active file itself
    if (!segs.empty()) {
      next_segment_ =
          std::stoull(segs.back().substr(path.size() + 1)) + 1;
    }
  }
  out_.open(path, std::ios::app);
  GKS_REQUIRE(out_.is_open(), "cannot open journal for append: " + path);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  segment_bytes_ = ec ? 0 : static_cast<std::size_t>(size);
  if (policy_.every_records > 1 && policy_.max_delay_s > 0) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

void JobStore::flush_locked() {
  const auto start = std::chrono::steady_clock::now();
  out_.flush();
  JournalMetrics& m = jmetrics();
  m.flush_s.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count());
  m.flushes.add(1);
  m.pending.set(0);
  pending_ = 0;
}

void JobStore::flush() {
  if (!out_.is_open()) return;
  std::lock_guard lock(mu_);
  if (pending_ > 0) flush_locked();
}

void JobStore::flusher_loop() {
  std::unique_lock lock(mu_);
  while (!stop_flusher_) {
    if (pending_ == 0) {
      flush_cv_.wait(lock);
      continue;
    }
    const auto deadline =
        oldest_pending_ + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  policy_.max_delay_s));
    if (std::chrono::steady_clock::now() >= deadline) {
      flush_locked();
    } else {
      flush_cv_.wait_until(lock, deadline);
    }
  }
}

void JobStore::rotate_locked() {
  flush_locked();
  out_.close();
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, ".%04llu",
                static_cast<unsigned long long>(next_segment_));
  std::error_code ec;
  std::filesystem::rename(path_, path_ + suffix, ec);
  if (ec) {
    // Rotation is an optimization; a failed rename must never lose the
    // journal. Keep appending to the oversized active file instead.
    rotate_bytes_ = 0;
    out_.open(path_, std::ios::app);
    return;
  }
  ++next_segment_;
  out_.open(path_, std::ios::app);
  segment_bytes_ = 0;
  jmetrics().rotations.add(1);
}

void JobStore::append(const std::string& line, bool force_flush) {
  if (!out_.is_open()) return;
  char crc[12];
  std::snprintf(crc, sizeof crc, " #%08x", crc32(line));
  std::lock_guard lock(mu_);
  out_ << line << crc << '\n';
  segment_bytes_ += line.size() + 11;  // " #xxxxxxxx" + newline
  if (pending_ == 0) oldest_pending_ = std::chrono::steady_clock::now();
  ++pending_;
  jmetrics().records.add(1);
  jmetrics().pending.set(static_cast<double>(pending_));
  if (force_flush || pending_ >= policy_.every_records) {
    // Flush-per-record (the default) keeps one durability point per
    // line: a crash tears at most the line in flight, which load()
    // tolerates. Batched policies reach this branch every
    // every_records appends; the flusher thread bounds the tail delay.
    flush_locked();
  } else {
    flush_cv_.notify_one();  // arm the delay-bound flusher
  }
  if (rotate_bytes_ > 0 && segment_bytes_ >= rotate_bytes_) rotate_locked();
}

void JobStore::record_job(const JobSpec& spec) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object().key("type").value("job");
  write_job_spec_fields(w, spec);
  w.end_object();
  append(w.str());
}

void JobStore::record_interval(const std::string& job,
                               const keyspace::Interval& iv) {
  if (!out_.is_open() || iv.empty()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("interval")
      .key("job").value(job)
      .key("begin").value(iv.begin.to_string())
      .key("end").value(iv.end.to_string())
      .end_object();
  append(w.str());
}

void JobStore::record_found(const std::string& job,
                            const std::string& digest_hex,
                            const std::string& key) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("found")
      .key("job").value(job)
      .key("digest").value(digest_hex)
      .key("key").value(key)
      .end_object();
  append(w.str());
}

namespace {

std::string targets_record(const char* type, const std::string& job,
                           const std::vector<std::string>& hexes) {
  json::Writer w;
  w.begin_object()
      .key("type").value(type)
      .key("job").value(job)
      .key("targets").begin_array();
  for (const std::string& hex : hexes) w.value(hex);
  w.end_array().end_object();
  return w.str();
}

}  // namespace

void JobStore::record_targets_add(const std::string& job,
                                  const std::vector<std::string>& hexes) {
  if (!out_.is_open() || hexes.empty()) return;
  append(targets_record("targets_add", job, hexes));
}

void JobStore::record_targets_remove(const std::string& job,
                                     const std::vector<std::string>& hexes) {
  if (!out_.is_open() || hexes.empty()) return;
  append(targets_record("targets_remove", job, hexes));
}

void JobStore::record_state(const std::string& job, JobState state) {
  if (!out_.is_open()) return;
  json::Writer w;
  w.begin_object()
      .key("type").value("state")
      .key("job").value(job)
      .key("state").value(job_state_name(state))
      .end_object();
  // Terminal records cut the journal's replay horizon — always durable
  // immediately, even under a batched flush policy.
  append(w.str(), /*force_flush=*/true);
}

namespace {

// Strips a valid trailing " #xxxxxxxx" CRC suffix and returns the
// payload; lines without the suffix (pre-checksum journals) pass
// through unchecked. Sets *crc_ok = false when a suffix is present
// but does not match the payload.
std::string_view strip_record_crc(std::string_view line, bool* crc_ok) {
  *crc_ok = true;
  if (line.size() < 11) return line;
  const std::size_t at = line.size() - 10;
  if (line[at] != ' ' || line[at + 1] != '#') return line;
  std::uint32_t want = 0;
  for (const char c : line.substr(at + 2)) {
    if (c >= '0' && c <= '9') want = want * 16 + (c - '0');
    else if (c >= 'a' && c <= 'f') want = want * 16 + (c - 'a' + 10);
    else return line;  // not a checksum suffix; legacy payload
  }
  const std::string_view payload = line.substr(0, at);
  *crc_ok = crc32(payload) == want;
  return payload;
}

// First bytes of a raw record as lowercase hex — enough context to
// eyeball what kind of damage a quarantined record took.
std::string hex_snippet(std::string_view line) {
  static constexpr char kDigits[] = "0123456789abcdef";
  constexpr std::size_t kMaxBytes = 48;
  const std::size_t n = std::min(line.size(), kMaxBytes);
  std::string out;
  out.reserve(n * 2 + 3);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(line[i]);
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  if (line.size() > n) out += "...";
  return out;
}

}  // namespace

std::vector<std::string> JobStore::segment_paths(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path base(path);
  const std::string prefix = base.filename().string() + ".";
  const fs::path dir =
      base.has_parent_path() ? base.parent_path() : fs::path(".");
  std::vector<std::pair<std::uint64_t, std::string>> rotated;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    const bool numeric =
        std::all_of(suffix.begin(), suffix.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        });
    if (!numeric) continue;
    rotated.emplace_back(std::stoull(suffix), path + "." + suffix);
  }
  std::sort(rotated.begin(), rotated.end());
  std::vector<std::string> out;
  out.reserve(rotated.size() + 1);
  for (auto& [index, segment] : rotated) out.push_back(std::move(segment));
  out.push_back(path);
  return out;
}

std::vector<JobStore::RecoveredJob> JobStore::load(const std::string& path,
                                                   LoadReport* report) {
  std::vector<RecoveredJob> out;
  const std::string quarantine_path = path + ".quarantine";
  if (report != nullptr) {
    *report = {};
    report->quarantine_path = quarantine_path;
  }

  std::map<std::string, std::size_t> by_name;
  const auto job_of = [&](const std::string& name) -> RecoveredJob* {
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &out[it->second];
  };

  std::ofstream qout;  // opened lazily: healthy journals get no sidecar
  const auto quarantine = [&](const std::string& segment,
                              std::size_t line_no, const std::string& reason,
                              const std::string& raw) {
    const std::string snippet = hex_snippet(raw);
    if (!qout.is_open()) qout.open(quarantine_path, std::ios::app);
    if (qout.is_open()) {
      json::Writer w;
      w.begin_object()
          .key("journal").value(segment)
          .key("line").value(static_cast<std::int64_t>(line_no))
          .key("reason").value(reason)
          .key("hex").value(snippet)
          .end_object();
      qout << w.str() << '\n';
    }
    if (report != nullptr) {
      ++report->quarantined;
      report->notes.push_back(segment + ":" + std::to_string(line_no) +
                              ": " + reason + "; record hex: " + snippet);
    }
  };

  for (const std::string& segment : segment_paths(path)) {
    const bool active = segment == path;
    std::ifstream in(segment);
    if (!in.is_open()) continue;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      // A torn write can only be the final line of the *active*
      // segment (rotated segments were closed cleanly); drop it
      // silently. Damage anywhere else is real corruption and gets
      // quarantined with its position.
      const bool at_tail =
          active && in.peek() == std::ifstream::traits_type::eof();
      bool crc_ok = true;
      const std::string_view payload = strip_record_crc(line, &crc_ok);
      if (!crc_ok) {
        if (at_tail) break;
        quarantine(segment, line_no, "crc mismatch", line);
        continue;
      }
      json::Value rec;
      try {
        rec = json::parse(payload);
      } catch (const Error&) {
        if (at_tail) break;
        quarantine(segment, line_no, "unparsable record", line);
        continue;
      }
      try {
        const std::string& type = rec.at("type").as_string();
        const std::string& name = rec.at("job").as_string();
        if (type == "job") {
          // Duplicate job records (e.g. a spec journaled again after
          // an earlier crash) keep the first occurrence.
          if (job_of(name) == nullptr) {
            JobSpec spec = job_spec_from_json(rec);
            by_name.emplace(name, out.size());
            out.emplace_back();
            out.back().spec = std::move(spec);
          }
          continue;
        }
        RecoveredJob* job = job_of(name);
        GKS_REQUIRE(job != nullptr,
                    "record for unknown job '" + name + "'");
        if (type == "interval") {
          const keyspace::Interval iv(
              u128::parse(rec.at("begin").as_string()),
              u128::parse(rec.at("end").as_string()));
          job->journaled += iv.size();
          job->scanned.add(iv);
        } else if (type == "found") {
          job->found.emplace_back(rec.at("digest").as_string(),
                                  rec.at("key").as_string());
          RecoveredJob::TargetEvent ev;
          ev.kind = RecoveredJob::TargetEvent::Kind::kFound;
          ev.digest_hex = rec.at("digest").as_string();
          ev.key = rec.at("key").as_string();
          job->events.push_back(std::move(ev));
        } else if (type == "targets_add" || type == "targets_remove") {
          RecoveredJob::TargetEvent ev;
          ev.kind = type == "targets_add"
                        ? RecoveredJob::TargetEvent::Kind::kAdd
                        : RecoveredJob::TargetEvent::Kind::kRemove;
          for (const json::Value& t : rec.at("targets").as_array()) {
            ev.targets.push_back(t.as_string());
          }
          job->events.push_back(std::move(ev));
        } else if (type == "state") {
          const JobState s =
              job_state_from_name(rec.at("state").as_string());
          GKS_REQUIRE(is_terminal(s),
                      "journal state records must be terminal");
          job->final_state = s;
        } else {
          GKS_REQUIRE(false, "unknown journal record type: " + type);
        }
      } catch (const Error& e) {
        // Semantic damage (missing field, unknown job/type, bad
        // value). Skipping is safe by construction: a lost interval
        // record re-dispatches, a lost found record rescans.
        quarantine(segment, line_no, e.what(), line);
      }
    }
  }
  return out;
}

}  // namespace gks::service
