#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "keyspace/interval.h"
#include "service/interval_set.h"
#include "service/job.h"
#include "support/json.h"

namespace gks::service {

/// Writes a JobSpec's fields into an open JSON object (keys: job,
/// algo, charset, min, max, salt_pos, salt, priority, weight,
/// targets). One encoding shared by the journal's `job` record and
/// the dist protocol's lease/submit messages, so a spec that survives
/// a crash and a spec that crosses the wire are the same bytes.
void write_job_spec_fields(json::Writer& w, const JobSpec& spec);

/// Inverse of write_job_spec_fields; throws InvalidArgument on
/// malformed or unknown field values.
JobSpec job_spec_from_json(const json::Value& rec);

/// Durable progress journal for the job service: an append-only
/// JSON-lines file (docs/service.md describes the format). Six record
/// types, each one line, flushed on write so a killed process loses at
/// most the line being written:
///
///   {"type":"job", "job":NAME, ...full spec...}
///   {"type":"interval", "job":NAME, "begin":"DEC", "end":"DEC"}
///   {"type":"found", "job":NAME, "digest":HEX, "key":KEY}
///   {"type":"targets_add", "job":NAME, "targets":[HEX, ...]}
///   {"type":"targets_remove", "job":NAME, "targets":[HEX, ...]}
///   {"type":"state", "job":NAME, "state":"done"|"failed"|"cancelled"}
///
/// `targets_add` / `targets_remove` are the live-mutation records: the
/// manager journals a mutation before applying it, and replay applies
/// found/add/remove in journal order — a found record can reference a
/// digest only attached by an earlier add record, so order is load-
/// bearing (RecoveredJob::events preserves it).
///
/// Identifiers are decimal strings (u128 does not fit a JSON number).
/// An `interval` record means those ids were fully scanned and need
/// never be dispatched again; the union of a job's interval records is
/// its coverage, and load() re-derives the unscanned gaps from it.
///
/// **Record integrity.** Every appended line carries a trailing
/// ` #xxxxxxxx` CRC32 (of the JSON bytes before the suffix), so replay
/// can tell a bit-rotted or torn record from a well-formed one. Lines
/// without the suffix are accepted unchecked — journals written before
/// the checksum existed replay unchanged. A record that fails its CRC,
/// fails to parse, or fails semantically (unknown type, unknown job,
/// malformed field) is *quarantined*: copied with its position context
/// into the sidecar `<path>.quarantine` and skipped, instead of
/// aborting the replay. Skipping is safe by construction — a dropped
/// `interval` record just re-dispatches that interval (coverage can
/// only shrink), and a dropped `found`/mutation record at worst
/// rescans. Only a torn final line of the *active* segment is dropped
/// silently (the normal crash-mid-append shape).
///
/// **Segment rotation.** With a positive rotate_bytes, the store
/// renames the active file to `<path>.0001`, `<path>.0002`, … once it
/// exceeds the threshold and starts a fresh `<path>`; load() replays
/// all segments in order. Rotation is what makes compaction and
/// bounded replay possible for multi-day sweeps.
/// Group-commit knob for JobStore. The default (flush after every
/// record) keeps the original "lose at most the line being written"
/// durability. Batched flushing — every `every_records` records or
/// `max_delay_s` seconds after the oldest unflushed record, whichever
/// first — is the distributed-scale mode: remote interval retirement
/// then costs an in-memory append instead of a per-line flush, and a
/// crash loses at most one bounded batch of *acknowledged-but-
/// unflushed* work, which resume re-dispatches (coverage can only
/// shrink, so exactly-once is unaffected). Terminal state records
/// always flush immediately regardless of policy.
///
/// (Namespace scope rather than nested: a nested struct's default
/// member initializers are not usable in the enclosing class's default
/// arguments until the class is complete.)
struct JournalFlushPolicy {
  std::size_t every_records = 1;
  double max_delay_s = 0.05;
};

class JobStore {
 public:
  using FlushPolicy = JournalFlushPolicy;

  /// Null store: records nothing (in-memory-only service).
  JobStore() = default;
  ~JobStore();

  /// Opens `path` for append, creating it if missing; throws
  /// InvalidArgument when the file cannot be opened. A positive
  /// `rotate_bytes` enables segment rotation (see the class comment).
  explicit JobStore(const std::string& path, FlushPolicy policy = {},
                    std::size_t rotate_bytes = 0);

  /// Turns a null store into a persistent one (the JobManager builds
  /// its member store this way). Throws if already open or on failure.
  void open(const std::string& path, FlushPolicy policy = {},
            std::size_t rotate_bytes = 0);

  /// Forces buffered records to disk (no-op when nothing is pending).
  void flush();

  bool persistent() const { return out_.is_open(); }
  const std::string& path() const { return path_; }
  const FlushPolicy& flush_policy() const { return policy_; }

  /// Appenders — thread-safe, one flushed line each; no-ops on a null
  /// store.
  void record_job(const JobSpec& spec);
  void record_interval(const std::string& job, const keyspace::Interval& iv);
  void record_found(const std::string& job, const std::string& digest_hex,
                    const std::string& key);
  void record_targets_add(const std::string& job,
                          const std::vector<std::string>& hexes);
  void record_targets_remove(const std::string& job,
                             const std::vector<std::string>& hexes);
  void record_state(const std::string& job, JobState state);

  /// One job reassembled from a journal.
  struct RecoveredJob {
    JobSpec spec;
    /// Union of the job's interval records.
    IntervalSet scanned;
    /// Sum of the interval records' sizes. Equal to scanned.covered()
    /// iff no id was journaled twice — the exactly-once witness the
    /// resume tests assert.
    u128 journaled{0};
    /// (digest hex, key) pairs recovered before the checkpoint.
    std::vector<std::pair<std::string, std::string>> found;
    /// One target-set event per found / targets_add / targets_remove
    /// record, in journal (= true execution) order. Resume replays
    /// these against a sweeper built from the original spec; `found`
    /// above is the order-free summary older callers read.
    struct TargetEvent {
      enum class Kind { kFound, kAdd, kRemove };
      Kind kind = Kind::kFound;
      std::string digest_hex;            ///< kFound
      std::string key;                   ///< kFound
      std::vector<std::string> targets;  ///< kAdd / kRemove
    };
    std::vector<TargetEvent> events;
    /// Terminal state if one was recorded; jobs without one are the
    /// candidates for resumption.
    std::optional<JobState> final_state;
  };

  /// What replay had to skip: operator-facing triage context for a
  /// corrupt journal. Each note reads `<file>:<line>: <reason>; record
  /// hex: <snippet>`; the same information lands as JSON lines in the
  /// `.quarantine` sidecar next to the journal.
  struct LoadReport {
    std::size_t quarantined = 0;
    std::string quarantine_path;
    std::vector<std::string> notes;
  };

  /// Parses a journal (all rotated segments, then the active file)
  /// into per-job recovery state (submission order). A missing file
  /// yields an empty vector. A torn final line of the active segment —
  /// the crash happened mid-append — is dropped silently; any other
  /// corrupt record is quarantined into `<path>.quarantine` and
  /// skipped (reported via `report` when given), never aborting the
  /// replay.
  static std::vector<RecoveredJob> load(const std::string& path,
                                        LoadReport* report = nullptr);

  /// The journal's on-disk segments, oldest first, active file last.
  /// Rotated segments are `<path>.NNNN` (numeric suffix).
  static std::vector<std::string> segment_paths(const std::string& path);

 private:
  void append(const std::string& line, bool force_flush = false);
  void flush_locked();
  void rotate_locked();
  void flusher_loop();

  std::string path_;
  FlushPolicy policy_;
  std::size_t rotate_bytes_ = 0;   ///< 0 disables segment rotation
  std::size_t segment_bytes_ = 0;  ///< bytes in the active segment
  std::uint64_t next_segment_ = 1;
  std::mutex mu_;
  std::ofstream out_;
  std::size_t pending_ = 0;  ///< records appended but not yet flushed
  std::chrono::steady_clock::time_point oldest_pending_;
  std::condition_variable flush_cv_;
  bool stop_flusher_ = false;
  std::thread flusher_;  ///< delay-bound flusher; batched policies only
};

}  // namespace gks::service
