#include "service/scheduler.h"

#include <cmath>
#include <limits>

#include "support/error.h"

namespace gks::service {

double FairShareScheduler::min_runnable_vtime() const {
  double min_v = std::numeric_limits<double>::infinity();
  for (const auto& [id, e] : jobs_) {
    if (e.runnable && e.vtime < min_v) min_v = e.vtime;
  }
  return std::isfinite(min_v) ? min_v : 0.0;
}

void FairShareScheduler::add(JobId id, double weight, int priority) {
  GKS_REQUIRE(weight > 0, "scheduler weight must be positive");
  GKS_REQUIRE(jobs_.find(id) == jobs_.end(), "job already scheduled");
  Entry e;
  e.effective_weight = weight * std::ldexp(1.0, priority);
  // Start at the runnable minimum: a late joiner competes from "now",
  // it does not get credit for the time before it existed.
  e.vtime = min_runnable_vtime();
  jobs_.emplace(id, e);
}

void FairShareScheduler::remove(JobId id) { jobs_.erase(id); }

void FairShareScheduler::set_runnable(JobId id, bool runnable) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  if (runnable && !it->second.runnable) {
    // Waking from a pause: forfeit the share accumulated while asleep,
    // otherwise the woken job would monopolize the workers until its
    // stale vtime caught up.
    it->second.vtime = std::max(it->second.vtime, min_runnable_vtime());
  }
  it->second.runnable = runnable;
}

std::optional<JobId> FairShareScheduler::pick() const {
  std::optional<JobId> best;
  double best_v = std::numeric_limits<double>::infinity();
  for (const auto& [id, e] : jobs_) {
    if (!e.runnable) continue;
    if (e.vtime < best_v || (e.vtime == best_v && (!best || id < *best))) {
      best = id;
      best_v = e.vtime;
    }
  }
  return best;
}

void FairShareScheduler::charge(JobId id, const u128& quantum) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.vtime += quantum.to_double() / it->second.effective_weight;
}

std::size_t FairShareScheduler::runnable_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : jobs_) {
    if (e.runnable) ++n;
  }
  return n;
}

}  // namespace gks::service
