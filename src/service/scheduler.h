#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "service/job.h"
#include "support/uint128.h"

namespace gks::service {

/// Fair-share scheduler over preemptible interval quanta — stride
/// scheduling on virtual time. Each job accumulates
///
///   vtime += quantum_size / effective_weight
///
/// when charged for a dispatched quantum, where
///
///   effective_weight = weight × 2^priority
///
/// so one priority step doubles a job's share and weights split the
/// share within a class. pick() returns the runnable job with the
/// smallest vtime; because a big sweep's vtime grows just as fast per
/// id scanned as a small job's, the small job keeps winning its share
/// of picks and is never starved (the ISSUE's fairness demo).
///
/// Jobs that join late (or become runnable again after a pause) have
/// their vtime fast-forwarded to the minimum runnable vtime, so they
/// compete from "now" instead of replaying the whole backlog and
/// monopolizing the workers.
///
/// Not internally synchronized: the JobManager already serializes all
/// scheduling decisions under its own mutex.
class FairShareScheduler {
 public:
  /// Registers a runnable job. weight must be positive.
  void add(JobId id, double weight, int priority);

  /// Unregisters a job (terminal or being dropped). Unknown ids are
  /// ignored.
  void remove(JobId id);

  /// Marks a job runnable / not runnable (pause, empty pending queue).
  /// Becoming runnable fast-forwards vtime to the runnable minimum.
  void set_runnable(JobId id, bool runnable);

  /// The runnable job with the smallest virtual time (ties broken by
  /// lowest id, for determinism); nullopt when nothing is runnable.
  std::optional<JobId> pick() const;

  /// Charges `quantum` dispatched ids against the job's share.
  void charge(JobId id, const u128& quantum);

  std::size_t runnable_count() const;
  std::size_t size() const { return jobs_.size(); }

 private:
  struct Entry {
    double vtime = 0;
    double effective_weight = 1.0;
    bool runnable = true;
  };

  /// Smallest vtime among runnable jobs, or 0 when none are runnable.
  double min_runnable_vtime() const;

  std::unordered_map<JobId, Entry> jobs_;
};

}  // namespace gks::service
