#include "simgpu/arch.h"

#include <cmath>

#include "support/error.h"

namespace gks::simgpu {

MachineMix MachineMix::scaled(double factor) const {
  MachineMix out;
  for (std::size_t i = 0; i < kMachineOpCount; ++i) {
    out.counts[i] =
        static_cast<std::uint32_t>(std::lround(counts[i] * factor));
  }
  return out;
}

const char* cc_name(ComputeCapability cc) {
  switch (cc) {
    case ComputeCapability::kCc1x: return "1.*";
    case ComputeCapability::kCc20: return "2.0";
    case ComputeCapability::kCc21: return "2.1";
    case ComputeCapability::kCc30: return "3.0";
    case ComputeCapability::kCc35: return "3.5";
  }
  return "?";
}

double MultiprocessorArch::peak_throughput(MachineOp op) const {
  switch (op) {
    case MachineOp::kIAdd: return add_throughput + sfu_add_bonus;
    case MachineOp::kLop: return lop_throughput;
    case MachineOp::kShift: return shift_throughput;
    case MachineOp::kMadShift: return mad_throughput;
    case MachineOp::kPrmt: return shift_throughput;
    case MachineOp::kFunnel:
      // Funnel shifts exist only on cc 3.5 where they run at the
      // shift-unit rate; elsewhere the lowering never emits them.
      return cc == ComputeCapability::kCc35 ? shift_throughput : 0.0;
  }
  return 0.0;
}

namespace {

// Table I (multiprocessor architecture) merged with Table II
// (instruction throughput, ops/clock per MP). cc 1.x lists ADD as 8
// on the regular cores plus 2 on the SFUs, reachable only with ILP —
// Table II's "10" is the sum.
const MultiprocessorArch kArchs[] = {
    {ComputeCapability::kCc1x, /*cores*/ 8, /*groups*/ 1, /*group_size*/ 8,
     /*issue_cycles*/ 4, /*schedulers*/ 1, /*dual*/ false,
     /*add*/ 8, /*lop*/ 8, /*shift*/ 8, /*mad*/ 8,
     /*sfu_add_bonus*/ 2, /*shift_shares_alu*/ true},
    {ComputeCapability::kCc20, 32, 2, 16, 2, 2, false,
     32, 32, 16, 16, 0, true},
    {ComputeCapability::kCc21, 48, 3, 16, 2, 2, true,
     48, 48, 16, 16, 0, true},
    {ComputeCapability::kCc30, 192, 6, 32, 1, 4, true,
     160, 160, 32, 32, 0, false},
    // cc 3.5: Table I's 3.0 layout plus funnel shift; shift/MAD
    // throughput doubles, so a full rotation (one funnel instruction at
    // double the unit speed instead of SHL+IMAD) is 4x faster —
    // "the overall throughput is quadrupled with respect to compute
    // capability 3.0" (Section V-B).
    {ComputeCapability::kCc35, 192, 6, 32, 1, 4, true,
     160, 160, 64, 64, 0, false},
};

}  // namespace

const MultiprocessorArch& arch_for(ComputeCapability cc) {
  for (const auto& a : kArchs) {
    if (a.cc == cc) return a;
  }
  throw InternalError("unknown compute capability");
}

const std::vector<ComputeCapability>& all_capabilities() {
  static const std::vector<ComputeCapability> kAll = {
      ComputeCapability::kCc1x, ComputeCapability::kCc20,
      ComputeCapability::kCc21, ComputeCapability::kCc30,
      ComputeCapability::kCc35};
  return kAll;
}

const std::vector<DeviceSpec>& paper_devices() {
  // Table VII: GPU specifications.
  static const std::vector<DeviceSpec> kDevices = {
      {"GeForce 8600M GT", ComputeCapability::kCc1x, 4, 32, 950},
      {"GeForce 8800 GTS 512", ComputeCapability::kCc1x, 16, 128, 1625},
      {"GeForce GT 540M", ComputeCapability::kCc21, 2, 96, 1344},
      {"GeForce GTX 550 Ti", ComputeCapability::kCc21, 4, 192, 1800},
      {"GeForce GTX 660", ComputeCapability::kCc30, 5, 960, 1033},
  };
  return kDevices;
}

const DeviceSpec& device_by_name(const std::string& short_name) {
  static const std::pair<const char*, std::size_t> kShortNames[] = {
      {"8600M", 0}, {"8800", 1}, {"540M", 2}, {"550Ti", 3}, {"660", 4},
  };
  for (const auto& [name, index] : kShortNames) {
    if (short_name == name) return paper_devices()[index];
  }
  throw InvalidArgument("unknown device short name: " + short_name);
}

}  // namespace gks::simgpu
