#pragma once

#include <string>
#include <vector>

#include "simgpu/isa.h"

namespace gks::simgpu {

/// CUDA compute capability families the paper distinguishes (Table I),
/// plus 3.5 which the paper models but could not measure ("we were
/// unable to get access to such type of device") — we simulate it as an
/// extension.
enum class ComputeCapability { kCc1x, kCc20, kCc21, kCc30, kCc35 };

/// Display label ("1.*", "2.0", ...).
const char* cc_name(ComputeCapability cc);

/// Static multiprocessor description — the paper's Table I rows plus
/// the per-class instruction throughputs of Table II (instructions per
/// clock per multiprocessor).
struct MultiprocessorArch {
  ComputeCapability cc;
  unsigned cores_per_mp;    ///< Table I "Cores per MP"
  unsigned core_groups;     ///< Table I "Groups of cores per MP"
  unsigned group_size;      ///< Table I "Group size"
  unsigned issue_cycles;    ///< Table I "Issue time (clock cycles)"
  unsigned warp_schedulers; ///< Table I "Warp schedulers"
  bool dual_issue;          ///< Table I single/dual-issue

  // Table II throughputs (ops/clock per MP).
  double add_throughput;
  double lop_throughput;
  double shift_throughput;
  double mad_throughput;

  /// Extra ADD throughput available from the special function units on
  /// cc 1.x, usable only when the kernel exposes ILP (Section VI-B:
  /// "the lack of ILP prevents the SFU to be used to execute
  /// additions, thus 10 -> 8 instructions/cycle").
  double sfu_add_bonus = 0.0;

  /// True when shift/MAD instructions execute on a *subset* of the
  /// same cores that run additions (cc 2.x); false when they own a
  /// dedicated group (cc 3.x), in which case the two classes overlap
  /// fully (Section VI-B).
  bool shift_shares_alu_cores = true;

  /// Instructions per clock for a machine class, assuming the ILP
  /// needed to reach peak (the theoretical model's view).
  double peak_throughput(MachineOp op) const;
};

/// Architecture description for a compute capability (Table I + II).
const MultiprocessorArch& arch_for(ComputeCapability cc);

/// All modeled capabilities, in Table I column order.
const std::vector<ComputeCapability>& all_capabilities();

/// A concrete GPU: Table VII of the paper.
struct DeviceSpec {
  std::string name;
  ComputeCapability cc;
  unsigned mp_count;
  unsigned cores;
  double clock_mhz;  ///< shader clock driving the ALUs

  double clock_hz() const { return clock_mhz * 1e6; }
  const MultiprocessorArch& arch() const { return arch_for(cc); }
};

/// The paper's five evaluation devices (Table VII): GeForce 8600M GT,
/// 8800 GTS 512, GT 540M, GTX 550 Ti, GTX 660.
const std::vector<DeviceSpec>& paper_devices();

/// Lookup by the short names used throughout the paper
/// ("8600M", "8800", "540M", "550Ti", "660"); throws on unknown names.
const DeviceSpec& device_by_name(const std::string& short_name);

}  // namespace gks::simgpu
