#include "simgpu/device.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace gks::simgpu {
namespace {

std::string cache_key(const KernelProfile& profile) {
  std::ostringstream os;
  for (auto c : profile.per_candidate.counts) os << c << ',';
  os << "ilp=" << profile.ilp << ",ovh=" << profile.overhead_fraction;
  return os.str();
}

}  // namespace

SimulatedGpu::SimulatedGpu(DeviceSpec spec, SimtConfig config,
                           LaunchPolicy launch)
    : spec_(std::move(spec)), config_(config), launch_(launch) {
  GKS_REQUIRE(launch_.target_kernel_s <= launch_.watchdog_limit_s,
              "target kernel time must respect the watchdog");
  GKS_REQUIRE(launch_.target_kernel_s > 0, "target kernel time must be > 0");
}

double SimulatedGpu::sustained_throughput(const KernelProfile& profile) const {
  const std::string key = cache_key(profile);
  if (const auto it = throughput_cache_.find(key);
      it != throughput_cache_.end()) {
    return it->second;
  }
  const double t = SimtSimulator::device_throughput(spec_, profile, config_);
  throughput_cache_.emplace(key, t);
  return t;
}

u128 SimulatedGpu::batch_size(const KernelProfile& profile) const {
  const double keys = sustained_throughput(profile) * launch_.target_kernel_s;
  GKS_ENSURE(keys >= 1.0, "device too slow for any batch");
  return u128(static_cast<std::uint64_t>(keys));
}

double SimulatedGpu::scan_seconds(const KernelProfile& profile,
                                  u128 count) const {
  if (count == u128(0)) return 0.0;
  const double throughput = sustained_throughput(profile);
  const u128 batch = batch_size(profile);
  const double launches =
      std::ceil(count.to_double() / batch.to_double());
  return count.to_double() / throughput +
         launches * launch_.launch_overhead_s;
}

}  // namespace gks::simgpu
