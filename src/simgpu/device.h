#pragma once

#include <map>
#include <string>

#include "simgpu/arch.h"
#include "simgpu/kernel_profile.h"
#include "simgpu/model.h"
#include "simgpu/simt.h"
#include "support/uint128.h"

namespace gks::simgpu {

/// Kernel-launch mechanics of Section IV-A: each grid tests a bounded
/// batch so the driver's watchdog never fires ("the operating system
/// may put a limit on the maximum time that a driver ... should wait
/// for the completion of a running kernel; we can easily bypass this
/// problem by adjusting the amount of tests per call and spreading the
/// computation over multiple grids").
struct LaunchPolicy {
  double launch_overhead_s = 20e-6;  ///< host-side cost per grid launch
  double watchdog_limit_s = 2.0;     ///< maximum single-kernel runtime
  double target_kernel_s = 0.25;     ///< aim well under the watchdog
};

/// A simulated CUDA device: a DeviceSpec plus the SIMT pipeline
/// simulator, answering "how long would this device take to test N
/// candidates with this kernel". Throughput per kernel profile is
/// simulated once and cached (the simulation is deterministic).
class SimulatedGpu {
 public:
  explicit SimulatedGpu(DeviceSpec spec, SimtConfig config = {},
                        LaunchPolicy launch = {});

  const DeviceSpec& spec() const { return spec_; }
  const LaunchPolicy& launch_policy() const { return launch_; }

  /// Sustained kernel throughput from the cycle simulator (keys/s).
  double sustained_throughput(const KernelProfile& profile) const;

  /// Upper bound from the analytic model of Section VI-B (keys/s).
  double theoretical_throughput(const MachineMix& mix) const {
    return ThroughputModel::theoretical_throughput(spec_, mix);
  }

  /// Number of candidates per grid launch that keeps each kernel at
  /// the launch policy's target runtime (and under the watchdog).
  u128 batch_size(const KernelProfile& profile) const;

  /// Simulated wall-clock seconds to scan `count` candidates,
  /// including per-grid launch overhead. This is the device's
  /// K_search contribution in the Section III cost model.
  double scan_seconds(const KernelProfile& profile, u128 count) const;

 private:
  DeviceSpec spec_;
  SimtConfig config_;
  LaunchPolicy launch_;
  /// Cache keyed by the profile's mix + ilp (deterministic result).
  mutable std::map<std::string, double> throughput_cache_;
};

}  // namespace gks::simgpu
