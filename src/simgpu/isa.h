#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gks::simgpu {

/// Source-level operations as they appear in the CUDA-C-like kernel
/// source (what Table III counts: "all the operations that cannot be
/// evaluated at compile time in the CUDA source code").
enum class SrcOp : std::uint8_t {
  kAdd,   ///< 32-bit integer addition (or subtraction, fused negate)
  kAnd,
  kOr,
  kXor,
  kNot,   ///< unary complement; merged into LOP operands when lowering
  kShl,
  kShr,
  kRotl,  ///< pseudo-op: (x << n) + (x >> (32-n)); expanded per arch
  kRotr,  ///< pseudo-op: rotate right; expanded like kRotl
};

/// A recorded source instruction (shift/rotate amount kept because the
/// lowering of rotations depends on it, e.g. rot16 → PRMT).
struct SrcInstr {
  SrcOp op;
  unsigned amount = 0;
};

/// Machine instruction classes after lowering — the rows of the
/// paper's Tables IV, V and VI.
enum class MachineOp : std::uint8_t {
  kIAdd,      ///< IADD
  kLop,       ///< AND/OR/XOR (LOP), with operand negation merged in
  kShift,     ///< SHR/SHL
  kMadShift,  ///< IMAD.HI / ISCADD emulating one half of a rotation
  kPrmt,      ///< PRMT (byte_perm), single-instruction byte rotation
  kFunnel,    ///< SHF funnel shift (compute capability 3.5)
};

inline constexpr std::size_t kMachineOpCount = 6;

/// Human-readable mnemonic for a machine class.
constexpr const char* machine_op_name(MachineOp op) {
  switch (op) {
    case MachineOp::kIAdd: return "IADD";
    case MachineOp::kLop: return "AND/OR/XOR";
    case MachineOp::kShift: return "SHR/SHL";
    case MachineOp::kMadShift: return "IMAD/ISCADD";
    case MachineOp::kPrmt: return "PRMT (byte_perm)";
    case MachineOp::kFunnel: return "SHF (funnel)";
  }
  return "?";
}

/// Per-class machine instruction counts for one candidate test — the
/// unit the throughput model and the SIMT simulator consume.
struct MachineMix {
  std::array<std::uint32_t, kMachineOpCount> counts{};

  std::uint32_t& operator[](MachineOp op) {
    return counts[static_cast<std::size_t>(op)];
  }
  std::uint32_t operator[](MachineOp op) const {
    return counts[static_cast<std::size_t>(op)];
  }

  /// Total instructions per candidate.
  std::uint32_t total() const {
    std::uint32_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }

  /// Instructions executed on the shift/MAD-capable units — the
  /// bottleneck class on Kepler (Section V-B).
  std::uint32_t shift_class() const {
    return (*this)[MachineOp::kShift] + (*this)[MachineOp::kMadShift] +
           (*this)[MachineOp::kPrmt] + (*this)[MachineOp::kFunnel];
  }

  /// Instructions executable on any ALU group (additions + logical).
  std::uint32_t addlop_class() const {
    return (*this)[MachineOp::kIAdd] + (*this)[MachineOp::kLop];
  }

  MachineMix& operator+=(const MachineMix& other) {
    for (std::size_t i = 0; i < kMachineOpCount; ++i)
      counts[i] += other.counts[i];
    return *this;
  }

  /// Scales every class by `factor`, rounding to nearest. Used to fold
  /// per-iteration overhead (< 1% for the `next` operator, Section V-A)
  /// into a per-candidate mix.
  MachineMix scaled(double factor) const;
};

}  // namespace gks::simgpu
