#include "simgpu/kernel_profile.h"

#include <array>
#include <string>

#include "hash/kernel_words.h"
#include "hash/md5_kernel.h"
#include "hash/sha1_kernel.h"
#include "hash/sha256_kernel.h"
#include "simgpu/trace.h"
#include "support/error.h"

namespace gks::simgpu {
namespace {

/// Builds the 16 message words for a key of `key_len` characters:
/// words that contain key bytes are runtime symbols, everything else
/// (padding, length) is a compile-time constant taken from a packed
/// placeholder block.
std::array<TracedWord, 16> md5_message_words(std::size_t key_len) {
  const auto block = hash::pack_md5_block(std::string(key_len, 'x'));
  std::array<TracedWord, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = 4 * w < key_len ? TracedWord::symbol() : TracedWord(block.words[w]);
  }
  return m;
}

std::array<TracedWord, 16> sha_message_words(std::size_t key_len) {
  const auto block = hash::pack_sha_block(std::string(key_len, 'x'));
  std::array<TracedWord, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = 4 * w < key_len ? TracedWord::symbol() : TracedWord(block.words[w]);
  }
  return m;
}

hash::Md5State<TracedWord> md5_initial_state() {
  return {TracedWord(hash::kMd5Init[0]), TracedWord(hash::kMd5Init[1]),
          TracedWord(hash::kMd5Init[2]), TracedWord(hash::kMd5Init[3])};
}

hash::Sha1State<TracedWord> sha1_initial_state() {
  return {TracedWord(hash::kSha1Init[0]), TracedWord(hash::kSha1Init[1]),
          TracedWord(hash::kSha1Init[2]), TracedWord(hash::kSha1Init[3]),
          TracedWord(hash::kSha1Init[4])};
}

}  // namespace

std::vector<SrcInstr> trace_md5(Md5KernelVariant variant,
                                std::size_t key_len) {
  GKS_REQUIRE(key_len <= hash::kMaxKernelKeyLength,
              "key length above the kernel limit");
  switch (variant) {
    case Md5KernelVariant::kSource: {
      // Verbatim source operations of the 64 compression steps — what
      // Table III counts. Folding is disabled so even the operations
      // nvcc would evaluate at compile time are recorded.
      TraceStream stream(/*fold_constants=*/false);
      TraceScope scope(stream);
      auto m = md5_message_words(key_len);
      auto s = md5_initial_state();
      hash::md5_forward_steps(s, m, 64);
      return stream.instructions();
    }
    case Md5KernelVariant::kPlainCompiled: {
      // Constant-folded 64-step kernel plus feed-forward — Table IV.
      TraceStream stream(/*fold_constants=*/true);
      TraceScope scope(stream);
      auto m = md5_message_words(key_len);
      auto s = md5_initial_state();
      hash::md5_forward_steps(s, m, 64);
      // The feed-forward and digest comparison materialize the four
      // pending state additions.
      s.a.force();
      s.b.force();
      s.c.force();
      s.d.force();
      return stream.instructions();
    }
    case Md5KernelVariant::kReversed: {
      // The Section V-B kernel: the target is reverted 15 steps once
      // per chunk, each candidate runs 45 forward steps plus the step
      // 45 early-exit check — a 46-step common path (the three further
      // checks execute only on 2^-32 of candidates).
      TraceStream stream(/*fold_constants=*/true);
      TraceScope scope(stream);
      auto m = md5_message_words(key_len);
      auto s = md5_initial_state();
      hash::md5_forward_steps(s, m, 46);
      // Comparing against the reverted target materializes the checked
      // register (the comparison itself is predicate work the paper
      // does not count).
      s.b.force();
      return stream.instructions();
    }
    case Md5KernelVariant::kReversedNoEarlyExit: {
      // BarsWF-style: the 15-step reversal but no anticipated checks —
      // every candidate runs all 49 forward steps.
      TraceStream stream(/*fold_constants=*/true);
      TraceScope scope(stream);
      auto m = md5_message_words(key_len);
      auto s = md5_initial_state();
      hash::md5_forward_steps(s, m, 49);
      s.a.force();
      s.b.force();
      s.c.force();
      s.d.force();
      return stream.instructions();
    }
  }
  throw InternalError("unknown MD5 kernel variant");
}

std::vector<SrcInstr> trace_sha1(Sha1KernelVariant variant,
                                 std::size_t key_len) {
  GKS_REQUIRE(key_len <= hash::kMaxKernelKeyLength,
              "key length above the kernel limit");
  switch (variant) {
    case Sha1KernelVariant::kSource: {
      TraceStream stream(/*fold_constants=*/false);
      TraceScope scope(stream);
      auto m = sha_message_words(key_len);
      auto s = sha1_initial_state();
      hash::sha1_forward_steps(s, m, 80);
      return stream.instructions();
    }
    case Sha1KernelVariant::kPlainCompiled: {
      TraceStream stream(/*fold_constants=*/true);
      TraceScope scope(stream);
      auto m = sha_message_words(key_len);
      auto s = sha1_initial_state();
      hash::sha1_forward_steps(s, m, 80);
      s.a.force();
      s.b.force();
      s.c.force();
      s.d.force();
      s.e.force();
      return stream.instructions();
    }
    case Sha1KernelVariant::kOptimized: {
      // Feed-forward reverted once per target; early exit after step
      // 75: the common path is 76 steps plus the rotl(a, 30) feeding
      // the first comparison.
      TraceStream stream(/*fold_constants=*/true);
      TraceScope scope(stream);
      auto m = sha_message_words(key_len);
      auto s = sha1_initial_state();
      hash::sha1_forward_steps(s, m, 76);
      TracedWord check = rotl(s.a, 30);
      check.force();
      return stream.instructions();
    }
  }
  throw InternalError("unknown SHA1 kernel variant");
}

std::vector<SrcInstr> trace_sha256_nonce() {
  TraceStream stream(/*fold_constants=*/true);
  TraceScope scope(stream);
  // Second block of an 80-byte block header: words 0..2 are the tail of
  // the merkle root / time / bits (fixed per work unit), word 3 is the
  // nonce, the rest is padding and length.
  std::array<TracedWord, 16> m;
  m[0] = TracedWord(0x11111111u);
  m[1] = TracedWord(0x22222222u);
  m[2] = TracedWord(0x33333333u);
  m[3] = TracedWord::symbol();  // nonce
  m[4] = TracedWord(0x80000000u);
  for (std::size_t w = 5; w < 15; ++w) m[w] = TracedWord(0u);
  m[15] = TracedWord(640u);  // 80 bytes

  hash::Sha256State<TracedWord> s{
      {TracedWord(hash::kSha256Init[0]), TracedWord(hash::kSha256Init[1]),
       TracedWord(hash::kSha256Init[2]), TracedWord(hash::kSha256Init[3]),
       TracedWord(hash::kSha256Init[4]), TracedWord(hash::kSha256Init[5]),
       TracedWord(hash::kSha256Init[6]), TracedWord(hash::kSha256Init[7])}};
  sha256_compress(s, m);
  for (auto& h : s.h) h.force();
  return stream.instructions();
}

}  // namespace gks::simgpu
