#pragma once

#include <cstddef>
#include <vector>

#include "simgpu/isa.h"

namespace gks::simgpu {

/// Which MD5 cracking kernel is being traced. The three variants map
/// onto the paper's instruction-count tables:
///   kSource        → Table III  (verbatim source operations)
///   kPlainCompiled → Table IV   (constant folding, full 64 steps)
///   kReversed      → Tables V/VI (15-step reversal + early exit:
///                    the per-candidate common path is 46 steps)
///   kReversedNoEarlyExit → the BarsWF-style kernel: reversal but all
///                    49 forward steps per candidate (baseline model)
enum class Md5KernelVariant {
  kSource,
  kPlainCompiled,
  kReversed,
  kReversedNoEarlyExit,
};

/// SHA1 equivalents: source counting, plain compiled (80 steps), and
/// the optimized kernel (feed-forward reverted once per target, early
/// exit after step 75 → 76-step common path plus one compare rotate).
enum class Sha1KernelVariant { kSource, kPlainCompiled, kOptimized };

/// Records the source-level instruction stream of one candidate test
/// of the MD5 kernel by instantiating the production kernel template
/// with TracedWord. `key_len` determines which message words are
/// runtime values (key characters) versus compile-time constants
/// (padding and length); the paper's reference kernel uses key_len = 4.
std::vector<SrcInstr> trace_md5(Md5KernelVariant variant,
                                std::size_t key_len = 4);

/// SHA1 counterpart of trace_md5.
std::vector<SrcInstr> trace_sha1(Sha1KernelVariant variant,
                                 std::size_t key_len = 4);

/// One SHA256 compression with the nonce word as the only runtime
/// value — the per-candidate cost of the Bitcoin-style search
/// (extension; the paper only motivates this workload in Section I).
std::vector<SrcInstr> trace_sha256_nonce();

/// A per-thread work profile: the machine mix of one candidate test
/// plus the instruction-level parallelism the kernel exposes and the
/// per-candidate loop overhead (the `next` operator etc., measured
/// "less than 1% of the time spent by the hash function", Section V-B).
struct KernelProfile {
  MachineMix per_candidate;
  unsigned ilp = 1;                 ///< independent streams per thread
  double overhead_fraction = 0.01;  ///< extra instructions, fraction

  /// Mix including the loop overhead, spread uniformly across classes.
  MachineMix effective_mix() const {
    return per_candidate.scaled(1.0 + overhead_fraction);
  }
};

}  // namespace gks::simgpu
