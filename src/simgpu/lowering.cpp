#include "simgpu/lowering.h"

namespace gks::simgpu {
namespace {

void lower_rotation(const LoweringOptions& opt, MachineMix& out) {
  if (opt.legacy_rotate) {
    out[MachineOp::kShift] += 2;
    out[MachineOp::kIAdd] += 1;
    return;
  }
  switch (opt.cc) {
    case ComputeCapability::kCc1x:
      // (x << n) + (x >> 32-n) stays a SHL/SHR pair plus an ADD.
      out[MachineOp::kShift] += 2;
      out[MachineOp::kIAdd] += 1;
      break;
    case ComputeCapability::kCc20:
    case ComputeCapability::kCc21:
    case ComputeCapability::kCc30:
      // SHL followed by IMAD.HI: the multiply-add emulates the other
      // shift and performs the addition implicitly ("the number of ADD
      // decreases since ISCADD, IMAD ... implicitly perform the
      // addition").
      out[MachineOp::kShift] += 1;
      out[MachineOp::kMadShift] += 1;
      break;
    case ComputeCapability::kCc35:
      // Funnel shift: full rotation in one instruction.
      out[MachineOp::kFunnel] += 1;
      break;
  }
}

}  // namespace

MachineMix lower(const std::vector<SrcInstr>& src,
                 const LoweringOptions& opt) {
  MachineMix out;
  for (const SrcInstr& instr : src) {
    switch (instr.op) {
      case SrcOp::kAdd:
        out[MachineOp::kIAdd] += 1;
        break;
      case SrcOp::kAnd:
      case SrcOp::kOr:
      case SrcOp::kXor:
        out[MachineOp::kLop] += 1;
        break;
      case SrcOp::kNot:
        // LOP operands carry a negate modifier from cc 2.x on, and the
        // cc 1.x assembler folds complements the same way, so a merged
        // NOT costs nothing.
        if (!opt.merge_not) out[MachineOp::kLop] += 1;
        break;
      case SrcOp::kShl:
      case SrcOp::kShr:
        out[MachineOp::kShift] += 1;
        break;
      case SrcOp::kRotl:
      case SrcOp::kRotr:
        if (opt.use_byte_perm && opt.cc != ComputeCapability::kCc1x &&
            (instr.amount % 8) == 0) {
          // Byte-aligned rotation: one PRMT regardless of direction.
          out[MachineOp::kPrmt] += 1;
        } else {
          lower_rotation(opt, out);
        }
        break;
    }
  }
  return out;
}

}  // namespace gks::simgpu
