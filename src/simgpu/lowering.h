#pragma once

#include <vector>

#include "simgpu/arch.h"
#include "simgpu/isa.h"

namespace gks::simgpu {

/// Per-architecture code generation options — the knobs Section V-B
/// studies with cuobjdump.
struct LoweringOptions {
  ComputeCapability cc = ComputeCapability::kCc30;

  /// Replace 16-bit rotations with a single PRMT (__byte_perm), the
  /// final Kepler optimization of Table VI ("execute a rotation by 16
  /// bits in a single instruction").
  bool use_byte_perm = false;

  /// Merge unary NOT into the consuming logic operation ("the unary NOT
  /// operations are omitted since they are merged with other
  /// instructions in the final phase of compilation"). All measured
  /// architectures do this; disabling it is only useful for inspecting
  /// raw source counts.
  bool merge_not = true;

  /// Expand rotations as SHL + SHR + IADD even on cc >= 2.0 — the code
  /// a pre-Fermi toolchain (or hand-written SASS for older devices, as
  /// shipped by BarsWF) produces when run unmodified on newer GPUs.
  /// Used only by the baseline tool models.
  bool legacy_rotate = false;
};

/// Lowers a recorded source instruction stream into per-class machine
/// instruction counts for the target architecture — our stand-in for
/// `nvcc` + `cuobjdump -sass` (DESIGN.md §1). The rotation pseudo-op
/// expands per Section V-B:
///
///   cc 1.x       : SHL + SHR + IADD
///   cc 2.x / 3.0 : SHL + IMAD.HI (or SHR + ISCADD — interchangeable),
///                  the MAD absorbing the addition;
///                  optionally PRMT for 16-bit rotations
///   cc 3.5       : one funnel shift (SHF)
MachineMix lower(const std::vector<SrcInstr>& src, const LoweringOptions& opt);

}  // namespace gks::simgpu
