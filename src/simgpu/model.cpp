#include "simgpu/model.h"

#include <algorithm>

#include "support/error.h"

namespace gks::simgpu {

double ThroughputModel::cycles_per_candidate(const MultiprocessorArch& arch,
                                             const MachineMix& mix) {
  const double n_add = mix[MachineOp::kIAdd];
  const double n_lop = mix[MachineOp::kLop];
  const double n_shm = mix.shift_class();
  GKS_REQUIRE(n_add + n_lop + n_shm > 0, "empty instruction mix");

  if (arch.cc == ComputeCapability::kCc1x) {
    // Single single-issue scheduler: classes serialize (Section VI-B,
    // "all types of warp instructions ... will be serialized"). The
    // ideal model grants the SFU add bonus (ADD at 10/clock).
    return n_add / (arch.add_throughput + arch.sfu_add_bonus) +
           n_lop / arch.lop_throughput + n_shm / arch.shift_throughput;
  }

  const double addlop = n_add + n_lop;
  if (arch.shift_shares_alu_cores) {
    // cc 2.x: shift/MAD occupy one group of the ADD-capable cores, so
    // both the total issue bandwidth and the shift unit constrain.
    return std::max((addlop + n_shm) / arch.add_throughput,
                    n_shm / arch.shift_throughput);
  }
  // cc 3.x: dedicated shift/MAD group overlaps fully with ADD/LOP
  // groups.
  return std::max(addlop / arch.add_throughput,
                  n_shm / arch.shift_throughput);
}

double ThroughputModel::theoretical_throughput(const DeviceSpec& device,
                                               const MachineMix& mix) {
  const double cycles = cycles_per_candidate(device.arch(), mix);
  return device.clock_hz() * device.mp_count / cycles;
}

namespace {

MachineMix make_mix(std::uint32_t iadd, std::uint32_t lop, std::uint32_t shift,
                    std::uint32_t mad, std::uint32_t prmt = 0) {
  MachineMix m;
  m[MachineOp::kIAdd] = iadd;
  m[MachineOp::kLop] = lop;
  m[MachineOp::kShift] = shift;
  m[MachineOp::kMadShift] = mad;
  m[MachineOp::kPrmt] = prmt;
  return m;
}

}  // namespace

// Table IV — "actual instruction count (MD5)", plain len-4 kernel.
MachineMix PaperCounts::md5_plain_cc1() { return make_mix(284, 156, 128, 0); }
MachineMix PaperCounts::md5_plain_cc2() { return make_mix(220, 155, 64, 64); }

// Table V — after the reversal and early-exit optimizations.
MachineMix PaperCounts::md5_optimized_cc1() {
  return make_mix(197, 118, 90, 0);
}
MachineMix PaperCounts::md5_optimized_cc2() {
  return make_mix(150, 120, 46, 46);
}

// Table VI — final kernel with __byte_perm on the byte rotations.
MachineMix PaperCounts::md5_final_cc1() { return make_mix(197, 118, 90, 0); }
MachineMix PaperCounts::md5_final_cc2() {
  return make_mix(150, 120, 43, 43, 3);
}

MachineMix PaperCounts::md5_final(ComputeCapability cc) {
  return cc == ComputeCapability::kCc1x ? md5_final_cc1() : md5_final_cc2();
}

}  // namespace gks::simgpu
