#pragma once

#include "simgpu/arch.h"
#include "simgpu/isa.h"

namespace gks::simgpu {

/// Analytic throughput model of Section VI-B — the "theoretical" row of
/// Table VIII. Computes the minimum number of clock cycles one
/// multiprocessor needs per candidate and scales by clock and MP count.
///
/// Per architecture family:
///   cc 1.*      : a single single-issue scheduler serializes all
///                 classes: T = N_ADD/X_ADD + N_LOP/X_LOP + N_SHM/X_SHM
///                 (with the SFU add bonus included, as the model
///                 assumes ideal ILP);
///   cc 2.0/2.1  : shift/MAD run on one group of the same cores that
///                 run additions, so the constraint is
///                 T = max(N_total/X_ADDLOP, N_SHM/X_SHM);
///   cc 3.0/3.5  : shift/MAD own a dedicated group that overlaps fully
///                 with the ADD/LOP groups:
///                 T = max(N_ADDLOP/X_ADDLOP, N_SHM/X_SHM).
class ThroughputModel {
 public:
  /// Cycles per candidate on one multiprocessor at ideal occupancy.
  static double cycles_per_candidate(const MultiprocessorArch& arch,
                                     const MachineMix& mix);

  /// Device-level throughput in candidates per second.
  static double theoretical_throughput(const DeviceSpec& device,
                                       const MachineMix& mix);

  /// Same in the paper's reporting unit, MKeys/s.
  static double theoretical_mkeys(const DeviceSpec& device,
                                  const MachineMix& mix) {
    return theoretical_throughput(device, mix) / 1e6;
  }
};

/// The machine mixes of the paper's own Tables IV/V/VI, provided as
/// constants so benches can demonstrate that the model reproduces the
/// paper's theoretical numbers exactly from the paper's counts, next
/// to the mixes we trace from our kernels.
struct PaperCounts {
  /// Table VI (final optimized MD5), cc 1.* column.
  static MachineMix md5_final_cc1();
  /// Table VI (final optimized MD5), cc 2.*/3.0 column.
  static MachineMix md5_final_cc2();
  /// Table IV (plain compiled MD5), cc 1.* column.
  static MachineMix md5_plain_cc1();
  /// Table IV (plain compiled MD5), cc 2.*/3.0 column.
  static MachineMix md5_plain_cc2();
  /// Table V (reversed + early-exit MD5), cc 1.* column.
  static MachineMix md5_optimized_cc1();
  /// Table V (reversed + early-exit MD5), cc 2.*/3.0 column.
  static MachineMix md5_optimized_cc2();

  /// Picks the right column for an architecture. The paper publishes
  /// no SHA1 instruction tables, so SHA1 rows always use our traced
  /// counts (see EXPERIMENTS.md).
  static MachineMix md5_final(ComputeCapability cc);
};

}  // namespace gks::simgpu
