#include "simgpu/simt.h"

#include <algorithm>
#include <numeric>

#include "support/error.h"

namespace gks::simgpu {
namespace {

constexpr unsigned kWarpSize = 32;

/// Per-warp execution state.
struct WarpState {
  std::size_t pc = 0;  ///< index into the repeating op pattern
  std::uint64_t instructions_issued = 0;
  /// Completion cycles of in-flight instructions, indexed by
  /// (instruction number % ilp): instruction i depends on i - ilp.
  std::vector<std::uint64_t> completion;
};

}  // namespace

SimtSimulator::SimtSimulator(const MultiprocessorArch& arch, SimtConfig config)
    : arch_(arch), config_(config) {
  GKS_REQUIRE(config_.resident_warps >= 1, "need at least one resident warp");
  GKS_REQUIRE(config_.measure_cycles > 0, "empty measurement window");
}

std::vector<unsigned> SimtSimulator::allowed_groups(MachineOp op) const {
  const bool shift_class =
      op == MachineOp::kShift || op == MachineOp::kMadShift ||
      op == MachineOp::kPrmt || op == MachineOp::kFunnel;
  std::vector<unsigned> groups;
  switch (arch_.cc) {
    case ComputeCapability::kCc1x:
      // One group executes everything.
      groups = {0};
      break;
    case ComputeCapability::kCc20:
    case ComputeCapability::kCc21:
      // Shift/MAD only on group 0; ADD/LOP on any group (same cores).
      // ADD/LOP prefer the other groups so the lone shift-capable one
      // stays available — the dispatch-port arbitration real hardware
      // performs.
      if (shift_class) {
        groups = {0};
      } else {
        for (unsigned g = 1; g < arch_.core_groups; ++g) groups.push_back(g);
        groups.push_back(0);
      }
      break;
    case ComputeCapability::kCc30:
      // "integer ADD and logical operations on 5 of the 6 groups ...
      // shifts and MAD on only 1 group" (Section V-A).
      if (shift_class) {
        groups = {0};
      } else {
        groups = {1, 2, 3, 4, 5};
      }
      break;
    case ComputeCapability::kCc35:
      // Doubled shift/funnel throughput: two shift-capable groups.
      if (shift_class) {
        groups = {0, 1};
      } else {
        groups = {2, 3, 4, 5};
      }
      break;
  }
  return groups;
}

std::vector<MachineOp> SimtSimulator::build_pattern(const MachineMix& mix) {
  const std::uint32_t total = mix.total();
  GKS_REQUIRE(total > 0, "empty instruction mix");

  // Largest-remainder interleave: at each position emit the class
  // whose accumulated deficit is largest, yielding the even spread of
  // shift/rotate work through the hash rounds.
  std::vector<MachineOp> pattern;
  pattern.reserve(total);
  std::array<double, kMachineOpCount> credit{};
  for (std::uint32_t i = 0; i < total; ++i) {
    std::size_t best = kMachineOpCount;
    double best_credit = 0;
    for (std::size_t c = 0; c < kMachineOpCount; ++c) {
      credit[c] += static_cast<double>(mix.counts[c]) / total;
      if (credit[c] > best_credit) {
        best_credit = credit[c];
        best = c;
      }
    }
    GKS_ENSURE(best < kMachineOpCount, "pattern construction stalled");
    credit[best] -= 1.0;
    pattern.push_back(static_cast<MachineOp>(best));
  }
  return pattern;
}

SimtResult SimtSimulator::run(const KernelProfile& profile) const {
  const MachineMix mix = profile.effective_mix();
  const std::vector<MachineOp> pattern = build_pattern(mix);
  const unsigned ilp = std::max(1u, profile.ilp);
  const unsigned slot = arch_.issue_cycles;
  const unsigned groups = arch_.core_groups;

  // Precompute group permissions per op class.
  std::array<std::vector<unsigned>, kMachineOpCount> allowed;
  for (std::size_t c = 0; c < kMachineOpCount; ++c) {
    allowed[c] = allowed_groups(static_cast<MachineOp>(c));
  }

  std::vector<WarpState> warps(config_.resident_warps);
  for (std::size_t i = 0; i < warps.size(); ++i) {
    warps[i].completion.assign(ilp, 0);
    // Stagger warps through the kernel body: resident warps launched
    // back-to-back never run in lockstep, and a lockstep start would
    // make every warp contend for the same core group each slot.
    warps[i].pc = (i * pattern.size()) / warps.size();
    warps[i].instructions_issued = warps[i].pc;
  }

  std::vector<std::uint64_t> group_busy_until(groups, 0);
  std::vector<std::uint64_t> group_busy_cycles(groups, 0);

  std::uint64_t retired = 0;
  std::uint64_t issued_total = 0;
  std::uint64_t dual_issued = 0;
  std::uint64_t retired_at_warmup = 0;

  const std::uint64_t end_cycle =
      config_.warmup_cycles + config_.measure_cycles;

  // Round-robin positions, one per scheduler.
  std::vector<std::size_t> rr(arch_.warp_schedulers, 0);

  const auto try_issue = [&](WarpState& w, std::uint64_t cycle) -> bool {
    const MachineOp op = pattern[w.pc % pattern.size()];
    // Dependency: this instruction consumes the result produced `ilp`
    // instructions ago in its stream.
    if (w.completion[w.instructions_issued % ilp] > cycle) return false;
    for (unsigned g : allowed[static_cast<std::size_t>(op)]) {
      if (group_busy_until[g] <= cycle) {
        group_busy_until[g] = cycle + slot;
        group_busy_cycles[g] += slot;
        w.completion[w.instructions_issued % ilp] =
            cycle + config_.arithmetic_latency;
        w.instructions_issued += 1;
        w.pc += 1;
        retired += 1;
        return true;
      }
    }
    return false;
  };

  for (std::uint64_t cycle = 0; cycle < end_cycle; cycle += slot) {
    if (cycle < config_.warmup_cycles &&
        cycle + slot >= config_.warmup_cycles) {
      retired_at_warmup = retired;
    }
    // Rotate scheduler priority each slot: hardware arbitrates fairly,
    // and a fixed order would let scheduler 0 monopolize contended
    // groups.
    const unsigned first_scheduler =
        static_cast<unsigned>((cycle / slot) % arch_.warp_schedulers);
    for (unsigned si = 0; si < arch_.warp_schedulers; ++si) {
      const unsigned s = (first_scheduler + si) % arch_.warp_schedulers;
      // Each scheduler owns the warps with index ≡ s (mod schedulers).
      const std::size_t owned =
          (warps.size() + arch_.warp_schedulers - 1 - s) /
          arch_.warp_schedulers;
      if (owned == 0) continue;
      // Two probe passes: first offer the scarce shift/MAD pipeline to
      // a warp that can use it (schedulers keep the bottleneck port
      // fed), then issue anything that fits.
      bool issued = false;
      for (int pass = 0; pass < 2 && !issued; ++pass) {
        for (std::size_t probe = 0; probe < owned && !issued; ++probe) {
          const std::size_t wi =
              s + ((rr[s] + probe) % owned) * arch_.warp_schedulers;
          if (wi >= warps.size()) continue;
          WarpState& w = warps[wi];
          if (pass == 0) {
            const MachineOp op = pattern[w.pc % pattern.size()];
            const bool shift_class = op == MachineOp::kShift ||
                                     op == MachineOp::kMadShift ||
                                     op == MachineOp::kPrmt ||
                                     op == MachineOp::kFunnel;
            if (!shift_class) continue;
          }
          if (try_issue(w, cycle)) {
            issued = true;
            issued_total += 1;
            rr[s] = (rr[s] + probe + 1) % owned;
            // Dual issue: a second, *independent* instruction from the
            // same warp. With ilp == 1 the next instruction depends on
            // the one just issued, so this never fires — the profiler
            // observation ("dispatched in a dual-issue fashion is very
            // low") becomes structural.
            if (arch_.dual_issue && try_issue(w, cycle)) {
              issued_total += 1;
              dual_issued += 1;
            }
          }
        }
      }
    }
  }

  const std::uint64_t measured = retired - retired_at_warmup;
  SimtResult result;
  result.warp_instructions_per_cycle =
      static_cast<double>(measured) / config_.measure_cycles;
  result.candidates_per_cycle = result.warp_instructions_per_cycle *
                                kWarpSize / mix.total();
  result.dual_issue_fraction =
      issued_total == 0 ? 0.0
                        : static_cast<double>(dual_issued) / issued_total;
  result.group_utilization.resize(groups);
  for (unsigned g = 0; g < groups; ++g) {
    result.group_utilization[g] =
        static_cast<double>(group_busy_cycles[g]) / end_cycle;
  }
  return result;
}

double SimtSimulator::device_throughput(const DeviceSpec& device,
                                        const KernelProfile& profile,
                                        const SimtConfig& config) {
  SimtSimulator sim(device.arch(), config);
  const SimtResult r = sim.run(profile);
  return r.candidates_per_cycle * device.clock_hz() * device.mp_count;
}

}  // namespace gks::simgpu
