#pragma once

#include <cstdint>
#include <vector>

#include "simgpu/arch.h"
#include "simgpu/kernel_profile.h"

namespace gks::simgpu {

/// Tunables of the cycle-level multiprocessor simulation.
struct SimtConfig {
  /// Resident warps per multiprocessor (occupancy). The kernels use
  /// ~1 KB of state (Section II: "requires a minimal amount of
  /// memory"), so occupancy is never register/memory limited and the
  /// cracking grids run at the architectural maximum (64 on Kepler);
  /// each of Kepler's 4 schedulers then owns 16 warps, enough to hide
  /// the ALU latency at one issue per cycle.
  unsigned resident_warps = 64;

  /// Cycles from issue to result availability for dependent ALU
  /// instructions (~9-11 on Kepler, which is the binding case: its
  /// schedulers must re-issue a warp every latency/16 cycles).
  unsigned arithmetic_latency = 10;

  /// Simulated cycles: measurement window and pipeline warm-up.
  std::uint64_t measure_cycles = 60000;
  std::uint64_t warmup_cycles = 6000;
};

/// What one simulated multiprocessor achieved.
struct SimtResult {
  double warp_instructions_per_cycle = 0;  ///< retired, per MP
  double candidates_per_cycle = 0;         ///< threads' hashes per MP cycle
  double dual_issue_fraction = 0;  ///< issues that were the second of a pair
  std::vector<double> group_utilization;  ///< busy fraction per core group
};

/// Cycle-level SIMT multiprocessor simulator (DESIGN.md §1). Models the
/// mechanisms Section V/VI reason about:
///   - warp schedulers fire once per issue slot (Table I issue time);
///   - dual-issue schedulers (cc >= 2.1) may issue a second instruction
///     from the same warp only if it is independent — i.e. only when
///     the kernel exposes ILP;
///   - each instruction seizes one core group for a full issue slot,
///     and shift/MAD-class instructions are restricted to the groups
///     that can execute them;
///   - an instruction's consumers wait out the arithmetic latency,
///     hidden by other resident warps.
///
/// The paper's headline effects emerge rather than being programmed in:
/// with ILP=1 a cc 2.1 multiprocessor can start at most 2 of its 3
/// groups per slot (≈2/3 of peak, the measured 550 Ti gap) while a
/// cc 3.0 multiprocessor's 4 schedulers just barely cover the
/// shift-bound MD5 mix (≈99% of peak, the measured GTX 660 result).
class SimtSimulator {
 public:
  explicit SimtSimulator(const MultiprocessorArch& arch,
                         SimtConfig config = {});

  /// Simulates one multiprocessor running the kernel profile steadily.
  SimtResult run(const KernelProfile& profile) const;

  /// Device-level sustained throughput (candidates per second):
  /// per-MP result scaled by clock and multiprocessor count.
  static double device_throughput(const DeviceSpec& device,
                                  const KernelProfile& profile,
                                  const SimtConfig& config = {});

 private:
  /// Core groups an op class may execute on (indices into the MP's
  /// groups). See Section V-A's findings per compute capability.
  std::vector<unsigned> allowed_groups(MachineOp op) const;

  /// Representative per-candidate op sequence: classes interleaved
  /// evenly, mirroring the hash kernels' regular structure.
  static std::vector<MachineOp> build_pattern(const MachineMix& mix);

  const MultiprocessorArch& arch_;
  SimtConfig config_;
};

}  // namespace gks::simgpu
