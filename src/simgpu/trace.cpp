#include "simgpu/trace.h"

#include <algorithm>

#include "hash/kernel_words.h"

namespace gks::simgpu {
namespace {

thread_local TraceStream* g_active = nullptr;

}  // namespace

TraceScope::TraceScope(TraceStream& stream) {
  GKS_REQUIRE(g_active == nullptr, "a TraceScope is already active");
  g_active = &stream;
}

TraceScope::~TraceScope() { g_active = nullptr; }

TraceStream& TraceScope::current() {
  GKS_ENSURE(g_active != nullptr,
             "TracedWord used outside an active TraceScope");
  return *g_active;
}

bool TracedWord::SymNode::offset_paid(std::uint32_t offset) const {
  return std::find(materialized_offsets.begin(), materialized_offsets.end(),
                   offset) != materialized_offsets.end();
}

void TracedWord::SymNode::record(std::uint32_t offset) {
  materialized_offsets.push_back(offset);
}

TracedWord TracedWord::symbol() {
  TracedWord w(0u);
  w.is_const_ = false;
  w.node_ = std::make_shared<SymNode>();
  w.offset_ = 0;
  return w;
}

std::uint32_t TracedWord::unpaid_offset() const {
  if (is_const_ || offset_ == 0) return 0;
  return node_->offset_paid(offset_) ? 0 : offset_;
}

void TracedWord::force() {
  if (is_const_) return;
  if (unpaid_offset() != 0) {
    TraceScope::current().emit(SrcOp::kAdd);
    node_->record(offset_);
  }
}

TracedWord operator+(TracedWord a, TracedWord b) {
  TraceStream& s = TraceScope::current();

  if (!s.folding()) {
    // Verbatim source counting (Table III): every addition is emitted,
    // nothing is a compile-time constant.
    s.emit(SrcOp::kAdd);
    return TracedWord::symbol();
  }

  if (a.is_const_ && b.is_const_) return TracedWord(a.value_ + b.value_);
  if (a.is_const_) std::swap(a, b);  // a is symbolic below
  if (b.is_const_) {
    // Constant addend folds into the offset; nvcc reassociates chains
    // like (x + m[k]) + K[i] into a single addition at first use.
    a.offset_ += b.value_;
    return a;
  }
  // Symbol + symbol: one IADD of the two registers. Offsets the
  // operands have already paid for live in those registers; unpaid
  // ones ride along on the result.
  s.emit(SrcOp::kAdd);
  const std::uint32_t carried = a.unpaid_offset() + b.unpaid_offset();
  TracedWord r = TracedWord::symbol();
  r.offset_ = carried;
  return r;
}

TracedWord TracedWord::logic(TracedWord a, TracedWord b, SrcOp op,
                             std::uint32_t folded) {
  TraceStream& s = TraceScope::current();
  if (!s.folding()) {
    s.emit(op);
    return symbol();
  }
  if (a.is_const_ && b.is_const_) return TracedWord(folded);
  // Logical operations leave the additive domain: pending constant
  // addends must be materialized first (once per SSA value + offset).
  a.force();
  b.force();
  s.emit(op);
  return symbol();
}

TracedWord operator&(TracedWord a, TracedWord b) {
  return TracedWord::logic(
      a, b, SrcOp::kAnd,
      a.is_constant() && b.is_constant() ? a.value_ & b.value_ : 0);
}

TracedWord operator|(TracedWord a, TracedWord b) {
  return TracedWord::logic(
      a, b, SrcOp::kOr,
      a.is_constant() && b.is_constant() ? a.value_ | b.value_ : 0);
}

TracedWord operator^(TracedWord a, TracedWord b) {
  return TracedWord::logic(
      a, b, SrcOp::kXor,
      a.is_constant() && b.is_constant() ? a.value_ ^ b.value_ : 0);
}

TracedWord operator~(TracedWord a) {
  TraceStream& s = TraceScope::current();
  if (!s.folding()) {
    s.emit(SrcOp::kNot);
    return TracedWord::symbol();
  }
  if (a.is_constant()) return TracedWord(~a.value_);
  a.force();
  s.emit(SrcOp::kNot);
  return TracedWord::symbol();
}

TracedWord TracedWord::shiftlike(TracedWord a, unsigned n, SrcOp op,
                                 std::uint32_t folded) {
  TraceStream& s = TraceScope::current();
  if (!s.folding()) {
    s.emit(op, n);
    return symbol();
  }
  if (a.is_constant()) return TracedWord(folded);
  a.force();
  s.emit(op, n);
  return symbol();
}

TracedWord rotl(TracedWord a, unsigned n) {
  return TracedWord::shiftlike(
      a, n, SrcOp::kRotl, a.is_constant() ? hash::rotl(a.value_, n) : 0);
}

TracedWord rotr(TracedWord a, unsigned n) {
  return TracedWord::shiftlike(
      a, n, SrcOp::kRotr, a.is_constant() ? hash::rotr(a.value_, n) : 0);
}

TracedWord shr(TracedWord a, unsigned n) {
  return TracedWord::shiftlike(a, n, SrcOp::kShr,
                               a.is_constant() ? a.value_ >> n : 0);
}

}  // namespace gks::simgpu
