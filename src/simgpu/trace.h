#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simgpu/isa.h"
#include "support/error.h"

namespace gks::simgpu {

/// Collects the source-level instruction stream emitted by TracedWord
/// operations. One stream is active per thread at a time (TraceScope).
///
/// With `fold_constants` enabled the stream behaves like an optimizing
/// compiler front-end: operations between compile-time constants
/// vanish, and constant addends accumulate on symbolic values until a
/// non-additive operation materializes them as a single IADD — the
/// reassociation nvcc performs on (x + m[k]) + K[i] chains. A
/// materialized (value + offset) pair is remembered, so reusing the
/// same sum later is free (value numbering). With folding disabled the
/// stream records every source operation verbatim, which is what the
/// paper's Table III counts.
class TraceStream {
 public:
  explicit TraceStream(bool fold_constants = true) : fold_(fold_constants) {}

  bool folding() const { return fold_; }

  void emit(SrcOp op, unsigned amount = 0) {
    instructions_.push_back({op, amount});
  }

  const std::vector<SrcInstr>& instructions() const { return instructions_; }

  /// Source-level histogram (Table III rows).
  std::size_t count(SrcOp op) const {
    std::size_t n = 0;
    for (const auto& i : instructions_) {
      if (i.op == op) ++n;
    }
    return n;
  }

 private:
  bool fold_;
  std::vector<SrcInstr> instructions_;
};

/// RAII activation of a TraceStream for the current thread. Nested
/// scopes are forbidden (kernels are traced one at a time).
class TraceScope {
 public:
  explicit TraceScope(TraceStream& stream);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The stream the current thread is tracing into; throws if none.
  static TraceStream& current();
};

/// Symbolic 32-bit word. Instantiating the hash kernel templates with
/// TracedWord replays the exact kernel code while recording its
/// instruction stream (DESIGN.md §5.1: the counted kernel *is* the
/// executed kernel).
///
/// A word is either a compile-time constant or a runtime value. A
/// runtime value is (node, offset): `node` identifies the computed SSA
/// value — shared by all copies, like a compiler temporary — and
/// `offset` is a constant addend not yet paid for. Materializing
/// node+offset costs one IADD the first time and is free afterwards.
class TracedWord {
 public:
  /// Compile-time constant (message padding, round constants, ...).
  explicit TracedWord(std::uint32_t value)
      : is_const_(true), value_(value) {}

  TracedWord() : TracedWord(0u) {}

  /// A runtime input the compiler cannot fold (the candidate word).
  static TracedWord symbol();

  bool is_constant() const { return is_const_; }

  /// Constant value; only valid when is_constant().
  std::uint32_t constant_value() const {
    GKS_REQUIRE(is_constant(), "word is not a compile-time constant");
    return value_;
  }

  /// Pays any pending constant addition — what the feed-forward or a
  /// digest comparison forces at the end of a kernel.
  void force();

  friend TracedWord operator+(TracedWord a, TracedWord b);
  friend TracedWord operator&(TracedWord a, TracedWord b);
  friend TracedWord operator|(TracedWord a, TracedWord b);
  friend TracedWord operator^(TracedWord a, TracedWord b);
  friend TracedWord operator~(TracedWord a);
  friend TracedWord rotl(TracedWord a, unsigned n);
  friend TracedWord rotr(TracedWord a, unsigned n);
  friend TracedWord shr(TracedWord a, unsigned n);

 private:
  /// Materialization record of one SSA value: constant offsets that
  /// have already been added into a register.
  struct SymNode {
    std::vector<std::uint32_t> materialized_offsets;
    bool offset_paid(std::uint32_t offset) const;
    void record(std::uint32_t offset);
  };

  static TracedWord logic(TracedWord a, TracedWord b, SrcOp op,
                          std::uint32_t folded);
  static TracedWord shiftlike(TracedWord a, unsigned n, SrcOp op,
                              std::uint32_t folded);

  /// Offset still unpaid for this value (0 if none or already
  /// materialized earlier).
  std::uint32_t unpaid_offset() const;

  bool is_const_;
  std::uint32_t value_ = 0;           ///< constant value when is_const_
  std::shared_ptr<SymNode> node_;     ///< SSA identity when symbolic
  std::uint32_t offset_ = 0;          ///< pending constant addend
};

}  // namespace gks::simgpu
