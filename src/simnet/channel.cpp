#include "simnet/channel.h"

#include <algorithm>

namespace gks::simnet {

std::optional<Message> Mailbox::pop_deliverable_locked(
    std::chrono::steady_clock::time_point now) {
  // Messages are appended in send order but may carry different
  // delays; deliver the earliest-deadline message that is ready.
  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->deliver_at <= now &&
        (best == queue_.end() || it->deliver_at < best->deliver_at)) {
      best = it;
    }
  }
  if (best == queue_.end()) return std::nullopt;
  Message msg = std::move(best->msg);
  queue_.erase(best);
  return msg;
}

std::optional<Message> Mailbox::try_recv() {
  std::lock_guard<std::mutex> lock(mu_);
  return pop_deliverable_locked(std::chrono::steady_clock::now());
}

std::optional<Message> Mailbox::recv(double timeout_virtual_s) {
  const bool bounded = timeout_virtual_s >= 0;
  const auto give_up =
      bounded ? clock_.deadline(timeout_virtual_s)
              : std::chrono::steady_clock::time_point::max();

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (auto msg = pop_deliverable_locked(now)) return msg;
    if (bounded && now >= give_up) return std::nullopt;

    // Wake at the earliest of: next in-flight delivery, the timeout,
    // or a new send (notify).
    auto wake = give_up;
    for (const auto& p : queue_) wake = std::min(wake, p.deliver_at);
    if (wake == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, wake);
    }
  }
}

}  // namespace gks::simnet
