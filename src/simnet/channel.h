#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "simnet/clock.h"
#include "simnet/message.h"

namespace gks::simnet {

/// Properties of a point-to-point link. Defaults model a switched
/// 1 Gbit/s LAN like the paper's small PC network.
struct LinkSpec {
  double latency_s = 200e-6;      ///< one-way latency, virtual seconds
  double bandwidth_bps = 1e9;     ///< payload bandwidth, bits/second
  double loss_probability = 0.0;  ///< per-message drop chance (failure injection)

  /// Virtual transfer time of a message of `bytes` payload.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// One direction of a link: a MPSC mailbox whose messages become
/// visible only after their simulated transfer time has elapsed.
/// Thread-safe; any node-thread may send, the owning node receives.
class Mailbox {
 public:
  Mailbox(const VirtualClock& clock, LinkSpec spec)
      : clock_(clock), spec_(spec) {}

  /// Enqueues a message; it is deliverable after the mailbox link's
  /// virtual latency + serialization delay.
  void send(Message msg) {
    const double delay = spec_.transfer_seconds(msg.wire_size);
    send_with_delay(std::move(msg), delay);
  }

  /// Enqueues a message deliverable after an explicit virtual delay —
  /// used by Network, where the delay comes from the per-edge LinkSpec
  /// rather than this mailbox's default.
  void send_with_delay(Message msg, double virtual_delay_s) {
    const auto deliver_at = clock_.deadline(virtual_delay_s);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({deliver_at, std::move(msg)});
    }
    cv_.notify_all();
  }

  /// Blocks until a message is deliverable or `timeout_virtual_s`
  /// virtual seconds elapse; returns nullopt on timeout. A negative
  /// timeout waits forever.
  std::optional<Message> recv(double timeout_virtual_s = -1.0);

  /// Non-blocking receive of an already-deliverable message.
  std::optional<Message> try_recv();

  const LinkSpec& spec() const { return spec_; }

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    Message msg;
  };

  std::optional<Message> pop_deliverable_locked(
      std::chrono::steady_clock::time_point now);

  const VirtualClock& clock_;
  LinkSpec spec_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
};

}  // namespace gks::simnet
