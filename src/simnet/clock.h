#pragma once

#include <chrono>
#include <thread>

#include "support/error.h"

namespace gks::simnet {

/// Maps virtual (simulated) time onto real wall-clock time.
///
/// The cluster of simulated GPUs computes in *virtual* seconds (a GTX
/// 660 grinding 10^9 keys takes ~0.5 virtual seconds); running the
/// experiment in real time would be pointless, so the network scales
/// virtual durations by `scale` when actually sleeping. With the
/// default 1e-3, a 100-virtual-second experiment runs in 0.1 s while
/// preserving the relative timing of every node and link — which is
/// all the Section III cost model depends on.
///
/// A scale of 1.0 makes virtual time real time (used when cluster
/// nodes do real CPU cracking work).
class VirtualClock {
 public:
  explicit VirtualClock(double scale = 1e-3) : scale_(scale) {
    GKS_REQUIRE(scale > 0, "time scale must be positive");
  }

  double scale() const { return scale_; }

  /// Blocks the calling thread for `virtual_seconds` of simulated time.
  void sleep_virtual(double virtual_seconds) const {
    if (virtual_seconds <= 0) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(virtual_seconds * scale_));
  }

  /// Virtual seconds elapsed between two real-time points.
  double to_virtual(std::chrono::steady_clock::duration real) const {
    return std::chrono::duration<double>(real).count() / scale_;
  }

  /// Real deadline for something `virtual_seconds` in the future.
  std::chrono::steady_clock::time_point deadline(
      double virtual_seconds) const {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(virtual_seconds * scale_));
  }

 private:
  double scale_;
};

}  // namespace gks::simnet
