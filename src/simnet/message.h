#pragma once

#include <any>
#include <cstdint>
#include <string>

namespace gks::simnet {

/// Identifies a node within a Network. Ids are dense, assigned in
/// creation order; the root dispatcher is conventionally node 0.
using NodeId = std::uint32_t;

/// A unit of communication between nodes. The payload is type-erased;
/// the dispatch layer defines the concrete message structs and
/// dispatches on them with std::any_cast. `wire_size` feeds the link's
/// bandwidth model (the scatter/gather payloads of Section III are
/// small — an interval and a result record — which is why K_scatter
/// and K_gather become negligible for large problems).
struct Message {
  NodeId from = 0;
  std::any payload;
  std::size_t wire_size = 64;
};

}  // namespace gks::simnet
