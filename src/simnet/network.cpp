#include "simnet/network.h"

#include "support/error.h"

namespace gks::simnet {

Network::Network(double time_scale, std::uint64_t seed)
    : clock_(time_scale), rng_(seed) {}

Network::~Network() { join_all(); }

NodeId Network::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  auto state = std::make_unique<NodeState>();
  state->name = std::move(name);
  // The mailbox's own LinkSpec is unused (per-link specs apply at
  // send time); it only needs the clock.
  state->mailbox = std::make_unique<Mailbox>(clock_, LinkSpec{});
  nodes_.push_back(std::move(state));
  return id;
}

Network::NodeState& Network::node(NodeId id) {
  GKS_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}

const Network::NodeState& Network::node(NodeId id) const {
  GKS_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}

void Network::connect(NodeId parent, NodeId child, LinkSpec spec) {
  GKS_REQUIRE(parent != child, "a node cannot dispatch to itself");
  NodeState& p = node(parent);
  NodeState& c = node(child);
  GKS_REQUIRE(!c.parent.has_value(), "node already has a parent");
  c.parent = parent;
  p.children.push_back(child);
  p.links[child] = spec;
  c.links[parent] = spec;
}

const std::string& Network::name_of(NodeId id) const {
  return node(id).name;
}

std::optional<NodeId> Network::parent_of(NodeId id) const {
  return node(id).parent;
}

const std::vector<NodeId>& Network::children_of(NodeId id) const {
  return node(id).children;
}

void Network::send(NodeId from, NodeId to, std::any payload,
                   std::size_t wire_size) {
  NodeState& src = node(from);
  NodeState& dst = node(to);
  const auto link = src.links.find(to);
  GKS_REQUIRE(link != src.links.end(), "nodes are not connected");

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (src.down || dst.down) return;  // crashed endpoint: message lost
    if (link->second.loss_probability > 0 &&
        rng_.uniform01() < link->second.loss_probability) {
      return;  // link loss
    }
  }

  Message msg{from, std::move(payload), wire_size};
  dst.mailbox->send_with_delay(std::move(msg),
                               link->second.transfer_seconds(wire_size));
}

std::optional<Message> Network::recv(NodeId self, double timeout_virtual_s) {
  return node(self).mailbox->recv(timeout_virtual_s);
}

void Network::set_link_loss(NodeId a, NodeId b, double probability) {
  GKS_REQUIRE(probability >= 0 && probability <= 1,
              "loss probability must be in [0, 1]");
  NodeState& na = node(a);
  NodeState& nb = node(b);
  const auto ab = na.links.find(b);
  const auto ba = nb.links.find(a);
  GKS_REQUIRE(ab != na.links.end() && ba != nb.links.end(),
              "nodes are not connected");
  std::lock_guard<std::mutex> lock(mu_);
  ab->second.loss_probability = probability;
  ba->second.loss_probability = probability;
}

void Network::set_node_down(NodeId id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  node(id).down = down;
}

bool Network::is_down(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node(id).down;
}

void Network::start(NodeId id, std::function<void()> body) {
  NodeState& n = node(id);
  GKS_REQUIRE(!n.thread.joinable(), "node already started");
  n.thread = std::thread(std::move(body));
}

void Network::join_all() {
  for (auto& n : nodes_) {
    if (n->thread.joinable()) n->thread.join();
  }
}

}  // namespace gks::simnet
