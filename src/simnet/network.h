#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "simnet/channel.h"
#include "simnet/clock.h"
#include "simnet/message.h"
#include "support/rng.h"

namespace gks::simnet {

/// An in-process network of nodes connected in a tree — the simulated
/// stand-in for the paper's "small network of PCs" (DESIGN.md §1).
///
/// Each node owns one mailbox for all incoming traffic and runs its
/// role logic on its own thread, so the dispatch pattern executes with
/// real concurrency; only the *durations* (link transfer times, device
/// compute times) are virtual, scaled by the shared VirtualClock.
///
/// Failure injection: a node marked down neither receives nor emits
/// messages (a crashed or partitioned PC); links may also drop
/// messages probabilistically. Both are observed by the dispatch layer
/// purely as timeouts, exactly as a real master would see them.
class Network {
 public:
  explicit Network(double time_scale = 1e-3, std::uint64_t seed = 2014);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; returns its id (dense, in creation order).
  NodeId add_node(std::string name);

  /// Declares `child` to be dispatched to by `parent` over a link.
  /// Each node has at most one parent; messages may flow both ways.
  void connect(NodeId parent, NodeId child, LinkSpec spec = {});

  const VirtualClock& clock() const { return clock_; }
  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name_of(NodeId id) const;
  std::optional<NodeId> parent_of(NodeId id) const;
  const std::vector<NodeId>& children_of(NodeId id) const;

  /// Sends `payload` from `from` to `to`. The nodes must share a link.
  /// Silently dropped when either endpoint is down or the link loses
  /// the message — senders never learn about failures except through
  /// missing replies, as on a real network.
  void send(NodeId from, NodeId to, std::any payload,
            std::size_t wire_size = 64);

  /// Receives the next deliverable message for `self`, waiting at most
  /// `timeout_virtual_s` virtual seconds (negative: forever).
  std::optional<Message> recv(NodeId self, double timeout_virtual_s = -1.0);

  /// Marks a node crashed/recovered.
  void set_node_down(NodeId id, bool down);
  bool is_down(NodeId id) const;

  /// Changes the loss probability of the link between two connected
  /// nodes at runtime — a flaky or partitioned path. Unlike a crash,
  /// both endpoints stay alive, so a partitioned subtree can rejoin
  /// when the path heals (the paper's "temporarily inactive" nodes).
  void set_link_loss(NodeId a, NodeId b, double probability);

  /// Starts `body` as the node's thread. Each node may be started once.
  void start(NodeId id, std::function<void()> body);

  /// Joins all started node threads.
  void join_all();

 private:
  struct NodeState {
    std::string name;
    std::unique_ptr<Mailbox> mailbox;
    std::optional<NodeId> parent;
    std::vector<NodeId> children;
    std::map<NodeId, LinkSpec> links;
    bool down = false;
    std::thread thread;
  };

  NodeState& node(NodeId id);
  const NodeState& node(NodeId id) const;

  VirtualClock clock_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  mutable std::mutex mu_;  ///< guards down flags and loss RNG
  SplitMix64 rng_;
};

}  // namespace gks::simnet
