#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace gks {

/// CRC-32 (ISO-HDLC, polynomial 0xEDB88320 reflected) — the checksum
/// the journal appends to every record so replay can tell a torn or
/// bit-rotted line from a well-formed one. Table-driven, no external
/// dependency; the table is built once on first use.
inline std::uint32_t crc32(std::string_view data,
                           std::uint32_t crc = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace gks
