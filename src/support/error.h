#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gks {

/// Base exception type for every error raised by the library.
///
/// All invariant violations and misuse of public APIs throw `Error`
/// (or a subclass) rather than asserting, so that long-running cluster
/// searches can report a broken node instead of aborting the process.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller passes arguments outside a function's domain
/// (e.g. an empty charset, a key length above the supported maximum).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant fails; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind,
                                             const char* expr,
                                             const std::string& msg,
                                             std::source_location loc) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << loc.file_name() << ":"
     << loc.line();
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "GKS_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace gks

/// Precondition check on public API arguments; throws InvalidArgument.
#define GKS_REQUIRE(expr, msg)                                       \
  do {                                                               \
    if (!(expr))                                                     \
      ::gks::detail::throw_check_failure("GKS_REQUIRE", #expr, msg,  \
                                         std::source_location::current()); \
  } while (false)

/// Internal invariant check; throws InternalError.
#define GKS_ENSURE(expr, msg)                                        \
  do {                                                               \
    if (!(expr))                                                     \
      ::gks::detail::throw_check_failure("GKS_ENSURE", #expr, msg,   \
                                         std::source_location::current()); \
  } while (false)
