#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace gks {

/// Lower-case hexadecimal encoding of a byte range ("d41d8cd9...").
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (case-insensitive) into bytes.
/// Throws InvalidArgument on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Fixed-size decode for digest parsing; throws if the string does not
/// decode to exactly N bytes.
template <std::size_t N>
std::array<std::uint8_t, N> from_hex_fixed(std::string_view hex) {
  const std::vector<std::uint8_t> v = from_hex(hex);
  if (v.size() != N) {
    throw InvalidArgument("hex string decodes to " + std::to_string(v.size()) +
                          " bytes, expected " + std::to_string(N));
  }
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; ++i) out[i] = v[i];
  return out;
}

}  // namespace gks
