#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gks::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  return out;
}

void Writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

Writer& Writer::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_object() {
  GKS_REQUIRE(!first_.empty(), "end_object with no open scope");
  out_ += '}';
  first_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_array() {
  GKS_REQUIRE(!first_.empty(), "end_array with no open scope");
  out_ += ']';
  first_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

Writer& Writer::value(std::int64_t n) {
  comma();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(std::uint64_t n) {
  comma();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(double d) {
  comma();
  GKS_REQUIRE(std::isfinite(d), "JSON numbers must be finite");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

bool Value::as_bool() const {
  GKS_REQUIRE(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  GKS_REQUIRE(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  GKS_REQUIRE(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  GKS_REQUIRE(type_ == Type::kArray, "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  GKS_REQUIRE(type_ == Type::kObject, "JSON value is not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  GKS_REQUIRE(v != nullptr, "missing JSON member: " + std::string(key));
  return *v;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::move(fallback);
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->type_ == Type::kNumber ? v->number_ : fallback;
}

// Named (not anonymous-namespace) so the friend declaration in Value
// applies; only parse() below reaches it.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    GKS_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    GKS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    GKS_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type_ = Value::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        GKS_REQUIRE(consume_literal("true"), "malformed JSON literal");
        Value v;
        v.type_ = Value::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        GKS_REQUIRE(consume_literal("false"), "malformed JSON literal");
        Value v;
        v.type_ = Value::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        GKS_REQUIRE(consume_literal("null"), "malformed JSON literal");
        return Value();
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type_ = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type_ = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      GKS_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      GKS_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          GKS_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              GKS_REQUIRE(false, "bad hex digit in \\u escape");
            }
          }
          // The journal only ever escapes control characters; encode
          // the code point as UTF-8 (basic multilingual plane only).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: GKS_REQUIRE(false, "unknown JSON escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    GKS_REQUIRE(pos_ > start, "malformed JSON number");
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    GKS_REQUIRE(ec == std::errc() && ptr == text_.data() + pos_,
                "malformed JSON number");
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace gks::json
