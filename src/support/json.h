#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace gks::json {

/// Minimal JSON support for the job service's journal lines and the
/// tools' machine-readable output. Deliberately tiny: UTF-8 pass-
/// through, no streaming reads, no comments — exactly the subset the
/// repo emits. Large integers (u128 identifiers) are carried as
/// decimal *strings*, never as JSON numbers, so nothing is lost to
/// double rounding.

/// Escapes a string for embedding between quotes in a JSON document.
std::string escape(std::string_view s);

/// Streaming writer with automatic comma/nesting management:
///
///   Writer w;
///   w.begin_object().key("state").value("done").key("n").value(3)
///    .end_object();
///   w.str();  // {"state":"done","n":3}
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or begin_*.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(bool b);
  Writer& value(std::int64_t n);
  Writer& value(std::uint64_t n);
  Writer& value(int n) { return value(static_cast<std::int64_t>(n)); }
  Writer& value(double d);
  Writer& null();

  /// The document so far; valid JSON once every scope is closed.
  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  ///< per open scope: no member emitted yet
  bool after_key_ = false;
};

/// A parsed JSON value (object members keep insertion order).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  /// Object member lookup; throws InvalidArgument when absent.
  const Value& at(std::string_view key) const;

  /// Convenience typed lookups with defaults for optional members.
  std::string string_or(std::string_view key, std::string fallback) const;
  double number_or(std::string_view key, double fallback) const;

 private:
  friend Value parse(std::string_view);
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document; throws InvalidArgument on malformed input
/// or trailing garbage.
Value parse(std::string_view text);

}  // namespace gks::json
