#pragma once

#include <cstdint>

namespace gks {

/// Deterministic 64-bit PRNG (splitmix64). Used wherever the library
/// needs randomness — salt generation, failure injection, workload
/// sampling — so that every test and benchmark is reproducible from a
/// seed. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) without modulo bias for small bounds
  /// relative to 2^64 (bias is < bound/2^64, negligible for our uses).
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace gks
