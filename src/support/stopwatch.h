#pragma once

#include <chrono>

namespace gks {

/// Monotonic wall-clock stopwatch used by the tuning step and the CPU
/// backend's throughput measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gks
