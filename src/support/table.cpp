#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gks {

void TablePrinter::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TablePrinter::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      os << ' ' << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    os << '|';
    for (std::size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << '|';
    os << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace gks
