#pragma once

#include <string>
#include <vector>

namespace gks {

/// Plain-text table printer used by the bench binaries to re-print the
/// paper's tables. Columns are sized to fit the widest cell; the first
/// row added with header() is separated from the body by a rule.
///
/// Example output:
///
///   | Compute capability | 1.* | 2.0 | 2.1 | 3.0 |
///   |--------------------|-----|-----|-----|-----|
///   | Cores per MP       | 8   | 32  | 48  | 192 |
class TablePrinter {
 public:
  /// Sets the header row (optional; a table may be body-only).
  void header(std::vector<std::string> cells);

  /// Appends one body row. Rows may have differing cell counts; short
  /// rows are padded with empty cells.
  void row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the
  /// decimal point, trimming trailing zeros ("1851", "962.7", "0.852").
  static std::string num(double v, int precision = 1);

  /// Renders the table as a string (GitHub-style pipes).
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gks
