#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace gks {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::parallel_chunks(
    std::uint64_t n, std::uint64_t chunk,
    const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::uint64_t n_chunks = (n + chunk - 1) / chunk;
  const std::size_t workers = static_cast<std::size_t>(
      std::min<std::uint64_t>(size(), n_chunks));

  // Stack state is safe: every future is joined before returning.
  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(submit([&fn, &cursor, n, chunk, w] {
      for (;;) {
        const std::uint64_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        fn(w, begin, std::min(begin + chunk, n));
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace gks
