#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.h"

namespace gks {

/// Fixed-size worker pool used by the CPU cracking backend (fine-grain
/// parallelism on the host, the CPU analogue of a CUDA grid) and by the
/// simulated network to run node event loops.
///
/// Work items are `std::function<void()>`; submit() returns a future so
/// callers can join on completion or propagate exceptions. The queue is
/// plain FIFO with no work stealing; callers whose items have uneven
/// cost (early hash exits, heterogeneous cores) use parallel_chunks,
/// which self-schedules over an atomic cursor instead of relying on a
/// static pre-partition.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers: every task enqueued
  /// before destruction begins still runs (its future completes), so
  /// tearing a service down with work pending is safe.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future carries its result/exception.
  /// Throws InvalidArgument once shutdown has begun: workers exit as
  /// soon as the queue drains, so a task enqueued after that point
  /// could be picked up by nobody and its future would never become
  /// ready — failing loudly beats a silent hang on get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      GKS_REQUIRE(!stop_, "submit on a ThreadPool that is shutting down");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for all
  /// completions. Exceptions from any invocation are rethrown (first
  /// one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Self-scheduled loop over an index range: the `n` items are claimed
  /// in chunks of at most `chunk` (minimum 1) by whichever worker is
  /// free, via an atomic cursor, so uneven chunk costs no longer leave
  /// workers idle the way a static even split does. fn(worker, begin,
  /// end) is called with a dense worker index in [0, k), k =
  /// min(size(), ceil(n/chunk)), usable for per-worker accumulators;
  /// chunks are claimed in ascending order but may execute
  /// concurrently. Waits for completion; exceptions are rethrown
  /// (first submitted worker wins).
  void parallel_chunks(
      std::uint64_t n, std::uint64_t chunk,
      const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>&
          fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gks
