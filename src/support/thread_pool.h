#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gks {

/// Fixed-size worker pool used by the CPU cracking backend (fine-grain
/// parallelism on the host, the CPU analogue of a CUDA grid) and by the
/// simulated network to run node event loops.
///
/// Work items are `std::function<void()>`; submit() returns a future so
/// callers can join on completion or propagate exceptions. The pool is
/// deliberately simple — FIFO queue, no work stealing — because the
/// search workload is pre-partitioned into equal-cost intervals by the
/// dispatcher, exactly as the paper's balancing step prescribes.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future carries its result/exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for all
  /// completions. Exceptions from any invocation are rethrown (first
  /// one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gks
