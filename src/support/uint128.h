#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "support/error.h"

namespace gks {

/// Unsigned 128-bit integer used for key-space identifiers.
///
/// An 8-character alphanumeric key space already holds 62^8 ≈ 2.2e14
/// candidates, and the paper's closed form S_{K0}^{K} (Equation 2)
/// overflows 64 bits well before the 20-character limit the kernels
/// support, so all key identifiers and interval arithmetic use this
/// type. Implemented as a thin, value-semantic wrapper over the GCC
/// builtin `unsigned __int128` with string conversion and checked
/// narrowing — the builtin alone has no I/O and silently truncates.
class u128 {
 public:
  constexpr u128() : v_(0) {}
  constexpr u128(std::uint64_t low) : v_(low) {}  // NOLINT(google-explicit-constructor)
  constexpr u128(std::uint64_t high, std::uint64_t low)
      : v_((static_cast<unsigned __int128>(high) << 64) | low) {}

  /// Largest representable value, 2^128 - 1.
  static constexpr u128 max() {
    return u128(std::numeric_limits<std::uint64_t>::max(),
                std::numeric_limits<std::uint64_t>::max());
  }

  /// Parses a decimal string; throws InvalidArgument on bad input or overflow.
  static u128 parse(std::string_view s) {
    GKS_REQUIRE(!s.empty(), "empty string is not a number");
    constexpr unsigned __int128 kTop = ~static_cast<unsigned __int128>(0);
    u128 r;
    for (char c : s) {
      GKS_REQUIRE(c >= '0' && c <= '9', "non-decimal character in u128");
      const auto digit = static_cast<unsigned>(c - '0');
      GKS_REQUIRE(r.v_ <= kTop / 10, "u128 overflow while parsing");
      r.v_ *= 10;
      GKS_REQUIRE(r.v_ <= kTop - digit, "u128 overflow while parsing");
      r.v_ += digit;
    }
    return r;
  }

  constexpr std::uint64_t low64() const {
    return static_cast<std::uint64_t>(v_);
  }
  constexpr std::uint64_t high64() const {
    return static_cast<std::uint64_t>(v_ >> 64);
  }

  /// Checked conversion to 64 bits; throws if the value does not fit.
  std::uint64_t to_u64() const {
    GKS_REQUIRE(high64() == 0, "u128 value does not fit in 64 bits");
    return low64();
  }

  /// Conversion to double (lossy for values above 2^53; used only for
  /// throughput ratios and progress reporting).
  constexpr double to_double() const {
    return static_cast<double>(high64()) * 18446744073709551616.0 +
           static_cast<double>(low64());
  }

  std::string to_string() const {
    if (v_ == 0) return "0";
    std::string out;
    unsigned __int128 x = v_;
    while (x != 0) {
      out.push_back(static_cast<char>('0' + static_cast<unsigned>(x % 10)));
      x /= 10;
    }
    return std::string(out.rbegin(), out.rend());
  }

  friend constexpr u128 operator+(u128 a, u128 b) { return u128(a.v_ + b.v_, Raw{}); }
  friend constexpr u128 operator-(u128 a, u128 b) { return u128(a.v_ - b.v_, Raw{}); }
  friend constexpr u128 operator*(u128 a, u128 b) { return u128(a.v_ * b.v_, Raw{}); }
  friend constexpr u128 operator/(u128 a, u128 b) { return u128(a.v_ / b.v_, Raw{}); }
  friend constexpr u128 operator%(u128 a, u128 b) { return u128(a.v_ % b.v_, Raw{}); }
  friend constexpr u128 operator<<(u128 a, unsigned n) { return u128(a.v_ << n, Raw{}); }
  friend constexpr u128 operator>>(u128 a, unsigned n) { return u128(a.v_ >> n, Raw{}); }

  u128& operator+=(u128 b) { v_ += b.v_; return *this; }
  u128& operator-=(u128 b) { v_ -= b.v_; return *this; }
  u128& operator*=(u128 b) { v_ *= b.v_; return *this; }
  u128& operator/=(u128 b) { v_ /= b.v_; return *this; }
  u128& operator++() { ++v_; return *this; }
  u128 operator++(int) { u128 old = *this; ++v_; return old; }
  u128& operator--() { --v_; return *this; }

  friend constexpr bool operator==(u128 a, u128 b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(u128 a, u128 b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(u128 a, u128 b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(u128 a, u128 b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(u128 a, u128 b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(u128 a, u128 b) { return a.v_ >= b.v_; }

  /// Saturating addition: clamps at u128::max() instead of wrapping.
  static constexpr u128 saturating_add(u128 a, u128 b) {
    u128 s = a + b;
    return s < a ? max() : s;
  }

  /// Checked multiplication; throws InternalError on overflow.
  static u128 checked_mul(u128 a, u128 b) {
    if (a.v_ == 0 || b.v_ == 0) return u128(0);
    u128 p = a * b;
    GKS_ENSURE(p.v_ / a.v_ == b.v_, "u128 multiplication overflow");
    return p;
  }

  /// a^n with overflow checking.
  static u128 checked_pow(u128 a, unsigned n) {
    u128 r(1);
    for (unsigned i = 0; i < n; ++i) r = checked_mul(r, a);
    return r;
  }

 private:
  struct Raw {};
  constexpr u128(unsigned __int128 v, Raw) : v_(v) {}
  unsigned __int128 v_;
};

inline std::string to_string(u128 v) { return v.to_string(); }

}  // namespace gks
