#include "baselines/naive.h"

#include <gtest/gtest.h>

#include "core/scan_engine.h"
#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::baselines {
namespace {

core::CrackRequest request_for(const std::string& plaintext) {
  core::CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(plaintext).to_hex();
  r.charset = keyspace::Charset("abcd");
  r.min_length = 1;
  r.max_length = 5;
  return r;
}

TEST(Naive, FindsTheSameKeyAsTheOptimizedEngine) {
  const auto req = request_for("dbca");
  const core::ScanPlan plan(req);
  const auto space = req.space_interval();

  const auto optimized = plan.scan(space);
  const auto naive = naive_scan(req, space);
  const auto middle = next_full_hash_scan(req, space);

  ASSERT_EQ(optimized.found.size(), 1u);
  ASSERT_EQ(naive.found.size(), 1u);
  ASSERT_EQ(middle.found.size(), 1u);
  EXPECT_EQ(naive.found[0].id, optimized.found[0].id);
  EXPECT_EQ(naive.found[0].value, "dbca");
  EXPECT_EQ(middle.found[0].id, optimized.found[0].id);
}

TEST(Naive, AgreesOnEmptyResults) {
  auto req = request_for("dbca");
  req.target_hex = hash::Md5::digest("notinspace9").to_hex();
  const auto space = req.space_interval();
  EXPECT_TRUE(naive_scan(req, space).found.empty());
  EXPECT_TRUE(next_full_hash_scan(req, space).found.empty());
}

TEST(Naive, WorksOnSha1Too) {
  core::CrackRequest req;
  req.algorithm = hash::Algorithm::kSha1;
  req.target_hex = hash::Sha1::digest("cb").to_hex();
  req.charset = keyspace::Charset("abc");
  req.min_length = 1;
  req.max_length = 3;
  const auto out = naive_scan(req, req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "cb");
}

TEST(Naive, RespectsSubIntervals) {
  const auto req = request_for("dd");
  const core::ScanPlan plan(req);
  const u128 id = plan.id_of("dd");
  EXPECT_EQ(naive_scan(req, {id, id + u128(1)}).found.size(), 1u);
  EXPECT_TRUE(naive_scan(req, {id + u128(1), id + u128(50)}).found.empty());
}

TEST(Naive, TestedCountsMatchIntervalSizes) {
  const auto req = request_for("aa");
  const keyspace::Interval interval(u128(7), u128(399));
  EXPECT_EQ(naive_scan(req, interval).tested, interval.size());
  EXPECT_EQ(next_full_hash_scan(req, interval).tested, interval.size());
}

TEST(Naive, HandlesSaltedRequests) {
  core::CrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  req.salt = {hash::SaltPosition::kPrefix, "P"};
  req.target_hex = hash::Md5::digest("Pba").to_hex();
  req.charset = keyspace::Charset("ab");
  req.min_length = 1;
  req.max_length = 3;
  const auto out = naive_scan(req, req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "ba");
}

}  // namespace
}  // namespace gks::baselines
