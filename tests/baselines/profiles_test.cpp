#include "baselines/profiles.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "simgpu/simt.h"

namespace gks::baselines {
namespace {

using simgpu::ComputeCapability;

double mkeys(Tool tool, hash::Algorithm alg, const char* device) {
  const auto& dev = simgpu::device_by_name(device);
  return simgpu::SimtSimulator::device_throughput(
             dev, tool_profile(tool, alg, dev.cc)) /
         1e6;
}

TEST(Profiles, ToolNamesAreStable) {
  EXPECT_STREQ(tool_name(Tool::kOurs), "our approach");
  EXPECT_STREQ(tool_name(Tool::kBarsWf), "BarsWF");
  EXPECT_STREQ(tool_name(Tool::kCryptohaze), "Cryptohaze");
  EXPECT_STREQ(tool_name(Tool::kNaive), "naive");
}

TEST(Profiles, RankingOnKeplerMatchesTableEight) {
  // Paper, GTX 660 MD5: ours 1841 > BarsWF 1340 > Cryptohaze 1280.
  const double ours = mkeys(Tool::kOurs, hash::Algorithm::kMd5, "660");
  const double barswf = mkeys(Tool::kBarsWf, hash::Algorithm::kMd5, "660");
  const double crypto =
      mkeys(Tool::kCryptohaze, hash::Algorithm::kMd5, "660");
  EXPECT_GT(ours, barswf);
  EXPECT_GT(barswf, crypto * 0.95);
  // Ours beats BarsWF clearly on Kepler (paper factor ~1.37).
  EXPECT_GT(ours / barswf, 1.15);
}

TEST(Profiles, BarsWfIsCompetitiveOnItsHomeArchitecture) {
  // Paper, 8800: BarsWF 490 vs ours 480 — essentially equal.
  const double ours = mkeys(Tool::kOurs, hash::Algorithm::kMd5, "8800");
  const double barswf = mkeys(Tool::kBarsWf, hash::Algorithm::kMd5, "8800");
  EXPECT_NEAR(barswf / ours, 1.0, 0.12);
}

TEST(Profiles, CryptohazeTrailsOursEverywhere) {
  for (const char* device : {"8600M", "8800", "540M", "550Ti", "660"}) {
    const double ours = mkeys(Tool::kOurs, hash::Algorithm::kMd5, device);
    const double crypto =
        mkeys(Tool::kCryptohaze, hash::Algorithm::kMd5, device);
    EXPECT_LT(crypto, ours) << device;
    EXPECT_GT(crypto, 0.4 * ours) << device;  // but same order of magnitude
  }
}

TEST(Profiles, NaiveIsTheSlowestTool) {
  for (const char* device : {"8800", "660"}) {
    const double naive = mkeys(Tool::kNaive, hash::Algorithm::kMd5, device);
    for (const Tool tool : {Tool::kOurs, Tool::kBarsWf, Tool::kCryptohaze}) {
      EXPECT_LT(naive, mkeys(tool, hash::Algorithm::kMd5, device) * 1.02)
          << device;
    }
  }
}

TEST(Profiles, Sha1SupportedByOursAndCryptohazeOnly) {
  EXPECT_NO_THROW(
      tool_profile(Tool::kOurs, hash::Algorithm::kSha1,
                   ComputeCapability::kCc30));
  EXPECT_NO_THROW(
      tool_profile(Tool::kCryptohaze, hash::Algorithm::kSha1,
                   ComputeCapability::kCc30));
  EXPECT_THROW(tool_profile(Tool::kBarsWf, hash::Algorithm::kSha1,
                            ComputeCapability::kCc30),
               InvalidArgument);
}

TEST(Profiles, Sha1RatioOursOverCryptohazeMatchesPaperShape) {
  // Paper, 550 Ti SHA1: ours 310 vs Cryptohaze 185 (x1.68); on the
  // 660, 390 vs 377 (x1.03). Ours must lead on both, strongly on Fermi.
  const double ours_550 = mkeys(Tool::kOurs, hash::Algorithm::kSha1, "550Ti");
  const double cr_550 =
      mkeys(Tool::kCryptohaze, hash::Algorithm::kSha1, "550Ti");
  EXPECT_GT(ours_550 / cr_550, 1.2);
  const double ours_660 = mkeys(Tool::kOurs, hash::Algorithm::kSha1, "660");
  const double cr_660 =
      mkeys(Tool::kCryptohaze, hash::Algorithm::kSha1, "660");
  EXPECT_GT(ours_660 / cr_660, 1.0);
}

TEST(Profiles, BarsWfLegacyRotateOnlyOnKepler) {
  using simgpu::MachineOp;
  const auto kepler =
      tool_profile(Tool::kBarsWf, hash::Algorithm::kMd5,
                   ComputeCapability::kCc30);
  EXPECT_EQ(kepler.per_candidate[MachineOp::kMadShift], 0u);  // legacy SHL/SHR
  const auto fermi =
      tool_profile(Tool::kBarsWf, hash::Algorithm::kMd5,
                   ComputeCapability::kCc21);
  EXPECT_GT(fermi.per_candidate[MachineOp::kMadShift], 0u);
}

}  // namespace
}  // namespace gks::baselines
