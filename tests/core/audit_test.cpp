#include "core/audit.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::core {
namespace {

TEST(Audit, WeakPasswordsAreCracked) {
  const std::vector<AuditEntry> entries = {
      make_entry("alice", hash::Algorithm::kMd5, "cat", {}),
      make_entry("bob", hash::Algorithm::kSha1, "dog", {}),
  };
  AuditPolicy policy;
  policy.charset = keyspace::Charset::lower();
  policy.max_length = 3;
  policy.threads = 2;

  const auto verdicts = run_audit(entries, policy);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].cracked);
  EXPECT_EQ(verdicts[0].recovered_key, "cat");
  EXPECT_TRUE(verdicts[1].cracked);
  EXPECT_EQ(verdicts[1].recovered_key, "dog");
}

TEST(Audit, StrongPasswordSurvivesThePolicy) {
  // Outside the policy's charset/length: not cracked.
  const std::vector<AuditEntry> entries = {
      make_entry("carol", hash::Algorithm::kMd5, "Str0ng!Pass", {}),
  };
  AuditPolicy policy;
  policy.charset = keyspace::Charset::lower();
  policy.max_length = 4;
  const auto verdicts = run_audit(entries, policy);
  EXPECT_FALSE(verdicts[0].cracked);
  EXPECT_EQ(verdicts[0].tested,
            keyspace::space_size(26, policy.min_length, policy.max_length));
}

TEST(Audit, SaltedCredentialsCostTheSameSearch) {
  // The paper's point: salting defeats tables, not brute force.
  const hash::SaltSpec salt{hash::SaltPosition::kSuffix, "perUserSalt01"};
  const std::vector<AuditEntry> entries = {
      make_entry("dave", hash::Algorithm::kMd5, "abc", salt),
  };
  AuditPolicy policy;
  policy.charset = keyspace::Charset::lower();
  policy.max_length = 3;
  const auto verdicts = run_audit(entries, policy);
  EXPECT_TRUE(verdicts[0].cracked);
  EXPECT_EQ(verdicts[0].recovered_key, "abc");
}

TEST(Audit, PrefixSaltAlsoSupported) {
  const hash::SaltSpec salt{hash::SaltPosition::kPrefix, "XX"};
  const std::vector<AuditEntry> entries = {
      make_entry("erin", hash::Algorithm::kSha1, "ba", salt),
  };
  AuditPolicy policy;
  policy.charset = keyspace::Charset("ab");
  policy.max_length = 3;
  const auto verdicts = run_audit(entries, policy);
  EXPECT_TRUE(verdicts[0].cracked);
  EXPECT_EQ(verdicts[0].recovered_key, "ba");
}

TEST(Audit, EmptyEntryListIsFine) {
  EXPECT_TRUE(run_audit({}, AuditPolicy{}).empty());
}

TEST(Audit, MakeEntryRejectsUnsupportedAlgorithms) {
  EXPECT_THROW(make_entry("x", hash::Algorithm::kSha256, "pw", {}),
               InvalidArgument);
}

TEST(Audit, VerdictsPreserveOrderAndUsers) {
  const std::vector<AuditEntry> entries = {
      make_entry("u1", hash::Algorithm::kMd5, "aa", {}),
      make_entry("u2", hash::Algorithm::kMd5, "ab", {}),
      make_entry("u3", hash::Algorithm::kMd5, "ba", {}),
  };
  AuditPolicy policy;
  policy.charset = keyspace::Charset("ab");
  policy.max_length = 2;
  const auto verdicts = run_audit(entries, policy);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].user, "u1");
  EXPECT_EQ(verdicts[1].user, "u2");
  EXPECT_EQ(verdicts[2].user, "u3");
  for (const auto& v : verdicts) EXPECT_TRUE(v.cracked);
}

}  // namespace
}  // namespace gks::core
