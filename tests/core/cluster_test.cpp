#include "core/cluster.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "hash/md5.h"

namespace gks::core {
namespace {

CrackRequest paper_request(const std::string& planted) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(planted).to_hex();
  r.charset = keyspace::Charset::alphanumeric();
  r.min_length = 1;
  r.max_length = 8;
  return r;
}

ClusterOptions model_options(const std::string& planted) {
  ClusterOptions opts;
  opts.time_scale = 5e-4;
  opts.gpu_mode = SimGpuMode::kModel;
  opts.planted_key = planted;
  opts.agent.round_virtual_target_s = 20.0;
  return opts;
}

TEST(Cluster, PaperTopologyHasTheFourNodesAndFiveGpus) {
  const ClusterNode a = ClusterCracker::paper_topology();
  EXPECT_EQ(a.name, "node-A");
  ASSERT_EQ(a.devices.size(), 1u);
  EXPECT_EQ(a.devices[0].gpu_short_name, "540M");
  ASSERT_EQ(a.children.size(), 2u);
  const ClusterNode& b = a.children[0];
  EXPECT_EQ(b.devices.size(), 2u);
  const ClusterNode& c = a.children[1];
  ASSERT_EQ(c.children.size(), 1u);
  EXPECT_EQ(c.children[0].devices[0].gpu_short_name, "8800");
}

TEST(Cluster, FindsThePlantedKeyOnThePaperNetwork) {
  const std::string planted = "k3yXy2a";
  ClusterCracker cluster(ClusterCracker::paper_topology(),
                         model_options(planted));
  const auto report = cluster.crack(paper_request(planted));
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, planted);
  EXPECT_EQ(report.failures_detected, 0u);
}

TEST(Cluster, NetworkThroughputIsNearTheSumOfDevices) {
  // Table IX's headline: "an actual overall throughput that is roughly
  // equal to the sum of the throughputs of the single devices".
  const std::string planted = "zzZ99xQ7";  // deep in the space
  ClusterCracker cluster(ClusterCracker::paper_topology(),
                         model_options(planted));
  const auto report = cluster.crack(paper_request(planted));

  double device_sum = 0;
  for (const auto& m : report.members) device_sum += m.throughput;
  EXPECT_GT(report.throughput, 0.75 * device_sum);
  EXPECT_GT(report.efficiency, 0.7);
  EXPECT_LE(report.efficiency, 1.05);
}

TEST(Cluster, CpuOnlyClusterDoesRealWork) {
  ClusterNode root{"cpu-root", {ClusterDevice::cpu(2)}, {}, {}};
  ClusterNode leaf{"cpu-leaf", {ClusterDevice::cpu(2)}, {}, {}};
  root.children.push_back(leaf);

  ClusterOptions opts;
  opts.time_scale = 1.0;  // CPU devices live in real time
  opts.gpu_mode = SimGpuMode::kExecute;
  opts.tune_scratch = u128(1u << 16);
  opts.agent.round_virtual_target_s = 0.05;
  opts.agent.tune.start_batch = u128(4096);

  CrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  req.target_hex = hash::Md5::digest("ffee").to_hex();
  req.charset = keyspace::Charset("abcdef");
  req.min_length = 1;
  req.max_length = 5;

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(req);
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, "ffee");
}

TEST(Cluster, ModelModeRequiresAPlantedKey) {
  ClusterOptions opts;
  opts.gpu_mode = SimGpuMode::kModel;
  ClusterCracker cluster(ClusterCracker::paper_topology(), opts);
  EXPECT_THROW(cluster.crack(paper_request("abc")), InvalidArgument);
}

TEST(Cluster, PlantedKeyMustHashToTheTarget) {
  auto opts = model_options("wrongKey");
  ClusterCracker cluster(ClusterCracker::paper_topology(), opts);
  EXPECT_THROW(cluster.crack(paper_request("realKey")), InvalidArgument);
}

TEST(Cluster, WorkSplitsFollowDeviceSpeeds) {
  const std::string planted = "zzZ99xQ7";
  ClusterCracker cluster(ClusterCracker::paper_topology(),
                         model_options(planted));
  const auto report = cluster.crack(paper_request(planted));
  ASSERT_EQ(report.members.size(), 3u);  // local 540M, node-B, node-C
  // node-B (660 + 550 Ti) is the fastest subtree and must have tested
  // the most; the local 540M the least.
  EXPECT_GT(report.members[1].tested, report.members[2].tested);
  EXPECT_GT(report.members[2].tested, report.members[0].tested);
}

}  // namespace
}  // namespace gks::core
