#include "core/cpu_backend.h"

#include <gtest/gtest.h>

#include "hash/md5.h"

namespace gks::core {
namespace {

CrackRequest small_request(const std::string& plaintext) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(plaintext).to_hex();
  r.charset = keyspace::Charset("abcd");
  r.min_length = 1;
  r.max_length = 5;
  return r;
}

TEST(CpuBackend, FindsTheKeyAcrossThreads) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    CpuSearcher searcher(small_request("dcba"), threads);
    const auto out = searcher.scan(small_request("x").space_interval());
    ASSERT_EQ(out.found.size(), 1u) << threads << " threads";
    EXPECT_EQ(out.found[0].value, "dcba");
  }
}

TEST(CpuBackend, TestedCountEqualsIntervalSize) {
  CpuSearcher searcher(small_request("aa"), 3);
  const keyspace::Interval interval(u128(10), u128(1000));
  const auto out = searcher.scan(interval);
  EXPECT_EQ(out.tested, interval.size());
  EXPECT_GT(out.busy_virtual_s, 0.0);
}

TEST(CpuBackend, EmptyIntervalShortCircuits) {
  CpuSearcher searcher(small_request("aa"), 2);
  const auto out = searcher.scan(keyspace::Interval(u128(5), u128(5)));
  EXPECT_EQ(out.tested, u128(0));
  EXPECT_TRUE(out.found.empty());
}

TEST(CpuBackend, IsARealDevice) {
  CpuSearcher searcher(small_request("aa"), 2);
  EXPECT_FALSE(searcher.is_simulated());
  EXPECT_NE(searcher.description().find("CPU"), std::string::npos);
  EXPECT_NE(searcher.description().find("MD5"), std::string::npos);
}

TEST(CpuBackend, TheoreticalThroughputIsCachedAndPositive) {
  CpuSearcher searcher(small_request("aa"), 2);
  const double first = searcher.theoretical_throughput();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(searcher.theoretical_throughput(), first);
}

TEST(CpuBackend, MultithreadedScanMatchesSingleThreaded) {
  const auto req = small_request("cdcd");
  CpuSearcher one(req, 1);
  CpuSearcher many(req, 4);
  const keyspace::Interval space = req.space_interval();
  const auto a = one.scan(space);
  const auto b = many.scan(space);
  ASSERT_EQ(a.found.size(), b.found.size());
  EXPECT_EQ(a.found[0].id, b.found[0].id);
  EXPECT_EQ(a.tested, b.tested);
}

}  // namespace
}  // namespace gks::core
