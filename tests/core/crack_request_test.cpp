#include "core/crack_request.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::core {
namespace {

CrackRequest md5_request(const std::string& plaintext) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(plaintext).to_hex();
  r.charset = keyspace::Charset::lower();
  r.min_length = 1;
  r.max_length = 5;
  return r;
}

TEST(CrackRequest, MatchesRecognizesThePlaintext) {
  const CrackRequest r = md5_request("abcde");
  EXPECT_TRUE(r.matches("abcde"));
  EXPECT_FALSE(r.matches("abcdf"));
  EXPECT_FALSE(r.matches(""));
}

TEST(CrackRequest, MatchesAppliesTheSalt) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kSha1;
  r.salt = {hash::SaltPosition::kSuffix, "NaCl"};
  r.target_hex = hash::Sha1::digest("pwNaCl").to_hex();
  EXPECT_TRUE(r.matches("pw"));
  EXPECT_FALSE(r.matches("pwNaCl"));  // salt must not be typed by users
}

TEST(CrackRequest, SpaceSizeMatchesEquationTwo) {
  CrackRequest r = md5_request("ab");
  r.min_length = 1;
  r.max_length = 3;
  EXPECT_EQ(r.space_size(), u128(26 + 26 * 26 + 26 * 26 * 26));
  EXPECT_EQ(r.space_interval().begin, u128(0));
  EXPECT_EQ(r.space_interval().end, r.space_size());
}

TEST(CrackRequest, GeneratorUsesPrefixFastestOrder) {
  CrackRequest r = md5_request("x");
  const auto gen = r.make_generator();
  EXPECT_EQ(gen.codec().order(), keyspace::DigitOrder::kPrefixFastest);
  EXPECT_EQ(gen.at(u128(0)), "a");
}

TEST(CrackRequest, ValidateAcceptsAWellFormedRequest) {
  EXPECT_NO_THROW(md5_request("abc").validate());
}

TEST(CrackRequest, ValidateRejectsBadLengths) {
  CrackRequest r = md5_request("abc");
  r.min_length = 0;
  EXPECT_THROW(r.validate(), InvalidArgument);
  r.min_length = 6;
  r.max_length = 5;
  EXPECT_THROW(r.validate(), InvalidArgument);
  r.min_length = 1;
  r.max_length = 21;  // beyond the kernel limit
  EXPECT_THROW(r.validate(), InvalidArgument);
}

TEST(CrackRequest, ValidateRejectsDigestAlgorithmMismatch) {
  CrackRequest r = md5_request("abc");
  r.algorithm = hash::Algorithm::kSha1;  // 16-byte digest vs SHA1's 20
  EXPECT_THROW(r.validate(), InvalidArgument);
}

TEST(CrackRequest, ValidateRejectsOversizedSalt) {
  CrackRequest r = md5_request("abc");
  r.max_length = 20;
  r.salt = {hash::SaltPosition::kSuffix, std::string(40, 's')};
  EXPECT_THROW(r.validate(), InvalidArgument);
}

}  // namespace
}  // namespace gks::core
