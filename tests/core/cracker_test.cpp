#include "core/cracker.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::core {
namespace {

TEST(LocalCracker, CracksAnMd5Password) {
  const LocalCracker cracker(2);
  const auto result = cracker.crack_md5(hash::Md5::digest("dog").to_hex(),
                                        keyspace::Charset::lower(), 1, 4);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.key, "dog");
  EXPECT_GT(result.throughput, 0.0);
}

TEST(LocalCracker, CracksASha1Password) {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kSha1;
  request.target_hex = hash::Sha1::digest("cab").to_hex();
  request.charset = keyspace::Charset("abc");
  request.min_length = 1;
  request.max_length = 4;
  const auto result = LocalCracker(2).crack(request);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.key, "cab");
}

TEST(LocalCracker, CracksASaltedPassword) {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.salt = {hash::SaltPosition::kSuffix, "s4lt"};
  request.target_hex = hash::Md5::digest("keyss4lt").to_hex();
  request.charset = keyspace::Charset::lower();
  request.min_length = 4;
  request.max_length = 5;
  const auto result = LocalCracker(2).crack(request);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.key, "keys");
}

TEST(LocalCracker, ReportsExhaustionWhenAbsent) {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest("UPPER").to_hex();  // not in space
  request.charset = keyspace::Charset("ab");
  request.min_length = 1;
  request.max_length = 8;
  const auto result = LocalCracker(2).crack(request);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.tested, request.space_size());
}

TEST(LocalCracker, StopsEarlyOnAHit) {
  // A key early in the enumeration must not require scanning the
  // whole space ("a" is id 0).
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest("a").to_hex();
  request.charset = keyspace::Charset::lower();
  request.min_length = 1;
  request.max_length = 6;
  const auto result = LocalCracker(2).crack(request);
  EXPECT_TRUE(result.found);
  EXPECT_LT(result.tested, request.space_size());
}

TEST(LocalCracker, ProgressCallbackSeesMonotoneCoverage) {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest("absent!").to_hex();
  request.charset = keyspace::Charset("abcdef");
  request.min_length = 1;
  request.max_length = 9;  // ~12M candidates: several slices

  u128 last_tested(0);
  u128 seen_total(0);
  int calls = 0;
  const auto result = LocalCracker(2).crack(
      request, [&](const u128& tested, const u128& total) {
        EXPECT_GT(tested, last_tested);
        last_tested = tested;
        seen_total = total;
        ++calls;
        return true;
      });
  EXPECT_FALSE(result.found);
  EXPECT_GE(calls, 2);
  EXPECT_EQ(seen_total, request.space_size());
  EXPECT_EQ(result.tested, request.space_size());
}

TEST(LocalCracker, ProgressCallbackCanCancelTheSearch) {
  CrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hex = hash::Md5::digest("absent!").to_hex();
  request.charset = keyspace::Charset("abcdef");
  request.min_length = 1;
  request.max_length = 9;

  const auto result = LocalCracker(2).crack(
      request, [](const u128&, const u128&) { return false; });
  EXPECT_FALSE(result.found);
  EXPECT_LT(result.tested, request.space_size());
  EXPECT_GT(result.tested, u128(0));
}

TEST(LocalCracker, InvalidRequestRejectedUpFront) {
  CrackRequest request;  // bad digest (empty)
  EXPECT_THROW(LocalCracker(1).crack(request), InvalidArgument);
}

}  // namespace
}  // namespace gks::core
