#include "core/generator_crack.h"

#include <gtest/gtest.h>

#include "hash/md5.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "keyspace/dictionary.h"
#include "keyspace/keyspace_generator.h"
#include "keyspace/mask.h"
#include "support/error.h"

namespace gks::core {
namespace {

TEST(GeneratorCrack, MaskAttackRecoversPatternedKey) {
  const keyspace::MaskGenerator mask("?l?l?d?d");
  const std::string secret = "ab42";
  const auto result = crack_generator(
      mask, hash::Algorithm::kMd5, {hash::Md5::digest(secret).to_hex()}, {},
      2);
  ASSERT_EQ(result.cracked, 1u);
  EXPECT_EQ(result.targets[0].key, secret);
}

TEST(GeneratorCrack, DictionaryAttackWithMangling) {
  const keyspace::DictionaryGenerator words(
      {"password", "dragon", "letmein"},
      keyspace::DictionaryGenerator::Mangle::kCommonCase);
  const auto result = crack_generator(
      words, hash::Algorithm::kSha1,
      {hash::Sha1::digest("Dragon").to_hex()}, {}, 2);
  ASSERT_EQ(result.cracked, 1u);
  EXPECT_EQ(result.targets[0].key, "Dragon");
}

TEST(GeneratorCrack, HybridAttack) {
  const keyspace::DictionaryGenerator words({"pass", "admin"});
  const keyspace::MaskGenerator tail("?d?d");
  const keyspace::HybridGenerator hybrid(words, tail);
  const auto result = crack_generator(
      hybrid, hash::Algorithm::kMd5,
      {hash::Md5::digest("admin07").to_hex()}, {}, 2);
  ASSERT_EQ(result.cracked, 1u);
  EXPECT_EQ(result.targets[0].key, "admin07");
}

TEST(GeneratorCrack, MultipleTargetsOneSweep) {
  const keyspace::MaskGenerator mask("?d?d?d");
  std::vector<std::string> digests;
  for (const char* k : {"007", "123", "999"}) {
    digests.push_back(hash::Md5::digest(k).to_hex());
  }
  const auto result =
      crack_generator(mask, hash::Algorithm::kMd5, digests, {}, 2);
  EXPECT_EQ(result.cracked, 3u);
  EXPECT_EQ(result.targets[0].key, "007");
  EXPECT_EQ(result.targets[2].key, "999");
}

TEST(GeneratorCrack, SaltApplied) {
  const keyspace::MaskGenerator mask("?d?d");
  const hash::SaltSpec salt{hash::SaltPosition::kPrefix, "s#"};
  const auto result = crack_generator(
      mask, hash::Algorithm::kMd5, {hash::Md5::digest("s#42").to_hex()},
      salt, 1);
  ASSERT_EQ(result.cracked, 1u);
  EXPECT_EQ(result.targets[0].key, "42");
}

TEST(GeneratorCrack, MissReportsExhaustion) {
  const keyspace::MaskGenerator mask("?d");
  const auto result = crack_generator(
      mask, hash::Algorithm::kMd5, {hash::Md5::digest("xx").to_hex()}, {},
      1);
  EXPECT_EQ(result.cracked, 0u);
  EXPECT_EQ(result.tested, u128(10));
}

TEST(GeneratorCrack, Sha256TargetsSupported) {
  // The generic path has no kernel specialization, so SHA256 works too.
  const keyspace::MaskGenerator mask("?l?l");
  const auto result = crack_generator(
      mask, hash::Algorithm::kSha256,
      {hash::Sha256::digest("ok").to_hex()}, {}, 1);
  ASSERT_EQ(result.cracked, 1u);
  EXPECT_EQ(result.targets[0].key, "ok");
}

TEST(GeneratorCrack, AgreesWithSpecializedEngineOnBaseN) {
  // Same key space expressed as a KeyspaceGenerator: the generic loop
  // and the optimized multi_crack sweep must find identical keys.
  const std::string secret = "cab";
  const std::vector<std::string> digests = {
      hash::Md5::digest(secret).to_hex()};

  const keyspace::KeyspaceGenerator gen(
      keyspace::KeyCodec(keyspace::Charset("abc"),
                         keyspace::DigitOrder::kPrefixFastest),
      1, 4);
  const auto generic =
      crack_generator(gen, hash::Algorithm::kMd5, digests, {}, 1);

  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.target_hexes = digests;
  request.charset = keyspace::Charset("abc");
  request.min_length = 1;
  request.max_length = 4;
  const auto optimized = multi_crack(request, 1);

  ASSERT_EQ(generic.cracked, 1u);
  ASSERT_EQ(optimized.cracked, 1u);
  EXPECT_EQ(generic.targets[0].key, optimized.targets[0].key);
}

TEST(GeneratorCrack, RejectsBadInput) {
  const keyspace::MaskGenerator mask("?d");
  EXPECT_THROW(crack_generator(mask, hash::Algorithm::kMd5, {}, {}, 1),
               InvalidArgument);
  EXPECT_THROW(
      crack_generator(mask, hash::Algorithm::kMd5, {"abcd"}, {}, 1),
      InvalidArgument);
}

}  // namespace
}  // namespace gks::core
