#include "core/gpu_backend.h"

#include <gtest/gtest.h>

#include "core/cpu_backend.h"
#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::core {
namespace {

CrackRequest request_md5(const std::string& plaintext) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(plaintext).to_hex();
  r.charset = keyspace::Charset("abcd");
  r.min_length = 1;
  r.max_length = 5;
  return r;
}

SimGpuSearcher make_searcher(const CrackRequest& req, SimGpuMode mode,
                             std::vector<u128> planted = {}) {
  const auto& spec = simgpu::device_by_name("660");
  return SimGpuSearcher(req, simgpu::SimulatedGpu(spec),
                        our_kernel_profile(req.algorithm, spec.cc), mode,
                        std::move(planted));
}

TEST(GpuBackend, ExecuteModeReallyFindsTheKey) {
  const auto req = request_md5("dcba");
  auto searcher = make_searcher(req, SimGpuMode::kExecute);
  const auto out = searcher.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "dcba");
}

TEST(GpuBackend, ModelModeFindsThePlantedId) {
  const auto req = request_md5("dcba");
  ScanPlan plan(req);
  const u128 id = plan.id_of("dcba");
  auto searcher = make_searcher(req, SimGpuMode::kModel, {id});
  const auto out = searcher.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].id, id);
  EXPECT_EQ(out.found[0].value, "dcba");
}

TEST(GpuBackend, ModelAndExecuteModesAgreeOnFinds) {
  // The duality check of DESIGN.md: same interval, same conclusion.
  const auto req = request_md5("ccc");
  ScanPlan plan(req);
  const u128 id = plan.id_of("ccc");

  auto execute = make_searcher(req, SimGpuMode::kExecute);
  auto model = make_searcher(req, SimGpuMode::kModel, {id});

  const keyspace::Interval hit(id - u128(5), id + u128(5));
  const keyspace::Interval miss(id + u128(5), id + u128(100));
  EXPECT_EQ(execute.scan(hit).found.size(), model.scan(hit).found.size());
  EXPECT_TRUE(execute.scan(miss).found.empty());
  EXPECT_TRUE(model.scan(miss).found.empty());
}

TEST(GpuBackend, TimingComesFromTheModelNotTheHost) {
  const auto req = request_md5("dcba");
  ScanPlan plan(req);
  auto model = make_searcher(req, SimGpuMode::kModel, {});
  // A billion-key interval "runs" instantly on the host but must be
  // reported as a substantial simulated duration.
  const keyspace::Interval space = req.space_interval();
  const auto out = model.scan(space);
  const double expected =
      space.size().to_double() / model.peak_throughput_hint();
  EXPECT_NEAR(out.busy_virtual_s, expected, expected * 0.5 + 1e-4);
  EXPECT_TRUE(model.is_simulated());
}

TEST(GpuBackend, TheoreticalAboveSustained) {
  const auto req = request_md5("dcba");
  auto searcher = make_searcher(req, SimGpuMode::kModel);
  EXPECT_GE(searcher.theoretical_throughput(),
            searcher.peak_throughput_hint() * 0.95);
}

TEST(GpuBackend, DescriptionNamesDeviceAndAlgorithm) {
  const auto req = request_md5("dcba");
  auto searcher = make_searcher(req, SimGpuMode::kModel);
  EXPECT_NE(searcher.description().find("660"), std::string::npos);
  EXPECT_NE(searcher.description().find("MD5"), std::string::npos);
}

TEST(OurKernelProfile, FermiGetsIlpTwoOthersOne) {
  using simgpu::ComputeCapability;
  EXPECT_EQ(our_kernel_profile(hash::Algorithm::kMd5,
                               ComputeCapability::kCc21)
                .ilp,
            2u);
  EXPECT_EQ(our_kernel_profile(hash::Algorithm::kMd5,
                               ComputeCapability::kCc30)
                .ilp,
            1u);
  EXPECT_EQ(our_kernel_profile(hash::Algorithm::kMd5,
                               ComputeCapability::kCc1x)
                .ilp,
            1u);
}

TEST(OurKernelProfile, BytePermOnlyWhereItExistsAndPays) {
  using simgpu::ComputeCapability;
  using simgpu::MachineOp;
  EXPECT_GT(our_kernel_profile(hash::Algorithm::kMd5,
                               ComputeCapability::kCc30)
                .per_candidate[MachineOp::kPrmt],
            0u);
  EXPECT_EQ(our_kernel_profile(hash::Algorithm::kMd5,
                               ComputeCapability::kCc21)
                .per_candidate[MachineOp::kPrmt],
            0u);
}

TEST(OurKernelProfile, Sha1CostsMoreThanMd5) {
  using simgpu::ComputeCapability;
  const auto md5 =
      our_kernel_profile(hash::Algorithm::kMd5, ComputeCapability::kCc30);
  const auto sha1 =
      our_kernel_profile(hash::Algorithm::kSha1, ComputeCapability::kCc30);
  EXPECT_GT(sha1.per_candidate.total(), 2 * md5.per_candidate.total());
}

}  // namespace
}  // namespace gks::core
