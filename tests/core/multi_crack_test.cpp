#include "core/multi_crack.h"

#include <gtest/gtest.h>

#include <cctype>

#include "hash/md5.h"
#include "hash/sha1.h"
#include "keyspace/codec.h"
#include "keyspace/space.h"
#include "support/error.h"

namespace gks::core {
namespace {

MultiCrackRequest md5_batch(const std::vector<std::string>& keys,
                            keyspace::Charset charset, unsigned min_len,
                            unsigned max_len, hash::SaltSpec salt = {}) {
  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = std::move(charset);
  request.min_length = min_len;
  request.max_length = max_len;
  request.salt = salt;
  for (const auto& k : keys) {
    request.target_hexes.push_back(
        hash::Md5::digest(salt.apply(k)).to_hex());
  }
  return request;
}

TEST(MultiCrack, RecoversEveryKeyInOneSweep) {
  const std::vector<std::string> keys = {"cat", "dog", "fish", "a"};
  const auto request =
      md5_batch(keys, keyspace::Charset("acdfghiost"), 1, 4);
  const auto result = multi_crack(request, 2);

  EXPECT_EQ(result.cracked, keys.size());
  ASSERT_EQ(result.targets.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(result.targets[i].found) << keys[i];
    EXPECT_EQ(result.targets[i].key, keys[i]);
  }
}

TEST(MultiCrack, UncrackableDigestStaysOutstanding) {
  auto request = md5_batch({"ab"}, keyspace::Charset("ab"), 1, 3);
  request.target_hexes.push_back(
      hash::Md5::digest("NOT-in-space").to_hex());
  const auto result = multi_crack(request, 2);
  EXPECT_EQ(result.cracked, 1u);
  EXPECT_TRUE(result.targets[0].found);
  EXPECT_FALSE(result.targets[1].found);
  // The whole space was swept for the missing one.
  EXPECT_EQ(result.tested, u128(2 + 4 + 8));
}

TEST(MultiCrack, StopsEarlyWhenAllFound) {
  // Keys early in the enumeration: the sweep must not test the whole
  // 5-character space.
  const auto request = md5_batch({"a", "b"}, keyspace::Charset::lower(), 1, 5);
  const auto result = multi_crack(request, 2);
  EXPECT_EQ(result.cracked, 2u);
  EXPECT_LT(result.tested,
            keyspace::space_size(26, 1, 5));
}

TEST(MultiCrack, Sha1BatchWorks) {
  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kSha1;
  request.charset = keyspace::Charset("abc");
  request.min_length = 1;
  request.max_length = 4;
  for (const char* k : {"abc", "cba", "bb"}) {
    request.target_hexes.push_back(hash::Sha1::digest(k).to_hex());
  }
  const auto result = multi_crack(request, 2);
  EXPECT_EQ(result.cracked, 3u);
  EXPECT_EQ(result.targets[1].key, "cba");
}

TEST(MultiCrack, SharedSuffixSaltBatch) {
  const hash::SaltSpec salt{hash::SaltPosition::kSuffix, "2024"};
  const auto request =
      md5_batch({"pass", "word"}, keyspace::Charset("adoprsw"), 4, 4, salt);
  const auto result = multi_crack(request, 2);
  EXPECT_EQ(result.cracked, 2u);
  EXPECT_EQ(result.targets[0].key, "pass");
  EXPECT_EQ(result.targets[1].key, "word");
}

TEST(MultiCrack, DuplicateDigestsBothReported) {
  const auto request = md5_batch({"ba", "ba"}, keyspace::Charset("ab"), 1, 2);
  const auto result = multi_crack(request, 1);
  EXPECT_EQ(result.cracked, 2u);
  EXPECT_EQ(result.targets[0].key, "ba");
  EXPECT_EQ(result.targets[1].key, "ba");
}

TEST(MultiCrack, PrefixSaltUsesGenericPathCorrectly) {
  const hash::SaltSpec salt{hash::SaltPosition::kPrefix, "S!"};
  const auto request =
      md5_batch({"ba", "ab"}, keyspace::Charset("ab"), 1, 3, salt);
  const auto result = multi_crack(request, 2);
  EXPECT_EQ(result.cracked, 2u);
}

TEST(MultiCrack, ValidatesItsRequest) {
  MultiCrackRequest empty;
  EXPECT_THROW(multi_crack(empty), InvalidArgument);

  MultiCrackRequest sha256;
  sha256.algorithm = hash::Algorithm::kSha256;
  sha256.target_hexes = {std::string(64, 'a')};
  EXPECT_THROW(multi_crack(sha256), InvalidArgument);

  MultiCrackRequest bad_digest;
  bad_digest.target_hexes = {"abcd"};  // wrong length for MD5
  EXPECT_THROW(multi_crack(bad_digest), InvalidArgument);
}

TEST(MultiCrack, BatchAgreesWithIndividualCracks) {
  const std::vector<std::string> keys = {"aa", "abc", "ccba"};
  const auto request = md5_batch(keys, keyspace::Charset("abc"), 1, 4);
  const auto batch = multi_crack(request, 2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(batch.targets[i].found);
    EXPECT_EQ(batch.targets[i].key, keys[i]);
  }
}

TEST(MultiCrack, LaneAndScalarEnginesAgree) {
  // The calibrated lane engine and the forced-scalar engine must
  // produce identical sweeps: same verdicts, same keys, same count of
  // tested candidates.
  const std::vector<std::string> keys = {"fish", "cat", "dog", "cat"};
  auto request = md5_batch(keys, keyspace::Charset("acdfghiost"), 1, 4);
  request.target_hexes.push_back(hash::Md5::digest("MISSING").to_hex());

  auto scalar_request = request;
  scalar_request.lane_scanning = false;

  const auto lanes = multi_crack(request, 2);
  const auto scalar = multi_crack(scalar_request, 2);
  EXPECT_EQ(lanes.cracked, scalar.cracked);
  EXPECT_EQ(lanes.tested, scalar.tested);
  ASSERT_EQ(lanes.targets.size(), scalar.targets.size());
  for (std::size_t i = 0; i < lanes.targets.size(); ++i) {
    EXPECT_EQ(lanes.targets[i].found, scalar.targets[i].found) << i;
    EXPECT_EQ(lanes.targets[i].key, scalar.targets[i].key) << i;
  }
}

TEST(MultiCrack, TenThousandTargetSweep) {
  // The auditing scenario at scale: every key of a 10^4 space as its
  // own target (with a duplicated credential thrown in). One sweep must
  // recover them all — the per-candidate cost is O(1) in the target
  // count, so this runs in the same ballpark as a single-target sweep.
  const keyspace::Charset charset("abcdefghij");
  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = charset;
  request.min_length = 4;
  request.max_length = 4;
  std::string key = "aaaa";
  const keyspace::KeyCodec codec(charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  for (int i = 0; i < 10000; ++i) {
    request.target_hexes.push_back(hash::Md5::digest(key).to_hex());
    codec.next_inplace(key);
  }
  request.target_hexes.push_back(request.target_hexes.front());  // duplicate

  const auto result = multi_crack(request, 0);
  EXPECT_EQ(result.cracked, result.targets.size());
  EXPECT_EQ(result.tested, u128(10000));
  for (const auto& verdict : result.targets) {
    EXPECT_TRUE(verdict.found) << verdict.digest_hex;
    EXPECT_EQ(hash::Md5::digest(verdict.key).to_hex(), verdict.digest_hex);
  }
}

TEST(MultiCrack, MixedCaseDuplicateHexesResolveTogether) {
  // The digest->slots map keys on parsed bytes, so upper- and
  // lower-case spellings of the same digest are one unique target.
  const std::string lower = hash::Md5::digest("ba").to_hex();
  std::string upper = lower;
  for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));

  MultiCrackRequest request;
  request.charset = keyspace::Charset("ab");
  request.min_length = 1;
  request.max_length = 2;
  request.target_hexes = {upper, lower};
  const auto result = multi_crack(request, 1);
  EXPECT_EQ(result.cracked, 2u);
  EXPECT_EQ(result.targets[0].key, "ba");
  EXPECT_EQ(result.targets[1].key, "ba");
}

}  // namespace
}  // namespace gks::core
