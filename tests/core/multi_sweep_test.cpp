// Live-mutation coverage for the sweep engine: targets added while the
// space is being swept, removals detaching digests mid-flight,
// generation handoff between snapshots, compaction at dead-slot
// pile-up, and the exactly-once accounting that survives all of it.

#include "core/multi_sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hash/md5.h"
#include "keyspace/codec.h"
#include "keyspace/space.h"
#include "support/error.h"

namespace gks::core {
namespace {

MultiCrackRequest md5_request(const std::vector<std::string>& keys,
                              keyspace::Charset charset, unsigned min_len,
                              unsigned max_len) {
  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = std::move(charset);
  request.min_length = min_len;
  request.max_length = max_len;
  for (const auto& k : keys) {
    request.target_hexes.push_back(hash::Md5::digest(k).to_hex());
  }
  return request;
}

/// The key at generator-relative id `rel_id` of the request's space —
/// the same mapping the sweeper scans in, so tests can plant targets
/// at chosen sweep positions.
std::string key_at(const MultiCrackRequest& request, u128 rel_id) {
  const keyspace::KeyCodec codec(request.charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const u128 offset = keyspace::first_id_of_length(request.charset.size(),
                                                   request.min_length);
  return codec.decode(rel_id + offset);
}

std::string md5_hex(const std::string& key) {
  return hash::Md5::digest(key).to_hex();
}

/// Drives [begin, end) through the sweeper in `step`-sized slices the
/// way the job service does: every scan's untested remainder (yielded
/// on generation handoff) is simply re-dispatched. Returns the number
/// of request slots resolved via mark_found — the exactly-once
/// observable.
std::size_t drive(MultiSweeper& sweeper, u128 begin, u128 end, u128 step) {
  std::size_t resolved = 0;
  std::vector<SweepHit> hits;
  u128 pos = begin;
  while (pos < end) {
    u128 stop = pos + step;
    if (stop > end) stop = end;
    hits.clear();
    pos += sweeper.scan(keyspace::Interval(pos, stop), hits);
    for (const SweepHit& h : hits) {
      resolved += sweeper.mark_found(h.unique_index, h.key).size();
    }
  }
  return resolved;
}

TEST(MultiSweep, TargetAddedBeforeItsCoveringIntervalIsFound) {
  // Space "abcd" x 1..6 = 5460 ids swept in 500-id slices. The second
  // target is attached only once a third of the space is covered; its
  // key lives at three quarters — added before its covering interval,
  // so the sweep must recover it.
  auto request = md5_request({"a"}, keyspace::Charset("abcd"), 1, 6);
  request.target_hexes[0] = md5_hex(key_at(request, u128(10)));
  MultiSweeper sweeper(request);
  const u128 space = sweeper.space_size();
  const std::string late_key = key_at(request, space * u128(3) / u128(4));

  std::size_t resolved = drive(sweeper, u128(0), space / u128(3), u128(500));
  EXPECT_EQ(resolved, 1u);  // the early target
  const std::uint64_t gen_before = sweeper.generation();

  const TargetAddOutcome out = sweeper.add_targets({md5_hex(late_key)});
  EXPECT_EQ(out.attached, 1u);
  EXPECT_EQ(out.already_found, 0u);
  ASSERT_EQ(out.slots.size(), 1u);
  EXPECT_EQ(out.slots[0], 1u);
  EXPECT_GT(sweeper.generation(), gen_before);
  EXPECT_EQ(sweeper.outstanding_count(), 1u);

  resolved += drive(sweeper, space / u128(3), space, u128(500));
  EXPECT_EQ(resolved, 2u);
  EXPECT_TRUE(sweeper.all_found());

  MultiCrackResult result;
  sweeper.fill_results(result);
  ASSERT_EQ(result.targets.size(), 2u);
  EXPECT_TRUE(result.targets[1].found);
  EXPECT_EQ(result.targets[1].key, late_key);
  EXPECT_EQ(sweeper.slot_hex(1), md5_hex(late_key));
}

TEST(MultiSweep, DuplicateOfRecoveredTargetResolvesInstantly) {
  auto request = md5_request({"ba"}, keyspace::Charset("ab"), 1, 2);
  MultiSweeper sweeper(request);
  drive(sweeper, u128(0), sweeper.space_size(), u128(2));
  ASSERT_TRUE(sweeper.all_found());

  // Same digest again: no new outstanding work, flagged already-found,
  // and the new request slot reports the recovered key.
  const TargetAddOutcome out = sweeper.add_targets({md5_hex("ba")});
  EXPECT_EQ(out.attached, 0u);
  EXPECT_EQ(out.already_found, 1u);
  EXPECT_TRUE(sweeper.all_found());

  MultiCrackResult result;
  sweeper.fill_results(result);
  ASSERT_EQ(result.targets.size(), 2u);
  EXPECT_TRUE(result.targets[1].found);
  EXPECT_EQ(result.targets[1].key, "ba");
  EXPECT_EQ(result.cracked, 2u);
}

TEST(MultiSweep, RemoveDetachesAndSuppressesItsHits) {
  auto request = md5_request({"ab", "ba"}, keyspace::Charset("ab"), 2, 2);
  MultiSweeper sweeper(request);
  EXPECT_EQ(sweeper.outstanding_count(), 2u);

  EXPECT_EQ(sweeper.remove_targets({md5_hex("ab")}), 1u);
  EXPECT_EQ(sweeper.outstanding_count(), 1u);
  // Unknown digests and repeat removals are ignored, not errors.
  EXPECT_EQ(sweeper.remove_targets({md5_hex("zz-unknown")}), 0u);
  EXPECT_EQ(sweeper.remove_targets({md5_hex("ab")}), 0u);

  // A stale-snapshot hit on the removed digest resolves to no slots —
  // the removed target can never reach the found log.
  EXPECT_TRUE(sweeper.mark_found_hex(md5_hex("ab"), "ab").empty());

  const std::size_t resolved =
      drive(sweeper, u128(0), sweeper.space_size(), u128(2));
  EXPECT_EQ(resolved, 1u);
  EXPECT_TRUE(sweeper.all_found());

  MultiCrackResult result;
  sweeper.fill_results(result);
  EXPECT_FALSE(result.targets[0].found);
  EXPECT_TRUE(result.targets[1].found);
  EXPECT_TRUE(sweeper.found_so_far().size() == 1 &&
              sweeper.found_so_far()[0].second == "ba");
}

TEST(MultiSweep, ReattachAfterRemoveRecoversOnBothSlots) {
  auto request = md5_request({"ba"}, keyspace::Charset("ab"), 1, 2);
  MultiSweeper sweeper(request);
  ASSERT_EQ(sweeper.remove_targets({md5_hex("ba")}), 1u);
  ASSERT_TRUE(sweeper.all_found());  // nothing outstanding

  const TargetAddOutcome out = sweeper.add_targets({md5_hex("ba")});
  EXPECT_EQ(out.attached, 1u);
  EXPECT_EQ(sweeper.outstanding_count(), 1u);

  const std::size_t resolved =
      drive(sweeper, u128(0), sweeper.space_size(), u128(2));
  // One unique digest, two request slots: the original (re-attached)
  // and the one added back — a single recovery resolves both.
  EXPECT_EQ(resolved, 2u);
  MultiCrackResult result;
  sweeper.fill_results(result);
  ASSERT_EQ(result.targets.size(), 2u);
  EXPECT_TRUE(result.targets[0].found);
  EXPECT_TRUE(result.targets[1].found);
  EXPECT_EQ(result.cracked, 2u);
}

TEST(MultiSweep, CompactionKeepsRemainingTargetsFindable) {
  // 700 targets in the first 700 ids plus one at the very end of a
  // 10^4 space: recovering the bulk crosses the compaction threshold
  // (>= 256 newly dead and a majority of the live index), so the last
  // target must be found by post-compaction contexts.
  const keyspace::Charset charset("abcdefghij");
  MultiCrackRequest request;
  request.algorithm = hash::Algorithm::kMd5;
  request.charset = charset;
  request.min_length = 4;
  request.max_length = 4;
  MultiCrackRequest probe = request;
  probe.target_hexes = {md5_hex("aaaa")};
  for (u128 id(0); id < u128(700); ++id) {
    request.target_hexes.push_back(md5_hex(key_at(probe, id)));
  }
  const std::string last_key = key_at(probe, u128(9999));
  request.target_hexes.push_back(md5_hex(last_key));

  MultiSweeper sweeper(request);
  const std::size_t resolved =
      drive(sweeper, u128(0), sweeper.space_size(), u128(1000));
  EXPECT_EQ(resolved, 701u);
  EXPECT_TRUE(sweeper.all_found());
  EXPECT_GT(sweeper.generation(), 0u);  // compaction published a snapshot

  MultiCrackResult result;
  sweeper.fill_results(result);
  EXPECT_TRUE(result.targets.back().found);
  EXPECT_EQ(result.targets.back().key, last_key);
}

TEST(MultiSweep, MarkFoundIsExactlyOnceAcrossPaths) {
  auto request = md5_request({"ab", "ba"}, keyspace::Charset("ab"), 2, 2);
  MultiSweeper sweeper(request);

  // Unique indices are digest-sorted, so the hex path selects targets
  // deterministically; the index path must agree on duplicates.
  EXPECT_EQ(sweeper.mark_found_hex(md5_hex("ab"), "ab").size(), 1u);
  EXPECT_TRUE(sweeper.mark_found_hex(md5_hex("ab"), "ab").empty());
  EXPECT_EQ(sweeper.mark_found_hex(md5_hex("ba"), "ba").size(), 1u);
  EXPECT_TRUE(sweeper.mark_found(0, "ab").empty());  // duplicate hit
  EXPECT_TRUE(sweeper.mark_found(1, "ba").empty());
  EXPECT_TRUE(sweeper.mark_found_hex(md5_hex("nope"), "x").empty());

  EXPECT_TRUE(sweeper.all_found());
  EXPECT_EQ(sweeper.found_so_far().size(), 2u);
}

TEST(MultiSweep, AddValidatesHexesBeforeMutating) {
  auto request = md5_request({"ba"}, keyspace::Charset("ab"), 1, 2);
  MultiSweeper sweeper(request);
  const std::uint64_t gen = sweeper.generation();
  EXPECT_THROW(sweeper.add_targets({md5_hex("ok"), "not-a-digest"}),
               InvalidArgument);
  EXPECT_THROW(sweeper.remove_targets({"xyz"}), InvalidArgument);
  EXPECT_EQ(sweeper.slot_count(), 1u);
  EXPECT_EQ(sweeper.unique_count(), 1u);
  EXPECT_EQ(sweeper.generation(), gen);
}

TEST(MultiSweep, FilterStatsAccumulateOverScans) {
  auto request = md5_request({"dcba"}, keyspace::Charset("abcd"), 4, 4);
  MultiSweeper sweeper(request);
  std::vector<SweepHit> hits;
  sweeper.scan(sweeper.space_interval(), hits);
  ASSERT_EQ(hits.size(), 1u);
  // The real recovery necessarily passed the gate at least once.
  EXPECT_GE(sweeper.filter_stats().gate_hits, 1u);
}

TEST(MultiSweep, ConcurrentAddDuringScanIsNeverMissed) {
  // A worker sweeps the space in slices while the main thread attaches
  // a target planted in the second half. The worker holds at the
  // halfway mark until the add lands, so the covering interval is
  // always scanned after the attach — under any interleaving the key
  // must be recovered, possibly via a generation-yield + re-dispatch.
  auto request = md5_request({"zz"}, keyspace::Charset::lower(), 1, 3);
  MultiSweeper sweeper(request);
  const u128 space = sweeper.space_size();
  const u128 hold_point = space / u128(2);
  const std::string late_key = key_at(request, space - u128(2));

  std::atomic<std::uint64_t> covered{0};
  std::atomic<bool> added{false};
  std::atomic<std::size_t> resolved{0};

  std::thread worker([&] {
    std::vector<SweepHit> hits;
    u128 pos(0);
    while (pos < space) {
      if (pos >= hold_point && !added.load(std::memory_order_acquire)) {
        std::this_thread::yield();
        continue;
      }
      u128 stop = pos + u128(700);
      if (stop > space) stop = space;
      hits.clear();
      pos += sweeper.scan(keyspace::Interval(pos, stop), hits);
      for (const SweepHit& h : hits) {
        resolved.fetch_add(sweeper.mark_found(h.unique_index, h.key).size());
      }
      covered.store(pos.to_u64(), std::memory_order_release);
    }
  });

  while (covered.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  const TargetAddOutcome out = sweeper.add_targets({md5_hex(late_key)});
  EXPECT_EQ(out.attached, 1u);
  added.store(true, std::memory_order_release);
  worker.join();

  EXPECT_EQ(resolved.load(), 2u);
  EXPECT_TRUE(sweeper.all_found());
  MultiCrackResult result;
  sweeper.fill_results(result);
  ASSERT_EQ(result.targets.size(), 2u);
  EXPECT_TRUE(result.targets[0].found);
  EXPECT_EQ(result.targets[0].key, "zz");
  EXPECT_TRUE(result.targets[1].found);
  EXPECT_EQ(result.targets[1].key, late_key);
}

}  // namespace
}  // namespace gks::core
