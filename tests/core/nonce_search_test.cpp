#include "core/nonce_search.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::core {
namespace {

TEST(NonceSearch, PowHashIsDeterministic) {
  const BlockHeader h = BlockHeader::sample(1);
  EXPECT_EQ(block_pow_hash(h), block_pow_hash(h));
  BlockHeader other = h;
  other.set_nonce(42);
  EXPECT_NE(block_pow_hash(h), block_pow_hash(other));
}

TEST(NonceSearch, LeadingZeroBitsCountsCorrectly) {
  hash::Sha256Digest d{};  // all zero
  EXPECT_EQ(leading_zero_bits(d), 256u);
  d.bytes[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0u);
  d.bytes[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(d), 7u);
  d.bytes[0] = 0x00;
  d.bytes[1] = 0x20;
  EXPECT_EQ(leading_zero_bits(d), 10u);
}

TEST(NonceSearch, FindsANonceForAnEasyTarget) {
  const BlockHeader h = BlockHeader::sample(7);
  // 8 zero bits: expected ~256 attempts.
  const MiningResult r = mine_nonce(h, 8, 0, 1u << 16, 2);
  ASSERT_TRUE(r.nonce.has_value());
  BlockHeader solved = h;
  solved.set_nonce(*r.nonce);
  EXPECT_GE(leading_zero_bits(block_pow_hash(solved)), 8u);
}

TEST(NonceSearch, ReturnsTheSmallestSatisfyingNonce) {
  const BlockHeader h = BlockHeader::sample(11);
  const MiningResult a = mine_nonce(h, 6, 0, 1u << 14, 1);
  const MiningResult b = mine_nonce(h, 6, 0, 1u << 14, 4);
  ASSERT_TRUE(a.nonce.has_value());
  ASSERT_TRUE(b.nonce.has_value());
  EXPECT_EQ(*a.nonce, *b.nonce);  // thread count must not change it
}

TEST(NonceSearch, ImpossibleTargetExhaustsTheRange) {
  const BlockHeader h = BlockHeader::sample(3);
  const MiningResult r = mine_nonce(h, 200, 0, 4096, 2);
  EXPECT_FALSE(r.nonce.has_value());
  EXPECT_EQ(r.tested, 4096u);
}

TEST(NonceSearch, RangePartitioningIsRespected) {
  const BlockHeader h = BlockHeader::sample(7);
  const MiningResult full = mine_nonce(h, 8, 0, 1u << 16, 2);
  ASSERT_TRUE(full.nonce.has_value());
  // Searching only beyond the first solution finds a different one (or
  // none), never the excluded nonce.
  const MiningResult later = mine_nonce(h, 8, *full.nonce + 1, 1u << 16, 2);
  if (later.nonce.has_value()) {
    EXPECT_GT(*later.nonce, *full.nonce);
  }
}

TEST(NonceSearch, ZeroBitTargetAcceptsImmediately) {
  const BlockHeader h = BlockHeader::sample(5);
  const MiningResult r = mine_nonce(h, 0, 17, 1000, 1);
  ASSERT_TRUE(r.nonce.has_value());
  EXPECT_EQ(*r.nonce, 17u);
}

TEST(NonceSearch, InvalidRangesRejected) {
  const BlockHeader h = BlockHeader::sample(5);
  EXPECT_THROW(mine_nonce(h, 8, 100, 50, 1), InvalidArgument);
  EXPECT_THROW(mine_nonce(h, 8, 0, (1ull << 32) + 1, 1), InvalidArgument);
  EXPECT_THROW(mine_nonce(h, 300, 0, 10, 1), InvalidArgument);
}

TEST(NonceSearch, EmptyRangeTestsNothing) {
  const BlockHeader h = BlockHeader::sample(5);
  const MiningResult r = mine_nonce(h, 8, 5, 5, 1);
  EXPECT_FALSE(r.nonce.has_value());
  EXPECT_EQ(r.tested, 0u);
}

}  // namespace
}  // namespace gks::core
