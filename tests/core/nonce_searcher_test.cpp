#include "core/nonce_searcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "dispatch/agent.h"
#include "support/error.h"

namespace gks::core {
namespace {

TEST(NonceSearcher, FindsEverySatisfyingNonceInTheInterval) {
  const BlockHeader header = BlockHeader::sample(21);
  const unsigned bits = 10;  // ~1 hit per 1024 nonces
  NonceSearcher searcher(header, bits, 2);

  const keyspace::Interval interval(u128(0), u128(1u << 14));
  const auto out = searcher.scan(interval);
  EXPECT_EQ(out.tested, interval.size());
  EXPECT_GE(out.found.size(), 1u);  // 16 expected

  // Every reported nonce satisfies the target; cross-check directly.
  for (const auto& f : out.found) {
    BlockHeader h = header;
    h.set_nonce(static_cast<std::uint32_t>(f.id.to_u64()));
    EXPECT_GE(leading_zero_bits(block_pow_hash(h)), bits) << f.value;
  }

  // And a direct rescan of the interval agrees on the first hit.
  const MiningResult direct = mine_nonce(header, bits, 0, 1u << 14, 1);
  ASSERT_TRUE(direct.nonce.has_value());
  EXPECT_EQ(out.found.front().id, u128(*direct.nonce));
}

TEST(NonceSearcher, EmptyAndMissIntervals) {
  NonceSearcher searcher(BlockHeader::sample(5), 200, 1);
  EXPECT_TRUE(searcher.scan({u128(0), u128(0)}).found.empty());
  const auto out = searcher.scan({u128(0), u128(2048)});
  EXPECT_TRUE(out.found.empty());
  EXPECT_EQ(out.tested, u128(2048));
}

TEST(NonceSearcher, RejectsOversizedIdentifiers) {
  NonceSearcher searcher(BlockHeader::sample(5), 8, 1);
  EXPECT_THROW(searcher.scan({u128(0), u128(1, 0)}), InvalidArgument);
}

TEST(NonceSearcher, RunsThroughTheDispatchPattern) {
  // The generality claim of Section III: the same NodeAgent that
  // dispatches password cracking runs Bitcoin-style mining unchanged.
  simnet::Network net(1.0);  // real time: these are real CPU devices
  const auto root = net.add_node("miner");

  const BlockHeader header = BlockHeader::sample(77);
  const unsigned bits = 12;
  std::vector<std::unique_ptr<dispatch::IntervalSearcher>> devices;
  devices.push_back(std::make_unique<NonceSearcher>(header, bits, 2));

  dispatch::AgentConfig config;
  config.tune.start_batch = u128(4096);
  config.round_virtual_target_s = 0.05;
  config.min_timeout_real_s = 0.2;
  dispatch::NodeAgent agent(net, root, std::move(devices), config);

  const keyspace::Interval nonce_space(u128(0), u128(1u << 18));
  const auto report = agent.run_root(nonce_space, nonce_space);
  ASSERT_FALSE(report.found.empty());

  BlockHeader solved = header;
  solved.set_nonce(
      static_cast<std::uint32_t>(report.found.front().id.to_u64()));
  EXPECT_GE(leading_zero_bits(block_pow_hash(solved)), bits);
}

TEST(NonceSearcher, DescriptionAndTheoretical) {
  NonceSearcher searcher(BlockHeader::sample(5), 16, 2);
  EXPECT_NE(searcher.description().find("SHA256d"), std::string::npos);
  EXPECT_GT(searcher.theoretical_throughput(), 1e4);
  EXPECT_FALSE(searcher.is_simulated());
}

}  // namespace
}  // namespace gks::core
