#include "core/scan_engine.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "hash/md5.h"
#include "hash/sha1.h"
#include "hash/sha256.h"

namespace gks::core {
namespace {

CrackRequest request_for(hash::Algorithm alg, const std::string& plaintext,
                         keyspace::Charset charset, unsigned min_len,
                         unsigned max_len, hash::SaltSpec salt = {}) {
  CrackRequest r;
  r.algorithm = alg;
  r.charset = std::move(charset);
  r.min_length = min_len;
  r.max_length = max_len;
  r.salt = salt;
  const std::string message = salt.apply(plaintext);
  r.target_hex = alg == hash::Algorithm::kMd5
                     ? hash::Md5::digest(message).to_hex()
                     : hash::Sha1::digest(message).to_hex();
  return r;
}

TEST(ScanEngine, FindsShortMd5KeyAtItsExactId) {
  const auto req = request_for(hash::Algorithm::kMd5, "cab",
                               keyspace::Charset("abc"), 1, 4);
  const ScanPlan plan(req);
  const u128 id = plan.id_of("cab");
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "cab");
  EXPECT_EQ(out.found[0].id, id);
  EXPECT_EQ(out.tested, req.space_size());
}

TEST(ScanEngine, FindsSha1Key) {
  const auto req = request_for(hash::Algorithm::kSha1, "bbaa",
                               keyspace::Charset("ab"), 1, 5);
  const ScanPlan plan(req);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "bbaa");
}

TEST(ScanEngine, IdOfIsConsistentWithScan) {
  const auto req = request_for(hash::Algorithm::kMd5, "dcba",
                               keyspace::Charset("abcd"), 2, 4);
  const ScanPlan plan(req);
  const u128 id = plan.id_of("dcba");
  // Scanning only the surrounding slice must still find it.
  const keyspace::Interval slice(id - u128(10), id + u128(10));
  const auto out = plan.scan(slice);
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].id, id);
}

TEST(ScanEngine, MissesKeyOutsideTheInterval) {
  const auto req = request_for(hash::Algorithm::kMd5, "ccc",
                               keyspace::Charset("abc"), 1, 4);
  const ScanPlan plan(req);
  const u128 id = plan.id_of("ccc");
  const auto out = plan.scan(keyspace::Interval(u128(0), id));
  EXPECT_TRUE(out.found.empty());
  EXPECT_EQ(out.tested, id);
}

TEST(ScanEngine, KeysLongerThanFourUseTheTailChunking) {
  // 6-char key: the fast path rebuilds a context per tail block.
  const auto req = request_for(hash::Algorithm::kMd5, "fedcba",
                               keyspace::Charset("abcdef"), 6, 6);
  const ScanPlan plan(req);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "fedcba");
  EXPECT_EQ(out.tested, u128(46656));  // 6^6
}

TEST(ScanEngine, SuffixSaltedKeysUseTheFastPath) {
  const hash::SaltSpec salt{hash::SaltPosition::kSuffix, "NaCl"};
  const auto req = request_for(hash::Algorithm::kMd5, "abcde",
                               keyspace::Charset("abcde"), 5, 5, salt);
  const ScanPlan plan(req);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "abcde");
}

TEST(ScanEngine, PrefixSaltedKeysFallBackToTheGenericPath) {
  const hash::SaltSpec salt{hash::SaltPosition::kPrefix, "NaCl"};
  const auto req = request_for(hash::Algorithm::kSha1, "dcb",
                               keyspace::Charset("abcd"), 1, 3, salt);
  const ScanPlan plan(req);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "dcb");
}

TEST(ScanEngine, ShortSuffixSaltedKeysFallBackSafely) {
  // key length < 4 with suffix salt: salt bytes share word 0, so the
  // generic path must take over — results must still be right.
  const hash::SaltSpec salt{hash::SaltPosition::kSuffix, "xy"};
  const auto req = request_for(hash::Algorithm::kMd5, "ba",
                               keyspace::Charset("ab"), 1, 3, salt);
  const ScanPlan plan(req);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "ba");
}

TEST(ScanEngine, SplitScansCoverLikeOneScan) {
  // Property: scanning [0,n) in arbitrary pieces finds the same set.
  const auto req = request_for(hash::Algorithm::kMd5, "bcb",
                               keyspace::Charset("abc"), 1, 4);
  const ScanPlan plan(req);
  const u128 n = req.space_size();
  for (const std::uint64_t pieces : {2u, 3u, 7u}) {
    const auto slices =
        keyspace::split_even(keyspace::Interval(u128(0), n), pieces);
    std::size_t found = 0;
    u128 tested(0);
    for (const auto& s : slices) {
      const auto out = plan.scan(s);
      found += out.found.size();
      tested += out.tested;
    }
    EXPECT_EQ(found, 1u) << pieces;
    EXPECT_EQ(tested, n) << pieces;
  }
}

TEST(ScanEngine, IntervalsCrossingLengthBoundaries) {
  const auto req = request_for(hash::Algorithm::kMd5, "aaa",
                               keyspace::Charset("abc"), 1, 4);
  const ScanPlan plan(req);
  const u128 id = plan.id_of("aaa");  // first 3-char key
  // Interval straddling the 2->3 char boundary.
  const auto out = plan.scan(keyspace::Interval(id - u128(3), id + u128(3)));
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "aaa");
}

TEST(ScanEngine, RejectsOutOfSpaceIntervalsAndKeys) {
  const auto req = request_for(hash::Algorithm::kMd5, "ab",
                               keyspace::Charset("ab"), 1, 2);
  const ScanPlan plan(req);
  EXPECT_THROW(plan.scan(keyspace::Interval(u128(0), req.space_size() + u128(1))),
               InvalidArgument);
  EXPECT_THROW(plan.id_of("aaa"), InvalidArgument);
}

TEST(ScanEngine, EmptyIntervalIsANoOp) {
  const auto req = request_for(hash::Algorithm::kMd5, "ab",
                               keyspace::Charset("ab"), 1, 2);
  const ScanPlan plan(req);
  const auto out = plan.scan(keyspace::Interval(u128(3), u128(3)));
  EXPECT_TRUE(out.found.empty());
  EXPECT_EQ(out.tested, u128(0));
}

TEST(ScanEngine, AlphanumericEightCharKeySliceScan) {
  // A realistic paper-style target: 8 alphanumeric chars; scan only
  // the slice around the known id (the full space is 2.2e14).
  const auto req = request_for(hash::Algorithm::kMd5, "Xy3kQ9ab",
                               keyspace::Charset::alphanumeric(), 1, 8);
  const ScanPlan plan(req);
  const u128 id = plan.id_of("Xy3kQ9ab");
  const auto out =
      plan.scan(keyspace::Interval(id - u128(50000), id + u128(50000)));
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "Xy3kQ9ab");
}

TEST(ScanEngine, LaneScannerProducesIdenticalResults) {
  // The default vectorized engine must agree with the forced-scalar
  // engine on hits, ids and coverage.
  const auto req = request_for(hash::Algorithm::kMd5, "fade",
                               keyspace::Charset("abcdef"), 1, 4);
  ScanPlan scalar(req);
  scalar.set_lane_scanning(false);
  ScanPlan lanes(req);
  const auto space = req.space_interval();
  const auto a = scalar.scan(space);
  const auto b = lanes.scan(space);
  ASSERT_EQ(a.found.size(), b.found.size());
  ASSERT_EQ(a.found.size(), 1u);
  EXPECT_EQ(a.found[0].id, b.found[0].id);
  EXPECT_EQ(a.found[0].value, b.found[0].value);
  EXPECT_EQ(a.tested, b.tested);
}

TEST(ScanEngine, LaneScannerHandlesSubIntervalBoundaries) {
  const auto req = request_for(hash::Algorithm::kMd5, "decade",
                               keyspace::Charset("acde"), 6, 6);
  ScanPlan lanes(req);
  const u128 id = lanes.id_of("decade");
  // Odd-sized interval straddling the hit: exercises the scalar tail.
  const auto out =
      lanes.scan(keyspace::Interval(id - u128(3), id + u128(5)));
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "decade");
}

TEST(ScanEngine, LaneKernelsDefaultToWidestAndRespectToggle) {
  const auto req = request_for(hash::Algorithm::kMd5, "fade",
                               keyspace::Charset("abcdef"), 1, 4);
  ScanPlan plan(req);
  ASSERT_NE(plan.lane_kernels(), nullptr);
  EXPECT_EQ(plan.lane_kernels(), &hash::simd::best_kernels());
  plan.set_lane_scanning(false);
  EXPECT_EQ(plan.lane_kernels(), nullptr);
}

TEST(ScanEngine, CalibrationIsCachedAndScanStaysCorrect) {
  const auto req = request_for(hash::Algorithm::kSha1, "fade",
                               keyspace::Charset("abcdef"), 1, 4);
  ScanPlan plan(req);
  const auto* choice = plan.calibrate_lane_choice();
  // Idempotent: the probe ran once, the pinned choice is stable and is
  // what scan() uses from now on.
  EXPECT_EQ(plan.calibrate_lane_choice(), choice);
  EXPECT_EQ(plan.lane_kernels(), choice);
  const auto out = plan.scan(req.space_interval());
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].value, "fade");
}

TEST(ScanEngine, CalibrationOnGenericPathPicksScalar) {
  // SHA256 has no word-0 fast path, so there is nothing to calibrate.
  CrackRequest req;
  req.algorithm = hash::Algorithm::kSha256;
  req.charset = keyspace::Charset("abc");
  req.min_length = 1;
  req.max_length = 4;
  req.target_hex = hash::Sha256::digest("abc").to_hex();
  ScanPlan plan(req);
  EXPECT_EQ(plan.calibrate_lane_choice(), nullptr);
}

}  // namespace
}  // namespace gks::core
