#include "dispatch/agent.h"

#include <gtest/gtest.h>

#include <memory>

#include "fake_searcher.h"

namespace gks::dispatch {
namespace {

using testing::FakeSearcher;

AgentConfig fast_config() {
  AgentConfig config;
  config.tune.start_batch = u128(1u << 16);
  config.round_virtual_target_s = 5.0;
  config.min_timeout_real_s = 0.2;
  return config;
}

std::unique_ptr<FakeSearcher> device(const std::string& name, double peak,
                                     std::vector<u128> planted = {}) {
  return std::make_unique<FakeSearcher>(name, peak, 1e-3,
                                        std::move(planted));
}

keyspace::Interval space(std::uint64_t n) {
  return keyspace::Interval(u128(0), u128(n));
}

TEST(Agent, SingleNodeExhaustsTheSpace) {
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  std::vector<std::unique_ptr<IntervalSearcher>> devices;
  devices.push_back(device("d0", 1e9));
  NodeAgent agent(net, root, std::move(devices), fast_config());

  const SearchReport report =
      agent.run_root(space(20'000'000'000ull), space(1u << 24));
  EXPECT_TRUE(report.found.empty());
  EXPECT_EQ(report.tested, u128(20'000'000'000ull));
  EXPECT_EQ(report.failures_detected, 0u);
  EXPECT_GT(report.throughput, 0.0);
  // The cost ledger saw every round and shows low dispatch overhead.
  EXPECT_FALSE(report.costs.empty());
  EXPECT_EQ(report.costs.rounds().size(), report.rounds);
  EXPECT_LT(report.costs.mean_overhead_fraction(), 0.5);
  net.join_all();
}

TEST(Agent, SingleNodeFindsPlantedSolutionAndStopsEarly) {
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  std::vector<std::unique_ptr<IntervalSearcher>> devices;
  devices.push_back(device("d0", 1e9, {u128(123456789)}));
  NodeAgent agent(net, root, std::move(devices), fast_config());

  const u128 total(1'000'000'000'000ull);
  const SearchReport report =
      agent.run_root(keyspace::Interval(u128(0), total), space(1u << 24));
  ASSERT_EQ(report.found.size(), 1u);
  EXPECT_EQ(report.found[0].id, u128(123456789));
  EXPECT_LT(report.tested, total);  // stopped before exhausting
  net.join_all();
}

TEST(Agent, TwoDevicesSplitWorkByThroughput) {
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  std::vector<std::unique_ptr<IntervalSearcher>> devices;
  devices.push_back(device("fast", 3e9));
  devices.push_back(device("slow", 1e9));
  NodeAgent agent(net, root, std::move(devices), fast_config());

  const SearchReport report =
      agent.run_root(space(40'000'000'000ull), space(1u << 24));
  ASSERT_EQ(report.members.size(), 2u);
  const double ratio = report.members[0].tested.to_double() /
                       report.members[1].tested.to_double();
  EXPECT_NEAR(ratio, 3.0, 0.45);
  net.join_all();
}

TEST(Agent, ChildNodeContributesThroughTheNetwork) {
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  net.connect(root, leaf);

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(device("root-dev", 1e9));
  NodeAgent root_agent(net, root, std::move(root_devices), fast_config());

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(device("leaf-dev", 1e9));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), fast_config());
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  const SearchReport report =
      root_agent.run_root(space(30'000'000'000ull), space(1u << 24));
  net.join_all();

  EXPECT_EQ(report.tested, u128(30'000'000'000ull));
  ASSERT_EQ(report.members.size(), 2u);
  // Both members (local device and child) did real work.
  EXPECT_GT(report.members[0].tested, u128(0));
  EXPECT_GT(report.members[1].tested, u128(0));
}

TEST(Agent, HierarchyAggregatesGrandchildren) {
  // root -> mid -> leaf, work flows two hops down and results return.
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  const auto mid = net.add_node("mid");
  const auto leaf = net.add_node("leaf");
  net.connect(root, mid);
  net.connect(mid, leaf);

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(device("root-dev", 5e8));
  NodeAgent root_agent(net, root, std::move(root_devices), fast_config());

  std::vector<std::unique_ptr<IntervalSearcher>> mid_devices;
  mid_devices.push_back(device("mid-dev", 5e8));
  NodeAgent mid_agent(net, mid, std::move(mid_devices), fast_config());

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(device("leaf-dev", 2e9));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), fast_config());

  net.start(mid, [&mid_agent] { mid_agent.serve(); });
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  const SearchReport report =
      root_agent.run_root(space(30'000'000'000ull), space(1u << 24));
  net.join_all();

  EXPECT_EQ(report.tested, u128(30'000'000'000ull));
  // The mid subtree (mid + leaf = 2.5e9) should report ~5x the root
  // device's share.
  ASSERT_EQ(report.members.size(), 2u);
  EXPECT_NEAR(report.members[1].tested.to_double() /
                  report.members[0].tested.to_double(),
              5.0, 1.0);
}

TEST(Agent, FindInChildPropagatesToRoot) {
  // The root is a pure dispatcher (no local devices), so the child is
  // guaranteed to own the planted identifier's interval.
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  net.connect(root, leaf);

  NodeAgent root_agent(net, root, {}, fast_config());

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(device("leaf-dev", 1e9, {u128(29'000'000'000ull)}));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), fast_config());
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  const SearchReport report =
      root_agent.run_root(space(30'000'000'000ull), space(1u << 24));
  net.join_all();

  bool found_planted = false;
  for (const Found& f : report.found) {
    if (f.id == u128(29'000'000'000ull)) found_planted = true;
  }
  EXPECT_TRUE(found_planted);
}

TEST(Agent, DeadChildAtTuneTimeIsExcludedNotFatal) {
  simnet::Network net(1e-4);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  net.connect(root, leaf);
  net.set_node_down(leaf, true);  // never answers

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(device("root-dev", 1e9));
  AgentConfig config = fast_config();
  config.min_timeout_real_s = 0.05;  // keep the test fast
  NodeAgent root_agent(net, root, std::move(root_devices), config);

  const SearchReport report =
      root_agent.run_root(space(5'000'000'000ull), space(1u << 24));
  net.join_all();

  EXPECT_EQ(report.tested, u128(5'000'000'000ull));  // full coverage anyway
  EXPECT_EQ(report.failures_detected, 1u);
  ASSERT_EQ(report.members.size(), 2u);
  EXPECT_TRUE(report.members[1].failed);
  EXPECT_EQ(report.members[1].tested, u128(0));
}

}  // namespace
}  // namespace gks::dispatch
