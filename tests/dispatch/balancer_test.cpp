#include "dispatch/balancer.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::dispatch {
namespace {

Capability cap(double throughput, std::uint64_t min_batch,
               double theoretical = 0, std::size_t devices = 1) {
  Capability c;
  c.throughput = throughput;
  c.min_batch = u128(min_batch);
  c.theoretical_sum = theoretical > 0 ? theoretical : throughput;
  c.device_count = devices;
  return c;
}

TEST(Balancer, QuotasAreProportionalToThroughput) {
  // Section III: N_j = N_max * X_j / X_max.
  const auto quotas =
      balance_quotas({cap(1e9, 1000), cap(5e8, 1000), cap(25e7, 1000)});
  ASSERT_EQ(quotas.size(), 3u);
  EXPECT_NEAR(quotas[0].to_double() / quotas[1].to_double(), 2.0, 0.01);
  EXPECT_NEAR(quotas[0].to_double() / quotas[2].to_double(), 4.0, 0.01);
}

TEST(Balancer, EveryQuotaMeetsItsMinBatch) {
  // N_max = max_j (n_j * X_max / X_j) guarantees N_j >= n_j even when
  // a slow node needs a large batch.
  const auto quotas = balance_quotas(
      {cap(1e9, 1000), cap(1e7, 500000), cap(5e8, 200)});
  EXPECT_GE(quotas[0], u128(1000));
  EXPECT_GE(quotas[1], u128(500000));
  EXPECT_GE(quotas[2], u128(200));
}

TEST(Balancer, QuotaTimesAreEqualAcrossMembers) {
  // The whole point: every member exhausts its quota in the same time.
  const std::vector<Capability> members = {
      cap(1.8e9, 4096), cap(3.5e8, 100000), cap(7.4e7, 8192)};
  const auto quotas = balance_quotas(members);
  const double t0 = quotas[0].to_double() / members[0].throughput;
  for (std::size_t j = 1; j < members.size(); ++j) {
    const double tj = quotas[j].to_double() / members[j].throughput;
    EXPECT_NEAR(tj / t0, 1.0, 0.01) << "member " << j;
  }
}

TEST(Balancer, SingleMemberGetsItsMinBatch) {
  const auto quotas = balance_quotas({cap(1e9, 12345)});
  ASSERT_EQ(quotas.size(), 1u);
  EXPECT_EQ(quotas[0], u128(12345));
}

TEST(Balancer, EqualMembersGetEqualQuotas) {
  const auto quotas =
      balance_quotas({cap(5e8, 1000), cap(5e8, 1000), cap(5e8, 1000)});
  EXPECT_EQ(quotas[0], quotas[1]);
  EXPECT_EQ(quotas[1], quotas[2]);
}

TEST(Balancer, RejectsDegenerateInput) {
  EXPECT_THROW(balance_quotas({}), InvalidArgument);
  EXPECT_THROW(balance_quotas({cap(0, 1000)}), InvalidArgument);
}

TEST(Aggregate, SumsThroughputAndTheoretical) {
  // Section III: a subtree reports X = ΣX_j and N_node = ΣN_j.
  const std::vector<Capability> members = {cap(1e9, 1000, 1.2e9, 2),
                                           cap(5e8, 2000, 6e8, 1)};
  const Capability agg = aggregate_capability(members);
  EXPECT_DOUBLE_EQ(agg.throughput, 1.5e9);
  EXPECT_DOUBLE_EQ(agg.theoretical_sum, 1.8e9);
  EXPECT_EQ(agg.device_count, 3u);

  const auto quotas = balance_quotas(members);
  u128 sum(0);
  for (const auto& q : quotas) sum += q;
  EXPECT_EQ(agg.min_batch, sum);
}

TEST(Aggregate, NestedAggregationIsConsistent) {
  // Aggregating {A, aggregate({B, C})} preserves total throughput.
  const Capability a = cap(3.5e8, 5000);
  const Capability b = cap(1.8e9, 4000);
  const Capability c = cap(5e8, 3000);
  const Capability bc = aggregate_capability({b, c});
  const Capability total = aggregate_capability({a, bc});
  EXPECT_DOUBLE_EQ(total.throughput, 3.5e8 + 1.8e9 + 5e8);
}

}  // namespace
}  // namespace gks::dispatch
