#include "dispatch/cost.h"

#include <gtest/gtest.h>

namespace gks::dispatch {
namespace {

RoundCosts round_of(double scatter, double smin, double smax,
                    double gather) {
  RoundCosts r;
  r.scatter_s = scatter;
  r.search_min_s = smin;
  r.search_max_s = smax;
  r.gather_s = gather;
  r.members = 3;
  return r;
}

TEST(RoundCosts, TotalAndImbalance) {
  const RoundCosts r = round_of(0.1, 8.0, 10.0, 0.4);
  EXPECT_DOUBLE_EQ(r.total_s(), 10.5);
  EXPECT_DOUBLE_EQ(r.imbalance(), 0.2);
}

TEST(RoundCosts, PerfectBalanceIsZeroImbalance) {
  EXPECT_DOUBLE_EQ(round_of(0, 5, 5, 0).imbalance(), 0.0);
}

TEST(RoundCosts, EmptySearchWindowIsZeroImbalance) {
  EXPECT_DOUBLE_EQ(round_of(0.1, 0, 0, 0.1).imbalance(), 0.0);
}

TEST(CostLedger, MeanOverheadFraction) {
  CostLedger ledger;
  // overhead (scatter+gather)/total: (0.5+0.5)/10 = 0.1 and
  // (1+1)/12 = 1/6.
  ledger.record(round_of(0.5, 9, 9, 0.5));
  ledger.record(round_of(1.0, 10, 10, 1.0));
  EXPECT_NEAR(ledger.mean_overhead_fraction(), (0.1 + 1.0 / 6.0) / 2, 1e-9);
}

TEST(CostLedger, MeanImbalance) {
  CostLedger ledger;
  ledger.record(round_of(0, 5, 10, 0));   // 0.5
  ledger.record(round_of(0, 10, 10, 0));  // 0.0
  EXPECT_DOUBLE_EQ(ledger.mean_imbalance(), 0.25);
}

TEST(CostLedger, EmptyLedgerIsWellDefined) {
  const CostLedger ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_DOUBLE_EQ(ledger.mean_overhead_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.mean_imbalance(), 0.0);
  EXPECT_NE(ledger.summary().find("rounds=0"), std::string::npos);
}

TEST(CostLedger, SummaryMentionsCounts) {
  CostLedger ledger;
  ledger.record(round_of(0.1, 1, 2, 0.1));
  const std::string s = ledger.summary();
  EXPECT_NE(s.find("rounds=1"), std::string::npos);
  EXPECT_NE(s.find("mean_overhead"), std::string::npos);
}

}  // namespace
}  // namespace gks::dispatch
