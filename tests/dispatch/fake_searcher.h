#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "dispatch/search.h"

namespace gks::dispatch::testing {

/// Deterministic stand-in for a device: linear scan cost plus a fixed
/// per-scan overhead (which is what the tuning step must amortize),
/// and analytic matches against planted identifiers.
class FakeSearcher final : public IntervalSearcher {
 public:
  FakeSearcher(std::string name, double peak_keys_per_s,
               double fixed_overhead_s = 1e-3,
               std::vector<u128> planted = {})
      : name_(std::move(name)),
        peak_(peak_keys_per_s),
        overhead_(fixed_overhead_s),
        planted_(std::move(planted)) {}

  ScanOutcome scan(const keyspace::Interval& interval) override {
    ++scans_;
    ScanOutcome out;
    out.tested = interval.size();
    out.busy_virtual_s =
        interval.size().to_double() / peak_ + overhead_;
    for (const u128& id : planted_) {
      if (interval.contains(id)) {
        out.found.push_back({id, "planted-" + id.to_string()});
      }
    }
    return out;
  }

  bool is_simulated() const override { return true; }
  double theoretical_throughput() const override { return peak_; }
  std::string description() const override { return name_; }

  int scans() const { return scans_.load(); }

 private:
  std::string name_;
  double peak_;
  double overhead_;
  std::vector<u128> planted_;
  std::atomic<int> scans_{0};
};

}  // namespace gks::dispatch::testing
