#include "dispatch/perf_model.h"

#include <gtest/gtest.h>

#include "fake_searcher.h"
#include "support/error.h"

namespace gks::dispatch {
namespace {

using testing::FakeSearcher;

TEST(PerfModel, FitRecoversExactAffineCost) {
  // t = n/1e9 + 2ms, sampled exactly.
  std::vector<std::pair<u128, double>> samples;
  for (const std::uint64_t n : {1000ull, 100000ull, 10000000ull}) {
    samples.emplace_back(u128(n), n / 1e9 + 2e-3);
  }
  const PerfModel model = PerfModel::fit(samples);
  EXPECT_NEAR(model.peak_throughput(), 1e9, 1e6);
  EXPECT_NEAR(model.fixed_overhead_s(), 2e-3, 1e-5);
}

TEST(PerfModel, PredictionsMatchTheAffineForm) {
  const PerfModel model(1e9, 1e-3);
  EXPECT_NEAR(model.predicted_seconds(u128(1000000)), 2e-3, 1e-9);
  EXPECT_NEAR(model.predicted_efficiency(u128(1000000)), 0.5, 1e-9);
  EXPECT_NEAR(model.predicted_efficiency(u128(9000000)), 0.9, 1e-9);
}

TEST(PerfModel, MinBatchIsClosedForm) {
  // n_min(e) = e/(1-e) * X*c: for e=0.9, X=1e9, c=1ms -> 9e6.
  const PerfModel model(1e9, 1e-3);
  EXPECT_NEAR(model.min_batch_for(0.9).to_double(), 9e6, 1.0);
  EXPECT_NEAR(model.min_batch_for(0.5).to_double(), 1e6, 1.0);
  // And the prediction at that batch hits the target exactly.
  EXPECT_NEAR(model.predicted_efficiency(model.min_batch_for(0.95)), 0.95,
              1e-6);
}

TEST(PerfModel, CalibrationMatchesLiveTuning) {
  // The paper's "skip the tuning step": a model calibrated offline must
  // produce a capability equivalent to what tune_searcher measures.
  FakeSearcher device("dev", 2e9, 5e-4);
  const keyspace::Interval scratch(u128(0), u128(1ull << 40));

  const PerfModel model = PerfModel::calibrate(device, scratch);
  EXPECT_NEAR(model.peak_throughput(), 2e9, 0.05e9);
  EXPECT_NEAR(model.fixed_overhead_s(), 5e-4, 5e-5);

  const Capability from_model = model.to_capability(0.9);
  const Capability from_tuning = tune_searcher(device, scratch);
  EXPECT_NEAR(from_model.throughput / from_tuning.throughput, 1.0, 0.1);
  // Both batches reach >= 90% efficiency on the true cost curve.
  const auto true_eff = [](const u128& n) {
    const double work = n.to_double() / 2e9;
    return work / (work + 5e-4);
  };
  EXPECT_GE(true_eff(from_model.min_batch), 0.9);
  EXPECT_GE(true_eff(from_tuning.min_batch), 0.88);
}

TEST(PerfModel, SerializeParseRoundTrip) {
  const PerfModel model(1.8412e9, 2.5e-4);
  const PerfModel back = PerfModel::parse(model.serialize());
  EXPECT_NEAR(back.peak_throughput(), model.peak_throughput(), 1.0);
  EXPECT_NEAR(back.fixed_overhead_s(), model.fixed_overhead_s(), 1e-12);
}

TEST(PerfModel, ParseRejectsGarbage) {
  EXPECT_THROW(PerfModel::parse("not a model"), InvalidArgument);
  EXPECT_THROW(PerfModel::parse("X=1e9"), InvalidArgument);
}

TEST(PerfModel, FitRejectsDegenerateSamples) {
  EXPECT_THROW(PerfModel::fit({}), InvalidArgument);
  EXPECT_THROW(PerfModel::fit({{u128(10), 1.0}}), InvalidArgument);
  // Same batch size twice: no slope.
  EXPECT_THROW(PerfModel::fit({{u128(10), 1.0}, {u128(10), 1.1}}),
               InvalidArgument);
}

TEST(PerfModel, InvalidParametersRejected) {
  EXPECT_THROW(PerfModel(0, 1e-3), InvalidArgument);
  EXPECT_THROW(PerfModel(1e9, -1.0), InvalidArgument);
  const PerfModel model(1e9, 1e-3);
  EXPECT_THROW(model.min_batch_for(0.0), InvalidArgument);
  EXPECT_THROW(model.min_batch_for(1.0), InvalidArgument);
}

TEST(PerfModel, ZeroOverheadDeviceNeedsMinimalBatch) {
  const PerfModel model(1e9, 0.0);
  EXPECT_EQ(model.min_batch_for(0.99), u128(1));
  EXPECT_NEAR(model.predicted_efficiency(u128(1)), 1.0, 1e-9);
}

}  // namespace
}  // namespace gks::dispatch
