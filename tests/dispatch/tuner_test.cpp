#include "dispatch/tuner.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "fake_searcher.h"

namespace gks::dispatch {
namespace {

using testing::FakeSearcher;

keyspace::Interval scratch(std::uint64_t n = 1ull << 40) {
  return keyspace::Interval(u128(0), u128(n));
}

TEST(Tuner, RecoversThePeakThroughput) {
  FakeSearcher dev("dev", 1e9, /*overhead=*/1e-3);
  const Capability cap = tune_searcher(dev, scratch());
  EXPECT_NEAR(cap.throughput, 1e9, 0.05e9);
  EXPECT_EQ(cap.device_count, 1u);
  EXPECT_DOUBLE_EQ(cap.theoretical_sum, 1e9);
}

TEST(Tuner, MinBatchAmortizesTheFixedOverhead) {
  // With peak 1e9 keys/s and 1 ms fixed overhead, 90% efficiency needs
  // a batch around 9e6 keys: eff = n / (n + peak*overhead).
  FakeSearcher dev("dev", 1e9, 1e-3);
  TuneConfig config;
  config.target_efficiency = 0.9;
  const Capability cap = tune_searcher(dev, scratch(), config);
  const double n = cap.min_batch.to_double();
  const double efficiency = n / (n + 1e9 * 1e-3);
  EXPECT_GE(efficiency, 0.9);
  // But not absurdly larger than needed (one growth factor of slack).
  EXPECT_LT(n, 9e6 * 6);
}

TEST(Tuner, FasterDevicesNeedLargerBatches) {
  FakeSearcher slow("slow", 1e7, 1e-3);
  FakeSearcher fast("fast", 1e9, 1e-3);
  const Capability a = tune_searcher(slow, scratch());
  const Capability b = tune_searcher(fast, scratch());
  EXPECT_LT(a.min_batch, b.min_batch);
}

TEST(Tuner, ZeroOverheadDeviceIsEfficientImmediately) {
  FakeSearcher dev("dev", 1e8, /*overhead=*/1e-12);
  TuneConfig config;
  config.start_batch = u128(1000);
  const Capability cap = tune_searcher(dev, scratch(), config);
  EXPECT_EQ(cap.min_batch, u128(1000));
}

TEST(Tuner, ScratchSmallerThanProbeStillWorks) {
  FakeSearcher dev("dev", 1e8, 1e-4);
  const Capability cap = tune_searcher(dev, scratch(2000));
  EXPECT_GT(cap.throughput, 0);
  EXPECT_LE(cap.min_batch, u128(2000));
}

TEST(Tuner, InvalidConfigRejected) {
  FakeSearcher dev("dev", 1e8);
  TuneConfig bad;
  bad.target_efficiency = 0;
  EXPECT_THROW(tune_searcher(dev, scratch(), bad), InvalidArgument);
  TuneConfig zero_batch;
  zero_batch.start_batch = u128(0);
  EXPECT_THROW(tune_searcher(dev, scratch(), zero_batch), InvalidArgument);
  TuneConfig growth;
  growth.growth = 1;
  EXPECT_THROW(tune_searcher(dev, scratch(), growth), InvalidArgument);
}

TEST(Tuner, ProbeCountIsBounded) {
  FakeSearcher dev("dev", 1e12, 10.0);  // pathological overhead
  TuneConfig config;
  config.max_probes = 5;
  (void)tune_searcher(dev, scratch(), config);
  EXPECT_LE(dev.scans(), 5);
}

}  // namespace
}  // namespace gks::dispatch
