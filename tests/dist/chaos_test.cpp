#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/fault_transport.h"
#include "dist/simnet_transport.h"
#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "hash/md5.h"
#include "keyspace/keyspace_generator.h"
#include "service/job_manager.h"
#include "simnet/network.h"

namespace gks::dist {
namespace {

std::string key_at(const service::JobSpec& spec, const u128& id) {
  const keyspace::KeyspaceGenerator gen(
      keyspace::KeyCodec(spec.request.charset,
                         keyspace::DigitOrder::kPrefixFastest),
      spec.request.min_length, spec.request.max_length);
  std::string key;
  gen.generate(id, key);
  return key;
}

service::JobSpec planted_job(const std::string& name, const std::string& key,
                             unsigned min_length, unsigned max_length) {
  service::JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = min_length;
  spec.request.max_length = max_length;
  return spec;
}

// ---------------------------------------------------------------------------
// backoff_delay: the pure reconnect-backoff policy.

TEST(Backoff, GrowsExponentiallyUpToTheCapWithBoundedJitter) {
  WorkerConfig cfg;
  cfg.reconnect_backoff_s = 0.5;
  cfg.reconnect_backoff_max_s = 4.0;
  SplitMix64 rng(7);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double base =
        std::min(0.5 * static_cast<double>(1ULL << attempt), 4.0);
    const double d = backoff_delay(attempt, cfg, rng);
    EXPECT_GE(d, 0.5 * base) << "attempt " << attempt;
    EXPECT_LT(d, 1.5 * base) << "attempt " << attempt;
  }
}

TEST(Backoff, IsDeterministicFromTheSeed) {
  WorkerConfig cfg;
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_DOUBLE_EQ(backoff_delay(attempt, cfg, a),
                     backoff_delay(attempt, cfg, b));
  }
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport in isolation, over simnet.

struct PipeResult {
  FaultStats stats;
  int received = 0;
};

/// One sender (faulted) pushes `count` messages to one receiver (clean)
/// over simnet; returns the injector's stats and the delivery count.
PipeResult run_pipe(const FaultPlan& plan, std::uint64_t seed, int count) {
  simnet::Network net;  // default fast virtual time, fixed simnet seed
  const auto an = net.add_node("a");
  const auto bn = net.add_node("b");
  net.connect(an, bn);
  SimnetTransport ta(net, an);
  SimnetTransport tb(net, bn);
  FaultInjectingTransport faulty(tb, plan, seed);

  auto listener = ta.listen("a");
  PipeResult result;
  std::thread server([&] {
    auto conn = listener->accept(/*timeout_s=*/60.0);
    if (!conn) return;
    try {
      while (conn->recv(/*timeout_s=*/30.0).has_value()) ++result.received;
    } catch (const TransportError&) {
    }
  });

  auto conn = faulty.connect("a", /*timeout_s=*/60.0);
  for (int i = 0; i < count; ++i) {
    try {
      conn->send("message-" + std::to_string(i));
    } catch (const TransportError&) {
      break;  // injected reset; the remainder of the batch is lost
    }
  }
  server.join();
  conn->close();
  listener->close();
  result.stats = faulty.stats();
  return result;
}

TEST(FaultTransport, FaultScheduleIsDeterministicFromTheSeed) {
  FaultPlan plan;
  plan.send.drop = 0.3;
  plan.send.corrupt = 0.2;
  plan.send.duplicate = 0.2;
  const PipeResult a = run_pipe(plan, /*seed=*/1234, 200);
  const PipeResult b = run_pipe(plan, /*seed=*/1234, 200);
  EXPECT_EQ(a.stats.sent, b.stats.sent);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.corrupted, b.stats.corrupted);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  // The plan actually fired: a chaos run that injects nothing would
  // vacuously "pass" every assertion downstream.
  EXPECT_GT(a.stats.dropped, 0u);
  EXPECT_GT(a.stats.corrupted, 0u);
  EXPECT_GT(a.stats.duplicated, 0u);
  // Everything that passed the injector (plus duplicates) arrives —
  // the faults live above a lossless link.
  EXPECT_EQ(static_cast<std::uint64_t>(a.received),
            a.stats.sent + a.stats.duplicated);
  EXPECT_EQ(a.received, b.received);
}

TEST(FaultTransport, PartitionBlackholesEverything) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{0.0, 3600.0, ""});  // sever all, always
  const PipeResult r = run_pipe(plan, /*seed=*/9, 50);
  EXPECT_EQ(r.stats.blackholed, 50u);
  EXPECT_EQ(r.stats.sent, 0u);
  EXPECT_EQ(r.received, 0);
}

TEST(FaultTransport, FaultsStayDisarmedUntilArmAfter) {
  FaultPlan plan;
  plan.send.drop = 1.0;        // would drop everything …
  plan.arm_after_s = 3600.0;   // … but never arms within this test
  const PipeResult r = run_pipe(plan, /*seed=*/9, 50);
  EXPECT_EQ(r.stats.dropped, 0u);
  EXPECT_EQ(r.received, 50);
}

// ---------------------------------------------------------------------------
// The seeded chaos matrix: full coordinator/worker dispatch over simnet
// with a fault plan in the workers' path, asserting exactly-once
// completion. Every case logs its seed; export GKS_CHAOS_SEED to
// override and replay a failure.

struct ChaosCase {
  const char* name;
  std::uint64_t seed;
  FaultSpec send;
  FaultSpec recv;
  std::vector<Partition> partitions;
};

FaultSpec drop_spec(double p) {
  FaultSpec f;
  f.drop = p;
  return f;
}

FaultSpec mixed_spec() {
  FaultSpec f;
  f.drop = 0.05;
  f.corrupt = 0.03;
  f.duplicate = 0.10;
  f.truncate = 0.02;
  f.reset = 0.01;
  f.delay_p = 0.10;
  f.delay_s = 0.02;
  return f;
}

FaultSpec one_fault(double FaultSpec::*knob, double p) {
  FaultSpec f;
  f.*knob = p;
  return f;
}

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosMatrix, ExactlyOnceCompletionUnderInjectedFaults) {
  const ChaosCase& c = GetParam();
  std::uint64_t seed = c.seed;
  if (const char* env = std::getenv("GKS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  // The replay handle: a failing run is reproduced by re-running this
  // one case with GKS_CHAOS_SEED set to the printed seed.
  std::fprintf(stderr, "[chaos] case=%s seed=%llu\n", c.name,
               static_cast<unsigned long long>(seed));

  simnet::Network net(/*time_scale=*/1.0);
  const auto cn = net.add_node("coordinator");
  const auto w1n = net.add_node("w1");
  const auto w2n = net.add_node("w2");
  net.connect(cn, w1n);
  net.connect(cn, w2n);

  // Planted at the very end of the id space: completion requires the
  // whole space swept, several leases' worth, through the weather.
  service::JobSpec spec = planted_job("alpha", "placeholder", 4, 4);
  const u128 space = keyspace::space_size(spec.request.charset.size(), 4, 4);
  const std::string key = key_at(spec, space - u128(1));
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};

  const std::string journal =
      (std::filesystem::temp_directory_path() /
       ("gks_chaos_" + std::string(c.name) + "_" + std::to_string(seed) +
        ".jsonl"))
          .string();
  std::filesystem::remove(journal);

  {
    service::JobServiceConfig scfg;
    scfg.local_scan = false;
    scfg.journal_path = journal;
    service::JobManager manager(scfg);
    const auto id = manager.submit(spec);

    SimnetTransport ct(net, cn);
    SimnetTransport w1t(net, w1n);
    SimnetTransport w2t(net, w2n);
    FaultPlan plan;
    plan.send = c.send;
    plan.recv = c.recv;
    plan.partitions = c.partitions;
    FaultInjectingTransport f1(w1t, plan, seed);
    FaultInjectingTransport f2(w2t, plan, seed ^ 0xabcdef);

    CoordinatorConfig ccfg;
    ccfg.lease_s = 1.0;
    ccfg.heartbeat_s = 0.25;
    ccfg.idle_retry_s = 0.05;
    ccfg.reap_interval_s = 0.05;
    // Small leases make the run protocol-heavy (~28 grant/retire round
    // trips): the faults hit the wire protocol, not the scan loop.
    ccfg.max_lease = u128(1) << 14;
    ccfg.session_timeout_s = 2.0;  // reap abandoned sessions quickly
    ccfg.quarantine_s = 0.5;       // flaky workers sit out briefly
    Coordinator coordinator(manager, ct, ccfg);
    coordinator.start("coordinator");

    WorkerConfig wcfg;
    wcfg.threads = 2;
    wcfg.recv_timeout_s = 0.3;       // notice injected losses quickly
    wcfg.reconnect_attempts = 10000; // chaos burns reconnects; don't quit
    wcfg.reconnect_backoff_s = 0.02;
    wcfg.reconnect_backoff_max_s = 0.3;
    wcfg.backoff_seed = seed + 1;
    wcfg.name = "w1";
    WorkerDaemon w1(f1, wcfg);
    wcfg.name = "w2";
    wcfg.backoff_seed = seed + 2;
    WorkerDaemon w2(f2, wcfg);
    std::thread t1([&] { w1.run("coordinator"); });
    std::thread t2([&] { w2.run("coordinator"); });

    ASSERT_TRUE(manager.wait(id, 180.0))
        << "chaos case " << c.name << " seed " << seed
        << " did not complete";
    w1.stop();
    w2.stop();
    t1.join();
    t2.join();
    coordinator.stop();

    const service::JobSnapshot s = manager.status(id);
    EXPECT_EQ(s.state, service::JobState::kDone);
    EXPECT_EQ(s.targets_found, 1u);  // exactly once, despite replays
    ASSERT_EQ(s.found.size(), 1u);
    EXPECT_EQ(s.found[0].second, key);
  }

  // The journal written under chaos replays clean: coverage complete,
  // no interval journaled twice (journaled == covered is the
  // exactly-once witness), the key found exactly once, and nothing
  // quarantined — the weather never reached the disk.
  service::JobStore::LoadReport report;
  const auto recovered = service::JobStore::load(journal, &report);
  EXPECT_EQ(report.quarantined, 0u);
  ASSERT_EQ(recovered.size(), 1u);
  const auto& rec = recovered[0];
  // The key sits on the space's last id, so coverage must have reached
  // the end (completion is all-targets-found, not full coverage — the
  // re-dispatch of expired intervals may still have gaps behind it).
  EXPECT_GT(rec.scanned.covered(), u128(0));
  EXPECT_EQ(rec.journaled, rec.scanned.covered());
  ASSERT_EQ(rec.found.size(), 1u);
  EXPECT_EQ(rec.found[0].second, key);
  ASSERT_TRUE(rec.final_state.has_value());
  EXPECT_EQ(*rec.final_state, service::JobState::kDone);

  std::filesystem::remove(journal);
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, ChaosMatrix,
    ::testing::Values(
        ChaosCase{"drop", 101, drop_spec(0.10), drop_spec(0.10), {}},
        ChaosCase{"drop_alt_seed", 31337, drop_spec(0.10), drop_spec(0.10),
                  {}},
        ChaosCase{"corrupt", 202, one_fault(&FaultSpec::corrupt, 0.08),
                  one_fault(&FaultSpec::corrupt, 0.05), {}},
        ChaosCase{"duplicate", 303, one_fault(&FaultSpec::duplicate, 0.20),
                  one_fault(&FaultSpec::duplicate, 0.20), {}},
        ChaosCase{"truncate", 404, one_fault(&FaultSpec::truncate, 0.05),
                  one_fault(&FaultSpec::truncate, 0.03), {}},
        ChaosCase{"reset", 505, one_fault(&FaultSpec::reset, 0.02),
                  one_fault(&FaultSpec::reset, 0.01), {}},
        ChaosCase{"partition", 606, FaultSpec{}, FaultSpec{},
                  {Partition{0.0, 0.8, ""}}},
        ChaosCase{"kitchen_sink", 707, mixed_spec(), mixed_spec(), {}},
        ChaosCase{"kitchen_sink_alt_seed", 4242, mixed_spec(), mixed_spec(),
                  {}}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Flaky link, simnet-native: 40% loss on the coordinator↔worker path
// until the fault has demonstrably bitten, then healed; the sweep must
// still complete with the key found exactly once.

TEST(ChaosLink, LossyLinkHealsAndTheSweepCompletes) {
  simnet::Network net(/*time_scale=*/1.0);
  const auto cn = net.add_node("coordinator");
  const auto wn = net.add_node("w1");
  net.connect(cn, wn);

  service::JobSpec spec = planted_job("alpha", "placeholder", 4, 4);
  const u128 space = keyspace::space_size(spec.request.charset.size(), 4, 4);
  const std::string key = key_at(spec, space - u128(1));
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  service::JobServiceConfig scfg;
  scfg.local_scan = false;
  service::JobManager manager(scfg);
  const auto id = manager.submit(spec);

  SimnetTransport ct(net, cn);
  SimnetTransport wt(net, wn);
  CoordinatorConfig ccfg;
  ccfg.lease_s = 1.0;
  ccfg.heartbeat_s = 0.25;
  ccfg.idle_retry_s = 0.05;
  ccfg.reap_interval_s = 0.05;
  ccfg.max_lease = u128(1) << 16;
  Coordinator coordinator(manager, ct, ccfg);
  coordinator.start("coordinator");

  WorkerConfig wcfg;
  wcfg.name = "w1";
  wcfg.threads = 2;
  wcfg.recv_timeout_s = 0.75;
  wcfg.reconnect_attempts = 10000;
  wcfg.reconnect_backoff_s = 0.02;
  wcfg.reconnect_backoff_max_s = 0.3;
  WorkerDaemon worker(wt, wcfg);
  std::thread t([&] { worker.run("coordinator"); });

  // Let the sweep start, then degrade the link to 40% message loss.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (manager.status(id).scanned == u128(0) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(manager.status(id).scanned, u128(0));
  }
  net.set_link_loss(cn, wn, 0.4);

  // Keep the weather up until the dispatch tier demonstrably felt it
  // (a session died and was reopened), then heal.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (coordinator.stats().sessions_opened < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(coordinator.stats().sessions_opened, 2u);
  }
  net.set_link_loss(cn, wn, 0.0);

  ASSERT_TRUE(manager.wait(id, 180.0));
  worker.stop();
  t.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, key);
  EXPECT_GE(worker.stats().reconnects, 1u);  // the loss actually bit
}

// ---------------------------------------------------------------------------
// Verified founds + health lifecycle, end to end: a lying client
// reports forged preimages, earns strikes into quarantine, and its
// bogus results never reach the journal or another worker; an honest
// worker still completes the job.

TEST(ChaosHealth, ForgedFoundsAreStrikedQuarantinedAndNeverJournaled) {
  const std::string journal =
      (std::filesystem::temp_directory_path() / "gks_chaos_forged.jsonl")
          .string();
  std::filesystem::remove(journal);

  TcpTransport transport;
  {
    service::JobServiceConfig scfg;
    scfg.local_scan = false;
    scfg.journal_path = journal;
    service::JobManager manager(scfg);
    const auto id = manager.submit(planted_job("alpha", "dog", 1, 4));
    const std::string target_hex = hash::Md5::digest("dog").to_hex();

    CoordinatorConfig ccfg;
    ccfg.lease_s = 1.0;
    ccfg.heartbeat_s = 0.25;
    ccfg.idle_retry_s = 0.05;
    ccfg.reap_interval_s = 0.05;
    ccfg.max_lease = u128(1) << 16;
    ccfg.quarantine_s = 30.0;  // long enough to observe the state
    Coordinator coordinator(manager, transport, ccfg);
    coordinator.start("127.0.0.1:0");

    // The liar: a raw protocol client that leases honestly but reports
    // keys that do not hash to the digest it claims.
    {
      auto conn = transport.connect(coordinator.address(), 5.0);
      HelloMsg hello;
      hello.name = "liar";
      conn->send(encode(hello));
      auto welcome = conn->recv(5.0);
      ASSERT_TRUE(welcome.has_value());
      ASSERT_EQ(message_type(json::parse(*welcome)), "welcome");

      conn->send(encode(LeaseRequestMsg{}));
      auto reply = conn->recv(5.0);
      ASSERT_TRUE(reply.has_value());
      const json::Value lease_v = json::parse(*reply);
      ASSERT_EQ(message_type(lease_v), "lease");
      const LeaseGrantWire grant = lease_grant_from_json(lease_v);

      // Three forged reports at strike weight 2.0 cross the default
      // quarantine threshold of 6.0.
      for (int i = 0; i < 3; ++i) {
        FoundMsg forged;
        forged.lease_id = grant.lease_id;
        forged.digest = target_hex;
        forged.key = "bogus" + std::to_string(i);
        conn->send(encode(forged));
        auto ack_body = conn->recv(5.0);
        ASSERT_TRUE(ack_body.has_value());
        const AckMsg ack = ack_from_json(json::parse(*ack_body));
        EXPECT_FALSE(ack.ok);
        EXPECT_NE(ack.error.find("verification"), std::string::npos);
      }

      // The manager never counted the lies.
      EXPECT_EQ(manager.status(id).targets_found, 0u);

      // Quarantined: the next lease request draws idle, not work.
      conn->send(encode(LeaseRequestMsg{}));
      auto idle_body = conn->recv(5.0);
      ASSERT_TRUE(idle_body.has_value());
      EXPECT_EQ(message_type(json::parse(*idle_body)), "idle");

      // The health ledger tells the story, and the status verb carries
      // it to clients.
      conn->send(encode(StatusMsg{}));
      auto status_body = conn->recv(5.0);
      ASSERT_TRUE(status_body.has_value());
      const StatusRespMsg status =
          status_resp_from_json(json::parse(*status_body));
      bool saw_liar = false;
      for (const WorkerHealthWire& w : status.workers) {
        if (w.name != "liar") continue;
        saw_liar = true;
        EXPECT_EQ(w.state, "quarantined");
        EXPECT_EQ(w.forged_founds, 3u);
        EXPECT_GE(w.score, 6.0);
      }
      EXPECT_TRUE(saw_liar);
      conn->send(encode(ByeMsg{}));
      conn->recv(5.0);
      conn->close();
    }

    EXPECT_EQ(coordinator.stats().forged_founds, 3u);
    EXPECT_GE(coordinator.stats().workers_quarantined, 1u);

    // An honest worker is untouched by the liar's history and finishes
    // the job with the real key.
    WorkerConfig wcfg;
    wcfg.name = "honest";
    wcfg.threads = 2;
    WorkerDaemon worker(transport, wcfg);
    std::thread t([&] { worker.run(coordinator.address()); });
    ASSERT_TRUE(manager.wait(id, 60.0));
    worker.stop();
    t.join();
    coordinator.stop();

    const service::JobSnapshot s = manager.status(id);
    EXPECT_EQ(s.state, service::JobState::kDone);
    EXPECT_EQ(s.targets_found, 1u);
    ASSERT_EQ(s.found.size(), 1u);
    EXPECT_EQ(s.found[0].second, "dog");
  }

  // The forged keys never reached the journal.
  std::ifstream in(journal);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str().find("bogus"), std::string::npos);
  EXPECT_NE(contents.str().find("dog"), std::string::npos);
  std::filesystem::remove(journal);
}

// An ejected worker's hello is refused until probation passes; it then
// re-enters degraded rather than clean.
TEST(ChaosHealth, EjectedWorkerIsRefusedUntilProbation) {
  service::JobServiceConfig scfg;
  scfg.local_scan = false;
  service::JobManager manager(scfg);
  manager.submit(planted_job("alpha", "dog", 1, 4));
  const std::string target_hex = hash::Md5::digest("dog").to_hex();

  TcpTransport transport;
  CoordinatorConfig ccfg;
  ccfg.lease_s = 1.0;
  ccfg.heartbeat_s = 0.25;
  ccfg.idle_retry_s = 0.05;
  ccfg.reap_interval_s = 0.05;
  ccfg.quarantine_s = 0.3;  // probation = 0.6s keeps the test quick
  Coordinator coordinator(manager, transport, ccfg);
  coordinator.start("127.0.0.1:0");

  // Five forged founds at weight 2.0 push straight past the default
  // ejection threshold of 10.0.
  {
    auto conn = transport.connect(coordinator.address(), 5.0);
    HelloMsg hello;
    hello.name = "liar";
    conn->send(encode(hello));
    ASSERT_TRUE(conn->recv(5.0).has_value());
    conn->send(encode(LeaseRequestMsg{}));
    auto reply = conn->recv(5.0);
    ASSERT_TRUE(reply.has_value());
    const LeaseGrantWire grant =
        lease_grant_from_json(json::parse(*reply));
    for (int i = 0; i < 5; ++i) {
      FoundMsg forged;
      forged.lease_id = grant.lease_id;
      forged.digest = target_hex;
      forged.key = "nope" + std::to_string(i);
      conn->send(encode(forged));
      ASSERT_TRUE(conn->recv(5.0).has_value());
    }
    conn->close();
  }
  ASSERT_GE(coordinator.stats().workers_ejected, 1u);

  // Inside probation: hello is refused outright.
  {
    auto conn = transport.connect(coordinator.address(), 5.0);
    HelloMsg hello;
    hello.name = "liar";
    conn->send(encode(hello));
    auto reply = conn->recv(5.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(message_type(json::parse(*reply)), "error");
    conn->close();
  }

  // After probation: readmitted, but degraded — one session's good
  // behavior away from ok, one offence away from quarantine.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  {
    auto conn = transport.connect(coordinator.address(), 5.0);
    HelloMsg hello;
    hello.name = "liar";
    conn->send(encode(hello));
    auto reply = conn->recv(5.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(message_type(json::parse(*reply)), "welcome");
    conn->send(encode(ByeMsg{}));
    conn->recv(5.0);
    conn->close();
  }
  bool saw = false;
  for (const WorkerHealthWire& w : coordinator.worker_health()) {
    if (w.name != "liar") continue;
    saw = true;
    EXPECT_EQ(w.state, "degraded");
  }
  EXPECT_TRUE(saw);
  coordinator.stop();
}

}  // namespace
}  // namespace gks::dist
