#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/simnet_transport.h"
#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "hash/md5.h"
#include "keyspace/keyspace_generator.h"
#include "service/job_manager.h"
#include "simnet/network.h"

namespace gks::dist {
namespace {

/// The key the sweep enumerates at dispatch id `id` — the same
/// prefix-fastest enumeration every backend uses, so a test can plant
/// a target at a chosen position of the id space (e.g. inside the
/// interval a particular lease will cover).
std::string key_at(const service::JobSpec& spec, const u128& id) {
  const keyspace::KeyspaceGenerator gen(
      keyspace::KeyCodec(spec.request.charset,
                         keyspace::DigitOrder::kPrefixFastest),
      spec.request.min_length, spec.request.max_length);
  std::string key;
  gen.generate(id, key);
  return key;
}

service::JobSpec planted_job(const std::string& name, const std::string& key,
                             unsigned min_length, unsigned max_length) {
  service::JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = min_length;
  spec.request.max_length = max_length;
  return spec;
}

service::JobServiceConfig coordinator_only() {
  service::JobServiceConfig config;
  config.local_scan = false;
  return config;
}

/// Tight cadences so fault-injection tests spend milliseconds, not
/// minutes, waiting for deadlines.
CoordinatorConfig fast_coordinator() {
  CoordinatorConfig config;
  config.lease_s = 1.0;
  config.heartbeat_s = 0.25;
  config.idle_retry_s = 0.05;
  config.reap_interval_s = 0.05;
  config.max_lease = u128(1) << 20;  // force several leases per job
  return config;
}

bool wait_scanned(const service::JobManager& m, service::JobId id,
                  double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (m.status(id).scanned > u128(0)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// The acceptance shape: coordinator + workers connected over real TCP
// inside one process, cracking a planted key end to end.
TEST(DistService, TcpWorkersCrackPlantedKey) {
  service::JobManager manager(coordinator_only());
  const auto id = manager.submit(planted_job("alpha", "abc", 1, 4));

  TcpTransport transport;
  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");

  WorkerConfig wcfg;
  wcfg.threads = 2;
  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    wcfg.name = "w" + std::to_string(i);
    workers.push_back(std::make_unique<WorkerDaemon>(transport, wcfg));
    threads.emplace_back(
        [&, i] { workers[i]->run(coordinator.address()); });
  }

  ASSERT_TRUE(manager.wait(id, 60.0));
  for (auto& w : workers) w->stop();
  for (auto& t : threads) t.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "abc");
  EXPECT_GE(coordinator.stats().leases_granted, 1u);
  // Remote retires report their scan time; the job's busy accounting
  // (which sizes quanta in mixed local+remote mode) must see it.
  EXPECT_GT(s.busy_s, 0.0);
}

// A target added while worker sessions already cached the job's
// sweeper must still be found: the add bumps the job's target
// generation, in-flight leases are reclaimed and re-dispatched, and
// the next grant re-sends the spec so the worker rebuilds its sweeper.
// Without that propagation the worker keeps scanning the old target
// set, its retired intervals are journaled as covered, and the job
// completes "done" with the new key silently missed.
TEST(DistService, LiveTargetAddReachesCachedWorkerSweepers) {
  service::JobManager manager(coordinator_only());
  // The original target sits at the very end of the id space, so the
  // sweep must cover everything — several leases' worth.
  service::JobSpec spec = planted_job("alpha", "placeholder", 4, 4);
  const u128 space = keyspace::space_size(spec.request.charset.size(), 4, 4);
  const std::string first_key = key_at(spec, space - u128(1));
  spec.request.target_hexes = {hash::Md5::digest(first_key).to_hex()};
  const auto id = manager.submit(spec);

  TcpTransport transport;
  CoordinatorConfig ccfg = fast_coordinator();
  ccfg.max_lease = u128(1) << 16;  // ~7 leases over the 457k-id space
  Coordinator coordinator(manager, transport, ccfg);
  coordinator.start("127.0.0.1:0");

  WorkerConfig wcfg;
  wcfg.name = "w";
  wcfg.threads = 2;
  WorkerDaemon worker(transport, wcfg);
  std::thread wt([&] { worker.run(coordinator.address()); });

  // Wait until the worker has retired at least one lease — its session
  // has the spec and a cached sweeper — then grow the target set with
  // a key parked just before the first one, in keyspace the worker has
  // not reached yet.
  ASSERT_TRUE(wait_scanned(manager, id));
  const std::string second_key = key_at(spec, space - u128(2));
  const auto out =
      manager.add_targets(id, {hash::Md5::digest(second_key).to_hex()});
  EXPECT_EQ(out.attached, 1u);

  ASSERT_TRUE(manager.wait(id, 90.0));
  worker.stop();
  wt.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 2u);
  ASSERT_EQ(s.found.size(), 2u);
  std::vector<std::string> keys;
  for (const auto& [digest, key] : s.found) keys.push_back(key);
  EXPECT_NE(std::find(keys.begin(), keys.end(), first_key), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), second_key), keys.end());
}

// Job names are reusable once a job is terminal. A worker session that
// cached the first instance's sweeper (its target long since marked
// found) must rebuild for the resubmitted instance — otherwise every
// lease of the new job scans nothing, retires empty, and the
// grant/retire loop spins forever without the job ever completing.
TEST(DistService, ResubmittedJobNameRebuildsWorkerSweeper) {
  service::JobManager manager(coordinator_only());
  const auto first = manager.submit(planted_job("alpha", "abc", 1, 4));

  TcpTransport transport;
  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");

  WorkerConfig wcfg;
  wcfg.name = "w";
  wcfg.threads = 2;
  WorkerDaemon worker(transport, wcfg);
  std::thread t([&] { worker.run(coordinator.address()); });

  ASSERT_TRUE(manager.wait(first, 60.0));
  EXPECT_EQ(manager.status(first).state, service::JobState::kDone);

  // Same name, same session, different key: the worker must notice the
  // new job id and not scan with the first instance's dead target.
  const auto second = manager.submit(planted_job("alpha", "dog", 1, 4));
  ASSERT_NE(first, second);
  ASSERT_TRUE(manager.wait(second, 60.0));

  worker.stop();
  t.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(second);
  EXPECT_EQ(s.state, service::JobState::kDone);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "dog");
}

// The same Coordinator/WorkerDaemon code, byte for byte, over the
// virtual-time simnet backend — the point of the transport
// abstraction. Scale 1.0 keeps virtual protocol time aligned with the
// real CPU time the scans take.
TEST(DistService, SimnetWorkersShareTheSweep) {
  simnet::Network net(/*time_scale=*/1.0);
  const auto cn = net.add_node("coordinator");
  const auto w1n = net.add_node("w1");
  const auto w2n = net.add_node("w2");
  net.connect(cn, w1n);
  net.connect(cn, w2n);

  // The planted key sits at the very end of the id space, so the job
  // can only complete by sweeping everything — several leases' worth.
  service::JobSpec spec = planted_job("alpha", "placeholder", 4, 4);
  const u128 space = keyspace::space_size(spec.request.charset.size(), 4, 4);
  const std::string key = key_at(spec, space - u128(1));
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  service::JobManager manager(coordinator_only());
  const auto id = manager.submit(spec);

  SimnetTransport ct(net, cn);
  SimnetTransport w1t(net, w1n);
  SimnetTransport w2t(net, w2n);
  CoordinatorConfig ccfg = fast_coordinator();
  ccfg.max_lease = u128(1) << 16;  // ~7 leases over the 457k-id space
  Coordinator coordinator(manager, ct, ccfg);
  coordinator.start("coordinator");

  WorkerConfig wcfg;
  wcfg.threads = 2;
  wcfg.name = "w1";
  WorkerDaemon w1(w1t, wcfg);
  wcfg.name = "w2";
  WorkerDaemon w2(w2t, wcfg);
  std::thread t1([&] { w1.run("coordinator"); });
  std::thread t2([&] { w2.run("coordinator"); });

  ASSERT_TRUE(manager.wait(id, 60.0));
  w1.stop();
  w2.stop();
  t1.join();
  t2.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, key);
  EXPECT_GE(coordinator.stats().leases_granted, 2u);
}

// Fault injection, simnet flavor: a worker node goes dark mid-lease.
// The coordinator sees only missed heartbeats; the lease expires, the
// interval re-dispatches to the survivor, and the planted key — parked
// at the very end of the keyspace — is still found exactly once.
TEST(DistService, SimnetNodeDownMidLeaseRedispatches) {
  simnet::Network net(/*time_scale=*/1.0);
  const auto cn = net.add_node("coordinator");
  const auto w1n = net.add_node("w1");
  const auto w2n = net.add_node("w2");
  net.connect(cn, w1n);
  net.connect(cn, w2n);

  // The planted key lives at the tail of the FIRST lease's interval
  // ([0, max_lease)), which the victim checks out and takes to its
  // grave: the key can only be found after that interval expires and
  // re-dispatches to the survivor.
  service::JobSpec spec = planted_job("alpha", "placeholder", 5, 5);
  const std::string key = key_at(spec, (u128(1) << 20) - u128(1));
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  service::JobManager manager(coordinator_only());
  const auto id = manager.submit(spec);

  SimnetTransport ct(net, cn);
  SimnetTransport w1t(net, w1n);
  SimnetTransport w2t(net, w2n);
  Coordinator coordinator(manager, ct, fast_coordinator());
  coordinator.start("coordinator");

  WorkerConfig wcfg;
  wcfg.threads = 2;
  wcfg.name = "victim";
  wcfg.recv_timeout_s = 1.0;      // notice the dead network quickly
  wcfg.reconnect_attempts = 0;    // and give up instead of retrying
  WorkerDaemon victim(w1t, wcfg);
  std::thread vt([&] { victim.run("coordinator"); });

  // Let the victim check out a lease, then pull its network plug.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (manager.lease_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(manager.lease_count(), 0u);
  net.set_node_down(w1n, true);

  wcfg.name = "survivor";
  wcfg.recv_timeout_s = 10.0;
  wcfg.reconnect_attempts = 5;
  WorkerDaemon survivor(w2t, wcfg);
  std::thread st([&] { survivor.run("coordinator"); });

  ASSERT_TRUE(manager.wait(id, 90.0));
  victim.stop();
  survivor.stop();
  vt.join();
  st.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);          // exactly once, despite overlap
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, key);
  EXPECT_GE(s.leases_expired, 1u);         // the fault actually happened
}

// A coordinator crash loses no acknowledged work: a new manager
// replays the journal, re-dispatches only the unscanned gaps, and the
// job still completes with the key found exactly once.
TEST(DistService, CoordinatorRestartResumesFromJournal) {
  const std::string journal =
      (std::filesystem::temp_directory_path() / "gks_dist_resume.jsonl")
          .string();
  std::filesystem::remove(journal);

  TcpTransport transport;
  {
    service::JobServiceConfig cfg = coordinator_only();
    cfg.journal_path = journal;
    service::JobManager manager(cfg);
    const auto id = manager.submit(planted_job("alpha", "zzzzz", 5, 5));

    CoordinatorConfig ccfg = fast_coordinator();
    ccfg.max_lease = u128(1) << 18;  // small leases: progress, not done
    Coordinator coordinator(manager, transport, ccfg);
    coordinator.start("127.0.0.1:0");

    WorkerConfig wcfg;
    wcfg.name = "w";
    wcfg.threads = 2;
    WorkerDaemon worker(transport, wcfg);
    std::thread wt([&] { worker.run(coordinator.address()); });
    ASSERT_TRUE(wait_scanned(manager, id));
    worker.stop();
    wt.join();
    coordinator.stop();
    EXPECT_NE(manager.status(id).state, service::JobState::kDone);
  }  // the "crash": manager destroyed mid-job, journal left behind

  service::JobServiceConfig cfg = coordinator_only();
  cfg.journal_path = journal + ".resumed";
  std::filesystem::remove(cfg.journal_path);
  service::JobManager manager(cfg);
  ASSERT_EQ(manager.resume_from(journal), 1u);
  const auto id = manager.find_job("alpha");
  ASSERT_TRUE(id.has_value());
  EXPECT_GT(manager.status(*id).scanned, u128(0));  // coverage survived

  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");
  WorkerConfig wcfg;
  wcfg.name = "w2";
  wcfg.threads = 2;
  WorkerDaemon worker(transport, wcfg);
  std::thread wt([&] { worker.run(coordinator.address()); });

  ASSERT_TRUE(manager.wait(*id, 90.0));
  worker.stop();
  wt.join();
  coordinator.stop();

  const service::JobSnapshot s = manager.status(*id);
  EXPECT_EQ(s.state, service::JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "zzzzz");

  std::filesystem::remove(journal);
  std::filesystem::remove(cfg.journal_path);
}

// Session hygiene: a worker that says BYE releases its leases at once
// (no deadline wait), and the coordinator survives garbage clients.
TEST(DistService, GarbageClientDoesNotDisturbTheCoordinator) {
  service::JobManager manager(coordinator_only());
  manager.submit(planted_job("alpha", "abc", 1, 3));

  TcpTransport transport;
  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");

  {
    auto conn = transport.connect(coordinator.address(), 5.0);
    conn->send("this is not json");
    const auto reply = conn->recv(5.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"error\""), std::string::npos);
  }

  // The coordinator still serves a well-behaved worker afterwards.
  WorkerConfig wcfg;
  wcfg.name = "w";
  wcfg.threads = 2;
  WorkerDaemon worker(transport, wcfg);
  std::thread wt([&] { worker.run(coordinator.address()); });
  ASSERT_TRUE(manager.wait(1, 60.0));
  worker.stop();
  wt.join();
  coordinator.stop();
  EXPECT_GE(coordinator.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace gks::dist
